
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/react_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/intermittent/CMakeFiles/react_intermittent.dir/DependInfo.cmake"
  "/root/repo/build/src/harvest/CMakeFiles/react_harvest.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/react_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/react_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/react_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/buffers/CMakeFiles/react_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/react_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/react_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
