file(REMOVE_RECURSE
  "CMakeFiles/test_static_multiplexed.dir/test_static_multiplexed.cc.o"
  "CMakeFiles/test_static_multiplexed.dir/test_static_multiplexed.cc.o.d"
  "test_static_multiplexed"
  "test_static_multiplexed.pdb"
  "test_static_multiplexed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_multiplexed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
