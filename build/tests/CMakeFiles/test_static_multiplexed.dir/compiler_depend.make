# Empty compiler generated dependencies file for test_static_multiplexed.
# This may be replaced when dependencies are built.
