file(REMOVE_RECURSE
  "CMakeFiles/test_morphy_buffer.dir/test_morphy_buffer.cc.o"
  "CMakeFiles/test_morphy_buffer.dir/test_morphy_buffer.cc.o.d"
  "test_morphy_buffer"
  "test_morphy_buffer.pdb"
  "test_morphy_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morphy_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
