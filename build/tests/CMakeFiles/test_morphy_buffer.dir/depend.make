# Empty dependencies file for test_morphy_buffer.
# This may be replaced when dependencies are built.
