# Empty compiler generated dependencies file for test_react_buffer.
# This may be replaced when dependencies are built.
