file(REMOVE_RECURSE
  "CMakeFiles/test_react_buffer.dir/test_react_buffer.cc.o"
  "CMakeFiles/test_react_buffer.dir/test_react_buffer.cc.o.d"
  "test_react_buffer"
  "test_react_buffer.pdb"
  "test_react_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_react_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
