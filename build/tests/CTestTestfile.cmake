# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_harvest[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_bank[1]_include.cmake")
include("/root/repo/build/tests/test_react_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_morphy_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_static_multiplexed[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_intermittent[1]_include.cmake")
