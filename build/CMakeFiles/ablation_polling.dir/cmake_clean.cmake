file(REMOVE_RECURSE
  "CMakeFiles/ablation_polling.dir/bench/ablation_polling.cc.o"
  "CMakeFiles/ablation_polling.dir/bench/ablation_polling.cc.o.d"
  "bench/ablation_polling"
  "bench/ablation_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
