# Empty compiler generated dependencies file for fig5_reconfig_loss.
# This may be replaced when dependencies are built.
