file(REMOVE_RECURSE
  "CMakeFiles/fig5_reconfig_loss.dir/bench/fig5_reconfig_loss.cc.o"
  "CMakeFiles/fig5_reconfig_loss.dir/bench/fig5_reconfig_loss.cc.o.d"
  "bench/fig5_reconfig_loss"
  "bench/fig5_reconfig_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_reconfig_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
