# Empty dependencies file for ablation_dewdrop.
# This may be replaced when dependencies are built.
