file(REMOVE_RECURSE
  "CMakeFiles/ablation_dewdrop.dir/bench/ablation_dewdrop.cc.o"
  "CMakeFiles/ablation_dewdrop.dir/bench/ablation_dewdrop.cc.o.d"
  "bench/ablation_dewdrop"
  "bench/ablation_dewdrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dewdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
