file(REMOVE_RECURSE
  "CMakeFiles/ablation_diodes.dir/bench/ablation_diodes.cc.o"
  "CMakeFiles/ablation_diodes.dir/bench/ablation_diodes.cc.o.d"
  "bench/ablation_diodes"
  "bench/ablation_diodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
