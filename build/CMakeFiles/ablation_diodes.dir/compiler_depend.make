# Empty compiler generated dependencies file for ablation_diodes.
# This may be replaced when dependencies are built.
