file(REMOVE_RECURSE
  "CMakeFiles/fig6_characterization.dir/bench/fig6_characterization.cc.o"
  "CMakeFiles/fig6_characterization.dir/bench/fig6_characterization.cc.o.d"
  "bench/fig6_characterization"
  "bench/fig6_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
