# Empty dependencies file for fig6_characterization.
# This may be replaced when dependencies are built.
