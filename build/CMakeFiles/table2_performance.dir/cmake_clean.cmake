file(REMOVE_RECURSE
  "CMakeFiles/table2_performance.dir/bench/table2_performance.cc.o"
  "CMakeFiles/table2_performance.dir/bench/table2_performance.cc.o.d"
  "bench/table2_performance"
  "bench/table2_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
