# Empty compiler generated dependencies file for table3_traces.
# This may be replaced when dependencies are built.
