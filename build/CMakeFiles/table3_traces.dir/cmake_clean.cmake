file(REMOVE_RECURSE
  "CMakeFiles/table3_traces.dir/bench/table3_traces.cc.o"
  "CMakeFiles/table3_traces.dir/bench/table3_traces.cc.o.d"
  "bench/table3_traces"
  "bench/table3_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
