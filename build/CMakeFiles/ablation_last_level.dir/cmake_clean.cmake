file(REMOVE_RECURSE
  "CMakeFiles/ablation_last_level.dir/bench/ablation_last_level.cc.o"
  "CMakeFiles/ablation_last_level.dir/bench/ablation_last_level.cc.o.d"
  "bench/ablation_last_level"
  "bench/ablation_last_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_last_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
