# Empty dependencies file for ablation_last_level.
# This may be replaced when dependencies are built.
