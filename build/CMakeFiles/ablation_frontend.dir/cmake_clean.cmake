file(REMOVE_RECURSE
  "CMakeFiles/ablation_frontend.dir/bench/ablation_frontend.cc.o"
  "CMakeFiles/ablation_frontend.dir/bench/ablation_frontend.cc.o.d"
  "bench/ablation_frontend"
  "bench/ablation_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
