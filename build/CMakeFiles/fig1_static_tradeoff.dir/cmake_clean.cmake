file(REMOVE_RECURSE
  "CMakeFiles/fig1_static_tradeoff.dir/bench/fig1_static_tradeoff.cc.o"
  "CMakeFiles/fig1_static_tradeoff.dir/bench/fig1_static_tradeoff.cc.o.d"
  "bench/fig1_static_tradeoff"
  "bench/fig1_static_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_static_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
