# Empty dependencies file for sec2_volatility.
# This may be replaced when dependencies are built.
