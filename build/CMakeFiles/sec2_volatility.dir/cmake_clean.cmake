file(REMOVE_RECURSE
  "CMakeFiles/sec2_volatility.dir/bench/sec2_volatility.cc.o"
  "CMakeFiles/sec2_volatility.dir/bench/sec2_volatility.cc.o.d"
  "bench/sec2_volatility"
  "bench/sec2_volatility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_volatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
