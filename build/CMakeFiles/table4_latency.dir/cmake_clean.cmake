file(REMOVE_RECURSE
  "CMakeFiles/table4_latency.dir/bench/table4_latency.cc.o"
  "CMakeFiles/table4_latency.dir/bench/table4_latency.cc.o.d"
  "bench/table4_latency"
  "bench/table4_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
