file(REMOVE_RECURSE
  "CMakeFiles/fig7_figure_of_merit.dir/bench/fig7_figure_of_merit.cc.o"
  "CMakeFiles/fig7_figure_of_merit.dir/bench/fig7_figure_of_merit.cc.o.d"
  "bench/fig7_figure_of_merit"
  "bench/fig7_figure_of_merit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_figure_of_merit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
