file(REMOVE_RECURSE
  "CMakeFiles/table5_packet_forwarding.dir/bench/table5_packet_forwarding.cc.o"
  "CMakeFiles/table5_packet_forwarding.dir/bench/table5_packet_forwarding.cc.o.d"
  "bench/table5_packet_forwarding"
  "bench/table5_packet_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_packet_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
