# Empty dependencies file for table5_packet_forwarding.
# This may be replaced when dependencies are built.
