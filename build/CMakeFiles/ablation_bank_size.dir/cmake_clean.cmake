file(REMOVE_RECURSE
  "CMakeFiles/ablation_bank_size.dir/bench/ablation_bank_size.cc.o"
  "CMakeFiles/ablation_bank_size.dir/bench/ablation_bank_size.cc.o.d"
  "bench/ablation_bank_size"
  "bench/ablation_bank_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bank_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
