# Empty dependencies file for ablation_bank_size.
# This may be replaced when dependencies are built.
