file(REMOVE_RECURSE
  "CMakeFiles/sec51_overhead.dir/bench/sec51_overhead.cc.o"
  "CMakeFiles/sec51_overhead.dir/bench/sec51_overhead.cc.o.d"
  "bench/sec51_overhead"
  "bench/sec51_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
