# Empty compiler generated dependencies file for sec51_overhead.
# This may be replaced when dependencies are built.
