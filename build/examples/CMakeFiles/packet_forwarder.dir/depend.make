# Empty dependencies file for packet_forwarder.
# This may be replaced when dependencies are built.
