file(REMOVE_RECURSE
  "CMakeFiles/packet_forwarder.dir/packet_forwarder.cpp.o"
  "CMakeFiles/packet_forwarder.dir/packet_forwarder.cpp.o.d"
  "packet_forwarder"
  "packet_forwarder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
