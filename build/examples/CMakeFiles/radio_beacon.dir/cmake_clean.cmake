file(REMOVE_RECURSE
  "CMakeFiles/radio_beacon.dir/radio_beacon.cpp.o"
  "CMakeFiles/radio_beacon.dir/radio_beacon.cpp.o.d"
  "radio_beacon"
  "radio_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
