# Empty compiler generated dependencies file for radio_beacon.
# This may be replaced when dependencies are built.
