# Empty dependencies file for solar_sensor.
# This may be replaced when dependencies are built.
