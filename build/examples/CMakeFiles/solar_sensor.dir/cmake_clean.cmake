file(REMOVE_RECURSE
  "CMakeFiles/solar_sensor.dir/solar_sensor.cpp.o"
  "CMakeFiles/solar_sensor.dir/solar_sensor.cpp.o.d"
  "solar_sensor"
  "solar_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
