# Empty compiler generated dependencies file for intermittent_logger.
# This may be replaced when dependencies are built.
