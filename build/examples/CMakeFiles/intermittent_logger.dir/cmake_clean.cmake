file(REMOVE_RECURSE
  "CMakeFiles/intermittent_logger.dir/intermittent_logger.cpp.o"
  "CMakeFiles/intermittent_logger.dir/intermittent_logger.cpp.o.d"
  "intermittent_logger"
  "intermittent_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intermittent_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
