# Empty dependencies file for react_buffers.
# This may be replaced when dependencies are built.
