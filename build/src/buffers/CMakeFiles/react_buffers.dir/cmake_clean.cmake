file(REMOVE_RECURSE
  "CMakeFiles/react_buffers.dir/capacitor_network.cc.o"
  "CMakeFiles/react_buffers.dir/capacitor_network.cc.o.d"
  "CMakeFiles/react_buffers.dir/dewdrop_policy.cc.o"
  "CMakeFiles/react_buffers.dir/dewdrop_policy.cc.o.d"
  "CMakeFiles/react_buffers.dir/energy_buffer.cc.o"
  "CMakeFiles/react_buffers.dir/energy_buffer.cc.o.d"
  "CMakeFiles/react_buffers.dir/morphy_buffer.cc.o"
  "CMakeFiles/react_buffers.dir/morphy_buffer.cc.o.d"
  "CMakeFiles/react_buffers.dir/multiplexed_buffer.cc.o"
  "CMakeFiles/react_buffers.dir/multiplexed_buffer.cc.o.d"
  "CMakeFiles/react_buffers.dir/static_buffer.cc.o"
  "CMakeFiles/react_buffers.dir/static_buffer.cc.o.d"
  "libreact_buffers.a"
  "libreact_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
