file(REMOVE_RECURSE
  "libreact_buffers.a"
)
