
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffers/capacitor_network.cc" "src/buffers/CMakeFiles/react_buffers.dir/capacitor_network.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/capacitor_network.cc.o.d"
  "/root/repo/src/buffers/dewdrop_policy.cc" "src/buffers/CMakeFiles/react_buffers.dir/dewdrop_policy.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/dewdrop_policy.cc.o.d"
  "/root/repo/src/buffers/energy_buffer.cc" "src/buffers/CMakeFiles/react_buffers.dir/energy_buffer.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/energy_buffer.cc.o.d"
  "/root/repo/src/buffers/morphy_buffer.cc" "src/buffers/CMakeFiles/react_buffers.dir/morphy_buffer.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/morphy_buffer.cc.o.d"
  "/root/repo/src/buffers/multiplexed_buffer.cc" "src/buffers/CMakeFiles/react_buffers.dir/multiplexed_buffer.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/multiplexed_buffer.cc.o.d"
  "/root/repo/src/buffers/static_buffer.cc" "src/buffers/CMakeFiles/react_buffers.dir/static_buffer.cc.o" "gcc" "src/buffers/CMakeFiles/react_buffers.dir/static_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/react_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
