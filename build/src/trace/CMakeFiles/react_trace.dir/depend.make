# Empty dependencies file for react_trace.
# This may be replaced when dependencies are built.
