file(REMOVE_RECURSE
  "CMakeFiles/react_trace.dir/generator.cc.o"
  "CMakeFiles/react_trace.dir/generator.cc.o.d"
  "CMakeFiles/react_trace.dir/paper_traces.cc.o"
  "CMakeFiles/react_trace.dir/paper_traces.cc.o.d"
  "CMakeFiles/react_trace.dir/power_trace.cc.o"
  "CMakeFiles/react_trace.dir/power_trace.cc.o.d"
  "libreact_trace.a"
  "libreact_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
