file(REMOVE_RECURSE
  "libreact_trace.a"
)
