# Empty dependencies file for react_mcu.
# This may be replaced when dependencies are built.
