file(REMOVE_RECURSE
  "CMakeFiles/react_mcu.dir/device.cc.o"
  "CMakeFiles/react_mcu.dir/device.cc.o.d"
  "CMakeFiles/react_mcu.dir/event_queue.cc.o"
  "CMakeFiles/react_mcu.dir/event_queue.cc.o.d"
  "libreact_mcu.a"
  "libreact_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
