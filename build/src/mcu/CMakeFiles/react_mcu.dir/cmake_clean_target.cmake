file(REMOVE_RECURSE
  "libreact_mcu.a"
)
