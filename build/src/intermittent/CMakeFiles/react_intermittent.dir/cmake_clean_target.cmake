file(REMOVE_RECURSE
  "libreact_intermittent.a"
)
