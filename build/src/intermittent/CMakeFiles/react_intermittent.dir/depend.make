# Empty dependencies file for react_intermittent.
# This may be replaced when dependencies are built.
