file(REMOVE_RECURSE
  "CMakeFiles/react_intermittent.dir/nonvolatile.cc.o"
  "CMakeFiles/react_intermittent.dir/nonvolatile.cc.o.d"
  "CMakeFiles/react_intermittent.dir/task_runtime.cc.o"
  "CMakeFiles/react_intermittent.dir/task_runtime.cc.o.d"
  "libreact_intermittent.a"
  "libreact_intermittent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_intermittent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
