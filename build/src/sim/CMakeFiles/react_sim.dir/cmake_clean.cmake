file(REMOVE_RECURSE
  "CMakeFiles/react_sim.dir/capacitor.cc.o"
  "CMakeFiles/react_sim.dir/capacitor.cc.o.d"
  "CMakeFiles/react_sim.dir/charge_transfer.cc.o"
  "CMakeFiles/react_sim.dir/charge_transfer.cc.o.d"
  "CMakeFiles/react_sim.dir/diode.cc.o"
  "CMakeFiles/react_sim.dir/diode.cc.o.d"
  "CMakeFiles/react_sim.dir/energy_ledger.cc.o"
  "CMakeFiles/react_sim.dir/energy_ledger.cc.o.d"
  "CMakeFiles/react_sim.dir/power_gate.cc.o"
  "CMakeFiles/react_sim.dir/power_gate.cc.o.d"
  "libreact_sim.a"
  "libreact_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
