
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capacitor.cc" "src/sim/CMakeFiles/react_sim.dir/capacitor.cc.o" "gcc" "src/sim/CMakeFiles/react_sim.dir/capacitor.cc.o.d"
  "/root/repo/src/sim/charge_transfer.cc" "src/sim/CMakeFiles/react_sim.dir/charge_transfer.cc.o" "gcc" "src/sim/CMakeFiles/react_sim.dir/charge_transfer.cc.o.d"
  "/root/repo/src/sim/diode.cc" "src/sim/CMakeFiles/react_sim.dir/diode.cc.o" "gcc" "src/sim/CMakeFiles/react_sim.dir/diode.cc.o.d"
  "/root/repo/src/sim/energy_ledger.cc" "src/sim/CMakeFiles/react_sim.dir/energy_ledger.cc.o" "gcc" "src/sim/CMakeFiles/react_sim.dir/energy_ledger.cc.o.d"
  "/root/repo/src/sim/power_gate.cc" "src/sim/CMakeFiles/react_sim.dir/power_gate.cc.o" "gcc" "src/sim/CMakeFiles/react_sim.dir/power_gate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
