# Empty dependencies file for react_sim.
# This may be replaced when dependencies are built.
