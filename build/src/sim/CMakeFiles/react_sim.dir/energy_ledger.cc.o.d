src/sim/CMakeFiles/react_sim.dir/energy_ledger.cc.o: \
 /root/repo/src/sim/energy_ledger.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/energy_ledger.hh
