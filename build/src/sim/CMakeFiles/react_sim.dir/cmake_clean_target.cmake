file(REMOVE_RECURSE
  "libreact_sim.a"
)
