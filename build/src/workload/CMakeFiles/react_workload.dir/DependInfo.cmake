
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/aes128.cc" "src/workload/CMakeFiles/react_workload.dir/aes128.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/aes128.cc.o.d"
  "/root/repo/src/workload/benchmark.cc" "src/workload/CMakeFiles/react_workload.dir/benchmark.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/benchmark.cc.o.d"
  "/root/repo/src/workload/de_benchmark.cc" "src/workload/CMakeFiles/react_workload.dir/de_benchmark.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/de_benchmark.cc.o.d"
  "/root/repo/src/workload/filter.cc" "src/workload/CMakeFiles/react_workload.dir/filter.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/filter.cc.o.d"
  "/root/repo/src/workload/packet.cc" "src/workload/CMakeFiles/react_workload.dir/packet.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/packet.cc.o.d"
  "/root/repo/src/workload/pf_benchmark.cc" "src/workload/CMakeFiles/react_workload.dir/pf_benchmark.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/pf_benchmark.cc.o.d"
  "/root/repo/src/workload/rt_benchmark.cc" "src/workload/CMakeFiles/react_workload.dir/rt_benchmark.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/rt_benchmark.cc.o.d"
  "/root/repo/src/workload/sc_benchmark.cc" "src/workload/CMakeFiles/react_workload.dir/sc_benchmark.cc.o" "gcc" "src/workload/CMakeFiles/react_workload.dir/sc_benchmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/react_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/buffers/CMakeFiles/react_buffers.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/react_mcu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
