file(REMOVE_RECURSE
  "CMakeFiles/react_workload.dir/aes128.cc.o"
  "CMakeFiles/react_workload.dir/aes128.cc.o.d"
  "CMakeFiles/react_workload.dir/benchmark.cc.o"
  "CMakeFiles/react_workload.dir/benchmark.cc.o.d"
  "CMakeFiles/react_workload.dir/de_benchmark.cc.o"
  "CMakeFiles/react_workload.dir/de_benchmark.cc.o.d"
  "CMakeFiles/react_workload.dir/filter.cc.o"
  "CMakeFiles/react_workload.dir/filter.cc.o.d"
  "CMakeFiles/react_workload.dir/packet.cc.o"
  "CMakeFiles/react_workload.dir/packet.cc.o.d"
  "CMakeFiles/react_workload.dir/pf_benchmark.cc.o"
  "CMakeFiles/react_workload.dir/pf_benchmark.cc.o.d"
  "CMakeFiles/react_workload.dir/rt_benchmark.cc.o"
  "CMakeFiles/react_workload.dir/rt_benchmark.cc.o.d"
  "CMakeFiles/react_workload.dir/sc_benchmark.cc.o"
  "CMakeFiles/react_workload.dir/sc_benchmark.cc.o.d"
  "libreact_workload.a"
  "libreact_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
