file(REMOVE_RECURSE
  "libreact_workload.a"
)
