# Empty compiler generated dependencies file for react_workload.
# This may be replaced when dependencies are built.
