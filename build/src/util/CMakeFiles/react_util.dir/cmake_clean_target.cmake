file(REMOVE_RECURSE
  "libreact_util.a"
)
