# Empty dependencies file for react_util.
# This may be replaced when dependencies are built.
