file(REMOVE_RECURSE
  "CMakeFiles/react_util.dir/csv.cc.o"
  "CMakeFiles/react_util.dir/csv.cc.o.d"
  "CMakeFiles/react_util.dir/logging.cc.o"
  "CMakeFiles/react_util.dir/logging.cc.o.d"
  "CMakeFiles/react_util.dir/rng.cc.o"
  "CMakeFiles/react_util.dir/rng.cc.o.d"
  "CMakeFiles/react_util.dir/stats.cc.o"
  "CMakeFiles/react_util.dir/stats.cc.o.d"
  "CMakeFiles/react_util.dir/table.cc.o"
  "CMakeFiles/react_util.dir/table.cc.o.d"
  "libreact_util.a"
  "libreact_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
