file(REMOVE_RECURSE
  "CMakeFiles/react_harness.dir/experiment.cc.o"
  "CMakeFiles/react_harness.dir/experiment.cc.o.d"
  "CMakeFiles/react_harness.dir/figure_of_merit.cc.o"
  "CMakeFiles/react_harness.dir/figure_of_merit.cc.o.d"
  "CMakeFiles/react_harness.dir/paper_setup.cc.o"
  "CMakeFiles/react_harness.dir/paper_setup.cc.o.d"
  "libreact_harness.a"
  "libreact_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
