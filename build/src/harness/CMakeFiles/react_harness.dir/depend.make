# Empty dependencies file for react_harness.
# This may be replaced when dependencies are built.
