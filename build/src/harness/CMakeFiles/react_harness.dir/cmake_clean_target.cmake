file(REMOVE_RECURSE
  "libreact_harness.a"
)
