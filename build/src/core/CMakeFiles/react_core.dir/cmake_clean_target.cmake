file(REMOVE_RECURSE
  "libreact_core.a"
)
