# Empty dependencies file for react_core.
# This may be replaced when dependencies are built.
