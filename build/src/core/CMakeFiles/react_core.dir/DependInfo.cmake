
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bank.cc" "src/core/CMakeFiles/react_core.dir/bank.cc.o" "gcc" "src/core/CMakeFiles/react_core.dir/bank.cc.o.d"
  "/root/repo/src/core/bank_policy.cc" "src/core/CMakeFiles/react_core.dir/bank_policy.cc.o" "gcc" "src/core/CMakeFiles/react_core.dir/bank_policy.cc.o.d"
  "/root/repo/src/core/react_buffer.cc" "src/core/CMakeFiles/react_core.dir/react_buffer.cc.o" "gcc" "src/core/CMakeFiles/react_core.dir/react_buffer.cc.o.d"
  "/root/repo/src/core/react_config.cc" "src/core/CMakeFiles/react_core.dir/react_config.cc.o" "gcc" "src/core/CMakeFiles/react_core.dir/react_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/react_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/buffers/CMakeFiles/react_buffers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
