file(REMOVE_RECURSE
  "CMakeFiles/react_core.dir/bank.cc.o"
  "CMakeFiles/react_core.dir/bank.cc.o.d"
  "CMakeFiles/react_core.dir/bank_policy.cc.o"
  "CMakeFiles/react_core.dir/bank_policy.cc.o.d"
  "CMakeFiles/react_core.dir/react_buffer.cc.o"
  "CMakeFiles/react_core.dir/react_buffer.cc.o.d"
  "CMakeFiles/react_core.dir/react_config.cc.o"
  "CMakeFiles/react_core.dir/react_config.cc.o.d"
  "libreact_core.a"
  "libreact_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
