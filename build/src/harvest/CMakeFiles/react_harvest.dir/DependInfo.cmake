
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harvest/converter.cc" "src/harvest/CMakeFiles/react_harvest.dir/converter.cc.o" "gcc" "src/harvest/CMakeFiles/react_harvest.dir/converter.cc.o.d"
  "/root/repo/src/harvest/frontend.cc" "src/harvest/CMakeFiles/react_harvest.dir/frontend.cc.o" "gcc" "src/harvest/CMakeFiles/react_harvest.dir/frontend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/react_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/react_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
