file(REMOVE_RECURSE
  "CMakeFiles/react_harvest.dir/converter.cc.o"
  "CMakeFiles/react_harvest.dir/converter.cc.o.d"
  "CMakeFiles/react_harvest.dir/frontend.cc.o"
  "CMakeFiles/react_harvest.dir/frontend.cc.o.d"
  "libreact_harvest.a"
  "libreact_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/react_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
