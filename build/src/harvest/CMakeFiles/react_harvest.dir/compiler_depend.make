# Empty compiler generated dependencies file for react_harvest.
# This may be replaced when dependencies are built.
