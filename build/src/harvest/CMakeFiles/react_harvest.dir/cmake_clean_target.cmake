file(REMOVE_RECURSE
  "libreact_harvest.a"
)
