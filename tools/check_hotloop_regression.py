#!/usr/bin/env python3
"""Hot-loop perf-regression gate for CI.

Compares a freshly measured BENCH_hotloop.json against the checked-in
baseline and fails (exit 1) when any steps/sec metric regressed by more
than the tolerance (default 10%).  Improvements never fail; a separate
message suggests refreshing the baseline when a metric improved by more
than the tolerance, so the gate ratchets forward instead of letting the
baseline go stale.

The cache hit rates are checked too: a silent cache regression (a key
that never matches) shows up as a collapsed hit rate long before the
wall-clock noise floor would flag it.

Usage:
  check_hotloop_regression.py <baseline.json> <current.json>
      [--tolerance 0.10] [--min-leak-hit-rate 0.99]
"""

import argparse
import json
import sys


def metrics(doc):
    """Flatten the steps/sec metrics out of a BENCH_hotloop document."""
    out = {}
    for row in doc.get("micro", []):
        out["micro." + row["name"]] = row["steps_per_sec"]
    for row in doc.get("batch", {}).get("kernels", []):
        out["batch." + row["name"]] = row["lane_steps_per_sec"]
    for key in ("table2_de", "table2_de_fastpath"):
        section = doc.get(key)
        # A --quick run leaves the table sections empty (0 cells); skip
        # them rather than dividing by zero.
        if section and section.get("cells", 0) > 0:
            out[key] = section["steps_per_sec"]
    return out


def check_batch_speedup(cur, cur_m, minimum, failures):
    """Gate the batch lane engine's speedup over single-cell stepping.

    The acceptance bar is on the AVX2 kernel (lane_steps_per_sec vs the
    static_10mF micro row, both from the *current* run so machine speed
    cancels out).  On hosts that cannot run AVX2 the gate is skipped
    with an explicit note -- never silently passed.
    """
    batch = cur.get("batch")
    if not batch:
        failures.append("batch: section missing from current run")
        return
    if not batch.get("avx2_available", False):
        print(f"{'batch.avx2 speedup gate':28s} skipped (host lacks AVX2)")
        return
    single = cur_m.get("micro.static_10mF", 0.0)
    avx2 = cur_m.get("batch.avx2")
    if avx2 is None or single <= 0.0:
        failures.append("batch.avx2: AVX2 available but no avx2 row "
                        "(or static_10mF micro row) in current run")
        return
    speedup = avx2 / single
    tag = "ok" if speedup >= minimum else "BELOW GATE"
    print(f"{'batch.avx2 speedup':28s} {speedup:12.2f}x vs "
          f"micro.static_10mF (gate {minimum:.1f}x)  {tag}")
    if speedup < minimum:
        failures.append(
            f"batch.avx2: {speedup:.2f}x over single-cell stepping, "
            f"below the {minimum:.1f}x acceptance gate")


def check_lane_engine(base, cur, target, tolerance, failures):
    """Gate the end-to-end lane-engine speedup (Table-2 DE static column,
    classic per-cell vs one lane-major batch pass).

    The acceptance target is ``target`` (2.5x).  Wall-clock ratios are
    host-dependent -- lane utilization caps the achievable speedup when a
    few long traces pin the batch makespan -- so the gate ratchets: a run
    passes at the absolute target, or by staying within ``tolerance`` of
    the checked-in baseline's achieved speedup.  Either way a divergent
    (non-bit-identical) run always fails, and hosts without a vector
    kernel skip with an explicit note, never a silent pass.
    """
    sec = cur.get("lane_engine")
    if not sec or sec.get("cells", 0) == 0:
        print(f"{'lane_engine speedup gate':28s} skipped (--quick run)")
        return
    if not cur.get("batch", {}).get("avx2_available", False):
        print(f"{'lane_engine speedup gate':28s} skipped (host lacks AVX2)")
        return
    if not sec.get("bit_identical", False):
        failures.append(
            f"lane_engine: batch run diverged from classic stepping on "
            f"{sec.get('divergent_cells', '?')} cell(s)")
        return
    speedup = sec.get("speedup", 0.0)
    base_sec = base.get("lane_engine") or {}
    base_speedup = base_sec.get("speedup", 0.0)
    floor = base_speedup * (1.0 - tolerance)
    if speedup >= target:
        tag = "ok"
    elif base_speedup > 0.0 and speedup >= floor:
        tag = (f"below {target:.1f}x target, within {tolerance * 100:.0f}% "
               f"of baseline {base_speedup:.2f}x")
    else:
        tag = "BELOW GATE"
        failures.append(
            f"lane_engine: {speedup:.2f}x vs classic, below the "
            f"{target:.1f}x target and the baseline ratchet "
            f"({base_speedup:.2f}x - {tolerance * 100:.0f}%)")
    print(f"{'lane_engine speedup':28s} {speedup:12.2f}x vs classic "
          f"on {sec.get('kernel', '?')} (target {target:.1f}x)  {tag}")

    # Per-phase Amdahl split: report every fraction, and fail when the
    # frontend's share of the loop grows by more than `tolerance`
    # absolute over the baseline -- per-step trace/converter work
    # creeping back into the hot loop is exactly the regression the
    # lane-major frontend exists to prevent.
    phases = sec.get("phases") or {}
    base_phases = base_sec.get("phases") or {}
    for name in ("frontend", "physics", "workload", "bookkeeping"):
        frac = phases.get(name + "_frac")
        if frac is None:
            failures.append(f"lane_engine.phases.{name}_frac: missing "
                            f"from current run")
            continue
        base_frac = base_phases.get(name + "_frac")
        tag = "ok"
        if name == "frontend" and base_frac is not None \
                and frac > base_frac + tolerance:
            tag = "REGRESSION"
            failures.append(
                f"lane_engine.phases.frontend_frac: {frac:.3f} vs "
                f"baseline {base_frac:.3f} (+{(frac - base_frac) * 100:.1f} "
                f"points of the loop moved into the frontend)")
        base_str = f"{base_frac:12.3f}" if base_frac is not None \
            else "           -"
        print(f"{'lane_engine.' + name + '_frac':28s} {frac:12.3f} vs "
              f"{base_str}  {tag}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max allowed fractional regression (default 0.10)")
    ap.add_argument("--min-leak-hit-rate", type=float, default=0.99,
                    help="fail when the leak cache hit rate drops below "
                         "this (default 0.99)")
    ap.add_argument("--min-batch-speedup", type=float, default=2.0,
                    help="min AVX2 batch lane-steps/sec over the "
                         "static_10mF micro row (default 2.0)")
    ap.add_argument("--lane-engine-target", type=float, default=2.5,
                    help="end-to-end lane-engine speedup target; runs "
                         "below it pass only within --tolerance of the "
                         "baseline's achieved speedup (default 2.5)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    base_m = metrics(base)
    cur_m = metrics(cur)

    failures = []
    for name, base_v in sorted(base_m.items()):
        cur_v = cur_m.get(name)
        if cur_v is None:
            # A baseline recorded on a vector-capable host must not fail
            # the gate on one without: the avx2/avx512 batch rows are the
            # only metrics that are legitimately host-dependent.
            if (name == "batch.avx2"
                    and not cur.get("batch", {}).get("avx2_available",
                                                     False)):
                print(f"{name:28s} skipped (host lacks AVX2)")
                continue
            if (name == "batch.avx512"
                    and not cur.get("batch", {}).get("avx512_available",
                                                     False)):
                print(f"{name:28s} skipped (host lacks AVX-512F)")
                continue
            failures.append(f"{name}: missing from current run")
            continue
        ratio = cur_v / base_v if base_v > 0 else float("inf")
        tag = "ok"
        if ratio < 1.0 - args.tolerance:
            tag = "REGRESSION"
            failures.append(
                f"{name}: {cur_v:.3g} steps/s vs baseline "
                f"{base_v:.3g} ({(1.0 - ratio) * 100.0:.1f}% slower)")
        elif ratio > 1.0 + args.tolerance:
            tag = "improved (consider refreshing the baseline)"
        print(f"{name:28s} {cur_v:12.4g} vs {base_v:12.4g}  "
              f"x{ratio:.3f}  {tag}")

    check_batch_speedup(cur, cur_m, args.min_batch_speedup, failures)
    check_lane_engine(base, cur, args.lane_engine_target, args.tolerance,
                      failures)

    cache = cur.get("cache", {})
    leak_rate = cache.get("leak_hit_rate", 0.0)
    total = cache.get("leak_hits", 0) + cache.get("leak_misses", 0)
    if total > 0 and leak_rate < args.min_leak_hit_rate:
        failures.append(
            f"leak cache hit rate collapsed: {leak_rate:.4f} < "
            f"{args.min_leak_hit_rate} (cache key churn?)")
    print(f"{'cache.leak_hit_rate':28s} {leak_rate:12.4f}")

    if failures:
        print("\nFAIL: hot-loop performance regressed:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("\nOK: no hot-loop regression beyond "
          f"{args.tolerance * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
