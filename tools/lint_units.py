#!/usr/bin/env python3
"""Dimensional-safety linter for the REACT energy circuit.

Rejects bare-``double`` function parameters with physical-quantity names
in the public headers of the typed domain (src/sim, src/buffers,
src/core, src/harvest).  Inside that domain every voltage, current,
power, energy, charge, capacitance, resistance, and time value must be a
``react::units::Quantity`` (Volts, Amps, Watts, Joules, Coulombs,
Farads, Ohms, Seconds, Hertz); a ``double`` parameter whose name says
"voltage" is exactly the latent unit bug the Quantity types exist to
rule out.

Dimensionless parameters (efficiencies, margins, fractions, factors,
probabilities, composite rates the unit system does not model) stay
``double`` and are not flagged: the check keys on the *name tokens* of
each parameter, not on the mere presence of ``double``.

Exit status 0 when clean, 1 with a ``file:line`` report otherwise.
Run directly or via ``cmake --build build --target lint``.
"""

import argparse
import pathlib
import re
import sys

# Directories whose public headers form the typed domain.
TYPED_DIRS = ("src/sim", "src/buffers", "src/core", "src/harvest")

# Identifier tokens that name a physical quantity.  A parameter whose
# snake_case / camelCase tokenisation contains any of these must be a
# Quantity, never a bare double.
PHYSICAL_TOKENS = {
    "volt", "volts", "voltage",
    "amp", "amps", "ampere", "amperes", "current",
    "watt", "watts", "power",
    "energy", "joule", "joules",
    "charge", "coulomb", "coulombs",
    "capacitance", "farad", "farads",
    "resistance", "resistor", "ohm", "ohms", "esr",
    "second", "seconds", "duration", "dt", "tau", "time",
    "freq", "frequency", "hz", "hertz",
}

# Grandfathered violations, as "path/from/repo/root.hh:name" entries.
# The migration burned this down to empty; keep it empty.  If you are
# about to add an entry, wrap the parameter in a Quantity instead.
ALLOWLIST: set = set()


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def tokens(identifier: str):
    """Split snake_case / camelCase into lowercase word tokens."""
    parts = re.findall(r"[A-Z]+(?![a-z])|[A-Z][a-z]*|[a-z]+|\d+",
                       identifier)
    return [p.lower() for p in parts]


PARAM_RE = re.compile(
    r"\bdouble\b\s*(?:const\b\s*)?[&*]?\s*([A-Za-z_]\w*)")


def check_header(path: pathlib.Path, root: pathlib.Path):
    """Yield (line, name) for each physical bare-double parameter."""
    text = strip_comments(path.read_text())
    # Parenthesis depth at every character: parameters live at depth >= 1,
    # member and local declarations at depth 0.
    depth, depths = 0, []
    for ch in text:
        if ch == "(":
            depth += 1
            depths.append(depth)
            continue
        if ch == ")":
            depths.append(depth)
            depth = max(0, depth - 1)
            continue
        depths.append(depth)
    rel = path.relative_to(root).as_posix()
    for m in PARAM_RE.finditer(text):
        if depths[m.start()] < 1:
            continue  # member / local, not a parameter
        name = m.group(1)
        if not PHYSICAL_TOKENS.intersection(tokens(name)):
            continue
        if f"{rel}:{name}" in ALLOWLIST:
            continue
        line = text.count("\n", 0, m.start()) + 1
        yield line, name


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: ../ from this file)")
    args = parser.parse_args()
    root = args.root.resolve()

    headers = []
    for d in TYPED_DIRS:
        headers.extend(sorted((root / d).glob("*.hh")))
    if not headers:
        print(f"lint_units: no headers found under {root}", file=sys.stderr)
        return 1

    violations = 0
    for header in headers:
        for line, name in check_header(header, root):
            rel = header.relative_to(root).as_posix()
            print(f"{rel}:{line}: bare-double physical parameter "
                  f"'{name}' -- use a react::units Quantity "
                  f"(Volts/Amps/Watts/Joules/Farads/Ohms/Seconds/...)",
                  file=sys.stderr)
            violations += 1
    if violations:
        print(f"lint_units: {violations} violation(s) in "
              f"{len(headers)} headers", file=sys.stderr)
        return 1
    print(f"lint_units: OK ({len(headers)} headers clean, "
          f"allowlist size {len(ALLOWLIST)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
