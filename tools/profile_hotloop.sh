#!/usr/bin/env bash
# Profile the hot-loop benchmark with Linux perf.
#
# Builds the `perf` preset (optimized with frame pointers, so call
# graphs resolve), runs bench/hot_loop under `perf record`, and prints
# the top of the report.  Degrades gracefully when perf is unavailable
# (not installed, or perf_event_paranoid too strict): the benchmark
# still runs and reports steps/sec, just without the profile.
#
# Usage: tools/profile_hotloop.sh [--quick] [extra hot_loop args...]

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
builddir="$repo/build-perf"

cmake --preset perf -S "$repo"
cmake --build --preset perf -j"$(nproc)" --target hot_loop

bench="$builddir/bench/hot_loop"
out="$builddir/perf_hotloop.data"

if ! command -v perf >/dev/null 2>&1; then
    echo "profile_hotloop: 'perf' not found; running unprofiled" >&2
    exec "$bench" "$@"
fi

if ! perf record -o "$out" -g --call-graph fp -- "$bench" "$@"; then
    echo "profile_hotloop: perf record failed (perf_event_paranoid?);" \
         "running unprofiled" >&2
    exec "$bench" "$@"
fi

echo
echo "=== top functions (perf report --stdio, first 40 lines) ==="
perf report -i "$out" --stdio --percent-limit 0.5 | head -40
echo
echo "full profile: perf report -i $out"
