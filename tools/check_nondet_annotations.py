#!/usr/bin/env python3
"""Pin every REACT_NONDET_OK exemption to a checked-in allowlist.

The determinism linter (tools/lint_determinism.py) accepts
``REACT_NONDET_OK("reason")`` as the only way to exempt a line, which
makes the annotation itself the thing to audit: an exemption added
quietly in a large diff is an unreviewed hole in the contract.  This
tool inventories every annotation under ``src/`` as a
``path<TAB>reason`` line and compares the inventory against
``tools/determinism_allowlist.txt``:

* ``--check`` (the default, run by the ``lint-determinism`` target and
  the CI lint job) fails with a diff when the annotations in the tree
  and the checked-in allowlist disagree -- adding, removing, moving, or
  rewording an exemption forces a visible allowlist change in the same
  commit;
* ``--update`` rewrites the allowlist from the tree, for exactly that
  commit.

Line numbers are deliberately not recorded (unrelated edits would churn
the file); the identity of an exemption is where it lives and the
reason it claims.  Reasons must be non-empty string literals -- the
macro enforces that at compile time, this tool re-checks it for
headers/sources a build might not compile.
"""

import argparse
import pathlib
import re
import sys

ANNOTATION_RE = re.compile(
    r'\bREACT_NONDET_OK\s*\(\s*("(?:[^"\\]|\\.)*")\s*\)')
DEFINE_RE = re.compile(r"#\s*define\s+REACT_NONDET_OK\b")


def strip_comments(text: str) -> str:
    """Blank out comments, preserving newlines and string literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " "
                               for c in text[i:j]))
            i = j
        elif text[i] in "\"'":
            quote, j = text[i], i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def inventory(root: pathlib.Path):
    """Return sorted ``path<TAB>reason`` lines for src/ annotations."""
    lines = []
    problems = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".hh", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        text = strip_comments(path.read_text(errors="replace"))
        for lineno, line in enumerate(text.splitlines(), 1):
            if DEFINE_RE.search(line):
                continue  # the macro's own definition
            for m in ANNOTATION_RE.finditer(line):
                reason = m.group(1)[1:-1]
                if not reason.strip():
                    problems.append("%s:%d: empty exemption reason" %
                                    (rel, lineno))
                lines.append("%s\t%s" % (rel, reason))
            # A call the regex cannot see as a string literal is either
            # a macro-built reason or a multi-line call; both defeat the
            # audit, so reject them.
            stripped_hits = len(
                re.findall(r"\bREACT_NONDET_OK\s*\(", line))
            if stripped_hits > len(ANNOTATION_RE.findall(line)):
                problems.append(
                    "%s:%d: REACT_NONDET_OK reason must be a single "
                    "string literal on the same line" % (rel, lineno))
    return sorted(lines), problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="audit REACT_NONDET_OK exemptions against the "
                    "checked-in allowlist")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(
                            __file__).resolve().parent.parent)
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="default: tools/determinism_allowlist.txt")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the allowlist from the tree")
    parser.add_argument("--check", action="store_true",
                        help="compare tree against allowlist (default)")
    args = parser.parse_args()
    root = args.root.resolve()
    allowlist = (args.allowlist or
                 root / "tools" / "determinism_allowlist.txt")

    lines, problems = inventory(root)
    for p in problems:
        print("check_nondet_annotations: %s" % p, file=sys.stderr)
    if problems:
        return 1

    header = [
        "# REACT_NONDET_OK exemption inventory -- one `path<TAB>reason`",
        "# line per annotation under src/.  Regenerate with:",
        "#   python3 tools/check_nondet_annotations.py --update",
        "# CI runs --check: an exemption added, removed, or reworded",
        "# without updating this file fails the lint job, so every",
        "# determinism opt-out is visible in review.",
    ]
    rendered = "\n".join(header + lines) + "\n"

    if args.update:
        allowlist.write_text(rendered)
        print("check_nondet_annotations: wrote %d exemption(s) to %s" %
              (len(lines), allowlist.relative_to(root)))
        return 0

    if not allowlist.is_file():
        print("check_nondet_annotations: %s missing; run with --update"
              % allowlist, file=sys.stderr)
        return 1
    recorded = [l for l in allowlist.read_text().splitlines()
                if l and not l.startswith("#")]
    current = set(lines)
    stale = [l for l in recorded if l not in current]
    fresh = [l for l in lines if l not in set(recorded)]
    if stale or fresh:
        for l in fresh:
            print("check_nondet_annotations: unrecorded exemption: %s"
                  % l.replace("\t", ": "), file=sys.stderr)
        for l in stale:
            print("check_nondet_annotations: allowlist entry no longer "
                  "in tree: %s" % l.replace("\t", ": "),
                  file=sys.stderr)
        print("check_nondet_annotations: allowlist out of date; rerun "
              "with --update and commit the diff", file=sys.stderr)
        return 1
    print("check_nondet_annotations: OK (%d exemption(s) match %s)" %
          (len(lines), allowlist.relative_to(root)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
