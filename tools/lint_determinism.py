#!/usr/bin/env python3
"""Determinism/concurrency linter for the REACT reproduction.

The repo's evaluation contract is *bit-identical results at any thread
count* (enforced at runtime by the parallel_sweep divergence gate) and
*byte-exact golden CSVs*.  Runtime gates only catch a nondeterminism bug
that a bench happens to tickle; this linter bans the sources statically
across ``src/`` so the contract holds by construction:

DET001  wall-clock / entropy source: ``time``, ``clock``,
        ``gettimeofday``, ``clock_gettime``, ``chrono::*_clock::now``
        (including through local ``using Clock = ...`` aliases),
        ``rand``/``srand``/``random``, ``std::random_device``, and any
        ``<random>`` engine (all randomness must flow through the
        explicitly seeded ``react::Rng``).
DET002  iteration over ``std::unordered_map`` / ``std::unordered_set``
        (range-for or ``.begin()`` family): bucket order is a function
        of hashing, insertion history, and pointer values, so anything
        derived from it can leak address-order into results, snapshots,
        wire frames, or checkpoint bytes.
DET003  pointer-keyed ordered containers (``std::map<T*, ...>``,
        ``std::set<T*>``) and ``std::less<T*>``: iteration order is
        allocation order, i.e. nondeterministic across runs.
DET004  mutable global / static-lifetime state (namespace-scope
        variables, non-const ``static`` locals and members): shared
        mutable state is both a data-race surface and a cross-cell
        coupling channel.
DET005  ``thread_local`` outside the approved hot-loop-counter list:
        per-thread state makes results depend on thread placement
        unless it is pure telemetry.
DET006  order-dependent floating-point reduction over an unordered
        container (compound assignment or ``std::accumulate`` driven by
        bucket order): float addition does not commute, so the sum
        depends on hashing.
DET007  horizontal SIMD reductions (``_mm*_hadd_*``, ``_mm*_dp_*``,
        ``_mm512_reduce_*``): they combine vector lanes in an order the
        scalar code never performs, so a lane-engine result that flows
        through one cannot be bit-identical to per-cell stepping.  The
        batch kernels keep every accumulator lane-major and reduce (if
        ever) in the fixed scalar order.

A violating line is exempted only by placing
``REACT_NONDET_OK("reason")`` (src/util/determinism.hh) on the same
line or the line immediately above -- there is deliberately no file- or
block-level opt-out, and tools/check_nondet_annotations.py pins every
annotation into a checked-in allowlist so exemptions cannot be added
silently.

Analysis is token-level over comment/string-stripped sources (the same
approach as lint_units.py), which keeps the linter dependency-free and
byte-stable.  When the ``clang.cindex`` bindings are importable the
linter additionally walks the AST of each translation unit from
``compile_commands.json`` to harvest unordered-container variable names
that the token pass cannot see (``auto`` deductions, cross-header
member types); the token pass remains authoritative, libclang only
widens DET002's net.  ``--no-libclang`` forces the pure token path (the
fixture tests use it so diagnostics are identical on every machine).

Exit status 0 when clean, 1 with ``file:line: [DETnnn]`` reports
otherwise.  Run directly or via
``cmake --build build --target lint-determinism``.
"""

import argparse
import json
import pathlib
import re
import sys

# Variables allowed to be thread_local without annotation: the hot-loop
# telemetry counters.  They are pure per-thread statistics (cache
# hit/miss counts) that never feed simulation state, and making them
# atomics would put contended writes on the 30M-steps/sec path.
APPROVED_THREAD_LOCAL = {
    ("src/sim/hotloop_stats.hh", "tlCounters"),
}

ANNOTATION = "REACT_NONDET_OK"

# Keywords that start a namespace-scope statement we never treat as a
# mutable-global declaration.
NS_SKIP_KEYWORDS = (
    "namespace", "using", "typedef", "template", "friend", "extern",
    "static_assert", "class", "struct", "union", "enum",
    "concept", "asm", "public", "private", "protected", ANNOTATION,
)


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Source:
    """One stripped source file plus offset->line bookkeeping."""

    def __init__(self, path: pathlib.Path, rel: str):
        self.path = path
        self.rel = rel
        raw = path.read_text(errors="replace")
        self.text = strip_comments(raw)
        self.line_starts = [0]
        for m in re.finditer(r"\n", self.text):
            self.line_starts.append(m.end())
        self.suppressed = {
            self.line_of(m.start())
            for m in re.finditer(r"\b%s\s*\(" % ANNOTATION, self.text)
        }

    def line_of(self, offset: int) -> int:
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def is_suppressed(self, line: int) -> bool:
        return line in self.suppressed or (line - 1) in self.suppressed


class Finding:
    def __init__(self, rel, line, check, message):
        self.rel = rel
        self.line = line
        self.check = check
        self.message = message

    def key(self):
        return (self.rel, self.line, self.check)


def match_angle(text: str, open_pos: int):
    """Return offset one past the '>' matching the '<' at open_pos, or -1."""
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Ignore '->' and '>>' handled char-by-char (two closes).
            if i > 0 and text[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # not a template argument list after all
        i += 1
    return -1


def match_brace(text: str, open_pos: int):
    """Return offset one past the '}' matching the '{' at open_pos."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# DET001: wall-clock and entropy sources
# ---------------------------------------------------------------------------

CLOCK_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*;")
CLOCK_NOW_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\s*\(")
C_TIME_RE = re.compile(
    r"(?<![\w.>:])((?:std\s*::\s*)?"
    r"(?:gettimeofday|clock_gettime|timespec_get|ftime|time|clock|"
    r"localtime|gmtime|mktime))\s*\(")
ENTROPY_RE = re.compile(
    r"(?<![\w.>:])((?:std\s*::\s*)?"
    r"(?:rand|srand|rand_r|drand48|lrand48|random|getrandom|"
    r"__rdtsc|rdtsc))\s*\(")
STD_ENGINE_RE = re.compile(
    r"\bstd\s*::\s*(mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|ranlux24(?:_base)?|ranlux48(?:_base)?|"
    r"knuth_b|random_device)\b")


def check_det001(src: Source, findings):
    aliases = [m.group(1) for m in CLOCK_ALIAS_RE.finditer(src.text)]
    for m in CLOCK_NOW_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET001",
            "wall-clock read (chrono clock ::now); simulation time must "
            "come from the engine, wall time only from annotated sites"))
    for alias in aliases:
        alias_now = re.compile(r"\b%s\s*::\s*now\s*\(" % re.escape(alias))
        for m in alias_now.finditer(src.text):
            findings.append(Finding(
                src.rel, src.line_of(m.start()), "DET001",
                "wall-clock read (%s::now aliases a chrono clock)"
                % alias))
    for m in C_TIME_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET001",
            "wall-clock call %s()" % m.group(1).replace(" ", "")))
    for m in ENTROPY_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET001",
            "entropy source %s(); use a seeded react::Rng stream"
            % m.group(1).replace(" ", "")))
    for m in STD_ENGINE_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET001",
            "std::%s: <random> engines are banned (seed-stability across "
            "libstdc++ versions); use react::Rng" % m.group(1)))


# ---------------------------------------------------------------------------
# DET002 / DET006: unordered-container iteration and float reductions
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(unordered_(?:map|set|multimap|multiset))\s*<")
USING_HEAD_RE = re.compile(r"using\s+(\w+)\s*=\s*$")
IDENT_AFTER_RE = re.compile(r"\s*(?:&|\*)?\s*([A-Za-z_]\w*)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
# Iteration *entry points* only: `x.end()` alone is the deterministic
# `find() == end()` lookup idiom, so it does not flag.
BEGIN_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\(")
ACCUMULATE_RE = re.compile(
    r"\baccumulate\s*\(\s*([A-Za-z_]\w*)\s*\.\s*c?begin")
COMPOUND_ASSIGN_RE = re.compile(r"[A-Za-z_)\]]\s*[-+*/]=[^=]")


def harvest_unordered_names(text: str):
    """Names of variables (and type aliases) of unordered container type.

    Returns (var_names, alias_types).  Token-level: catches direct
    declarations and one level of `using Alias = std::unordered_map<...>`
    indirection within the provided text.
    """
    var_names, alias_types = set(), set()
    for m in UNORDERED_DECL_RE.finditer(text):
        open_angle = text.find("<", m.end() - 1)
        close = match_angle(text, open_angle)
        if close < 0:
            continue
        head = text[max(0, m.start() - 48):m.start()]
        using = USING_HEAD_RE.search(head)
        ident = IDENT_AFTER_RE.match(text, close)
        if using:
            alias_types.add(using.group(1))
        elif ident:
            var_names.add(ident.group(1))
    for alias in alias_types:
        for m in re.finditer(r"\b%s\s+([A-Za-z_]\w*)\s*[;={]"
                             % re.escape(alias), text):
            var_names.add(m.group(1))
    return var_names, alias_types


def check_det002_det006(src: Source, extra_names, findings):
    var_names, _aliases = harvest_unordered_names(src.text)
    var_names |= extra_names

    def flag_iteration(pos, what):
        findings.append(Finding(
            src.rel, src.line_of(pos), "DET002",
            "iteration over unordered container %s: bucket order leaks "
            "hashing/address order; use an ordered container, sort a "
            "key vector first, or annotate an order-independent use"
            % what))

    # Range-for loops: `for (decl : range)`.
    for m in RANGE_FOR_RE.finditer(src.text):
        open_paren = m.end() - 1
        depth, i = 0, open_paren
        colon = -1
        while i < len(src.text):
            c = src.text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == ":" and depth == 1:
                if src.text[i - 1] != ":" and \
                        src.text[i + 1:i + 2] != ":":
                    colon = i
            i += 1
        if colon < 0 or i >= len(src.text):
            continue
        range_expr = src.text[colon + 1:i]
        idents = re.findall(r"[A-Za-z_]\w*", range_expr)
        over_unordered = ("unordered_" in range_expr or
                          (idents and idents[-1] in var_names))
        if not over_unordered:
            continue
        flag_iteration(m.start(), "'%s'" % " ".join(range_expr.split()))
        # DET006: order-dependent reductions inside the loop body.
        body_start = i + 1
        while body_start < len(src.text) and \
                src.text[body_start] in " \t\n":
            body_start += 1
        if body_start < len(src.text) and src.text[body_start] == "{":
            body_end = match_brace(src.text, body_start)
        else:
            body_end = src.text.find(";", body_start) + 1
        body = src.text[body_start:body_end]
        for am in COMPOUND_ASSIGN_RE.finditer(body):
            findings.append(Finding(
                src.rel, src.line_of(body_start + am.start()), "DET006",
                "compound accumulation inside unordered iteration: for "
                "floating-point accumulators the result depends on "
                "bucket order (float addition does not commute)"))

    # Explicit iterator walks: jobs.begin() / jobs.cbegin() etc.
    seen = set()
    for m in BEGIN_CALL_RE.finditer(src.text):
        if m.group(1) in var_names:
            line = src.line_of(m.start())
            if (line, m.group(1)) not in seen:
                seen.add((line, m.group(1)))
                flag_iteration(m.start(), "'%s'" % m.group(1))
    for m in ACCUMULATE_RE.finditer(src.text):
        if m.group(1) in var_names:
            findings.append(Finding(
                src.rel, src.line_of(m.start()), "DET006",
                "std::accumulate over unordered container '%s': "
                "bucket-order-dependent reduction" % m.group(1)))


# ---------------------------------------------------------------------------
# DET003: pointer-keyed ordering
# ---------------------------------------------------------------------------

ORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
PTR_LESS_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>")


def check_det003(src: Source, findings):
    for m in ORDERED_DECL_RE.finditer(src.text):
        open_angle = src.text.find("<", m.end() - 1)
        close = match_angle(src.text, open_angle)
        if close < 0:
            continue
        args = src.text[open_angle + 1:close - 1]
        depth, cut = 0, len(args)
        for i, c in enumerate(args):
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            elif c == "," and depth == 0:
                cut = i
                break
        key_arg = args[:cut]
        if "*" in key_arg:
            findings.append(Finding(
                src.rel, src.line_of(m.start()), "DET003",
                "std::%s keyed by a pointer: iteration order is "
                "allocation order; key by a stable id instead"
                % m.group(1)))
    for m in PTR_LESS_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET003",
            "std::less over a pointer type orders by address"))


# ---------------------------------------------------------------------------
# DET004 / DET005: mutable static-lifetime state and thread_local
# ---------------------------------------------------------------------------

NS_HEAD_RE = re.compile(r"(?:^|[;{}\s])namespace(\s+[\w:]+)?\s*$")
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct|union|enum(?:\s+(?:class|struct))?)\b"
    r"[^;{}()]*$")
BLOCK_TAIL_RE = re.compile(
    r"(?:\)|\belse\b|\bdo\b|\btry\b)\s*"
    r"(?:const|noexcept|override|final|mutable|->\s*[\w:<>,\s*&\[\]]+)*"
    r"\s*$")


def classify_brace(text: str, pos: int) -> str:
    """Classify the '{' at pos as ns / class / block / init."""
    head_start = max(0, pos - 240)
    head = text[head_start:pos]
    for stop in ";{}":
        cut = head.rfind(stop)
        if cut >= 0:
            head = head[cut + 1:]
    if NS_HEAD_RE.search(" " + head):
        return "ns"
    if BLOCK_TAIL_RE.search(head):
        return "block"
    if CLASS_HEAD_RE.search(head):
        return "class"
    stripped = head.rstrip()
    if stripped.endswith(("=", ",", "(", "{", "return")):
        return "init"
    if re.search(r"[\w>\]]\s*$", head):
        return "init"  # braced initializer of a declaration
    return "block"


def iter_ns_statements(text: str):
    """Yield (start_offset, statement_text) at pure namespace scope."""
    stack = []
    stmt_start = 0
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "{":
            kind = classify_brace(text, i)
            at_ns = all(k == "ns" for k in stack)
            if kind == "init" and at_ns:
                # Part of a declaration's initializer: skip the group,
                # the statement continues to the ';'.
                i = match_brace(text, i)
                continue
            if at_ns and kind != "ns":
                # A class/function body opens: the head (up to here) is
                # a complete-enough statement for our classification.
                yield stmt_start, text[stmt_start:i] + " {"
            stack.append(kind)
            if kind == "ns":
                stmt_start = i + 1
            i += 1
            continue
        if c == "}":
            if stack:
                stack.pop()
            if all(k == "ns" for k in stack):
                stmt_start = i + 1
            i += 1
            continue
        if c == ";" and all(k == "ns" for k in stack):
            yield stmt_start, text[stmt_start:i + 1]
            stmt_start = i + 1
        i += 1


DECL_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$")


def decl_name(head: str) -> str:
    m = DECL_NAME_RE.search(head)
    return m.group(1) if m else "<unnamed>"


def is_function_like(stmt: str) -> bool:
    """True when the first structural token makes this a function."""
    for i, c in enumerate(stmt):
        if c == "(":
            return True
        if c in "={;":
            return False
    return False


def check_det004_det005(src: Source, findings):
    text = src.text

    # thread_local anywhere (DET005).
    for m in re.finditer(r"\bthread_local\b", text):
        end = text.find(";", m.end())
        decl = text[m.end():end if end > 0 else m.end() + 200]
        head = re.split(r"[={]", decl, maxsplit=1)[0]
        name = decl_name(head)
        if (src.rel, name) in APPROVED_THREAD_LOCAL:
            continue
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET005",
            "thread_local '%s' is not on the approved hot-loop-counter "
            "list: per-thread state makes results depend on thread "
            "placement" % name))

    # Namespace-scope declarations (DET004): mutable globals.
    for start, stmt in iter_ns_statements(text):
        s = stmt.strip()
        if not s or s.startswith("#") or s.startswith("["):
            continue
        # `inline int x = 0;` is still a mutable global; only the
        # keyword *after* inline decides (`inline namespace` skips).
        s = re.sub(r"^(?:inline\s+)+", "", s)
        first_word = re.match(r"[A-Za-z_]\w*", s)
        if not first_word:
            continue
        if first_word.group(0) in NS_SKIP_KEYWORDS:
            continue
        if s.startswith("static"):
            pass  # handled below with block/class statics
        if re.search(r"\b(const|constexpr)\b", s):
            continue
        if "thread_local" in s:
            continue  # DET005 owns it
        if is_function_like(s):
            continue
        if s.endswith("{"):
            continue  # type/namespace body head that slipped through
        head = re.split(r"[={]", s, maxsplit=1)[0]
        name = decl_name(head.rstrip("; \t\n"))
        if name == "<unnamed>":
            continue
        findings.append(Finding(
            src.rel, src.line_of(start + len(stmt) - len(stmt.lstrip())),
            "DET004",
            "mutable namespace-scope state '%s': shared mutable globals "
            "are a race surface and couple independent cells; make it "
            "const, pass it explicitly, or annotate" % name))

    # static locals / members (DET004).  Namespace-scope `static` vars
    # are already covered by the pass above (the keyword does not change
    # the classification), so restrict to scopes below namespace level
    # by checking the statement does not begin a ns-scope statement --
    # cheaper: skip offsets the ns pass already flagged.
    ns_flagged_lines = {
        f.line for f in findings
        if f.rel == src.rel and f.check == "DET004"
    }
    for m in re.finditer(r"\bstatic\b(?!_assert|_cast)", text):
        end = min(x for x in (text.find(";", m.end()),
                              text.find("{", m.end()),
                              len(text)) if x >= 0)
        decl = text[m.end():end].strip()
        if not decl:
            continue
        if re.search(r"\b(const|constexpr)\b", decl):
            continue
        if "thread_local" in decl:
            continue
        if is_function_like(decl):
            continue
        line = src.line_of(m.start())
        if line in ns_flagged_lines:
            continue
        findings.append(Finding(
            src.rel, line, "DET004",
            "mutable static '%s': static-lifetime mutable state is a "
            "race surface and couples independent cells; make it "
            "const, move it into the owning object, or annotate"
            % decl_name(re.split(r"[={]", decl, maxsplit=1)[0])))


# ---------------------------------------------------------------------------
# DET007: horizontal SIMD reductions
# ---------------------------------------------------------------------------

HORIZONTAL_SIMD_RE = re.compile(
    r"\b(_mm(?:256|512)?_"
    r"(?:hadd_\w+|hsub_\w+|dp_p[sd]|reduce_(?:add|mul|min|max)_\w+))"
    r"\s*\(")


def check_det007(src: Source, findings):
    for m in HORIZONTAL_SIMD_RE.finditer(src.text):
        findings.append(Finding(
            src.rel, src.line_of(m.start()), "DET007",
            "horizontal SIMD reduction %s(): combines lanes in an order "
            "the scalar code never performs, breaking the lane engine's "
            "bit-identity contract; keep accumulators lane-major and "
            "reduce in the fixed scalar order" % m.group(1)))


# ---------------------------------------------------------------------------
# Optional libclang widening of DET002's variable set
# ---------------------------------------------------------------------------

def libclang_unordered_names(compdb_dir, rel_to_path):
    """Map rel path -> extra unordered-typed variable names, via the AST.

    Best-effort: any failure (missing bindings, missing libclang.so,
    parse errors) degrades to the token-level set with a notice.
    """
    try:
        from clang import cindex
    except ImportError:
        return {}
    try:
        index = cindex.Index.create()
        db = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
    except Exception as e:  # noqa: BLE001 - degrade, never fail the lint
        print("lint_determinism: libclang unavailable (%s); "
              "token-level analysis only" % e, file=sys.stderr)
        return {}
    extra = {}
    for rel, path in rel_to_path.items():
        if not rel.endswith(".cc"):
            continue
        try:
            cmds = db.getCompileCommands(str(path))
            if not cmds:
                continue
            args = [a for a in list(cmds[0].arguments)[1:-1]
                    if a not in ("-c", "-o")]
            tu = index.parse(str(path), args=args)
            names = set()
            for cur in tu.cursor.walk_preorder():
                if cur.kind in (cindex.CursorKind.VAR_DECL,
                                cindex.CursorKind.FIELD_DECL):
                    if "unordered_" in cur.type.spelling:
                        names.add(cur.spelling)
            if names:
                extra[rel] = names
        except Exception:  # noqa: BLE001
            continue
    return extra


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root, compdb, explicit_paths):
    """Return list of (path, rel) to lint."""
    if explicit_paths:
        out = []
        for p in explicit_paths:
            p = pathlib.Path(p).resolve()
            try:
                rel = p.relative_to(root).as_posix()
            except ValueError:
                rel = p.name
            out.append((p, rel))
        return out
    src_dir = root / "src"
    headers = sorted(src_dir.rglob("*.hh"))
    sources = sorted(src_dir.rglob("*.cc"))
    if compdb:
        try:
            entries = json.loads(pathlib.Path(compdb).read_text())
            listed = {str(pathlib.Path(e["file"]).resolve())
                      for e in entries}
            in_db = [p for p in sources if str(p.resolve()) in listed]
            if in_db:
                sources = in_db
        except (OSError, ValueError, KeyError) as e:
            print("lint_determinism: cannot read %s (%s); linting all "
                  "of src/" % (compdb, e), file=sys.stderr)
    return [(p, p.relative_to(root).as_posix())
            for p in headers + sources]


INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')


def sibling_unordered_names(src: Source, root: pathlib.Path):
    """Harvest unordered var names from directly included project headers.

    Members declared in a .hh and iterated in the .cc are the common
    split; one level of include-following covers it without building a
    real include graph.
    """
    names = set()
    raw = src.path.read_text(errors="replace")
    for m in INCLUDE_RE.finditer(raw):
        for base in (root / "src", src.path.parent):
            header = base / m.group(1)
            if header.is_file():
                text = strip_comments(header.read_text(errors="replace"))
                got, _aliases = harvest_unordered_names(text)
                names |= got
                break
    return names


def main() -> int:
    parser = argparse.ArgumentParser(
        description="determinism/concurrency linter (see module docstring)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(
                            __file__).resolve().parent.parent,
                        help="repository root (default: ../ from this file)")
    parser.add_argument("--compdb", type=pathlib.Path, default=None,
                        help="compile_commands.json restricting the .cc "
                             "set to built translation units")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="lint exactly these files (fixture mode)")
    parser.add_argument("--no-libclang", action="store_true",
                        help="skip the optional libclang AST pass")
    args = parser.parse_args()
    root = args.root.resolve()

    files = collect_files(root, args.compdb, args.paths)
    if not files:
        print("lint_determinism: no files to lint under %s" % root,
              file=sys.stderr)
        return 1

    sources = [Source(path, rel) for path, rel in files]

    extra_by_rel = {}
    if not args.no_libclang and args.compdb:
        extra_by_rel = libclang_unordered_names(
            args.compdb.parent, {s.rel: s.path for s in sources})

    all_findings = []
    annotated = 0
    for src in sources:
        findings = []
        check_det001(src, findings)
        extra = set(extra_by_rel.get(src.rel, set()))
        if not args.paths:
            extra |= sibling_unordered_names(src, root)
        check_det002_det006(src, extra, findings)
        check_det003(src, findings)
        check_det004_det005(src, findings)
        check_det007(src, findings)
        for f in findings:
            if src.is_suppressed(f.line):
                annotated += 1
            else:
                all_findings.append(f)

    unique = {}
    for f in all_findings:
        unique.setdefault(f.key(), f)
    ordered = sorted(unique.values(), key=Finding.key)
    for f in ordered:
        print("%s:%d: [%s] %s" % (f.rel, f.line, f.check, f.message),
              file=sys.stderr)
    if ordered:
        print("lint_determinism: %d violation(s) in %d files "
              "(annotate with REACT_NONDET_OK(\"reason\") only after "
              "confirming the value never feeds result/snapshot/wire "
              "bytes)" % (len(ordered), len(sources)), file=sys.stderr)
        return 1
    print("lint_determinism: OK (%d files clean, %d annotated "
          "exemption(s))" % (len(sources), annotated))
    return 0


if __name__ == "__main__":
    sys.exit(main())
