/**
 * @file
 * react-cli -- client for the reactd experiment server.
 *
 *     react-cli [options] ping
 *     react-cli [options] run BENCH TRACE BUFFER
 *     react-cli [options] sweep [--bench B] [--trace T] [--buffer K]
 *     react-cli [options] drain
 *
 * options:
 *     --endpoint URI   server endpoint: unix:/path or tcp:host:port
 *                      (default unix:/tmp/reactd.sock)
 *     --socket PATH    alias for --endpoint unix:PATH
 *     --key STR        fleet auth key (overrides REACT_FLEET_KEY /
 *                      REACT_FLEET_KEY_FILE)
 *     --timeout MS     per-request timeout
 *     --retries N      transient failures tolerated per job
 *     --seed N         base seed for submitted cells
 *     --deadline S     queue-wait deadline per job, seconds
 *     --faults SPEC    transport fault plan, e.g.
 *                      "drop=0.05,corrupt=0.05,seed=7"
 *
 * Names are the paper's display names ("DE", "RF Cart", "REACT", ...);
 * an unknown name lists the valid ones.  `run` prints one result,
 * `sweep` a table over the (filtered) evaluation grid; retries are
 * idempotent so a flaky transport can slow a sweep but never corrupt it.
 *
 * Exit codes (scripts and the soak harness branch on these):
 *     0  success
 *     1  the job itself failed on the server
 *     2  usage error (bad flags, unknown cell name)
 *     4  transport failure (cannot reach / keep a session to the server)
 *     5  the job's queue-wait deadline expired on the server
 *     6  the server rejected the session (failed auth handshake,
 *        protocol version mismatch)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/grid.hh"
#include "harness/paper_setup.hh"
#include "net/auth.hh"
#include "net/client.hh"
#include "trace/paper_traces.hh"

namespace {

using react::harness::BenchmarkKind;
using react::harness::BufferKind;
using react::trace::PaperTrace;

// Exit codes; keep in sync with the file comment.
constexpr int kExitOk = 0;
constexpr int kExitJobFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitTransport = 4;
constexpr int kExitDeadline = 5;
constexpr int kExitRejected = 6;

/** Map a client error to the documented exit code. */
int
exitCodeFor(const react::net::ClientError &e)
{
    switch (e.kind) {
    case react::net::ClientError::Kind::DeadlineExpired:
        return kExitDeadline;
    case react::net::ClientError::Kind::Rejected:
        return kExitRejected;
    case react::net::ClientError::Kind::JobFailed:
        return kExitJobFailed;
    case react::net::ClientError::Kind::Transport:
        break;
    }
    return kExitTransport;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--endpoint URI] [--socket PATH] [--key STR]\n"
        "          [--timeout MS] [--retries N]\n"
        "          [--seed N] [--deadline S] [--faults SPEC]\n"
        "          ping | run BENCH TRACE BUFFER |\n"
        "          sweep [--bench B] [--trace T] [--buffer K] | drain\n",
        argv0);
}

void
listNames()
{
    std::fprintf(stderr, "  benchmarks:");
    for (const auto kind : react::harness::kAllBenchmarks)
        std::fprintf(stderr, " '%s'",
                     react::harness::benchmarkKindName(kind).c_str());
    std::fprintf(stderr, "\n  traces:");
    for (const auto kind : react::trace::kAllPaperTraces)
        std::fprintf(stderr, " '%s'",
                     react::trace::paperTraceName(kind).c_str());
    std::fprintf(stderr, "\n  buffers:");
    for (const auto kind : react::harness::kAllBuffers)
        std::fprintf(stderr, " '%s'",
                     react::harness::bufferKindName(kind).c_str());
    std::fprintf(stderr, "\n");
}

void
printResult(const react::net::JobOutcome &outcome)
{
    const react::harness::ExperimentResult &res = outcome.result;
    std::printf("cell:           %s:%s:%s\n", res.benchmarkName.c_str(),
                res.traceName.c_str(), res.bufferName.c_str());
    std::printf("job id:         %016llx\n",
                static_cast<unsigned long long>(outcome.jobId));
    if (res.latency >= 0.0)
        std::printf("latency:        %.3f s\n", res.latency);
    else
        std::printf("latency:        - (never started)\n");
    std::printf("on time:        %.3f s of %.3f s (duty %.1f%%)\n",
                res.onTime, res.totalTime, 100.0 * res.dutyCycle());
    std::printf("power cycles:   %llu\n",
                static_cast<unsigned long long>(res.powerCycles));
    std::printf("work units:     %llu\n",
                static_cast<unsigned long long>(res.workUnits));
    std::printf("state digest:   %08x\n", res.stateDigest);
}

int
runSweep(react::net::Client *client, const react::net::JobSpec &base,
         const std::string &bench_filter, const std::string &trace_filter,
         const std::string &buffer_filter)
{
    std::printf("%-5s %-10s %-9s %10s %10s %8s %10s\n", "bench", "trace",
                "buffer", "latency", "on time", "duty%", "digest");
    int failures = 0;
    for (const auto bench : react::harness::kAllBenchmarks) {
        const std::string bench_name =
            react::harness::benchmarkKindName(bench);
        if (!bench_filter.empty() && bench_filter != bench_name)
            continue;
        for (const auto trace : react::trace::kAllPaperTraces) {
            const std::string trace_name =
                react::trace::paperTraceName(trace);
            if (!trace_filter.empty() && trace_filter != trace_name)
                continue;
            for (const auto buffer : react::harness::kAllBuffers) {
                const std::string buffer_name =
                    react::harness::bufferKindName(buffer);
                if (!buffer_filter.empty() &&
                    buffer_filter != buffer_name)
                    continue;
                react::net::JobSpec spec = base;
                spec.bench = bench;
                spec.trace = trace;
                spec.buffer = buffer;
                try {
                    const react::net::JobOutcome outcome =
                        client->runJob(spec);
                    const auto &res = outcome.result;
                    std::printf(
                        "%-5s %-10s %-9s %10.3f %10.3f %8.1f   %08x\n",
                        bench_name.c_str(), trace_name.c_str(),
                        buffer_name.c_str(), res.latency, res.onTime,
                        100.0 * res.dutyCycle(), res.stateDigest);
                } catch (const react::net::ClientError &e) {
                    ++failures;
                    std::printf("%-5s %-10s %-9s  FAILED: %s\n",
                                bench_name.c_str(), trace_name.c_str(),
                                buffer_name.c_str(), e.what());
                }
                std::fflush(stdout);
            }
        }
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    react::net::ClientConfig config;
    react::net::JobSpec base_spec;
    std::vector<std::string> positional;
    std::string bench_filter, trace_filter, buffer_filter;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            listNames();
            return 0;
        } else if (arg == "--socket" && value) {
            config.endpoint = std::string("unix:") + value;
            ++i;
        } else if (arg == "--endpoint" && value) {
            config.endpoint = value;
            ++i;
        } else if (arg == "--key" && value) {
            config.fleetKey.assign(value, value + std::strlen(value));
            ++i;
        } else if (arg == "--timeout" && value) {
            config.requestTimeoutMs = std::atoi(value);
            ++i;
        } else if (arg == "--retries" && value) {
            config.retry.maxRetries = std::atoi(value);
            ++i;
        } else if (arg == "--seed" && value) {
            base_spec.baseSeed =
                static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
            ++i;
        } else if (arg == "--deadline" && value) {
            base_spec.deadlineSeconds = std::atof(value);
            ++i;
        } else if (arg == "--faults" && value) {
            std::string error;
            if (!react::net::FaultPlan::fromSpec(value, &config.faults,
                                                 &error)) {
                std::fprintf(stderr, "react-cli: bad --faults: %s\n",
                             error.c_str());
                return 2;
            }
            ++i;
        } else if (arg == "--bench" && value) {
            bench_filter = value;
            ++i;
        } else if (arg == "--trace" && value) {
            trace_filter = value;
            ++i;
        } else if (arg == "--buffer" && value) {
            buffer_filter = value;
            ++i;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "react-cli: bad argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }

    if (positional.empty()) {
        usage(argv[0]);
        return kExitUsage;
    }
    if (config.fleetKey.empty()) {
        try {
            if (const auto key = react::net::loadFleetKey())
                config.fleetKey = *key;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "react-cli: %s\n", e.what());
            return kExitUsage;
        }
    }
    const std::string &command = positional[0];
    react::net::Client client(config);

    try {
        if (command == "ping") {
            if (!client.ping()) {
                std::fprintf(stderr, "react-cli: no pong from %s\n",
                             config.endpoint.c_str());
                return kExitTransport;
            }
            std::printf("pong from %s\n", config.endpoint.c_str());
            return kExitOk;
        }
        if (command == "drain") {
            const uint32_t in_flight = client.drain();
            std::printf("draining; %u job(s) in flight\n", in_flight);
            return kExitOk;
        }
        if (command == "run") {
            if (positional.size() != 4) {
                usage(argv[0]);
                return kExitUsage;
            }
            react::net::JobSpec spec = base_spec;
            if (!react::harness::parseBenchmarkKind(positional[1],
                                                    &spec.bench) ||
                !react::harness::parsePaperTrace(positional[2],
                                                 &spec.trace) ||
                !react::harness::parseBufferKind(positional[3],
                                                 &spec.buffer)) {
                std::fprintf(stderr, "react-cli: unknown cell name\n");
                listNames();
                return kExitUsage;
            }
            printResult(client.runJob(spec));
            return kExitOk;
        }
        if (command == "sweep") {
            return runSweep(&client, base_spec, bench_filter,
                            trace_filter, buffer_filter);
        }
    } catch (const react::net::ClientError &e) {
        std::fprintf(stderr, "react-cli: %s\n", e.what());
        return exitCodeFor(e);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "react-cli: %s\n", e.what());
        return kExitTransport;
    }

    std::fprintf(stderr, "react-cli: unknown command '%s'\n",
                 command.c_str());
    usage(argv[0]);
    return kExitUsage;
}
