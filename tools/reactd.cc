/**
 * @file
 * reactd -- the experiment server daemon, and fleet coordinator.
 *
 * Server mode (default):
 *
 *     reactd [--endpoint URI] [--threads N] [--checkpoint-dir DIR]
 *            [--checkpoint-interval STEPS] [--idle-timeout-ms MS]
 *
 * Flags override the REACTD_* environment (see ServerConfig::fromEnv).
 * `--socket PATH` survives as an alias for `--endpoint unix:PATH`.
 * SIGTERM/SIGINT begin a graceful drain: in-flight cells finish (writing
 * their checkpoints when a checkpoint dir is set) and the process exits 0.
 *
 * Coordinator mode:
 *
 *     reactd --coordinate --worker URI [--worker URI ...]
 *            [--out FILE] [--shards N] [--lease-ms MS]
 *            [--heartbeat-ms MS] [--timeout MS] [--retries N]
 *            [--seed N] [--deadline S] [--faults SPEC]
 *
 * Shards the full evaluation grid across the worker daemons with
 * lease-based ownership (net/fleet.hh): a worker that stops renewing
 * its lease loses the shard, which is re-dispatched.  The merged
 * result (canonical encodeFleetOutput bytes) goes to --out; exit 0
 * iff every cell completed.  REACT_FLEET_KEY / REACT_FLEET_KEY_FILE
 * provide the pre-shared auth key; REACT_FLEET_LEASE_MS,
 * REACT_FLEET_HEARTBEAT_MS, and REACT_FLEET_SHARDS are flag defaults.
 */

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/grid.hh"
#include "harness/paper_setup.hh"
#include "net/auth.hh"
#include "net/fleet.hh"
#include "net/server.hh"
#include "trace/paper_traces.hh"
#include "util/env.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--endpoint URI] [--socket PATH] [--threads N]\n"
        "          [--checkpoint-dir DIR] [--checkpoint-interval STEPS]\n"
        "          [--idle-timeout-ms MS]\n"
        "       %s --coordinate --worker URI [--worker URI ...]\n"
        "          [--out FILE] [--shards N] [--lease-ms MS]\n"
        "          [--heartbeat-ms MS] [--timeout MS] [--retries N]\n"
        "          [--seed N] [--deadline S] [--faults SPEC]\n",
        argv0, argv0);
}

bool
parseLong(const char *text, long lo, long hi, long *out)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

/** The full evaluation grid as job specs, in enumeration order. */
std::vector<react::net::JobSpec>
gridJobs(uint64_t base_seed, double deadline_seconds)
{
    std::vector<react::net::JobSpec> jobs;
    for (const auto bench : react::harness::kAllBenchmarks)
        for (const auto trace : react::trace::kAllPaperTraces)
            for (const auto buffer : react::harness::kAllBuffers) {
                react::net::JobSpec spec;
                spec.bench = bench;
                spec.trace = trace;
                spec.buffer = buffer;
                spec.baseSeed = base_seed;
                spec.deadlineSeconds = deadline_seconds;
                jobs.push_back(spec);
            }
    return jobs;
}

int
coordinate(const react::net::FleetConfig &config,
           const std::vector<react::net::JobSpec> &jobs,
           const std::string &out_path)
{
    const react::net::FleetResult result =
        react::net::runFleetSweep(jobs, config);

    if (!out_path.empty()) {
        const std::vector<uint8_t> merged =
            react::net::encodeFleetOutput(result);
        std::FILE *f = std::fopen(out_path.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "reactd: cannot write '%s': %s\n",
                         out_path.c_str(), std::strerror(errno));
            return 1;
        }
        const size_t wrote =
            std::fwrite(merged.data(), 1, merged.size(), f);
        const bool ok = wrote == merged.size() && std::fclose(f) == 0;
        if (!ok) {
            std::fprintf(stderr, "reactd: short write to '%s'\n",
                         out_path.c_str());
            return 1;
        }
    }

    for (const auto &job : result.jobs)
        if (!job.ok)
            std::fprintf(stderr, "reactd: job %016llx failed: %s\n",
                         static_cast<unsigned long long>(job.jobId),
                         job.error.c_str());
    if (result.stats.byteMismatches != 0) {
        std::fprintf(stderr,
                     "reactd: %llu duplicate result(s) with mismatched "
                     "bytes -- determinism violation\n",
                     static_cast<unsigned long long>(
                         result.stats.byteMismatches));
        return 1;
    }
    return result.complete ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    react::net::ServerConfig config = react::net::ServerConfig::fromEnv();
    react::net::FleetConfig fleet;
    fleet.applyEnv();
    bool coordinate_mode = false;
    std::string out_path;
    uint64_t base_seed = react::harness::kEvaluationSeed;
    double deadline_seconds = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        long parsed = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket" && value) {
            config.endpoint = std::string("unix:") + value;
            ++i;
        } else if (arg == "--endpoint" && value) {
            config.endpoint = value;
            ++i;
        } else if (arg == "--threads" && value &&
                   parseLong(value, 1, 1 << 16, &parsed)) {
            config.threads = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--checkpoint-dir" && value) {
            config.checkpointDir = value;
            ++i;
        } else if (arg == "--checkpoint-interval" && value &&
                   parseLong(value, 1, LONG_MAX, &parsed)) {
            config.checkpointIntervalSteps =
                static_cast<uint64_t>(parsed);
            ++i;
        } else if (arg == "--idle-timeout-ms" && value &&
                   parseLong(value, 1, 1 << 30, &parsed)) {
            config.idleTimeoutMs = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--coordinate") {
            coordinate_mode = true;
        } else if (arg == "--worker" && value) {
            fleet.workers.push_back(value);
            ++i;
        } else if (arg == "--out" && value) {
            out_path = value;
            ++i;
        } else if (arg == "--shards" && value &&
                   parseLong(value, 1, 1 << 20, &parsed)) {
            fleet.shardCount = static_cast<size_t>(parsed);
            ++i;
        } else if (arg == "--lease-ms" && value &&
                   parseLong(value, 10, 1 << 30, &parsed)) {
            fleet.leaseMs = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--heartbeat-ms" && value &&
                   parseLong(value, 1, 1 << 30, &parsed)) {
            fleet.heartbeatMs = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--timeout" && value &&
                   parseLong(value, 1, 1 << 30, &parsed)) {
            fleet.requestTimeoutMs = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--retries" && value &&
                   parseLong(value, 0, 1 << 20, &parsed)) {
            fleet.retry.maxRetries = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--seed" && value) {
            base_seed =
                static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
            ++i;
        } else if (arg == "--deadline" && value) {
            deadline_seconds = std::atof(value);
            ++i;
        } else if (arg == "--faults" && value) {
            std::string error;
            if (!react::net::FaultPlan::fromSpec(value, &fleet.faults,
                                                 &error)) {
                std::fprintf(stderr, "reactd: bad --faults: %s\n",
                             error.c_str());
                return 2;
            }
            ++i;
        } else {
            std::fprintf(stderr, "reactd: bad argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (coordinate_mode) {
        if (fleet.workers.empty()) {
            std::fprintf(stderr,
                         "reactd: --coordinate needs --worker URIs\n");
            usage(argv[0]);
            return 2;
        }
        try {
            if (const auto key = react::net::loadFleetKey())
                fleet.fleetKey = *key;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "reactd: %s\n", e.what());
            return 2;
        }
        return coordinate(fleet, gridJobs(base_seed, deadline_seconds),
                          out_path);
    }

    react::net::Server server(config);
    react::net::Server::installSignalHandlers(&server);
    const int status = server.serve();
    react::net::Server::installSignalHandlers(nullptr);
    return status;
}
