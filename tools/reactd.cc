/**
 * @file
 * reactd -- the experiment server daemon.
 *
 *     reactd [--socket PATH] [--threads N] [--checkpoint-dir DIR]
 *            [--checkpoint-interval STEPS] [--idle-timeout-ms MS]
 *
 * Flags override the REACTD_* environment (see ServerConfig::fromEnv).
 * SIGTERM/SIGINT begin a graceful drain: in-flight cells finish (writing
 * their checkpoints when a checkpoint dir is set) and the process exits 0.
 */

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.hh"
#include "util/env.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--threads N]\n"
                 "          [--checkpoint-dir DIR] "
                 "[--checkpoint-interval STEPS]\n"
                 "          [--idle-timeout-ms MS]\n",
                 argv0);
}

bool
parseLong(const char *text, long lo, long hi, long *out)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    react::net::ServerConfig config = react::net::ServerConfig::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        long parsed = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--socket" && value) {
            config.socketPath = value;
            ++i;
        } else if (arg == "--threads" && value &&
                   parseLong(value, 1, 1 << 16, &parsed)) {
            config.threads = static_cast<int>(parsed);
            ++i;
        } else if (arg == "--checkpoint-dir" && value) {
            config.checkpointDir = value;
            ++i;
        } else if (arg == "--checkpoint-interval" && value &&
                   parseLong(value, 1, LONG_MAX, &parsed)) {
            config.checkpointIntervalSteps =
                static_cast<uint64_t>(parsed);
            ++i;
        } else if (arg == "--idle-timeout-ms" && value &&
                   parseLong(value, 1, 1 << 30, &parsed)) {
            config.idleTimeoutMs = static_cast<int>(parsed);
            ++i;
        } else {
            std::fprintf(stderr, "reactd: bad argument '%s'\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    react::net::Server server(config);
    react::net::Server::installSignalHandlers(&server);
    const int status = server.serve();
    react::net::Server::installSignalHandlers(nullptr);
    return status;
}
