/**
 * @file
 * Transport framing: length-prefixed, CRC-32-guarded binary frames.
 *
 * Same discipline as the RSNP snapshot format (snapshot/snapshot.hh):
 * a fixed magic, an explicit length, and a CRC-32 over the whole record
 * so that any single burst error -- a flipped bit on the wire, a torn
 * partial write, a length-lie -- is detected before a byte of payload
 * reaches the message parser.
 *
 * ## Frame layout (all integers little-endian)
 *
 *     u32 magic   "RNET" (0x54454e52)
 *     u8  type    message discriminator (net/protocol.hh)
 *     u32 length  payload byte count, <= kMaxPayload
 *     ... payload
 *     u32 crc     CRC-32 of everything above (magic..payload)
 *
 * ## Strict, allocation-bounded decoding
 *
 * FrameDecoder consumes a byte stream incrementally and yields whole
 * validated frames.  Its invariants:
 *
 *  - The declared length is validated against kMaxPayload *before* any
 *    payload buffering, so a hostile length field cannot drive an
 *    allocation (the decoder never buffers more than one maximum frame
 *    plus one read chunk).
 *  - A frame is only surfaced after its CRC verifies; a mismatch throws
 *    ProtocolError and poisons the decoder (the stream position can no
 *    longer be trusted, the connection must be dropped).
 *  - A length-lie shows up as either a CRC mismatch (declared short:
 *    the CRC is computed over the wrong span) or a bad magic on the
 *    following "frame" (declared long past the real frame) -- both
 *    clean errors.
 *  - Truncation (peer vanished mid-frame) is visible as hasPartial()
 *    when the caller observes end-of-stream.
 */

#ifndef REACT_NET_FRAME_HH
#define REACT_NET_FRAME_HH

#include <cstdint>
#include <vector>

#include "net/wire.hh"

namespace react {
namespace net {

/** Frame magic: "RNET" read as a little-endian u32. */
constexpr uint32_t kFrameMagic = 0x54454e52u;

/** Hard cap on a frame payload; larger declared lengths are rejected
 *  before any buffering (4 MiB comfortably holds the largest result). */
constexpr uint32_t kMaxPayload = 4u << 20;

/** Fixed bytes before the payload: magic + type + length. */
constexpr size_t kFrameHeaderSize = 4 + 1 + 4;
/** Fixed bytes after the payload: the CRC. */
constexpr size_t kFrameTrailerSize = 4;

/** One decoded frame. */
struct Frame
{
    uint8_t type = 0;
    std::vector<uint8_t> payload;
};

/** Serialize one frame (header + payload + CRC). */
std::vector<uint8_t> encodeFrame(uint8_t type,
                                 const std::vector<uint8_t> &payload);

/** Incremental strict decoder; see file comment for invariants. */
class FrameDecoder
{
  public:
    FrameDecoder() = default;

    /**
     * Append received bytes.  @throws ProtocolError as soon as the
     * prefix is provably malformed (bad magic, oversized length, CRC
     * mismatch); the decoder is then poisoned and must be discarded
     * along with its connection.
     */
    void feed(const uint8_t *data, size_t size);

    /**
     * Pop the next complete, CRC-verified frame.
     * @return false when no complete frame is buffered yet.
     */
    bool next(Frame *out);

    /** Bytes of an incomplete frame are buffered: at end-of-stream this
     *  means the peer truncated a frame mid-send. */
    bool hasPartial() const { return !poisoned && !buffer.empty(); }

    /** The decoder saw malformed input and refuses further use. */
    bool isPoisoned() const { return poisoned; }

    /** Total frames decoded over the decoder's lifetime. */
    uint64_t framesDecoded() const { return decoded; }

  private:
    /** Validate the buffered prefix; throws on provable damage. */
    void validatePrefix();

    std::vector<uint8_t> buffer;
    uint64_t decoded = 0;
    bool poisoned = false;
};

} // namespace net
} // namespace react

#endif // REACT_NET_FRAME_HH
