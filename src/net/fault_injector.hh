/**
 * @file
 * Deterministic transport-level fault injection.
 *
 * The simulator injects hardware faults (sim/fault_injector.hh); the
 * serving layer gets the same treatment at the transport: frames can be
 * dropped, bit-flipped, delayed, or torn mid-write on a seeded schedule,
 * so the client's whole recovery spine -- CRC rejection, request
 * timeouts, reconnection, idempotent retry with backoff -- is exercised
 * deterministically in tests and the soak harness instead of waiting
 * for a flaky network to do it.
 *
 * The injector sits on the *sending* side of a transport (the client
 * wraps its frame writes through it).  Each outgoing frame draws one
 * fate from a seeded xoshiro stream; with an all-zero plan the draw is
 * skipped entirely and the transport is byte-transparent, matching the
 * sim injector's "attached but disabled == absent" contract.
 */

#ifndef REACT_NET_FAULT_INJECTOR_HH
#define REACT_NET_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace react {
namespace net {

/** Per-frame fault probabilities; all-zero disables injection. */
struct FaultPlan
{
    /** P[frame is silently swallowed]. */
    double dropRate = 0.0;
    /** P[one seeded bit of the frame is flipped]. */
    double corruptRate = 0.0;
    /** P[the send is delayed by delayMs]. */
    double delayRate = 0.0;
    /** P[only a seeded prefix is written, then the connection dies]. */
    double partialRate = 0.0;
    /** P[the connection is reset mid-frame: a seeded prefix is written,
     *  then the socket is hard-closed (RST-like)]. */
    double resetRate = 0.0;
    /** P[a partition starts at this frame: it and the next
     *  partitionFrames-1 sends are black-holed -- written nowhere,
     *  acknowledged by nothing -- while the connection stays up]. */
    double partitionRate = 0.0;
    /** P[a connection *attempt* is refused].  Drawn from a derived
     *  stream so enabling it never perturbs the frame-fate schedule. */
    double refuseRate = 0.0;
    /** Length of an injected partition, in outgoing frames.  Counted in
     *  frames rather than wall time so a partition is deterministic
     *  under any scheduler. */
    uint64_t partitionFrames = 8;
    /** Delay applied to delayed frames, milliseconds. */
    double delayMs = 20.0;
    /** Seed of the fate stream. */
    uint64_t seed = 0x5eedull;

    /** Whether any fault class is active. */
    bool enabled() const
    {
        return dropRate > 0.0 || corruptRate > 0.0 || delayRate > 0.0 ||
            partialRate > 0.0 || resetRate > 0.0 || partitionRate > 0.0 ||
            refuseRate > 0.0;
    }

    /** The all-zero plan (explicit spelling of the default). */
    static FaultPlan none() { return FaultPlan(); }

    /**
     * Parse a "key=value,key=value" spec, e.g.
     * "drop=0.05,corrupt=0.05,delay=0.1,delayms=25,partial=0.02,seed=7"
     * or the connection faults "refuse=0.1,reset=0.05,partition=0.02,
     * partframes=6".  Unknown keys, unparsable numbers, and
     * out-of-range rates fail.
     *
     * @param error Filled with a diagnostic on failure (may be null).
     * @return true on success.
     */
    static bool fromSpec(const std::string &spec, FaultPlan *out,
                         std::string *error);
};

/** What the injector decided to do with one outgoing frame. */
enum class FaultAction : uint8_t
{
    Deliver = 0,
    Drop,
    Corrupt,
    Delay,
    PartialWrite,
    /** Write a seeded prefix, then hard-close the connection. */
    Reset,
    /** Swallow the frame silently; the connection stays "up" (an
     *  in-progress partition, see FaultPlan::partitionFrames). */
    Blackhole,
};

/** Counters of injected faults (for soak reporting). */
struct FaultCounters
{
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t corrupted = 0;
    uint64_t delayed = 0;
    uint64_t partialWrites = 0;
    uint64_t resets = 0;
    /** Frames swallowed inside partitions. */
    uint64_t blackholed = 0;
    /** Partitions started (each swallows up to partitionFrames). */
    uint64_t partitions = 0;
    /** Connection attempts refused. */
    uint64_t refused = 0;

    uint64_t injected() const
    {
        return dropped + corrupted + delayed + partialWrites + resets +
            blackholed + refused;
    }
};

/** Seeded per-frame fate stream; see file comment. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan_in);

    /** Draw the fate of the next outgoing frame (counts it). */
    FaultAction nextAction();

    /** Draw whether the next connection attempt is refused (counts it).
     *  Uses a stream derived from the plan seed, independent of the
     *  frame-fate stream: enabling refusals does not shift any frame's
     *  fate. */
    bool nextConnectRefused();

    /** Flip one seeded bit of @p frame (used after a Corrupt draw). */
    void corruptInPlace(std::vector<uint8_t> *frame);

    /** Seeded prefix length for a PartialWrite of a @p full-byte frame
     *  (at least 1 byte short of full, at least 1 byte written when
     *  possible). */
    size_t partialLength(size_t full);

    /** Delay to apply to a Delay draw, seconds. */
    double delaySeconds() const { return plan.delayMs / 1000.0; }

    const FaultPlan &faultPlan() const { return plan; }
    const FaultCounters &counters() const { return stats; }

  private:
    FaultPlan plan;
    Rng rng;
    Rng connectRng;
    FaultCounters stats;
    /** Frames left to swallow in the current partition. */
    uint64_t partitionLeft = 0;
};

} // namespace net
} // namespace react

#endif // REACT_NET_FAULT_INJECTOR_HH
