#include "auth.hh"

#include <cstdio>
#include <stdexcept>

#include "util/env.hh"

namespace react {
namespace net {

namespace {

/** Domain-separation prefix for the handshake MAC (see auth.hh). */
constexpr char kAuthContext[] = "RNETAUTH1";
constexpr size_t kAuthContextSize = sizeof(kAuthContext) - 1;

} // namespace

AuthMac
authProof(const std::vector<uint8_t> &key, const AuthNonce &nonce)
{
    std::vector<uint8_t> message(kAuthContextSize + nonce.size());
    for (size_t i = 0; i < kAuthContextSize; ++i)
        message[i] = static_cast<uint8_t>(kAuthContext[i]);
    for (size_t i = 0; i < nonce.size(); ++i)
        message[kAuthContextSize + i] = nonce[i];
    return hmacSha256(key.data(), key.size(), message.data(),
                      message.size());
}

bool
verifyAuthProof(const std::vector<uint8_t> &key, const AuthNonce &nonce,
                const uint8_t *mac, size_t mac_size)
{
    const AuthMac expected = authProof(key, nonce);
    return constantTimeEqual(expected.data(), expected.size(), mac,
                             mac_size);
}

AuthNonce
NonceSource::next()
{
    AuthNonce nonce;
    for (size_t word = 0; word < nonce.size() / 8; ++word) {
        const uint64_t draw = rng_.next();
        for (size_t byte = 0; byte < 8; ++byte)
            nonce[word * 8 + byte] =
                static_cast<uint8_t>(draw >> (8 * byte));
    }
    return nonce;
}

std::optional<std::vector<uint8_t>>
loadFleetKey()
{
    if (const std::optional<std::string> literal =
            env::stringVar("REACT_FLEET_KEY")) {
        return std::vector<uint8_t>(literal->begin(), literal->end());
    }
    const std::optional<std::string> file =
        env::stringVar("REACT_FLEET_KEY_FILE");
    if (!file)
        return std::nullopt;
    std::FILE *fp = std::fopen(file->c_str(), "rb");
    if (fp == nullptr)
        throw std::runtime_error("REACT_FLEET_KEY_FILE: cannot open '" +
                                 *file + "'");
    std::vector<uint8_t> key;
    uint8_t chunk[256];
    size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), fp)) > 0)
        key.insert(key.end(), chunk, chunk + n);
    const bool read_error = std::ferror(fp) != 0;
    std::fclose(fp);
    if (read_error)
        throw std::runtime_error("REACT_FLEET_KEY_FILE: read error on '" +
                                 *file + "'");
    if (!key.empty() && key.back() == '\n')
        key.pop_back();
    if (key.empty())
        throw std::runtime_error("REACT_FLEET_KEY_FILE: '" + *file +
                                 "' holds no key bytes");
    return key;
}

} // namespace net
} // namespace react
