#include "fleet.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "harness/shard.hh"
#include "util/determinism.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace react {
namespace net {

uint64_t
LeaseTable::grant(size_t shard, size_t worker, int64_t now_ms)
{
    Lease lease;
    lease.worker = worker;
    lease.generation = nextGeneration++;
    lease.expiresAtMs = now_ms + duration;
    leases[shard] = lease;
    return lease.generation;
}

bool
LeaseTable::renew(size_t shard, uint64_t generation, int64_t now_ms)
{
    auto it = leases.find(shard);
    if (it == leases.end() || it->second.generation != generation)
        return false;
    it->second.expiresAtMs = now_ms + duration;
    return true;
}

bool
LeaseTable::release(size_t shard, uint64_t generation)
{
    auto it = leases.find(shard);
    if (it == leases.end() || it->second.generation != generation)
        return false;
    leases.erase(it);
    return true;
}

std::vector<size_t>
LeaseTable::expire(int64_t now_ms)
{
    std::vector<size_t> expired;
    for (auto it = leases.begin(); it != leases.end();) {
        if (it->second.expiresAtMs <= now_ms) {
            expired.push_back(it->first);
            it = leases.erase(it);
        } else {
            ++it;
        }
    }
    return expired;
}

void
FleetConfig::applyEnv()
{
    if (const auto v = env::intVar("REACT_FLEET_LEASE_MS", 10, 1 << 30))
        leaseMs = static_cast<int>(*v);
    if (const auto v =
            env::intVar("REACT_FLEET_HEARTBEAT_MS", 1, 1 << 30))
        heartbeatMs = static_cast<int>(*v);
    if (const auto v = env::u64Var("REACT_FLEET_SHARDS", 1, 1 << 20))
        shardCount = static_cast<size_t>(*v);
}

namespace {

/** The coordinator's only clock read: lease grant/renew/expiry times.
 *  Leases decide *where* a cell runs and how often, never what it
 *  computes -- results are idempotent worker-produced bytes. */
int64_t
wallNowMs()
{
    REACT_NONDET_OK("wall clock feeds lease expiry/renewal only, never result bytes");
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

/**
 * Thrown from the heartbeat callback through Client::runJob when the
 * shard's lease was fenced off.  Deliberately NOT a std::exception:
 * runJob's retry spine catches std::exception as "transport fault,
 * retry", and a fenced lease must abandon the job instead.
 */
struct ShardFenced
{
};

/** Shared coordinator state; every mutable field is guarded by m. */
struct Coordinator
{
    const std::vector<JobSpec> &jobs;
    const FleetConfig &config;
    harness::ShardPlan plan;

    std::mutex m;
    std::condition_variable cv;
    std::deque<size_t> ready;
    LeaseTable leases;
    std::vector<uint8_t> filled;
    size_t completed = 0;
    size_t activeWorkers = 0;
    bool done = false;
    FleetResult result;

    Coordinator(const std::vector<JobSpec> &jobs_in,
                const FleetConfig &config_in)
        : jobs(jobs_in), config(config_in), leases(config_in.leaseMs)
    {
        const size_t shard_count = config.shardCount != 0
            ? config.shardCount
            : harness::recommendedShardCount(jobs.size(),
                                             config.workers.size());
        plan = harness::planShards(jobs.size(), shard_count);
        filled.assign(jobs.size(), 0);
        result.jobs.resize(jobs.size());
        for (size_t j = 0; j < jobs.size(); ++j)
            result.jobs[j].jobId = jobs[j].jobId();
        result.stats.jobsTotal = jobs.size();
        for (size_t shard = 0; shard < plan.shards.size(); ++shard)
            ready.push_back(shard);
        activeWorkers = config.workers.size();
    }

    /** Under m. */
    bool shardCompleteLocked(size_t shard) const
    {
        for (const size_t j : plan.shards[shard])
            if (filled[j] == 0)
                return false;
        return true;
    }

    /** Under m. */
    void finishJobLocked()
    {
        ++completed;
        if (completed == jobs.size()) {
            done = true;
            cv.notify_all();
        }
    }

    /** Under m.  Exactly-once observable results: a slot fills once;
     *  later arrivals are byte-compared and counted, never appended. */
    void recordOutcomeLocked(size_t j, const JobOutcome &outcome)
    {
        if (filled[j] != 0) {
            ++result.stats.duplicateResults;
            if (result.jobs[j].ok &&
                result.jobs[j].resultBytes != outcome.resultBytes)
                ++result.stats.byteMismatches;
            return;
        }
        filled[j] = 1;
        result.jobs[j].ok = true;
        result.jobs[j].resultBytes = outcome.resultBytes;
        ++result.stats.jobsCompleted;
        finishJobLocked();
    }

    /** Under m. */
    void recordFailureLocked(size_t j, const std::string &error)
    {
        if (filled[j] != 0) {
            ++result.stats.duplicateResults;
            return;
        }
        filled[j] = 1;
        result.jobs[j].ok = false;
        result.jobs[j].error = error;
        ++result.stats.jobsFailed;
        finishJobLocked();
    }

    void workerLoop(size_t widx);
    void superviseLeases();
};

void
Coordinator::workerLoop(size_t widx)
{
    ClientConfig cc;
    cc.endpoint = config.workers[widx];
    cc.fleetKey = config.fleetKey;
    cc.requestTimeoutMs = config.requestTimeoutMs;
    cc.connectTimeoutMs = config.connectTimeoutMs;
    cc.pollIntervalMs = config.heartbeatMs;
    cc.retry = config.retry;
    cc.jitterSeed = 0x1eafull + widx;
    cc.faults = config.faults;
    // Distinct fault stream per worker client, derived from the base
    // seed; a one-worker fleet with index 0 keeps the base stream.
    cc.faults.seed =
        config.faults.seed + 0x9e3779b97f4a7c15ull * widx;
    Client client(cc);

    int consecutive_failures = 0;
    for (;;) {
        size_t shard = 0;
        uint64_t gen = 0;
        {
            std::unique_lock<std::mutex> lk(m);
            cv.wait(lk, [this] { return done || !ready.empty(); });
            if (done)
                return;
            shard = ready.front();
            ready.pop_front();
            gen = leases.grant(shard, widx, wallNowMs());
            ++result.stats.leasesGranted;
        }

        bool fenced = false;
        bool transport_failed = false;
        std::string transport_error;
        for (const size_t j : plan.shards[shard]) {
            {
                std::lock_guard<std::mutex> g(m);
                if (!leases.renew(shard, gen, wallNowMs())) {
                    fenced = true;
                    break;
                }
                if (filled[j] != 0)
                    continue; // re-dispatched shard, job already done
            }
            try {
                const JobOutcome outcome =
                    client.runJob(jobs[j], [this, shard, gen](JobState) {
                        // Heartbeat: every successful poll exchange
                        // renews the lease; a fenced lease aborts the
                        // job mid-poll (ShardFenced flies through the
                        // retry spine, see above).
                        std::lock_guard<std::mutex> g(m);
                        if (!leases.renew(shard, gen, wallNowMs()))
                            throw ShardFenced{};
                    });
                std::lock_guard<std::mutex> g(m);
                leases.renew(shard, gen, wallNowMs());
                recordOutcomeLocked(j, outcome);
            } catch (const ShardFenced &) {
                // Whoever fenced us owns the shard now; drop the
                // connection (a poll reply may still be in flight) and
                // walk away without requeueing.
                client.disconnect();
                fenced = true;
                break;
            } catch (const ClientError &e) {
                if (e.kind == ClientError::Kind::JobFailed ||
                    e.kind == ClientError::Kind::DeadlineExpired) {
                    // The *job* is terminal, the worker is fine.
                    std::lock_guard<std::mutex> g(m);
                    recordFailureLocked(j, e.what());
                    continue;
                }
                transport_failed = true;
                transport_error = e.what();
                break;
            }
        }

        bool declared_dead = false;
        {
            std::lock_guard<std::mutex> g(m);
            if (fenced) {
                // Nothing: the new holder carries the shard.
            } else if (transport_failed) {
                leases.release(shard, gen);
                ++result.stats.workerFailures;
                ++consecutive_failures;
                if (!shardCompleteLocked(shard)) {
                    ready.push_back(shard);
                    ++result.stats.redispatches;
                    cv.notify_all();
                }
                react_warn("fleet: worker %llu lost shard %llu: %s",
                           static_cast<unsigned long long>(widx),
                           static_cast<unsigned long long>(shard),
                           transport_error.c_str());
                if (consecutive_failures >=
                    config.maxConsecutiveFailures) {
                    ++result.stats.workersDeclaredDead;
                    --activeWorkers;
                    cv.notify_all();
                    declared_dead = true;
                }
            } else {
                leases.release(shard, gen);
                consecutive_failures = 0;
            }
        }
        if (declared_dead) {
            react_warn("fleet: worker %llu (%s) declared dead after %d "
                       "consecutive failures",
                       static_cast<unsigned long long>(widx),
                       config.workers[widx].c_str(),
                       consecutive_failures);
            return;
        }
        if (transport_failed)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config.failurePauseMs));
    }
}

void
Coordinator::superviseLeases()
{
    const int check_ms = config.leaseCheckMs > 0
        ? config.leaseCheckMs
        : std::max(1, config.leaseMs / 4);
    for (;;) {
        std::unique_lock<std::mutex> lk(m);
        cv.wait_for(lk, std::chrono::milliseconds(check_ms),
                    [this] { return done || activeWorkers == 0; });
        if (done)
            return;
        const std::vector<size_t> expired = leases.expire(wallNowMs());
        for (const size_t shard : expired) {
            ++result.stats.leasesExpired;
            if (!shardCompleteLocked(shard)) {
                ready.push_back(shard);
                ++result.stats.redispatches;
            }
        }
        if (!expired.empty()) {
            react_warn("fleet: %llu lease(s) expired; re-dispatching",
                       static_cast<unsigned long long>(expired.size()));
            cv.notify_all();
        }
        if (activeWorkers == 0) {
            // Every worker thread exited with work remaining: give up
            // rather than wait for heat death.
            done = true;
            cv.notify_all();
            return;
        }
    }
}

} // namespace

FleetResult
runFleetSweep(const std::vector<JobSpec> &jobs, const FleetConfig &config)
{
    Coordinator coord(jobs, config);
    if (jobs.empty()) {
        coord.result.complete = true;
        return std::move(coord.result);
    }
    if (config.workers.empty()) {
        react_warn("fleet: no workers configured");
        return std::move(coord.result);
    }

    react_inform("fleet: %llu jobs in %llu shards across %llu workers "
                 "(lease %d ms, heartbeat %d ms)",
                 static_cast<unsigned long long>(jobs.size()),
                 static_cast<unsigned long long>(coord.plan.shards.size()),
                 static_cast<unsigned long long>(config.workers.size()),
                 config.leaseMs, config.heartbeatMs);

    std::vector<std::thread> workers;
    workers.reserve(config.workers.size());
    for (size_t w = 0; w < config.workers.size(); ++w)
        workers.emplace_back([&coord, w] { coord.workerLoop(w); });
    coord.superviseLeases();
    for (auto &t : workers)
        t.join();

    coord.result.complete =
        coord.result.stats.jobsCompleted == jobs.size();
    react_inform("fleet: %llu/%llu jobs complete (%llu re-dispatches, "
                 "%llu lease expiries, %llu duplicate results, %llu "
                 "byte mismatches)",
                 static_cast<unsigned long long>(
                     coord.result.stats.jobsCompleted),
                 static_cast<unsigned long long>(jobs.size()),
                 static_cast<unsigned long long>(
                     coord.result.stats.redispatches),
                 static_cast<unsigned long long>(
                     coord.result.stats.leasesExpired),
                 static_cast<unsigned long long>(
                     coord.result.stats.duplicateResults),
                 static_cast<unsigned long long>(
                     coord.result.stats.byteMismatches));
    return std::move(coord.result);
}

std::vector<uint8_t>
encodeFleetOutput(const FleetResult &result)
{
    WireWriter w;
    w.u32(static_cast<uint32_t>(result.jobs.size()));
    for (const auto &job : result.jobs) {
        w.u64(job.jobId);
        w.b(job.ok);
        w.bytes(job.resultBytes);
    }
    return w.take();
}

} // namespace net
} // namespace react
