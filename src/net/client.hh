/**
 * @file
 * react-cli's client library: the retry spine of the serving layer.
 *
 * A Client owns one connection to reactd and drives the whole recovery
 * protocol so callers see exactly two outcomes -- a result, or a
 * terminal ClientError:
 *
 *  - **Bounded retry with backoff + jitter.**  Every transport failure
 *    (timeout, reset, server restart, CRC-rejected frame) costs one
 *    retry; delays grow exponentially to a cap, jittered from a seeded
 *    RNG so the schedule is deterministic in tests yet avoids lockstep
 *    stampedes in real fleets.
 *  - **Idempotent resubmission.**  A retried Submit carries the same
 *    spec, hence the same job id; the server attaches it to the
 *    existing job or answers straight from its result cache.  Retries
 *    can therefore never duplicate or lose work.
 *  - **Transport fault injection.**  Outgoing frames pass through a
 *    FaultInjector (drop / bit-flip / delay / partial-write on a seeded
 *    schedule) so the tests and the soak harness exercise this spine
 *    on demand.
 */

#ifndef REACT_NET_CLIENT_HH
#define REACT_NET_CLIENT_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "net/fault_injector.hh"
#include "net/frame.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "util/rng.hh"

namespace react {
namespace net {

/** Terminal client-side failure: retries exhausted, or the job itself
 *  failed/expired on the server.  Transient faults never surface as
 *  this; they are retried.  The kind distinguishes the failure classes
 *  callers act on differently (react-cli maps them to exit codes). */
class ClientError : public std::runtime_error
{
  public:
    enum class Kind : uint8_t
    {
        /** Retries exhausted against transport failures. */
        Transport = 0,
        /** The cell threw on the server (JobError/Failed). */
        JobFailed = 1,
        /** The job's queue-wait deadline lapsed (JobError/Expired). */
        DeadlineExpired = 2,
        /** The server refused the session (auth reject, missing key). */
        Rejected = 3,
    };

    explicit ClientError(const std::string &what_arg,
                         Kind kind_in = Kind::Transport)
        : std::runtime_error(what_arg), kind(kind_in)
    {
    }

    Kind kind;
};

/** Exponential backoff with seeded jitter. */
struct RetryPolicy
{
    /** Transient failures tolerated per job before giving up. */
    int maxRetries = 8;
    double initialBackoffMs = 50.0;
    double maxBackoffMs = 2000.0;

    /**
     * Delay before retry number @p attempt (1-based): the exponential
     * envelope min(cap, initial * 2^(attempt-1)) scaled by a jitter
     * factor in [0.5, 1.0] drawn from @p rng.
     */
    double backoffMs(int attempt, Rng *rng) const;
};

struct ClientConfig
{
    /** Server endpoint URI ("unix:/path", "tcp:host:port", or a bare
     *  AF_UNIX path); see net/endpoint.hh. */
    std::string endpoint = "/tmp/reactd.sock";
    /** Pre-shared fleet key for the auth handshake; empty = expect an
     *  unauthenticated server (an AuthChallenge then fails terminally). */
    std::vector<uint8_t> fleetKey;
    /** Budget for one request/response exchange, milliseconds. */
    int requestTimeoutMs = 5000;
    int connectTimeoutMs = 2000;
    /** Pause between Poll frames while a job runs, milliseconds. */
    int pollIntervalMs = 20;
    RetryPolicy retry;
    /** Jitter stream seed (backoff determinism in tests). */
    uint64_t jitterSeed = 0x1eafull;
    /** Outgoing-frame fault injection; none() = byte-transparent. */
    FaultPlan faults;
};

struct ClientStats
{
    uint64_t framesSent = 0;
    uint64_t framesReceived = 0;
    uint64_t connects = 0;
    uint64_t reconnects = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    /** Error frames received (server rejected a frame of ours). */
    uint64_t serverErrors = 0;
};

/** A completed job: the decoded result plus its exact wire bytes (the
 *  soak harness compares those bytes against a direct local run). */
struct JobOutcome
{
    uint64_t jobId = 0;
    harness::ExperimentResult result;
    std::vector<uint8_t> resultBytes;
};

/** See file comment. */
class Client
{
  public:
    explicit Client(const ClientConfig &config);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Submit @p spec and drive it to completion: connect/handshake,
     * submit, poll while running, and retry the whole exchange (with
     * backoff) across any transient failure.
     *
     * @param on_progress Invoked after every successful status exchange
     *        with the server-reported state (the fleet coordinator
     *        renews its shard lease from this heartbeat); may be empty.
     * @throws ClientError when retries are exhausted or the server
     *         reports the job Failed or Expired (kind tells which).
     */
    JobOutcome runJob(const JobSpec &spec,
                      const std::function<void(JobState)> &on_progress =
                          {});

    /** One Ping/Pong exchange.  @return false on any failure. */
    bool ping();

    /**
     * Ask the server to drain.  @return jobs in flight at the server
     * when it acknowledged.  @throws ClientError on failure (retried
     * like any other exchange).
     */
    uint32_t drain();

    /** Drop the connection (next exchange reconnects). */
    void disconnect();

    const ClientStats &stats() const { return clientStats; }
    const FaultCounters &faultCounters() const
    {
        return injector.counters();
    }

  private:
    void ensureConnected();
    /** Send one frame through the fault injector. */
    void transmit(const std::vector<uint8_t> &frame);
    /** Block for the next complete frame, within the request timeout. */
    Frame awaitFrame();

    ClientConfig config;
    ClientStats clientStats;
    FaultInjector injector;
    Rng jitterRng;
    Socket sock;
    FrameDecoder decoder;
};

} // namespace net
} // namespace react

#endif // REACT_NET_CLIENT_HH
