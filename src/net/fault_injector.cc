#include "fault_injector.hh"

#include <cstdlib>

namespace react {
namespace net {

bool
FaultPlan::fromSpec(const std::string &spec, FaultPlan *out,
                    std::string *error)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (error)
                *error = "expected key=value, got '" + item + "'";
            return false;
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char *end = nullptr;
        const double num = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            if (error)
                *error = "unparsable value '" + value + "' for '" + key +
                    "'";
            return false;
        }
        const bool is_rate = key == "drop" || key == "corrupt" ||
            key == "delay" || key == "partial" || key == "reset" ||
            key == "partition" || key == "refuse";
        if (is_rate && (num < 0.0 || num > 1.0)) {
            if (error)
                *error = "rate '" + key + "' must be in [0, 1]";
            return false;
        }
        if (key == "drop") {
            plan.dropRate = num;
        } else if (key == "corrupt") {
            plan.corruptRate = num;
        } else if (key == "delay") {
            plan.delayRate = num;
        } else if (key == "partial") {
            plan.partialRate = num;
        } else if (key == "reset") {
            plan.resetRate = num;
        } else if (key == "partition") {
            plan.partitionRate = num;
        } else if (key == "refuse") {
            plan.refuseRate = num;
        } else if (key == "partframes") {
            if (num < 1.0) {
                if (error)
                    *error = "partframes must be at least 1";
                return false;
            }
            plan.partitionFrames = static_cast<uint64_t>(num);
        } else if (key == "delayms") {
            if (num < 0.0) {
                if (error)
                    *error = "delayms must be non-negative";
                return false;
            }
            plan.delayMs = num;
        } else if (key == "seed") {
            if (num < 0.0) {
                if (error)
                    *error = "seed must be non-negative";
                return false;
            }
            plan.seed = static_cast<uint64_t>(num);
        } else {
            if (error)
                *error = "unknown fault key '" + key + "'";
            return false;
        }
    }
    *out = plan;
    return true;
}

namespace {

/** Tag deriving the connection-refusal stream from the plan seed. */
constexpr uint64_t kRefuseStreamTag = 0x52465553u; // "RFUS"

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan_in)
    : plan(plan_in), rng(plan_in.seed),
      connectRng(Rng(plan_in.seed).child(kRefuseStreamTag))
{
}

FaultAction
FaultInjector::nextAction()
{
    if (!plan.enabled()) {
        ++stats.delivered;
        return FaultAction::Deliver;
    }
    // An in-progress partition swallows frames before any fate draw;
    // the draw stream stays aligned with (seed, frame ordinal) because
    // partitioned frames never reach it.
    if (partitionLeft > 0) {
        --partitionLeft;
        ++stats.blackholed;
        return FaultAction::Blackhole;
    }
    // One uniform draw per frame, partitioned by cumulative rate, so
    // the schedule depends only on (seed, frame ordinal) -- not on
    // which fault classes are enabled relative to each other.
    const double u = rng.uniform();
    double edge = plan.dropRate;
    if (u < edge) {
        ++stats.dropped;
        return FaultAction::Drop;
    }
    edge += plan.corruptRate;
    if (u < edge) {
        ++stats.corrupted;
        return FaultAction::Corrupt;
    }
    edge += plan.delayRate;
    if (u < edge) {
        ++stats.delayed;
        return FaultAction::Delay;
    }
    edge += plan.partialRate;
    if (u < edge) {
        ++stats.partialWrites;
        return FaultAction::PartialWrite;
    }
    edge += plan.resetRate;
    if (u < edge) {
        ++stats.resets;
        return FaultAction::Reset;
    }
    edge += plan.partitionRate;
    if (u < edge) {
        ++stats.partitions;
        ++stats.blackholed;
        partitionLeft = plan.partitionFrames - 1;
        return FaultAction::Blackhole;
    }
    ++stats.delivered;
    return FaultAction::Deliver;
}

bool
FaultInjector::nextConnectRefused()
{
    if (plan.refuseRate <= 0.0)
        return false;
    if (connectRng.uniform() < plan.refuseRate) {
        ++stats.refused;
        return true;
    }
    return false;
}

void
FaultInjector::corruptInPlace(std::vector<uint8_t> *frame)
{
    if (frame->empty())
        return;
    const size_t byte = static_cast<size_t>(rng.uniformInt(
        0, static_cast<int>(frame->size()) - 1));
    const int bit = rng.uniformInt(0, 7);
    (*frame)[byte] ^= static_cast<uint8_t>(1u << bit);
}

size_t
FaultInjector::partialLength(size_t full)
{
    if (full <= 1)
        return 0;
    return static_cast<size_t>(
        rng.uniformInt(1, static_cast<int>(full) - 1));
}

} // namespace net
} // namespace react
