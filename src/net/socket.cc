#include "socket.hh"

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/determinism.hh"

namespace react {
namespace net {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw SocketError(what + ": " + std::strerror(errno));
}

/** Monotonic milliseconds for timeout deadlines.  Every retry loop here
 *  re-derives its remaining budget from an absolute deadline instead of
 *  re-arming the full timeout: under a fast interval timer (the SIGTERM
 *  drain path, the itimer hammer test) poll() returns EINTR every
 *  millisecond, and a naive "retry with the original timeout" never
 *  expires. */
int64_t
monotonicMs()
{
    REACT_NONDET_OK("monotonic clock bounds socket timeouts only, never result bytes");
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now.time_since_epoch())
        .count();
}

/** Absolute deadline for @p timeout_ms from now; negative = no deadline. */
int64_t
deadlineFrom(int timeout_ms)
{
    if (timeout_ms < 0)
        return -1;
    return monotonicMs() + timeout_ms;
}

/** Remaining poll() budget: -1 for no deadline, else clamped to >= 0. */
int
remainingMs(int64_t deadline_ms)
{
    if (deadline_ms < 0)
        return -1;
    const int64_t left = deadline_ms - monotonicMs();
    if (left <= 0)
        return 0;
    return left > INT_MAX ? INT_MAX : static_cast<int>(left);
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw SocketError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

sockaddr_in
tcpAddress(const std::string &host, uint16_t port)
{
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1)
        return addr;
    addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0)
        throw SocketError("resolve '" + host +
                          "': " + ::gai_strerror(rc));
    if (res == nullptr)
        throw SocketError("resolve '" + host + "': no IPv4 address");
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in *>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
    return addr;
}

void
setIntOption(int fd, int level, int option, const char *name)
{
    const int one = 1;
    if (::setsockopt(fd, level, option, &one, sizeof(one)) != 0)
        throwErrno(std::string("setsockopt(") + name + ")");
}

} // namespace

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket
listenUnix(const std::string &path, int backlog)
{
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid())
        throwErrno("socket");
    const sockaddr_un addr = unixAddress(path);
    ::unlink(path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind '" + path + "'");
    if (::listen(sock.fd(), backlog) != 0)
        throwErrno("listen '" + path + "'");
    return sock;
}

Socket
connectUnix(const std::string &path, int timeout_ms)
{
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid())
        throwErrno("socket");
    const sockaddr_un addr = unixAddress(path);
    // AF_UNIX connect either succeeds immediately or fails with the
    // backlog full / path missing; a poll-based wait still bounds the
    // backlog-full case on a nonblocking socket.  Keep it simple:
    // blocking connect, which cannot hang on a local socket, then poll
    // discipline for all subsequent I/O.
    (void)timeout_ms;
    for (;;) {
        if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return sock;
        if (errno == EINTR)
            continue;
        throwErrno("connect '" + path + "'");
    }
}

Socket
listenTcp(const std::string &host, uint16_t port, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid())
        throwErrno("socket");
    // REUSEADDR so a restarted coordinator/worker can rebind its fixed
    // port while the previous incarnation's connections sit in TIME_WAIT.
    setIntOption(sock.fd(), SOL_SOCKET, SO_REUSEADDR, "SO_REUSEADDR");
    const sockaddr_in addr = tcpAddress(host.empty() ? "0.0.0.0" : host,
                                        port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind 'tcp:" + host + ":" + std::to_string(port) + "'");
    if (::listen(sock.fd(), backlog) != 0)
        throwErrno("listen 'tcp:" + host + ":" + std::to_string(port) +
                   "'");
    return sock;
}

Socket
connectTcp(const std::string &host, uint16_t port, int timeout_ms)
{
    const std::string label =
        "tcp:" + host + ":" + std::to_string(port);
    const sockaddr_in addr = tcpAddress(host, port);
    // Nonblocking connect so the three-way handshake honours the caller's
    // deadline (a blocked peer or a black-holed route can otherwise hang
    // for minutes); the socket reverts to blocking afterwards to match
    // the poll discipline of sendAll/recvSome.
    Socket sock(::socket(AF_INET,
                         SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
    if (!sock.valid())
        throwErrno("socket");
    const int64_t deadline = deadlineFrom(timeout_ms);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        // EINTR on a nonblocking connect means the attempt continues
        // asynchronously, exactly like EINPROGRESS (POSIX).
        if (errno != EINPROGRESS && errno != EINTR)
            throwErrno("connect '" + label + "'");
        pollfd pfd = {};
        pfd.fd = sock.fd();
        pfd.events = POLLOUT;
        for (;;) {
            const int rc = ::poll(&pfd, 1, remainingMs(deadline));
            if (rc > 0)
                break;
            if (rc == 0)
                throw SocketError("connect '" + label + "' timed out");
            if (errno != EINTR)
                throwErrno("poll(connect)");
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
            throwErrno("getsockopt(SO_ERROR)");
        if (err != 0)
            throw SocketError("connect '" + label +
                              "': " + std::strerror(err));
    }
    const int flags = ::fcntl(sock.fd(), F_GETFL);
    if (flags < 0 ||
        ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK) != 0)
        throwErrno("fcntl(~O_NONBLOCK)");
    // Request/response frames are small; Nagle only adds latency here.
    setIntOption(sock.fd(), IPPROTO_TCP, TCP_NODELAY, "TCP_NODELAY");
    return sock;
}

Socket
acceptOn(int listen_fd)
{
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED)
            return Socket();
        throwErrno("accept");
    }
    return Socket(fd);
}

bool
waitReadable(int fd, int timeout_ms)
{
    const int64_t deadline = deadlineFrom(timeout_ms);
    pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    for (;;) {
        const int rc = ::poll(&pfd, 1, remainingMs(deadline));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        if (rc > 0)
            return true;
        if (remainingMs(deadline) == 0)
            return false;
    }
}

void
sendAll(int fd, const uint8_t *data, size_t size, int timeout_ms)
{
    const int64_t deadline = deadlineFrom(timeout_ms);
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd = {};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            const int rc = ::poll(&pfd, 1, remainingMs(deadline));
            if (rc == 0)
                throw SocketError("send timed out");
            if (rc < 0 && errno != EINTR)
                throwErrno("poll(POLLOUT)");
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        throwErrno("send");
    }
}

size_t
recvSome(int fd, uint8_t *buf, size_t cap, int timeout_ms)
{
    if (!waitReadable(fd, timeout_ms))
        throw SocketError("recv timed out");
    for (;;) {
        const ssize_t n = ::recv(fd, buf, cap, 0);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno == EINTR)
            continue;
        throwErrno("recv");
    }
}

} // namespace net
} // namespace react
