#include "socket.hh"

#include <cerrno>
#include <cstdint>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace react {
namespace net {

namespace {

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw SocketError("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket
listenUnix(const std::string &path, int backlog)
{
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid())
        throwErrno("socket");
    const sockaddr_un addr = unixAddress(path);
    ::unlink(path.c_str());
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throwErrno("bind '" + path + "'");
    if (::listen(sock.fd(), backlog) != 0)
        throwErrno("listen '" + path + "'");
    return sock;
}

Socket
connectUnix(const std::string &path, int timeout_ms)
{
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid())
        throwErrno("socket");
    const sockaddr_un addr = unixAddress(path);
    // AF_UNIX connect either succeeds immediately or fails with the
    // backlog full / path missing; a poll-based wait still bounds the
    // backlog-full case on a nonblocking socket.  Keep it simple:
    // blocking connect, which cannot hang on a local socket, then poll
    // discipline for all subsequent I/O.
    (void)timeout_ms;
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        throwErrno("connect '" + path + "'");
    return sock;
}

Socket
acceptOn(int listen_fd)
{
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED)
            return Socket();
        throwErrno("accept");
    }
    return Socket(fd);
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd = {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("poll");
        }
        return rc > 0;
    }
}

void
sendAll(int fd, const uint8_t *data, size_t size, int timeout_ms)
{
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd = {};
            pfd.fd = fd;
            pfd.events = POLLOUT;
            const int rc = ::poll(&pfd, 1, timeout_ms);
            if (rc == 0)
                throw SocketError("send timed out");
            if (rc < 0 && errno != EINTR)
                throwErrno("poll(POLLOUT)");
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        throwErrno("send");
    }
}

size_t
recvSome(int fd, uint8_t *buf, size_t cap, int timeout_ms)
{
    if (!waitReadable(fd, timeout_ms))
        throw SocketError("recv timed out");
    for (;;) {
        const ssize_t n = ::recv(fd, buf, cap, 0);
        if (n >= 0)
            return static_cast<size_t>(n);
        if (errno == EINTR)
            continue;
        throwErrno("recv");
    }
}

} // namespace net
} // namespace react
