/**
 * @file
 * Bounds-checked primitive codec for protocol message payloads.
 *
 * Frames (net/frame.hh) guarantee integrity -- a payload that reaches a
 * WireReader has already passed its CRC.  The wire layer guarantees
 * *shape*: every decode is bounds-checked against the payload, variable-
 * length fields declare their size up front and are validated against
 * the bytes actually present before anything is allocated, and a parser
 * that walks off the end throws ProtocolError instead of over-reading.
 * Together the two layers give the strict-parser property the snapshot
 * loader already has: damaged or malicious input degrades to a clean,
 * catchable error, never UB.
 *
 * Encoding: little-endian integers; doubles as their IEEE-754 bit
 * pattern (bit-exact round trip, same contract as snapshot f64);
 * strings and byte blobs as u32 length + raw bytes.
 */

#ifndef REACT_NET_WIRE_HH
#define REACT_NET_WIRE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace react {
namespace net {

/** Raised on any malformed protocol input (framing or payload shape).
 *  Always catchable: a bad peer costs a connection, never the server. */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Appends primitives to a byte buffer. */
class WireWriter
{
  public:
    WireWriter() = default;

    void u8(uint8_t v);
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v);
    /** Stored as the IEEE-754 bit pattern: bit-exact round trip. */
    void f64(double v);
    /** u32 length prefix + raw bytes. */
    void str(const std::string &v);
    void bytes(const std::vector<uint8_t> &v);

    const std::vector<uint8_t> &data() const { return out; }
    std::vector<uint8_t> take() { return std::move(out); }

  private:
    void put(const void *data_ptr, size_t size);

    std::vector<uint8_t> out;
};

/**
 * Reads primitives back out of a payload view.  The reader does not own
 * the bytes; the payload must outlive it.  Every read throws
 * ProtocolError on overrun, and variable-length reads validate the
 * declared length against remaining() before allocating -- a length-lie
 * can never cause an allocation larger than the payload itself.
 */
class WireReader
{
  public:
    WireReader(const uint8_t *data_ptr, size_t size)
        : base(data_ptr), end(size)
    {
    }
    explicit WireReader(const std::vector<uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    uint8_t u8();
    bool b() { return u8() != 0; }
    uint32_t u32();
    uint64_t u64();
    int64_t i64();
    double f64();
    std::string str();
    std::vector<uint8_t> bytes();

    /** Bytes not yet consumed. */
    size_t remaining() const { return end - cursor; }

    /** Throw unless the payload was consumed exactly. */
    void expectEnd() const;

  private:
    void take(void *out_ptr, size_t size);

    const uint8_t *base;
    size_t end;
    size_t cursor = 0;
};

} // namespace net
} // namespace react

#endif // REACT_NET_WIRE_HH
