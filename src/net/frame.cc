#include "frame.hh"

#include <cstring>

#include "util/crc32.hh"

namespace react {
namespace net {

namespace {

uint32_t
readLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

void
writeLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

} // namespace

std::vector<uint8_t>
encodeFrame(uint8_t type, const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxPayload)
        throw ProtocolError("frame payload of " +
                            std::to_string(payload.size()) +
                            " bytes exceeds kMaxPayload");
    std::vector<uint8_t> frame(kFrameHeaderSize + payload.size() +
                               kFrameTrailerSize);
    writeLe32(frame.data(), kFrameMagic);
    frame[4] = type;
    writeLe32(frame.data() + 5, static_cast<uint32_t>(payload.size()));
    if (!payload.empty())
        std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
                    payload.size());
    const uint32_t crc =
        crc32(frame.data(), kFrameHeaderSize + payload.size());
    writeLe32(frame.data() + kFrameHeaderSize + payload.size(), crc);
    return frame;
}

void
FrameDecoder::feed(const uint8_t *data, size_t size)
{
    if (poisoned)
        throw ProtocolError("decoder poisoned by earlier malformed input");
    buffer.insert(buffer.end(), data, data + size);
    validatePrefix();
}

void
FrameDecoder::validatePrefix()
{
    // Validate as much of the header as is present, so damage is
    // reported at the earliest provable byte rather than after a full
    // (attacker-declared) payload has been awaited.
    if (buffer.size() >= 4) {
        const uint32_t magic = readLe32(buffer.data());
        if (magic != kFrameMagic) {
            poisoned = true;
            throw ProtocolError("bad frame magic");
        }
    }
    if (buffer.size() >= kFrameHeaderSize) {
        const uint32_t length = readLe32(buffer.data() + 5);
        if (length > kMaxPayload) {
            poisoned = true;
            throw ProtocolError("declared payload of " +
                                std::to_string(length) +
                                " bytes exceeds kMaxPayload");
        }
    }
}

bool
FrameDecoder::next(Frame *out)
{
    if (poisoned)
        throw ProtocolError("decoder poisoned by earlier malformed input");
    if (buffer.size() < kFrameHeaderSize)
        return false;
    const uint32_t length = readLe32(buffer.data() + 5);
    const size_t total = kFrameHeaderSize + length + kFrameTrailerSize;
    if (buffer.size() < total)
        return false;

    const uint32_t stored = readLe32(buffer.data() + kFrameHeaderSize +
                                     length);
    const uint32_t actual = crc32(buffer.data(), kFrameHeaderSize + length);
    if (stored != actual) {
        poisoned = true;
        throw ProtocolError("frame CRC mismatch");
    }

    out->type = buffer[4];
    out->payload.assign(buffer.begin() +
                            static_cast<long>(kFrameHeaderSize),
                        buffer.begin() +
                            static_cast<long>(kFrameHeaderSize + length));
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(total));
    ++decoded;
    // The next frame's header may already be buffered and damaged.
    validatePrefix();
    return true;
}

} // namespace net
} // namespace react
