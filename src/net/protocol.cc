#include "protocol.hh"

#include "harness/parallel_runner.hh"
#include "net/frame.hh"

namespace react {
namespace net {

namespace {

/** Base seed folded into job ids so they are not confusable with cell
 *  seeds or snapshot digests ("RCTD" as a 32-bit tag). */
constexpr uint64_t kJobIdBase = 0x52435444u;

/** Canonical identity encoding: every field except the deadline, in
 *  fixed order.  Changing this breaks cross-version idempotency, so it
 *  is spelled out separately from encode(). */
std::vector<uint8_t>
identityBytes(const JobSpec &spec)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(spec.bench));
    w.u8(static_cast<uint8_t>(spec.trace));
    w.u8(static_cast<uint8_t>(spec.buffer));
    w.u64(spec.baseSeed);
    w.f64(spec.dt);
    w.f64(spec.drainAllowance);
    w.f64(spec.settleTime);
    w.b(spec.stopAfterLatency);
    return w.take();
}

std::vector<uint8_t>
frameOf(MsgType type, WireWriter &w)
{
    return encodeFrame(static_cast<uint8_t>(type), w.data());
}

std::vector<uint8_t>
emptyFrame(MsgType type)
{
    return encodeFrame(static_cast<uint8_t>(type), {});
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Cached:
        return "cached";
      case JobState::Expired:
        return "expired";
      case JobState::Failed:
        return "failed";
    }
    return "unknown";
}

std::string
JobSpec::cellKey() const
{
    return harness::gridCellKey(bench, trace, buffer);
}

uint64_t
JobSpec::jobId() const
{
    const std::vector<uint8_t> id = identityBytes(*this);
    return harness::cellSeed(
        kJobIdBase,
        std::string_view(reinterpret_cast<const char *>(id.data()),
                         id.size()));
}

void
JobSpec::encode(WireWriter &w) const
{
    w.u8(static_cast<uint8_t>(bench));
    w.u8(static_cast<uint8_t>(trace));
    w.u8(static_cast<uint8_t>(buffer));
    w.u64(baseSeed);
    w.f64(dt);
    w.f64(drainAllowance);
    w.f64(settleTime);
    w.b(stopAfterLatency);
    w.f64(deadlineSeconds);
}

JobSpec
JobSpec::decode(WireReader &r)
{
    JobSpec spec;
    const uint8_t bench_idx = r.u8();
    const uint8_t trace_idx = r.u8();
    const uint8_t buffer_idx = r.u8();
    if (bench_idx >= harness::kAllBenchmarks.size())
        throw ProtocolError("benchmark index out of range");
    if (trace_idx >= trace::kAllPaperTraces.size())
        throw ProtocolError("trace index out of range");
    if (buffer_idx >= harness::kAllBuffers.size())
        throw ProtocolError("buffer index out of range");
    spec.bench = harness::kAllBenchmarks[bench_idx];
    spec.trace = trace::kAllPaperTraces[trace_idx];
    spec.buffer = harness::kAllBuffers[buffer_idx];
    spec.baseSeed = r.u64();
    spec.dt = r.f64();
    spec.drainAllowance = r.f64();
    spec.settleTime = r.f64();
    spec.stopAfterLatency = r.b();
    spec.deadlineSeconds = r.f64();
    if (!(spec.dt > 0.0) || !(spec.drainAllowance >= 0.0) ||
        !(spec.settleTime >= 0.0) || !(spec.deadlineSeconds >= 0.0))
        throw ProtocolError("job spec has non-positive timing fields");
    return spec;
}

harness::ExperimentConfig
JobSpec::toConfig() const
{
    harness::ExperimentConfig config;
    config.dt = dt;
    config.drainAllowance = drainAllowance;
    config.settleTime = settleTime;
    config.stopAfterLatency = stopAfterLatency;
    return config;
}

void
encodeResult(WireWriter &w, const harness::ExperimentResult &res)
{
    w.str(res.bufferName);
    w.str(res.benchmarkName);
    w.str(res.traceName);
    w.f64(res.latency);
    w.f64(res.onTime);
    w.f64(res.totalTime);
    w.u64(res.steps);
    w.u64(res.fastSteps);
    w.u64(res.powerCycles);
    w.u64(res.workUnits);
    w.u64(res.packetsRx);
    w.u64(res.packetsTx);
    w.u64(res.failedOps);
    w.u64(res.missedEvents);
    w.f64(res.ledger.harvested.raw());
    w.f64(res.ledger.delivered.raw());
    w.f64(res.ledger.clipped.raw());
    w.f64(res.ledger.leaked.raw());
    w.f64(res.ledger.switchLoss.raw());
    w.f64(res.ledger.diodeLoss.raw());
    w.f64(res.ledger.overhead.raw());
    w.f64(res.ledger.faultLoss.raw());
    w.f64(res.residualEnergy);
    w.f64(res.conservationError);
    w.u64(res.faultEvents);
    w.u64(res.recoveryEvents);
    w.i64(res.banksRetired);
    w.i64(res.framRecoveries);
    w.b(res.halted);
    w.u32(res.stateDigest);
}

harness::ExperimentResult
decodeResult(WireReader &r)
{
    harness::ExperimentResult res;
    res.bufferName = r.str();
    res.benchmarkName = r.str();
    res.traceName = r.str();
    res.latency = r.f64();
    res.onTime = r.f64();
    res.totalTime = r.f64();
    res.steps = r.u64();
    res.fastSteps = r.u64();
    res.powerCycles = r.u64();
    res.workUnits = r.u64();
    res.packetsRx = r.u64();
    res.packetsTx = r.u64();
    res.failedOps = r.u64();
    res.missedEvents = r.u64();
    res.ledger.harvested = units::Joules(r.f64());
    res.ledger.delivered = units::Joules(r.f64());
    res.ledger.clipped = units::Joules(r.f64());
    res.ledger.leaked = units::Joules(r.f64());
    res.ledger.switchLoss = units::Joules(r.f64());
    res.ledger.diodeLoss = units::Joules(r.f64());
    res.ledger.overhead = units::Joules(r.f64());
    res.ledger.faultLoss = units::Joules(r.f64());
    res.residualEnergy = r.f64();
    res.conservationError = r.f64();
    res.faultEvents = r.u64();
    res.recoveryEvents = r.u64();
    res.banksRetired = static_cast<int>(r.i64());
    res.framRecoveries = static_cast<int>(r.i64());
    res.halted = r.b();
    res.stateDigest = r.u32();
    return res;
}

std::vector<uint8_t>
makeHello()
{
    WireWriter w;
    w.u32(kProtocolVersion);
    return frameOf(MsgType::Hello, w);
}

std::vector<uint8_t>
makeHelloOk()
{
    WireWriter w;
    w.u32(kProtocolVersion);
    return frameOf(MsgType::HelloOk, w);
}

std::vector<uint8_t>
makeSubmit(const JobSpec &spec)
{
    WireWriter w;
    spec.encode(w);
    return frameOf(MsgType::Submit, w);
}

std::vector<uint8_t>
makeSubmitted(uint64_t job_id, JobState state)
{
    WireWriter w;
    w.u64(job_id);
    w.u8(static_cast<uint8_t>(state));
    return frameOf(MsgType::Submitted, w);
}

std::vector<uint8_t>
makePoll(uint64_t job_id)
{
    WireWriter w;
    w.u64(job_id);
    return frameOf(MsgType::Poll, w);
}

std::vector<uint8_t>
makeJobResult(uint64_t job_id, const std::vector<uint8_t> &result_bytes)
{
    WireWriter w;
    w.u64(job_id);
    w.bytes(result_bytes);
    return frameOf(MsgType::JobResult, w);
}

std::vector<uint8_t>
makeJobError(uint64_t job_id, JobState state, const std::string &message)
{
    WireWriter w;
    w.u64(job_id);
    w.u8(static_cast<uint8_t>(state));
    w.str(message);
    return frameOf(MsgType::JobError, w);
}

std::vector<uint8_t>
makePing()
{
    return emptyFrame(MsgType::Ping);
}

std::vector<uint8_t>
makePong()
{
    return emptyFrame(MsgType::Pong);
}

std::vector<uint8_t>
makeDrain()
{
    return emptyFrame(MsgType::Drain);
}

std::vector<uint8_t>
makeDrainOk(uint32_t jobs_in_flight)
{
    WireWriter w;
    w.u32(jobs_in_flight);
    return frameOf(MsgType::DrainOk, w);
}

std::vector<uint8_t>
makeError(const std::string &message)
{
    WireWriter w;
    w.str(message);
    return frameOf(MsgType::Error, w);
}

std::vector<uint8_t>
makeAuthChallenge(const uint8_t *nonce, size_t size)
{
    WireWriter w;
    w.bytes(std::vector<uint8_t>(nonce, nonce + size));
    return frameOf(MsgType::AuthChallenge, w);
}

std::vector<uint8_t>
makeAuthResponse(const uint8_t *mac, size_t size)
{
    WireWriter w;
    w.bytes(std::vector<uint8_t>(mac, mac + size));
    return frameOf(MsgType::AuthResponse, w);
}

std::vector<uint8_t>
makeAuthReject(const std::string &reason)
{
    WireWriter w;
    w.str(reason);
    return frameOf(MsgType::AuthReject, w);
}

} // namespace net
} // namespace react
