/**
 * @file
 * Fleet coordinator: lease-based sharding of a sweep across worker
 * daemons, with heartbeat renewal and re-dispatch on loss.
 *
 * ## Model
 *
 * The coordinator is a *client of each worker*: one thread per worker
 * daemon drives the full PR-6 protocol (idempotent Submit/Poll, retry
 * spine, fault injection, auth handshake) against its endpoint.  Work
 * is split into shards by the deterministic planner (harness/shard.hh);
 * shards live in a ready queue, and a worker thread that pops one is
 * granted a *lease* on it.
 *
 * ## Lease state machine
 *
 *     READY --grant(worker w, gen g)--> HELD(w, g)
 *     HELD  --renew(g) within leaseMs-> HELD      (heartbeat: every
 *                                                  successful poll
 *                                                  exchange, and each
 *                                                  job completion)
 *     HELD  --release(g)-------------> READY-or-DONE (shard finished,
 *                                                  or holder failed and
 *                                                  requeued it)
 *     HELD  --leaseMs w/o renew------> EXPIRED -> requeued: re-dispatch
 *                                      to the next free worker
 *
 * Generations are fencing tokens: once a lease expires and the shard is
 * re-granted, the old holder's renew(g) fails and it abandons the shard
 * mid-job.  Abandonment is safe because execution is idempotent -- job
 * ids derive from spec identity, workers cache results, and a re-run
 * produces byte-identical bytes -- so at-least-once dispatch still
 * yields exactly-once *observable* results.  A duplicate result is
 * byte-compared and counted, never appended: the merged output has
 * exactly one entry per job, in input order, regardless of how many
 * workers (or attempts) touched it.
 *
 * A coordinator restart re-derives the same plan, resubmits everything,
 * and is served from worker result caches (plus checkpoint resume for
 * cells that were mid-run), which is what the fleet soak harness
 * proves byte-for-byte against a serial golden.
 */

#ifndef REACT_NET_FLEET_HH
#define REACT_NET_FLEET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/client.hh"
#include "net/protocol.hh"

namespace react {
namespace net {

/**
 * Lease bookkeeping with injected time (milliseconds on any monotonic
 * scale) so expiry logic is unit-testable and deterministic.  Not
 * thread-safe; the coordinator guards it with its own mutex.
 */
class LeaseTable
{
  public:
    explicit LeaseTable(int64_t lease_duration_ms)
        : duration(lease_duration_ms)
    {
    }

    /** Grant @p shard to @p worker; returns the fencing generation. */
    uint64_t grant(size_t shard, size_t worker, int64_t now_ms);

    /** Heartbeat: extend the lease iff @p generation still holds it. */
    bool renew(size_t shard, uint64_t generation, int64_t now_ms);

    /** Drop the lease iff @p generation still holds it. */
    bool release(size_t shard, uint64_t generation);

    /** Remove and return all shards whose lease lapsed by @p now_ms
     *  (ascending shard order: deterministic re-dispatch order). */
    std::vector<size_t> expire(int64_t now_ms);

    bool held(size_t shard) const { return leases.count(shard) != 0; }
    size_t heldCount() const { return leases.size(); }

  private:
    struct Lease
    {
        size_t worker = 0;
        uint64_t generation = 0;
        int64_t expiresAtMs = 0;
    };

    int64_t duration;
    uint64_t nextGeneration = 1;
    /** Ordered map: expire() iterates it, and iteration order feeds the
     *  re-dispatch queue (determinism contract). */
    std::map<size_t, Lease> leases;
};

/** Coordinator options. */
struct FleetConfig
{
    /** Worker endpoints ("unix:/path" / "tcp:host:port"). */
    std::vector<std::string> workers;
    /** Pre-shared key for worker auth handshakes; empty = none. */
    std::vector<uint8_t> fleetKey;
    /** Shard count; 0 = harness::recommendedShardCount. */
    size_t shardCount = 0;
    /** Lease duration: a shard unrenewed this long is re-dispatched. */
    int leaseMs = 3000;
    /** Poll cadence toward workers == lease renewal cadence.  Must be
     *  well under leaseMs or healthy workers get fenced off. */
    int heartbeatMs = 100;
    /** Expiry sweep cadence; 0 = leaseMs / 4. */
    int leaseCheckMs = 0;
    /** Per-exchange budget toward a worker, milliseconds. */
    int requestTimeoutMs = 5000;
    int connectTimeoutMs = 2000;
    /** Per-exchange retry spine of each worker client. */
    RetryPolicy retry;
    /** Transport fault injection toward workers; each worker client
     *  derives its own stream from faults.seed and its index. */
    FaultPlan faults;
    /** Consecutive shard-level transport failures before a worker
     *  thread declares its daemon dead and exits. */
    int maxConsecutiveFailures = 5;
    /** Pause between failed shard attempts on one worker, ms. */
    int failurePauseMs = 100;

    /**
     * Overlay REACT_FLEET_LEASE_MS / REACT_FLEET_HEARTBEAT_MS /
     * REACT_FLEET_SHARDS from the environment (util/env.hh rules:
     * malformed warns and keeps the field).
     */
    void applyEnv();
};

/** Monotonic coordinator counters. */
struct FleetStats
{
    uint64_t jobsTotal = 0;
    uint64_t jobsCompleted = 0;
    uint64_t jobsFailed = 0;
    uint64_t leasesGranted = 0;
    uint64_t leasesExpired = 0;
    /** Shards requeued after expiry or holder failure. */
    uint64_t redispatches = 0;
    /** Results recorded for an already-filled slot (byte-compared). */
    uint64_t duplicateResults = 0;
    /** Duplicate results whose bytes differed -- must stay zero. */
    uint64_t byteMismatches = 0;
    /** Shard-level transport failures across all workers. */
    uint64_t workerFailures = 0;
    uint64_t workersDeclaredDead = 0;
};

/** One job's fate; bytes are the exact wire bytes a worker served. */
struct FleetJobOutcome
{
    uint64_t jobId = 0;
    bool ok = false;
    std::vector<uint8_t> resultBytes;
    std::string error;
};

/** Sweep outcome: jobs[i] corresponds to the input jobs[i]. */
struct FleetResult
{
    /** Every job completed successfully. */
    bool complete = false;
    std::vector<FleetJobOutcome> jobs;
    FleetStats stats;
};

/**
 * Drive @p jobs across config.workers to completion (or until every
 * worker is dead).  Blocking; spawns one client thread per worker.
 */
FleetResult runFleetSweep(const std::vector<JobSpec> &jobs,
                          const FleetConfig &config);

/**
 * Canonical merged-output encoding: u32 job count, then per job (in
 * input order) u64 jobId, u8 ok, u32-length-prefixed result bytes.
 * Byte-identical across coordinator incarnations iff every job's
 * result bytes are -- the fleet soak's acceptance check.
 */
std::vector<uint8_t> encodeFleetOutput(const FleetResult &result);

} // namespace net
} // namespace react

#endif // REACT_NET_FLEET_HH
