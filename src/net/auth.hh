/**
 * @file
 * Fleet session authentication: HMAC challenge-response over RNET.
 *
 * ## Handshake (protocol v2)
 *
 *     client                          server (key configured)
 *     Hello(version)           ->
 *                              <-    AuthChallenge(nonce32)
 *     AuthResponse(mac32)      ->
 *                              <-    HelloOk(version)        (mac good)
 *                              <-    AuthReject(reason)+drop (mac bad)
 *
 * A server with no key configured answers Hello with HelloOk directly,
 * preserving the PR-6 single-host flow.  A server with a key rejects
 * *every* frame type except the handshake sequence until HelloOk has
 * been sent: a stray scanner (or a mis-pointed client) can neither
 * submit jobs nor poison the result cache, and its connection is
 * dropped after the typed AuthReject.
 *
 * The proof is HMAC-SHA256(key, "RNETAUTH1" || nonce): the context
 * prefix domain-separates the handshake from any future keyed use of
 * the same PSK.  Verification is constant-time (util/hmac.hh).
 *
 * ## Nonces and determinism
 *
 * Nonces come from a seeded xoshiro stream (NonceSource), not an
 * entropy source -- the determinism contract bans unseeded randomness
 * in src/, and the threat model is a *trusted-fleet* control plane
 * (see util/hmac.hh): the secret is the key, not the nonce.  Nonces
 * still never repeat within a server's lifetime (distinct stream
 * positions), which is what the challenge needs to pin a response to
 * its own connection.  Deployments wanting unpredictable nonces can
 * seed REACTD_AUTH_SEED per launch.
 */

#ifndef REACT_NET_AUTH_HH
#define REACT_NET_AUTH_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/hmac.hh"
#include "util/rng.hh"

namespace react {
namespace net {

/** Challenge nonce size on the wire. */
constexpr size_t kAuthNonceSize = 32;

using AuthNonce = std::array<uint8_t, kAuthNonceSize>;
using AuthMac = std::array<uint8_t, kSha256Size>;

/** Compute the handshake proof for @p nonce under @p key. */
AuthMac authProof(const std::vector<uint8_t> &key, const AuthNonce &nonce);

/** Constant-time check of a received @p mac against the expected proof. */
bool verifyAuthProof(const std::vector<uint8_t> &key, const AuthNonce &nonce,
                     const uint8_t *mac, size_t mac_size);

/** Seeded, never-repeating challenge-nonce stream (see file comment). */
class NonceSource
{
  public:
    explicit NonceSource(uint64_t seed) : rng_(seed) {}

    AuthNonce next();

  private:
    Rng rng_;
};

/**
 * Load the fleet pre-shared key: `REACT_FLEET_KEY` (literal bytes) wins
 * over `REACT_FLEET_KEY_FILE` (file contents, one trailing newline
 * stripped).  Neither set -> nullopt (authentication disabled).  A
 * configured key file that cannot be read or is empty *throws* -- a
 * server asked to authenticate must never silently start open.
 */
std::optional<std::vector<uint8_t>> loadFleetKey();

} // namespace net
} // namespace react

#endif // REACT_NET_AUTH_HH
