#include "endpoint.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>

namespace react {
namespace net {

std::string
Endpoint::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

bool
Endpoint::parse(const std::string &text, Endpoint *out, std::string *error)
{
    const auto fail = [error](const std::string &message) {
        if (error != nullptr)
            *error = message;
        return false;
    };
    if (text.empty())
        return fail("empty endpoint");
    if (text.rfind("unix:", 0) == 0) {
        const std::string p = text.substr(5);
        if (p.empty())
            return fail("unix endpoint needs a socket path: '" + text +
                        "'");
        out->kind = Kind::Unix;
        out->path = p;
        out->host.clear();
        out->port = 0;
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        // rfind so "tcp:host:port" still parses if the host ever grows
        // a colon-free service suffix; IPv6 literals are out of scope.
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos)
            return fail("tcp endpoint needs host:port: '" + text + "'");
        const std::string h = rest.substr(0, colon);
        const std::string p = rest.substr(colon + 1);
        if (h.empty())
            return fail("tcp endpoint has an empty host: '" + text + "'");
        if (p.empty() ||
            p.find_first_not_of("0123456789") != std::string::npos)
            return fail("tcp endpoint has a non-numeric port: '" + text +
                        "'");
        const unsigned long value = std::strtoul(p.c_str(), nullptr, 10);
        if (p.size() > 5 || value > 65535)
            return fail("tcp port out of range: '" + text + "'");
        out->kind = Kind::Tcp;
        out->host = h;
        out->port = static_cast<uint16_t>(value);
        out->path.clear();
        return true;
    }
    // A colon before any '/' looks like a scheme we don't know; a bare
    // filesystem path ("/tmp/x.sock", "./sock") is the legacy spelling
    // of unix: and stays accepted.
    const size_t colon = text.find(':');
    if (colon != std::string::npos && text.find('/') > colon)
        return fail("unknown endpoint scheme: '" + text + "'");
    out->kind = Kind::Unix;
    out->path = text;
    out->host.clear();
    out->port = 0;
    return true;
}

Endpoint
Endpoint::parseOrThrow(const std::string &text)
{
    Endpoint endpoint;
    std::string error;
    if (!parse(text, &endpoint, &error))
        throw SocketError("bad endpoint: " + error);
    return endpoint;
}

Socket
listenOn(const Endpoint &endpoint, int backlog)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return listenUnix(endpoint.path, backlog);
    return listenTcp(endpoint.host, endpoint.port, backlog);
}

Socket
connectTo(const Endpoint &endpoint, int timeout_ms)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return connectUnix(endpoint.path, timeout_ms);
    return connectTcp(endpoint.host, endpoint.port, timeout_ms);
}

uint16_t
boundTcpPort(int fd)
{
    sockaddr_in addr = {};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        throw SocketError(std::string("getsockname: ") +
                          std::strerror(errno));
    if (addr.sin_family != AF_INET)
        throw SocketError("boundTcpPort: fd is not a TCP socket");
    return ntohs(addr.sin_port);
}

} // namespace net
} // namespace react
