/**
 * @file
 * Unified transport endpoints: `unix:/path` and `tcp:host:port`.
 *
 * PR 6 served reactd over AF_UNIX only -- perfect for single-host CI
 * (no port races, no network flakiness).  The fleet work adds TCP so
 * whole sweeps can shard across machines; everything above the socket
 * layer (framing, protocol, retry spine, fault injection) is transport
 * agnostic, so the only new surface is this small parser plus TCP
 * listen/connect in socket.cc.
 *
 * Accepted spellings:
 *
 *     unix:/tmp/reactd.sock     filesystem AF_UNIX stream socket
 *     tcp:host:port             AF_INET stream socket ("tcp:0.0.0.0:7460"
 *                               to serve, "tcp:db-host:7460" to dial;
 *                               port 0 binds an ephemeral port, reported
 *                               back by Server::boundEndpoint())
 *     /tmp/reactd.sock          bare path: legacy spelling of unix:
 *
 * Parsing is strict beyond those forms: an empty host, a non-numeric or
 * out-of-range port, or an unknown scheme is an error, reported through
 * the return value so CLI layers can print it without catching.
 */

#ifndef REACT_NET_ENDPOINT_HH
#define REACT_NET_ENDPOINT_HH

#include <cstdint>
#include <string>

#include "net/socket.hh"

namespace react {
namespace net {

/** One parsed transport address; see file comment for spellings. */
struct Endpoint
{
    enum class Kind : uint8_t
    {
        Unix = 0,
        Tcp = 1,
    };

    Kind kind = Kind::Unix;
    /** AF_UNIX socket path (Unix kind only). */
    std::string path = "/tmp/reactd.sock";
    /** Host name or dotted quad (Tcp kind only). */
    std::string host;
    /** TCP port; 0 asks the OS for an ephemeral port when listening. */
    uint16_t port = 0;

    /** Canonical URI spelling ("unix:/path" / "tcp:host:port"). */
    std::string str() const;

    /**
     * Parse @p text into @p out.  @return false on malformed input with
     * a diagnostic in @p error (may be null).  @p out is untouched on
     * failure.
     */
    static bool parse(const std::string &text, Endpoint *out,
                      std::string *error);

    /** Parse or throw SocketError (for call sites past CLI validation). */
    static Endpoint parseOrThrow(const std::string &text);
};

/** Bind + listen on @p endpoint.  @throws SocketError. */
Socket listenOn(const Endpoint &endpoint, int backlog = 16);

/** Connect to @p endpoint within @p timeout_ms.  @throws SocketError. */
Socket connectTo(const Endpoint &endpoint, int timeout_ms);

/** The local port a bound TCP socket actually got (resolves port 0).
 *  @throws SocketError on a non-TCP or unbound fd. */
uint16_t boundTcpPort(int fd);

} // namespace net
} // namespace react

#endif // REACT_NET_ENDPOINT_HH
