#include "client.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "net/auth.hh"
#include "net/endpoint.hh"
#include "util/determinism.hh"
#include "util/logging.hh"

namespace react {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * The client's only sanctioned clock read.  Wall time paces request
 * timeouts and retry backoff -- *whether* an exchange is retried, never
 * *what* a job computes: results come back as server-produced bytes
 * whose identity the soak suite checks against direct local runs.
 */
Clock::time_point
wallNow()
{
    REACT_NONDET_OK("wall clock paces timeouts/retries only; result bytes are server-produced");
    return Clock::now();
}

int
remainingMs(Clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - wallNow());
    return static_cast<int>(std::max<int64_t>(1, left.count()));
}

} // namespace

double
RetryPolicy::backoffMs(int attempt, Rng *rng) const
{
    const double envelope = std::min(
        maxBackoffMs,
        initialBackoffMs * std::ldexp(1.0, std::min(attempt - 1, 30)));
    return envelope * (0.5 + 0.5 * rng->uniform());
}

Client::Client(const ClientConfig &config_in)
    : config(config_in), injector(config_in.faults),
      jitterRng(config_in.jitterSeed)
{
}

Client::~Client() = default;

void
Client::disconnect()
{
    sock.close();
    decoder = FrameDecoder();
}

void
Client::ensureConnected()
{
    if (sock.valid())
        return;
    // Injected connection refusal: drawn from its own derived stream
    // (see FaultInjector::nextConnectRefused) and surfaced exactly like
    // a real ECONNREFUSED so the retry spine handles both identically.
    if (injector.nextConnectRefused())
        throw SocketError("injected connection refusal");
    if (clientStats.connects > 0)
        ++clientStats.reconnects;
    sock = connectTo(Endpoint::parseOrThrow(config.endpoint),
                     config.connectTimeoutMs);
    ++clientStats.connects;
    decoder = FrameDecoder();
    transmit(makeHello());
    Frame reply = awaitFrame();
    if (reply.type == static_cast<uint8_t>(MsgType::AuthChallenge)) {
        WireReader cr(reply.payload);
        const std::vector<uint8_t> nonce_bytes = cr.bytes();
        cr.expectEnd();
        if (nonce_bytes.size() != kAuthNonceSize) {
            disconnect();
            throw ProtocolError("auth challenge nonce has wrong size");
        }
        if (config.fleetKey.empty()) {
            disconnect();
            // Terminal: no number of retries conjures up a key.
            throw ClientError("server requires authentication and no "
                              "fleet key is configured",
                              ClientError::Kind::Rejected);
        }
        AuthNonce nonce;
        std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
        const AuthMac mac = authProof(config.fleetKey, nonce);
        transmit(makeAuthResponse(mac.data(), mac.size()));
        reply = awaitFrame();
    }
    if (reply.type == static_cast<uint8_t>(MsgType::AuthReject)) {
        WireReader rr(reply.payload);
        const std::string reason = rr.str();
        rr.expectEnd();
        disconnect();
        // Terminal: the key is wrong, retrying re-sends the same proof.
        throw ClientError("server rejected session: " + reason,
                          ClientError::Kind::Rejected);
    }
    if (reply.type != static_cast<uint8_t>(MsgType::HelloOk)) {
        disconnect();
        throw ProtocolError("handshake rejected (frame type " +
                            std::to_string(reply.type) + ")");
    }
    WireReader r(reply.payload);
    const uint32_t version = r.u32();
    r.expectEnd();
    if (version != kProtocolVersion) {
        disconnect();
        throw ProtocolError("server speaks protocol v" +
                            std::to_string(version) + ", want v" +
                            std::to_string(kProtocolVersion));
    }
}

void
Client::transmit(const std::vector<uint8_t> &frame)
{
    switch (injector.nextAction()) {
      case FaultAction::Drop:
        // Swallowed: the exchange times out and the retry spine takes
        // over.  The frame counter still ticks (a send was attempted).
        ++clientStats.framesSent;
        return;
      case FaultAction::Corrupt: {
        std::vector<uint8_t> mangled = frame;
        injector.corruptInPlace(&mangled);
        sendAll(sock.fd(), mangled.data(), mangled.size(),
                config.requestTimeoutMs);
        ++clientStats.framesSent;
        return;
      }
      case FaultAction::Delay:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(injector.delaySeconds()));
        break;
      case FaultAction::PartialWrite: {
        const size_t cut = injector.partialLength(frame.size());
        if (cut > 0)
            sendAll(sock.fd(), frame.data(), cut,
                    config.requestTimeoutMs);
        ++clientStats.framesSent;
        // Tear the connection so the server sees a mid-frame EOF --
        // the classic torn write.
        disconnect();
        throw SocketError("injected partial write");
      }
      case FaultAction::Reset: {
        // Connection reset mid-frame: like a torn write, but modelling
        // the peer/network killing an established connection (RST).
        const size_t cut = injector.partialLength(frame.size());
        if (cut > 0)
            sendAll(sock.fd(), frame.data(), cut,
                    config.requestTimeoutMs);
        ++clientStats.framesSent;
        disconnect();
        throw SocketError("injected connection reset");
      }
      case FaultAction::Blackhole:
        // Partition: the frame vanishes but the connection stays "up";
        // the exchange times out against a live socket and subsequent
        // frames keep vanishing until the partition ends.
        ++clientStats.framesSent;
        return;
      case FaultAction::Deliver:
        break;
    }
    sendAll(sock.fd(), frame.data(), frame.size(),
            config.requestTimeoutMs);
    ++clientStats.framesSent;
}

Frame
Client::awaitFrame()
{
    const Clock::time_point deadline = wallNow() +
        std::chrono::milliseconds(config.requestTimeoutMs);
    Frame frame;
    for (;;) {
        if (decoder.next(&frame)) {
            ++clientStats.framesReceived;
            return frame;
        }
        if (wallNow() >= deadline) {
            ++clientStats.timeouts;
            throw SocketError("request timed out");
        }
        uint8_t buf[4096];
        const size_t n =
            recvSome(sock.fd(), buf, sizeof(buf), remainingMs(deadline));
        if (n == 0)
            throw SocketError("server closed the connection");
        decoder.feed(buf, n);
    }
}

JobOutcome
Client::runJob(const JobSpec &spec,
               const std::function<void(JobState)> &on_progress)
{
    const uint64_t id = spec.jobId();
    int attempt = 0;
    std::string last_error = "no attempt made";
    for (;;) {
        try {
            ensureConnected();
            transmit(makeSubmit(spec));
            for (;;) {
                const Frame reply = awaitFrame();
                WireReader r(reply.payload);
                switch (static_cast<MsgType>(reply.type)) {
                  case MsgType::JobResult: {
                    const uint64_t got_id = r.u64();
                    std::vector<uint8_t> result_bytes = r.bytes();
                    r.expectEnd();
                    if (got_id != id)
                        throw ProtocolError(
                            "result for wrong job id");
                    JobOutcome outcome;
                    outcome.jobId = id;
                    WireReader rr(result_bytes);
                    outcome.result = decodeResult(rr);
                    rr.expectEnd();
                    outcome.resultBytes = std::move(result_bytes);
                    return outcome;
                  }
                  case MsgType::JobError: {
                    const uint64_t got_id = r.u64();
                    const JobState state =
                        static_cast<JobState>(r.u8());
                    const std::string message = r.str();
                    r.expectEnd();
                    (void)got_id;
                    // The job itself failed or expired: terminal, not
                    // a transport fault.  Retrying would re-run a cell
                    // the server already judged.
                    const bool expired = state == JobState::Expired;
                    throw ClientError(
                        "job " + spec.cellKey() +
                            (expired ? " expired on server: "
                                     : " failed on server: ") +
                            message,
                        expired ? ClientError::Kind::DeadlineExpired
                                : ClientError::Kind::JobFailed);
                  }
                  case MsgType::Submitted: {
                    const uint64_t got_id = r.u64();
                    const JobState state =
                        static_cast<JobState>(r.u8());
                    r.expectEnd();
                    (void)got_id;
                    if (on_progress)
                        on_progress(state);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            config.pollIntervalMs));
                    transmit(makePoll(id));
                    continue;
                  }
                  case MsgType::Error: {
                    const std::string message = r.str();
                    ++clientStats.serverErrors;
                    // Server-side rejection (draining, or a frame of
                    // ours it could not parse -- likely one we
                    // corrupted): transient.
                    throw SocketError("server error: " + message);
                  }
                  default:
                    throw ProtocolError(
                        "unexpected reply frame type " +
                        std::to_string(reply.type));
                }
            }
        } catch (const ClientError &) {
            throw;
        } catch (const std::exception &e) {
            last_error = e.what();
            disconnect();
        }
        ++attempt;
        if (attempt > config.retry.maxRetries)
            throw ClientError(
                "job " + spec.cellKey() + " abandoned after " +
                std::to_string(config.retry.maxRetries) +
                " retries; last error: " + last_error);
        ++clientStats.retries;
        const double pause_ms =
            config.retry.backoffMs(attempt, &jitterRng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pause_ms));
    }
}

bool
Client::ping()
{
    try {
        ensureConnected();
        transmit(makePing());
        const Frame reply = awaitFrame();
        if (reply.type != static_cast<uint8_t>(MsgType::Pong))
            return false;
        WireReader r(reply.payload);
        r.expectEnd();
        return true;
    } catch (const ClientError &e) {
        disconnect();
        // A rejected session is a terminal verdict about credentials,
        // not an unreachable server; callers must see the difference.
        if (e.kind == ClientError::Kind::Rejected)
            throw;
        return false;
    } catch (const std::exception &) {
        disconnect();
        return false;
    }
}

uint32_t
Client::drain()
{
    int attempt = 0;
    std::string last_error = "no attempt made";
    for (;;) {
        try {
            ensureConnected();
            transmit(makeDrain());
            const Frame reply = awaitFrame();
            if (reply.type != static_cast<uint8_t>(MsgType::DrainOk))
                throw ProtocolError("unexpected reply frame type " +
                                    std::to_string(reply.type));
            WireReader r(reply.payload);
            const uint32_t in_flight = r.u32();
            r.expectEnd();
            return in_flight;
        } catch (const ClientError &) {
            throw;
        } catch (const std::exception &e) {
            last_error = e.what();
            disconnect();
        }
        ++attempt;
        if (attempt > config.retry.maxRetries)
            throw ClientError("drain abandoned after " +
                              std::to_string(config.retry.maxRetries) +
                              " retries; last error: " + last_error);
        ++clientStats.retries;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                config.retry.backoffMs(attempt, &jitterRng)));
    }
}

} // namespace net
} // namespace react
