#include "client.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/determinism.hh"
#include "util/logging.hh"

namespace react {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * The client's only sanctioned clock read.  Wall time paces request
 * timeouts and retry backoff -- *whether* an exchange is retried, never
 * *what* a job computes: results come back as server-produced bytes
 * whose identity the soak suite checks against direct local runs.
 */
Clock::time_point
wallNow()
{
    REACT_NONDET_OK("wall clock paces timeouts/retries only; result bytes are server-produced");
    return Clock::now();
}

int
remainingMs(Clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - wallNow());
    return static_cast<int>(std::max<int64_t>(1, left.count()));
}

} // namespace

double
RetryPolicy::backoffMs(int attempt, Rng *rng) const
{
    const double envelope = std::min(
        maxBackoffMs,
        initialBackoffMs * std::ldexp(1.0, std::min(attempt - 1, 30)));
    return envelope * (0.5 + 0.5 * rng->uniform());
}

Client::Client(const ClientConfig &config_in)
    : config(config_in), injector(config_in.faults),
      jitterRng(config_in.jitterSeed)
{
}

Client::~Client() = default;

void
Client::disconnect()
{
    sock.close();
    decoder = FrameDecoder();
}

void
Client::ensureConnected()
{
    if (sock.valid())
        return;
    if (clientStats.connects > 0)
        ++clientStats.reconnects;
    sock = connectUnix(config.socketPath, config.connectTimeoutMs);
    ++clientStats.connects;
    decoder = FrameDecoder();
    transmit(makeHello());
    const Frame reply = awaitFrame();
    if (reply.type != static_cast<uint8_t>(MsgType::HelloOk)) {
        disconnect();
        throw ProtocolError("handshake rejected (frame type " +
                            std::to_string(reply.type) + ")");
    }
    WireReader r(reply.payload);
    const uint32_t version = r.u32();
    r.expectEnd();
    if (version != kProtocolVersion) {
        disconnect();
        throw ProtocolError("server speaks protocol v" +
                            std::to_string(version) + ", want v" +
                            std::to_string(kProtocolVersion));
    }
}

void
Client::transmit(const std::vector<uint8_t> &frame)
{
    switch (injector.nextAction()) {
      case FaultAction::Drop:
        // Swallowed: the exchange times out and the retry spine takes
        // over.  The frame counter still ticks (a send was attempted).
        ++clientStats.framesSent;
        return;
      case FaultAction::Corrupt: {
        std::vector<uint8_t> mangled = frame;
        injector.corruptInPlace(&mangled);
        sendAll(sock.fd(), mangled.data(), mangled.size(),
                config.requestTimeoutMs);
        ++clientStats.framesSent;
        return;
      }
      case FaultAction::Delay:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(injector.delaySeconds()));
        break;
      case FaultAction::PartialWrite: {
        const size_t cut = injector.partialLength(frame.size());
        if (cut > 0)
            sendAll(sock.fd(), frame.data(), cut,
                    config.requestTimeoutMs);
        ++clientStats.framesSent;
        // Tear the connection so the server sees a mid-frame EOF --
        // the classic torn write.
        disconnect();
        throw SocketError("injected partial write");
      }
      case FaultAction::Deliver:
        break;
    }
    sendAll(sock.fd(), frame.data(), frame.size(),
            config.requestTimeoutMs);
    ++clientStats.framesSent;
}

Frame
Client::awaitFrame()
{
    const Clock::time_point deadline = wallNow() +
        std::chrono::milliseconds(config.requestTimeoutMs);
    Frame frame;
    for (;;) {
        if (decoder.next(&frame)) {
            ++clientStats.framesReceived;
            return frame;
        }
        if (wallNow() >= deadline) {
            ++clientStats.timeouts;
            throw SocketError("request timed out");
        }
        uint8_t buf[4096];
        const size_t n =
            recvSome(sock.fd(), buf, sizeof(buf), remainingMs(deadline));
        if (n == 0)
            throw SocketError("server closed the connection");
        decoder.feed(buf, n);
    }
}

JobOutcome
Client::runJob(const JobSpec &spec)
{
    const uint64_t id = spec.jobId();
    int attempt = 0;
    std::string last_error = "no attempt made";
    for (;;) {
        try {
            ensureConnected();
            transmit(makeSubmit(spec));
            for (;;) {
                const Frame reply = awaitFrame();
                WireReader r(reply.payload);
                switch (static_cast<MsgType>(reply.type)) {
                  case MsgType::JobResult: {
                    const uint64_t got_id = r.u64();
                    std::vector<uint8_t> result_bytes = r.bytes();
                    r.expectEnd();
                    if (got_id != id)
                        throw ProtocolError(
                            "result for wrong job id");
                    JobOutcome outcome;
                    outcome.jobId = id;
                    WireReader rr(result_bytes);
                    outcome.result = decodeResult(rr);
                    rr.expectEnd();
                    outcome.resultBytes = std::move(result_bytes);
                    return outcome;
                  }
                  case MsgType::JobError: {
                    const uint64_t got_id = r.u64();
                    const std::string message = r.str();
                    r.expectEnd();
                    (void)got_id;
                    // The job itself failed or expired: terminal, not
                    // a transport fault.  Retrying would re-run a cell
                    // the server already judged.
                    throw ClientError("job " + spec.cellKey() +
                                      " failed on server: " + message);
                  }
                  case MsgType::Submitted: {
                    const uint64_t got_id = r.u64();
                    const uint8_t state = r.u8();
                    r.expectEnd();
                    (void)got_id;
                    (void)state;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            config.pollIntervalMs));
                    transmit(makePoll(id));
                    continue;
                  }
                  case MsgType::Error: {
                    const std::string message = r.str();
                    ++clientStats.serverErrors;
                    // Server-side rejection (draining, or a frame of
                    // ours it could not parse -- likely one we
                    // corrupted): transient.
                    throw SocketError("server error: " + message);
                  }
                  default:
                    throw ProtocolError(
                        "unexpected reply frame type " +
                        std::to_string(reply.type));
                }
            }
        } catch (const ClientError &) {
            throw;
        } catch (const std::exception &e) {
            last_error = e.what();
            disconnect();
        }
        ++attempt;
        if (attempt > config.retry.maxRetries)
            throw ClientError(
                "job " + spec.cellKey() + " abandoned after " +
                std::to_string(config.retry.maxRetries) +
                " retries; last error: " + last_error);
        ++clientStats.retries;
        const double pause_ms =
            config.retry.backoffMs(attempt, &jitterRng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pause_ms));
    }
}

bool
Client::ping()
{
    try {
        ensureConnected();
        transmit(makePing());
        const Frame reply = awaitFrame();
        if (reply.type != static_cast<uint8_t>(MsgType::Pong))
            return false;
        WireReader r(reply.payload);
        r.expectEnd();
        return true;
    } catch (const std::exception &) {
        disconnect();
        return false;
    }
}

uint32_t
Client::drain()
{
    int attempt = 0;
    std::string last_error = "no attempt made";
    for (;;) {
        try {
            ensureConnected();
            transmit(makeDrain());
            const Frame reply = awaitFrame();
            if (reply.type != static_cast<uint8_t>(MsgType::DrainOk))
                throw ProtocolError("unexpected reply frame type " +
                                    std::to_string(reply.type));
            WireReader r(reply.payload);
            const uint32_t in_flight = r.u32();
            r.expectEnd();
            return in_flight;
        } catch (const std::exception &e) {
            last_error = e.what();
            disconnect();
        }
        ++attempt;
        if (attempt > config.retry.maxRetries)
            throw ClientError("drain abandoned after " +
                              std::to_string(config.retry.maxRetries) +
                              " retries; last error: " + last_error);
        ++clientStats.retries;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                config.retry.backoffMs(attempt, &jitterRng)));
    }
}

} // namespace net
} // namespace react
