#include "server.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/grid.hh"
#include "harness/parallel_runner.hh"
#include "net/auth.hh"
#include "net/endpoint.hh"
#include "net/frame.hh"
#include "net/protocol.hh"
#include "net/socket.hh"
#include "util/determinism.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace react {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * The server's only sanctioned clock read.  Wall time feeds queue
 * deadlines and idle-timeout bookkeeping -- *whether* a job runs or a
 * silent peer is dropped, never *what* a job computes: result bytes
 * come from runGridCell on identity-derived seeds.
 */
Clock::time_point
wallNow()
{
    REACT_NONDET_OK("wall clock feeds deadlines/idle timeouts only, never result bytes");
    return Clock::now();
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double
secondsSince(Clock::time_point t0, Clock::time_point now)
{
    return std::chrono::duration<double>(now - t0).count();
}

} // namespace

ServerConfig
ServerConfig::fromEnv()
{
    ServerConfig config;
    if (const auto v = env::stringVar("REACTD_SOCKET"))
        config.endpoint = *v;
    // REACTD_ENDPOINT wins over the legacy unix-path spelling.
    if (const auto v = env::stringVar("REACTD_ENDPOINT"))
        config.endpoint = *v;
    if (const auto v = env::intVar("REACTD_THREADS", 1, 1 << 16))
        config.threads = static_cast<int>(*v);
    if (const auto v = env::stringVar("REACTD_CHECKPOINT_DIR"))
        config.checkpointDir = *v;
    if (const auto v =
            env::u64Var("REACTD_CHECKPOINT_INTERVAL", 1, UINT64_MAX))
        config.checkpointIntervalSteps = *v;
    if (const auto v = env::intVar("REACTD_IDLE_TIMEOUT_MS", 1, 1 << 30))
        config.idleTimeoutMs = static_cast<int>(*v);
    if (const auto v = env::u64Var("REACTD_OUTBUF_MAX", 1024,
                                   1ull << 32))
        config.maxOutbufBytes = static_cast<size_t>(*v);
    if (const auto v = env::u64Var("REACTD_AUTH_SEED", 0, UINT64_MAX))
        config.authNonceSeed = *v;
    if (const auto key = loadFleetKey())
        config.fleetKey = *key;
    return config;
}

struct Server::Impl
{
    explicit Impl(const ServerConfig &config_in)
        : config(config_in), nonces(config_in.authNonceSeed)
    {
    }

    ServerConfig config;
    ServerStats stats;
    NonceSource nonces;

    // ---- bound endpoint (boundLock) -------------------------------
    mutable std::mutex boundLock;
    std::string boundEp;

    // ---- job table (jobsLock) ------------------------------------
    struct Job
    {
        JobSpec spec;
        JobState state = JobState::Queued;
        std::vector<uint8_t> resultBytes;
        std::string errorMessage;
        Clock::time_point submittedAt;
        uint64_t doneTick = 0;
    };
    std::mutex jobsLock;
    std::condition_variable jobsCv;
    std::unordered_map<uint64_t, Job> jobs;
    std::deque<uint64_t> pending;
    std::deque<uint64_t> doneOrder;
    uint64_t doneTicks = 0;
    /** Jobs currently Queued or Running, maintained at every lifecycle
     *  transition (under jobsLock).  DrainOk reports this count on the
     *  wire; deriving it by iterating the unordered job table would put
     *  bucket order one refactor away from the payload, which the
     *  determinism lint bans. */
    uint64_t inFlightJobs = 0;

    // ---- drain coordination --------------------------------------
    std::atomic<bool> draining{false};
    std::atomic<bool> executorDone{false};
    int wakePipe[2] = {-1, -1};

    // ---- connections (I/O thread only) ---------------------------
    struct Connection
    {
        Socket sock;
        FrameDecoder decoder;
        std::vector<uint8_t> outbuf;
        size_t outCursor = 0;
        Clock::time_point lastActivity;
        bool closing = false;
        /** Session may submit/poll.  Starts true when no fleet key is
         *  configured (auth disabled); otherwise flipped only by a
         *  verified AuthResponse. */
        bool authenticated = false;
        /** An AuthChallenge was issued; nonce below is live. */
        bool challenged = false;
        AuthNonce nonce = {};
    };
    std::vector<std::unique_ptr<Connection>> connections;

    void wake()
    {
        if (wakePipe[1] >= 0) {
            const uint8_t byte = 1;
            // Best-effort: a full pipe already guarantees a pending wake.
            [[maybe_unused]] const ssize_t rc =
                ::write(wakePipe[1], &byte, 1);
        }
    }

    // ---- executor -------------------------------------------------
    void executorLoop();
    void runBatch(std::vector<uint64_t> batch_ids);
    void evictOverflow();

    // ---- protocol -------------------------------------------------
    void handleFrame(Connection *conn, const Frame &frame);
    void sendFrame(Connection *conn, const std::vector<uint8_t> &frame);
    void flushConnection(Connection *conn);
};

Server::Server(const ServerConfig &config_in)
    : impl(std::make_unique<Impl>(config_in))
{
}

Server::~Server() = default;

const ServerStats &
Server::stats() const
{
    return impl->stats;
}

const ServerConfig &
Server::config() const
{
    return impl->config;
}

std::string
Server::boundEndpoint() const
{
    std::lock_guard<std::mutex> g(impl->boundLock);
    return impl->boundEp;
}

void
Server::requestDrain()
{
    // Order matters: raise draining before the runner stop flag so the
    // executor cannot clear the stop request after we set it.
    impl->draining.store(true, std::memory_order_release);
    harness::ParallelRunner::requestStop();
    impl->jobsCv.notify_all();
    impl->wake();
}

namespace {

REACT_NONDET_OK("signal-handler rendezvous pointer; drain timing only, not results");
std::atomic<Server *> signalTarget{nullptr};

void
onDrainSignal(int)
{
    // The atomic load and the pipe write inside requestDrain are
    // async-signal-safe; condition_variable::notify_all formally is
    // not, but every wait in the process is bounded by a timeout or
    // woken by the pipe, so the worst case is one period of latency.
    Server *server = signalTarget.load(std::memory_order_acquire);
    if (server != nullptr)
        server->requestDrain();
}

} // namespace

void
Server::installSignalHandlers(Server *server)
{
    signalTarget.store(server, std::memory_order_release);
    struct sigaction sa = {};
    sa.sa_handler = server != nullptr ? onDrainSignal : SIG_DFL;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

void
Server::Impl::evictOverflow()
{
    // Called with jobsLock held.  Oldest completed jobs leave first;
    // queued/running jobs are never evicted.
    while (jobs.size() > config.maxCachedResults && !doneOrder.empty()) {
        const uint64_t victim = doneOrder.front();
        doneOrder.pop_front();
        auto it = jobs.find(victim);
        if (it == jobs.end())
            continue;
        const JobState st = it->second.state;
        if (st == JobState::Done || st == JobState::Failed ||
            st == JobState::Expired) {
            jobs.erase(it);
            ++stats.cacheEvictions;
        }
    }
}

void
Server::Impl::runBatch(std::vector<uint64_t> batch_ids)
{
    struct Slot
    {
        uint64_t id = 0;
        JobSpec spec;
        std::vector<uint8_t> resultBytes;
        std::string error;
        bool executed = false;
    };
    std::vector<Slot> slots;
    slots.reserve(batch_ids.size());

    const Clock::time_point now = wallNow();
    {
        std::lock_guard<std::mutex> g(jobsLock);
        for (const uint64_t id : batch_ids) {
            auto it = jobs.find(id);
            if (it == jobs.end())
                continue;
            Job &job = it->second;
            if (job.state != JobState::Queued)
                continue;
            // Deadline check at dispatch: a job that waited out its
            // queue budget expires instead of burning a worker.
            if (job.spec.deadlineSeconds > 0.0 &&
                secondsSince(job.submittedAt, now) >
                    job.spec.deadlineSeconds) {
                job.state = JobState::Expired;
                job.errorMessage = "deadline expired in queue";
                job.doneTick = ++doneTicks;
                doneOrder.push_back(id);
                ++stats.jobsExpired;
                --inFlightJobs;
                continue;
            }
            job.state = JobState::Running;
            Slot slot;
            slot.id = id;
            slot.spec = job.spec;
            slots.push_back(std::move(slot));
        }
    }
    if (slots.empty())
        return;

    harness::ParallelRunner runner(config.threads);
    runner.setSignalPolicy(harness::SignalPolicy::External);
    for (auto &slot : slots) {
        Slot *s = &slot;
        runner.submit(s->spec.cellKey(), [this, s]() {
            try {
                harness::ExperimentConfig cell_config = s->spec.toConfig();
                if (!config.checkpointDir.empty()) {
                    // Snapshot named by cell key *and* job id: two specs
                    // sharing a cell (different dt, say) must not fight
                    // over one snapshot file.
                    char id_hex[20];
                    std::snprintf(id_hex, sizeof(id_hex), "%016llx",
                                  static_cast<unsigned long long>(s->id));
                    cell_config.checkpointPath = config.checkpointDir +
                        "/" +
                        harness::checkpointFileName(s->spec.cellKey() +
                                                    ":" + id_hex);
                    cell_config.resume = true;
                    cell_config.checkpointEverySteps =
                        config.checkpointIntervalSteps;
                }
                const harness::ExperimentResult result =
                    harness::runGridCell(s->spec.buffer, s->spec.bench,
                                         s->spec.trace, cell_config,
                                         s->spec.baseSeed);
                WireWriter w;
                encodeResult(w, result);
                s->resultBytes = w.take();
            } catch (const std::exception &e) {
                s->error = e.what();
            }
            s->executed = true;
        });
    }
    runner.run();

    {
        std::lock_guard<std::mutex> g(jobsLock);
        for (auto &slot : slots) {
            auto it = jobs.find(slot.id);
            if (it == jobs.end())
                continue;
            Job &job = it->second;
            if (!slot.executed) {
                // Drain stopped the batch before this cell dispatched;
                // it stays queued and a resubmitting client picks it up
                // after restart.
                job.state = JobState::Queued;
                continue;
            }
            if (slot.error.empty()) {
                job.state = JobState::Done;
                job.resultBytes = std::move(slot.resultBytes);
                ++stats.jobsExecuted;
            } else {
                job.state = JobState::Failed;
                job.errorMessage = slot.error;
                ++stats.jobsFailed;
            }
            job.doneTick = ++doneTicks;
            doneOrder.push_back(slot.id);
            --inFlightJobs;
        }
        evictOverflow();
    }
    wake();
}

void
Server::Impl::executorLoop()
{
    for (;;) {
        std::vector<uint64_t> batch;
        {
            std::unique_lock<std::mutex> lk(jobsLock);
            jobsCv.wait_for(lk, std::chrono::milliseconds(200), [this] {
                return !pending.empty() ||
                    draining.load(std::memory_order_acquire);
            });
            if (draining.load(std::memory_order_acquire))
                break;
            batch.assign(pending.begin(), pending.end());
            pending.clear();
        }
        if (batch.empty())
            continue;
        // A fresh batch must not inherit a stale stop flag from an
        // earlier embedded use; skip the clear once draining so a
        // drain that lands here still stops the batch early.
        if (!draining.load(std::memory_order_acquire))
            harness::ParallelRunner::clearStopRequest();
        runBatch(std::move(batch));
    }
    executorDone.store(true, std::memory_order_release);
    wake();
}

void
Server::Impl::sendFrame(Connection *conn, const std::vector<uint8_t> &frame)
{
    if (conn->closing)
        return;
    // Bounded reply queue: a peer that submits but never reads would
    // otherwise accumulate result frames here without limit.  The warn
    // is the only notification -- the peer cannot be told on a pipe it
    // is not draining.
    const size_t queued = conn->outbuf.size() - conn->outCursor;
    if (queued + frame.size() > config.maxOutbufBytes) {
        ++stats.outbufOverflows;
        react_warn("reactd: dropping connection: outbuf overflow "
                   "(%llu bytes queued + %llu pending > %llu cap)",
                   static_cast<unsigned long long>(queued),
                   static_cast<unsigned long long>(frame.size()),
                   static_cast<unsigned long long>(config.maxOutbufBytes));
        conn->closing = true;
        return;
    }
    conn->outbuf.insert(conn->outbuf.end(), frame.begin(), frame.end());
}

void
Server::Impl::flushConnection(Connection *conn)
{
    while (conn->outCursor < conn->outbuf.size()) {
        const ssize_t n = ::send(
            conn->sock.fd(), conn->outbuf.data() + conn->outCursor,
            conn->outbuf.size() - conn->outCursor, MSG_NOSIGNAL);
        if (n > 0) {
            conn->outCursor += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;  // poll for POLLOUT
        if (n < 0 && errno == EINTR)
            continue;
        conn->closing = true;  // peer reset
        return;
    }
    conn->outbuf.clear();
    conn->outCursor = 0;
}

void
Server::Impl::handleFrame(Connection *conn, const Frame &frame)
{
    ++stats.framesReceived;
    WireReader r(frame.payload);
    // Auth gate: with a fleet key configured, the only frames an
    // unauthenticated peer may speak are the handshake itself.  Anything
    // else gets the typed reject and the connection is dropped -- a
    // scanner can neither submit jobs nor probe the job table.
    if (!conn->authenticated) {
        switch (static_cast<MsgType>(frame.type)) {
          case MsgType::Hello: {
            const uint32_t version = r.u32();
            r.expectEnd();
            if (version != kProtocolVersion) {
                sendFrame(conn,
                          makeError("protocol version mismatch: want " +
                                    std::to_string(kProtocolVersion)));
                conn->closing = true;
                return;
            }
            conn->nonce = nonces.next();
            conn->challenged = true;
            sendFrame(conn, makeAuthChallenge(conn->nonce.data(),
                                              conn->nonce.size()));
            return;
          }
          case MsgType::AuthResponse: {
            const std::vector<uint8_t> mac = r.bytes();
            r.expectEnd();
            if (!conn->challenged ||
                !verifyAuthProof(config.fleetKey, conn->nonce,
                                 mac.data(), mac.size())) {
                ++stats.authRejects;
                react_warn("reactd: auth reject (%s)",
                           conn->challenged ? "bad proof"
                                            : "response before challenge");
                sendFrame(conn, makeAuthReject("authentication failed"));
                conn->closing = true;
                return;
            }
            conn->authenticated = true;
            conn->challenged = false;
            sendFrame(conn, makeHelloOk());
            return;
          }
          default:
            ++stats.authRejects;
            react_warn("reactd: auth reject (frame type %u before "
                       "handshake)",
                       static_cast<unsigned>(frame.type));
            sendFrame(conn, makeAuthReject("not authenticated"));
            conn->closing = true;
            return;
        }
    }
    switch (static_cast<MsgType>(frame.type)) {
      case MsgType::Hello: {
        const uint32_t version = r.u32();
        r.expectEnd();
        if (version != kProtocolVersion) {
            sendFrame(conn, makeError("protocol version mismatch: want " +
                                      std::to_string(kProtocolVersion)));
            conn->closing = true;
            return;
        }
        sendFrame(conn, makeHelloOk());
        return;
      }
      case MsgType::Ping:
        r.expectEnd();
        sendFrame(conn, makePong());
        return;
      case MsgType::Drain: {
        r.expectEnd();
        uint32_t in_flight = 0;
        {
            std::lock_guard<std::mutex> g(jobsLock);
            in_flight = static_cast<uint32_t>(inFlightJobs);
        }
        sendFrame(conn, makeDrainOk(in_flight));
        // Defer the actual drain until the reply is queued; serve()
        // flushes before tearing down.
        draining.store(true, std::memory_order_release);
        harness::ParallelRunner::requestStop();
        jobsCv.notify_all();
        return;
      }
      case MsgType::Submit: {
        const JobSpec spec = JobSpec::decode(r);
        r.expectEnd();
        if (draining.load(std::memory_order_acquire)) {
            sendFrame(conn, makeError("server is draining"));
            return;
        }
        const uint64_t id = spec.jobId();
        std::lock_guard<std::mutex> g(jobsLock);
        auto it = jobs.find(id);
        if (it == jobs.end()) {
            Job job;
            job.spec = spec;
            job.state = JobState::Queued;
            job.submittedAt = wallNow();
            jobs.emplace(id, std::move(job));
            pending.push_back(id);
            ++inFlightJobs;
            ++stats.jobsSubmitted;
            jobsCv.notify_all();
            sendFrame(conn, makeSubmitted(id, JobState::Queued));
            return;
        }
        Job &job = it->second;
        switch (job.state) {
          case JobState::Done:
            ++stats.cacheHits;
            sendFrame(conn, makeJobResult(id, job.resultBytes));
            return;
          case JobState::Failed:
            sendFrame(conn, makeJobError(id, JobState::Failed,
                                         job.errorMessage));
            return;
          case JobState::Expired:
            // A fresh submission restarts the deadline clock.
            job.state = JobState::Queued;
            job.spec = spec;
            job.errorMessage.clear();
            job.submittedAt = wallNow();
            pending.push_back(id);
            ++inFlightJobs;
            ++stats.jobsSubmitted;
            jobsCv.notify_all();
            sendFrame(conn, makeSubmitted(id, JobState::Queued));
            return;
          case JobState::Queued:
          case JobState::Running:
          case JobState::Cached:
            // Idempotent retry: attach, don't duplicate.
            sendFrame(conn, makeSubmitted(id, job.state));
            return;
        }
        return;
      }
      case MsgType::Poll: {
        const uint64_t id = r.u64();
        r.expectEnd();
        std::lock_guard<std::mutex> g(jobsLock);
        auto it = jobs.find(id);
        if (it == jobs.end()) {
            sendFrame(conn, makeJobError(id, JobState::Failed,
                                         "unknown job id"));
            return;
        }
        Job &job = it->second;
        if (job.state == JobState::Queued &&
            job.spec.deadlineSeconds > 0.0 &&
            secondsSince(job.submittedAt, wallNow()) >
                job.spec.deadlineSeconds) {
            job.state = JobState::Expired;
            job.errorMessage = "deadline expired in queue";
            job.doneTick = ++doneTicks;
            doneOrder.push_back(id);
            ++stats.jobsExpired;
            --inFlightJobs;
        }
        switch (job.state) {
          case JobState::Done:
            sendFrame(conn, makeJobResult(id, job.resultBytes));
            return;
          case JobState::Failed:
          case JobState::Expired:
            sendFrame(conn,
                      makeJobError(id, job.state, job.errorMessage));
            return;
          default:
            sendFrame(conn, makeSubmitted(id, job.state));
            return;
        }
      }
      default:
        throw ProtocolError("unexpected frame type " +
                            std::to_string(frame.type));
    }
}

int
Server::serve()
{
    Impl &s = *impl;
    const Endpoint endpoint = Endpoint::parseOrThrow(s.config.endpoint);
    Socket listener = listenOn(endpoint);
    setNonBlocking(listener.fd());

    Endpoint bound = endpoint;
    if (bound.kind == Endpoint::Kind::Tcp)
        bound.port = boundTcpPort(listener.fd());
    {
        std::lock_guard<std::mutex> g(s.boundLock);
        s.boundEp = bound.str();
    }

    if (::pipe2(s.wakePipe, O_NONBLOCK | O_CLOEXEC) != 0)
        react_fatal("reactd: cannot create wake pipe");

    react_inform("reactd: serving on %s (%d worker threads%s%s)",
                 bound.str().c_str(),
                 s.config.threads > 0
                     ? s.config.threads
                     : harness::ParallelRunner::defaultThreadCount(),
                 s.config.checkpointDir.empty() ? ""
                                                : ", checkpointing",
                 s.config.fleetKey.empty() ? "" : ", authenticated");

    std::thread executor([&s] { s.executorLoop(); });

    bool listening = true;
    for (;;) {
        const bool drain_now = s.draining.load(std::memory_order_acquire);
        if (drain_now && listening) {
            listener.close();
            listening = false;
        }

        // Build the poll set: wake pipe, listener, every connection.
        std::vector<pollfd> pfds;
        pfds.reserve(s.connections.size() + 2);
        pollfd wake_pfd = {};
        wake_pfd.fd = s.wakePipe[0];
        wake_pfd.events = POLLIN;
        pfds.push_back(wake_pfd);
        if (listening) {
            pollfd lp = {};
            lp.fd = listener.fd();
            lp.events = POLLIN;
            pfds.push_back(lp);
        }
        const size_t conn_base = pfds.size();
        const size_t polled_conns = s.connections.size();
        for (const auto &conn : s.connections) {
            pollfd cp = {};
            cp.fd = conn->sock.fd();
            cp.events = POLLIN;
            if (conn->outCursor < conn->outbuf.size())
                cp.events = static_cast<short>(cp.events | POLLOUT);
            pfds.push_back(cp);
        }

        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 250);
        if (rc < 0 && errno != EINTR)
            react_fatal("reactd: poll failed");

        // Drain the wake pipe.
        if (pfds[0].revents & POLLIN) {
            uint8_t sink[64];
            while (::read(s.wakePipe[0], sink, sizeof(sink)) > 0) {
            }
        }

        // Accept new connections.
        if (listening) {
            const pollfd &lp = pfds[1];
            if (lp.revents & POLLIN) {
                for (;;) {
                    Socket accepted = acceptOn(listener.fd());
                    if (!accepted.valid())
                        break;
                    setNonBlocking(accepted.fd());
                    auto conn = std::make_unique<Impl::Connection>();
                    conn->sock = std::move(accepted);
                    conn->lastActivity = wallNow();
                    // No key configured -> the auth gate is open.
                    conn->authenticated = s.config.fleetKey.empty();
                    s.connections.push_back(std::move(conn));
                    ++s.stats.connectionsAccepted;
                }
            }
        }

        // Service the connections that were in this tick's poll set
        // (ones accepted above wait for the next tick).
        const Clock::time_point now = wallNow();
        for (size_t i = 0; i < polled_conns; ++i) {
            Impl::Connection *conn = s.connections[i].get();
            const pollfd &cp = pfds[conn_base + i];

            if (cp.revents & (POLLERR | POLLHUP | POLLNVAL))
                conn->closing = true;

            if (!conn->closing && (cp.revents & POLLIN)) {
                conn->lastActivity = now;
                uint8_t buf[4096];
                for (;;) {
                    const ssize_t n = ::recv(conn->sock.fd(), buf,
                                             sizeof(buf), MSG_DONTWAIT);
                    if (n > 0) {
                        try {
                            conn->decoder.feed(
                                buf, static_cast<size_t>(n));
                            Frame frame;
                            while (conn->decoder.next(&frame))
                                s.handleFrame(conn, frame);
                        } catch (const ProtocolError &e) {
                            // Malformed input: answer with a diagnostic
                            // and drop the connection; the stream
                            // position is no longer trustworthy.
                            ++s.stats.protocolErrors;
                            s.sendFrame(conn, makeError(e.what()));
                            conn->closing = true;
                            break;
                        }
                        continue;
                    }
                    if (n == 0) {
                        // Orderly EOF; a partial frame here is the
                        // truncation failure mode -- log and drop.
                        if (conn->decoder.hasPartial()) {
                            ++s.stats.protocolErrors;
                            react_warn("reactd: peer closed mid-frame");
                        }
                        conn->closing = true;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    if (errno == EINTR)
                        continue;
                    conn->closing = true;
                    break;
                }
            }

            s.flushConnection(conn);

            // Idle timeout: a silent peer does not hold a slot forever.
            if (!conn->closing &&
                secondsSince(conn->lastActivity, now) * 1000.0 >
                    static_cast<double>(s.config.idleTimeoutMs)) {
                ++s.stats.idleDrops;
                conn->closing = true;
            }
        }

        // Reap closed connections (flush first if bytes remain and the
        // peer is still reading; best-effort on a closing connection).
        for (size_t i = 0; i < s.connections.size();) {
            Impl::Connection *conn = s.connections[i].get();
            if (conn->closing) {
                s.flushConnection(conn);
                ++s.stats.connectionsDropped;
                s.connections.erase(
                    s.connections.begin() + static_cast<long>(i));
            } else {
                ++i;
            }
        }

        if (drain_now && s.executorDone.load(std::memory_order_acquire)) {
            // Final flush of any queued replies (DrainOk in particular).
            for (auto &conn : s.connections)
                s.flushConnection(conn.get());
            break;
        }
    }

    executor.join();
    s.connections.clear();
    ::close(s.wakePipe[0]);
    ::close(s.wakePipe[1]);
    s.wakePipe[0] = s.wakePipe[1] = -1;
    if (endpoint.kind == Endpoint::Kind::Unix)
        ::unlink(endpoint.path.c_str());
    react_inform("reactd: drained cleanly (%llu jobs executed, %llu "
                 "cache hits, %llu protocol errors)",
                 static_cast<unsigned long long>(s.stats.jobsExecuted),
                 static_cast<unsigned long long>(s.stats.cacheHits),
                 static_cast<unsigned long long>(s.stats.protocolErrors));
    return 0;
}

} // namespace net
} // namespace react
