/**
 * @file
 * reactd message protocol: job submission, polling, and admin, spoken
 * over CRC-framed transport frames (net/frame.hh).
 *
 * ## Conversation
 *
 *     client                         server
 *     Hello(version)          ->
 *                             <-    HelloOk(version)
 *     Submit(spec)            ->
 *                             <-    JobResult          (done/cached)
 *                             <-    Submitted(id, st)  (otherwise)
 *     Poll(id)                ->
 *                             <-    Submitted(id, st) | JobResult | JobError
 *
 * ## Idempotency contract
 *
 * A job's identity is the digest of its canonical spec encoding minus
 * the deadline field: the same cell submitted twice -- by a retrying
 * client, by two different clients, or before and after a server
 * restart -- maps to the same 64-bit id.  The server keyed its result
 * cache by that id, so retries can never duplicate work or results,
 * and identical cells are never re-simulated.
 *
 * ## Deadline contract
 *
 * JobSpec::deadlineSeconds bounds the *queue wait*: a job still queued
 * when its deadline lapses is expired (JobError) instead of dispatched.
 * It deliberately does not abort running cells -- cells are the unit of
 * work and run to completion (checkpointed), exactly like the graceful
 * drain path.
 */

#ifndef REACT_NET_PROTOCOL_HH
#define REACT_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/grid.hh"
#include "net/wire.hh"

namespace react {
namespace net {

/** Protocol revision; Hello/HelloOk must agree exactly.
 *  v2: auth handshake frames (net/auth.hh) and a JobState byte in
 *  JobError so clients can tell deadline expiry from execution failure
 *  without string matching. */
constexpr uint32_t kProtocolVersion = 2;

/** Frame types. */
enum class MsgType : uint8_t
{
    Hello = 1,
    HelloOk = 2,
    Submit = 3,
    Submitted = 4,
    Poll = 5,
    JobResult = 6,
    JobError = 7,
    Ping = 8,
    Pong = 9,
    Drain = 10,
    DrainOk = 11,
    Error = 12,
    /** Server demands an HMAC proof for the enclosed nonce (v2). */
    AuthChallenge = 13,
    /** Client's HMAC proof over the challenge nonce (v2). */
    AuthResponse = 14,
    /** Typed authentication failure; the connection is dropped (v2). */
    AuthReject = 15,
};

/** Server-side job lifecycle, as reported in Submitted frames. */
enum class JobState : uint8_t
{
    Queued = 0,
    Running = 1,
    Done = 2,
    /** Done, and served straight from the result cache. */
    Cached = 3,
    /** Deadline lapsed while queued. */
    Expired = 4,
    /** The cell threw; message carried in JobError. */
    Failed = 5,
};

/** Printable name of a job state. */
const char *jobStateName(JobState state);

/**
 * One experiment job: an evaluation-grid cell plus runner options.
 * Identity fields (everything except deadlineSeconds) define jobId().
 */
struct JobSpec
{
    harness::BenchmarkKind bench = harness::BenchmarkKind::DataEncryption;
    trace::PaperTrace trace = trace::PaperTrace::RfCart;
    harness::BufferKind buffer = harness::BufferKind::React;
    uint64_t baseSeed = harness::kEvaluationSeed;
    double dt = 1e-3;
    double drainAllowance = harness::kGridDrainAllowance;
    double settleTime = 20.0;
    bool stopAfterLatency = false;
    /** Queue-wait budget, seconds; 0 disables expiry. */
    double deadlineSeconds = 0.0;

    /** Stable cell identity ("DE:RF Cart:REACT"). */
    std::string cellKey() const;

    /**
     * Idempotent job identity: digest of the canonical encoding of the
     * identity fields.  Stable across processes, clients, and retries.
     */
    uint64_t jobId() const;

    void encode(WireWriter &w) const;
    /** @throws ProtocolError on out-of-range enum indices. */
    static JobSpec decode(WireReader &r);

    /** The ExperimentConfig this spec asks the server to run with. */
    harness::ExperimentConfig toConfig() const;
};

/**
 * Encode the portable portion of an experiment result: metrics, energy
 * ledger, fault counters, and the stateDigest bit-identity proof.
 * Operational fields (resumed, snapshotFallback, snapshotDiagnostic,
 * rail recording, fault log) are deliberately excluded so a result
 * served from a checkpoint resume or the cache is byte-identical to a
 * direct run -- that equality is the soak test's acceptance criterion.
 */
void encodeResult(WireWriter &w, const harness::ExperimentResult &res);

/** Decode a result encoded by encodeResult (unlisted fields default). */
harness::ExperimentResult decodeResult(WireReader &r);

/** @name Whole-message builders (payload encoding + framing). @{ */
std::vector<uint8_t> makeHello();
std::vector<uint8_t> makeHelloOk();
std::vector<uint8_t> makeSubmit(const JobSpec &spec);
std::vector<uint8_t> makeSubmitted(uint64_t job_id, JobState state);
std::vector<uint8_t> makePoll(uint64_t job_id);
std::vector<uint8_t> makeJobResult(uint64_t job_id,
                                   const std::vector<uint8_t> &result_bytes);
std::vector<uint8_t> makeJobError(uint64_t job_id, JobState state,
                                  const std::string &message);
std::vector<uint8_t> makePing();
std::vector<uint8_t> makePong();
std::vector<uint8_t> makeDrain();
std::vector<uint8_t> makeDrainOk(uint32_t jobs_in_flight);
std::vector<uint8_t> makeError(const std::string &message);
std::vector<uint8_t> makeAuthChallenge(const uint8_t *nonce, size_t size);
std::vector<uint8_t> makeAuthResponse(const uint8_t *mac, size_t size);
std::vector<uint8_t> makeAuthReject(const std::string &reason);
/** @} */

} // namespace net
} // namespace react

#endif // REACT_NET_PROTOCOL_HH
