/**
 * @file
 * Minimal stream-socket wrapper (AF_UNIX and TCP) with timeouts.
 *
 * reactd defaults to a filesystem socket path: no port allocation races
 * in parallel CI, no network flakiness in the failure-injection tests
 * (every injected fault is *ours*), and the OS gives exact byte-stream
 * semantics -- which is precisely what the framing layer is hardened
 * against.  The fleet work adds TCP listen/connect beside it; the
 * framing layer above is byte-stream agnostic, so TCP's extra failure
 * modes (slow handshakes, RSTs, black holes) are handled here and in
 * the retry spine, not in the protocol.
 *
 * All I/O is poll()-based with explicit millisecond deadlines carried
 * as *absolute* monotonic deadlines across EINTR restarts -- a retry
 * that re-arms the full timeout never expires under a fast interval
 * timer (see the itimer hammer test).  Nothing here blocks forever.
 * SIGPIPE is avoided with MSG_NOSIGNAL rather than a process-wide
 * handler.
 */

#ifndef REACT_NET_SOCKET_HH
#define REACT_NET_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace react {
namespace net {

/** Raised on socket-layer failures (connect/accept/send/recv). */
class SocketError : public std::runtime_error
{
  public:
    explicit SocketError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Move-only owner of a file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd_in) : fd_(fd_in) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();
    /** Give up ownership without closing. */
    int release();

  private:
    int fd_ = -1;
};

/**
 * Create, bind, and listen on an AF_UNIX stream socket.  An existing
 * socket file at @p path is unlinked first (stale from a killed
 * server).  @throws SocketError.
 */
Socket listenUnix(const std::string &path, int backlog = 16);

/**
 * Connect to an AF_UNIX stream socket.
 * @throws SocketError on failure or timeout.
 */
Socket connectUnix(const std::string &path, int timeout_ms);

/**
 * Create, bind (SO_REUSEADDR), and listen on a TCP socket.  An empty
 * @p host binds INADDR_ANY; @p port 0 takes an ephemeral port (recover
 * it with endpoint.hh's boundTcpPort()).  @throws SocketError.
 */
Socket listenTcp(const std::string &host, uint16_t port, int backlog = 16);

/**
 * Connect to @p host:@p port within @p timeout_ms (nonblocking connect +
 * poll + SO_ERROR; negative timeout waits forever).  The returned socket
 * is blocking with TCP_NODELAY set.  @throws SocketError.
 */
Socket connectTcp(const std::string &host, uint16_t port, int timeout_ms);

/**
 * Accept one pending connection (the caller already established
 * readability via poll).  @return an invalid Socket when the accept
 * would block or was interrupted.
 */
Socket acceptOn(int listen_fd);

/**
 * Wait until @p fd is readable.
 * @return true when readable; false on timeout.
 */
bool waitReadable(int fd, int timeout_ms);

/**
 * Write the whole buffer, polling for writability as needed.
 * @throws SocketError on peer reset or timeout.
 */
void sendAll(int fd, const uint8_t *data, size_t size, int timeout_ms);

/**
 * Read up to @p cap bytes once the fd is readable.
 * @return bytes read; 0 on orderly peer shutdown (EOF).
 * @throws SocketError on error or timeout.
 */
size_t recvSome(int fd, uint8_t *buf, size_t cap, int timeout_ms);

} // namespace net
} // namespace react

#endif // REACT_NET_SOCKET_HH
