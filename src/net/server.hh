/**
 * @file
 * reactd: the long-lived experiment server.
 *
 * One process owns the hot engine; many clients submit evaluation-grid
 * jobs over the framed protocol (net/protocol.hh) and poll for results.
 * The server's robustness spine:
 *
 *  - **Strict parsing.**  Every connection feeds a FrameDecoder; a
 *    malformed frame (bad magic, length-lie, bit-flip, oversize) costs
 *    that connection an Error frame and a close -- never the process.
 *  - **Idempotent jobs.**  Jobs are keyed by the spec digest, so a
 *    retried Submit attaches to the existing job (or its cached
 *    result) instead of re-running or duplicating it.
 *  - **Result cache.**  Completed jobs stay resident (bounded by
 *    maxCachedResults, oldest-done evicted first); identical cells are
 *    never re-simulated.
 *  - **Deadlines and timeouts.**  A job whose queue wait exceeds its
 *    deadline expires instead of dispatching; a connection idle past
 *    idleTimeoutMs is dropped.
 *  - **Graceful drain.**  SIGTERM/SIGINT (via installSignalHandlers)
 *    or a Drain frame stops admission and dispatch; in-flight cells
 *    finish -- writing their checkpoints when checkpointDir is set --
 *    and serve() returns.  A restarted server resumes those cells
 *    bit-identically from their snapshots (PR-4 machinery), which the
 *    soak harness proves byte-for-byte.
 *
 * Execution fans onto harness::ParallelRunner (SignalPolicy::External)
 * in arrival-order batches; every cell is seeded from its stable
 * identity, so a served result is bit-identical to a direct
 * runGridCell() of the same spec.
 */

#ifndef REACT_NET_SERVER_HH
#define REACT_NET_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/checkpoint.hh"

namespace react {
namespace net {

/** Server options; fromEnv() fills them from REACTD_* variables. */
struct ServerConfig
{
    /** Listening endpoint URI ("unix:/path", "tcp:host:port", or a bare
     *  AF_UNIX path); see net/endpoint.hh.  tcp with port 0 binds an
     *  ephemeral port, readable from Server::boundEndpoint(). */
    std::string endpoint = "/tmp/reactd.sock";
    /** Worker threads for the cell pool; 0 = ParallelRunner default
     *  (REACT_THREADS / hardware concurrency). */
    int threads = 0;
    /** Per-job snapshot directory; empty disables checkpointing. */
    std::string checkpointDir;
    /** Periodic checkpoint cadence for served cells, in steps. */
    uint64_t checkpointIntervalSteps = harness::kDefaultCheckpointInterval;
    /** Connections idle longer than this are dropped, milliseconds. */
    int idleTimeoutMs = 30000;
    /** Completed jobs kept resident for cache hits. */
    size_t maxCachedResults = 4096;
    /** Per-connection reply-buffer cap, bytes: a peer that submits but
     *  never reads is dropped (typed warn) once this much output is
     *  queued, instead of growing the process without bound. */
    size_t maxOutbufBytes = 4u * 1024 * 1024;
    /** Pre-shared fleet key; empty disables the auth handshake (the
     *  PR-6 single-host flow).  fromEnv() loads REACT_FLEET_KEY /
     *  REACT_FLEET_KEY_FILE via net/auth.hh. */
    std::vector<uint8_t> fleetKey;
    /** Seed of the auth challenge-nonce stream (see net/auth.hh). */
    uint64_t authNonceSeed = 0x6f6e6365u;

    /**
     * Environment defaults: REACTD_ENDPOINT (REACTD_SOCKET is the
     * legacy unix-path spelling), REACTD_THREADS, REACTD_CHECKPOINT_DIR,
     * REACTD_CHECKPOINT_INTERVAL, REACTD_IDLE_TIMEOUT_MS,
     * REACTD_OUTBUF_MAX, REACTD_AUTH_SEED, REACT_FLEET_KEY[_FILE] --
     * all parsed through util/env.hh (a malformed value warns and keeps
     * the default; an unreadable key *file* throws, see loadFleetKey).
     */
    static ServerConfig fromEnv();
};

/** Monotonic counters, readable after serve() returns. */
struct ServerStats
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsDropped = 0;
    uint64_t framesReceived = 0;
    uint64_t protocolErrors = 0;
    uint64_t idleDrops = 0;
    uint64_t jobsSubmitted = 0;
    uint64_t jobsExecuted = 0;
    uint64_t jobsFailed = 0;
    uint64_t jobsExpired = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheEvictions = 0;
    /** Connections dropped for exceeding maxOutbufBytes. */
    uint64_t outbufOverflows = 0;
    /** Sessions rejected by the auth handshake (bad or missing proof). */
    uint64_t authRejects = 0;
};

/** See file comment. */
class Server
{
  public:
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and serve until drained.
     * @return process exit status: 0 after a clean drain.
     */
    int serve();

    /**
     * Begin a graceful drain: stop accepting and dispatching, finish
     * in-flight cells, then serve() returns.  Callable from any thread
     * and (apart from stats) from signal handlers.
     */
    void requestDrain();

    /** Route SIGTERM/SIGINT to requestDrain() on @p server (pass
     *  nullptr to uninstall). */
    static void installSignalHandlers(Server *server);

    const ServerStats &stats() const;
    const ServerConfig &config() const;

    /**
     * The endpoint actually bound, in canonical URI form -- for tcp
     * with port 0 this carries the ephemeral port the OS assigned.
     * Empty until serve() has bound; thread-safe, so a test can spin
     * on it while serve() runs elsewhere.
     */
    std::string boundEndpoint() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace net
} // namespace react

#endif // REACT_NET_SERVER_HH
