#include "wire.hh"

#include <cstring>

namespace react {
namespace net {

void
WireWriter::put(const void *data_ptr, size_t size)
{
    const auto *p = static_cast<const uint8_t *>(data_ptr);
    out.insert(out.end(), p, p + size);
}

void
WireWriter::u8(uint8_t v)
{
    out.push_back(v);
}

void
WireWriter::u32(uint32_t v)
{
    uint8_t buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<uint8_t>(v >> (8 * i));
    put(buf, sizeof(buf));
}

void
WireWriter::u64(uint64_t v)
{
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<uint8_t>(v >> (8 * i));
    put(buf, sizeof(buf));
}

void
WireWriter::i64(int64_t v)
{
    u64(static_cast<uint64_t>(v));
}

void
WireWriter::f64(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string &v)
{
    u32(static_cast<uint32_t>(v.size()));
    put(v.data(), v.size());
}

void
WireWriter::bytes(const std::vector<uint8_t> &v)
{
    u32(static_cast<uint32_t>(v.size()));
    put(v.data(), v.size());
}

void
WireReader::take(void *out_ptr, size_t size)
{
    if (size > remaining())
        throw ProtocolError("payload truncated: need " +
                            std::to_string(size) + " bytes, have " +
                            std::to_string(remaining()));
    std::memcpy(out_ptr, base + cursor, size);
    cursor += size;
}

uint8_t
WireReader::u8()
{
    uint8_t v = 0;
    take(&v, 1);
    return v;
}

uint32_t
WireReader::u32()
{
    uint8_t buf[4];
    take(buf, sizeof(buf));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(buf[i]) << (8 * i);
    return v;
}

uint64_t
WireReader::u64()
{
    uint8_t buf[8];
    take(buf, sizeof(buf));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return v;
}

int64_t
WireReader::i64()
{
    return static_cast<int64_t>(u64());
}

double
WireReader::f64()
{
    const uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const uint32_t size = u32();
    // Validate the declared length against the bytes actually present
    // *before* allocating: a length-lie cannot drive an allocation past
    // the (already frame-capped) payload size.
    if (size > remaining())
        throw ProtocolError("string length " + std::to_string(size) +
                            " exceeds remaining payload " +
                            std::to_string(remaining()));
    std::string v(reinterpret_cast<const char *>(base + cursor), size);
    cursor += size;
    return v;
}

std::vector<uint8_t>
WireReader::bytes()
{
    const uint32_t size = u32();
    if (size > remaining())
        throw ProtocolError("blob length " + std::to_string(size) +
                            " exceeds remaining payload " +
                            std::to_string(remaining()));
    std::vector<uint8_t> v(base + cursor, base + cursor + size);
    cursor += size;
    return v;
}

void
WireReader::expectEnd() const
{
    if (cursor != end)
        throw ProtocolError("payload has " +
                            std::to_string(end - cursor) +
                            " unconsumed trailing bytes");
}

} // namespace net
} // namespace react
