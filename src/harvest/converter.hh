/**
 * @file
 * Harvester power-converter models.
 *
 * The paper's frontend emulates the load-dependent behaviour of a
 * commercial RF-to-DC converter (Powercast P2110B) and a solar
 * boost-charger (TI bq25570) (S 4.3).  Both parts share the qualitative
 * property that conversion efficiency rises steeply with input power: RF
 * rectifiers are very lossy below ~100 uW, and boost chargers spend a fixed
 * quiescent budget that dominates at low input.  We model efficiency as a
 * smooth log-power sigmoid between a floor and a ceiling, with a quiescent
 * draw subtracted after conversion, which captures the datasheet curves to
 * within a few percent over the 10 uW - 100 mW range the traces cover.
 */

#ifndef REACT_HARVEST_CONVERTER_HH
#define REACT_HARVEST_CONVERTER_HH

namespace react {
namespace harvest {

/** Input-power -> buffer-power conversion stage. */
class Converter
{
  public:
    virtual ~Converter() = default;

    /**
     * Power delivered to the buffer for the given environmental input.
     *
     * @param input_power Power available from the ambient source, watts.
     * @return Power into the buffer, watts (>= 0).
     */
    virtual double outputPower(double input_power) const = 0;

    /** Conversion efficiency at the given input power. */
    double efficiency(double input_power) const;
};

/** Pass-through stage: the trace already represents at-buffer power. */
class IdentityConverter : public Converter
{
  public:
    double outputPower(double input_power) const override;
};

/**
 * Log-sigmoid efficiency converter; base class for the RF rectifier and
 * solar boost-charger presets.
 */
class SigmoidEfficiencyConverter : public Converter
{
  public:
    /**
     * @param eta_floor Efficiency as input power approaches zero.
     * @param eta_ceiling Efficiency at high input power.
     * @param p_half Input power (watts) at the sigmoid midpoint.
     * @param slope Sigmoid steepness per decade of input power.
     * @param quiescent Control power (watts) subtracted post-conversion.
     */
    SigmoidEfficiencyConverter(double eta_floor, double eta_ceiling,
                               double p_half, double slope,
                               double quiescent);

    double outputPower(double input_power) const override;

  private:
    double etaFloor;
    double etaCeiling;
    double pHalf;
    double slope;
    double quiescent;
};

/** Powercast P2110B-like RF-to-DC rectifier. */
class RfRectifier : public SigmoidEfficiencyConverter
{
  public:
    RfRectifier();
};

/** TI bq25570-like solar boost charger with MPPT. */
class SolarBoostCharger : public SigmoidEfficiencyConverter
{
  public:
    SolarBoostCharger();
};

} // namespace harvest
} // namespace react

#endif // REACT_HARVEST_CONVERTER_HH
