/**
 * @file
 * Harvester power-converter models.
 *
 * The paper's frontend emulates the load-dependent behaviour of a
 * commercial RF-to-DC converter (Powercast P2110B) and a solar
 * boost-charger (TI bq25570) (S 4.3).  Both parts share the qualitative
 * property that conversion efficiency rises steeply with input power: RF
 * rectifiers are very lossy below ~100 uW, and boost chargers spend a fixed
 * quiescent budget that dominates at low input.  We model efficiency as a
 * smooth log-power sigmoid between a floor and a ceiling, with a quiescent
 * draw subtracted after conversion, which captures the datasheet curves to
 * within a few percent over the 10 uW - 100 mW range the traces cover.
 */

#ifndef REACT_HARVEST_CONVERTER_HH
#define REACT_HARVEST_CONVERTER_HH

#include "util/units.hh"

namespace react {
namespace harvest {

using units::Watts;

/** Input-power -> buffer-power conversion stage. */
class Converter
{
  public:
    virtual ~Converter() = default;

    /**
     * Power delivered to the buffer for the given environmental input.
     *
     * @param input_power Power available from the ambient source.
     * @return Power into the buffer (>= 0).
     */
    virtual Watts outputPower(Watts input_power) const = 0;

    /** Conversion efficiency at the given input power. */
    double efficiency(Watts input_power) const;
};

/** Pass-through stage: the trace already represents at-buffer power. */
class IdentityConverter : public Converter
{
  public:
    Watts outputPower(Watts input_power) const override;
};

/**
 * Log-sigmoid efficiency converter; base class for the RF rectifier and
 * solar boost-charger presets.
 */
class SigmoidEfficiencyConverter : public Converter
{
  public:
    /**
     * @param eta_floor Efficiency as input power approaches zero.
     * @param eta_ceiling Efficiency at high input power.
     * @param p_half Input power at the sigmoid midpoint.
     * @param slope Sigmoid steepness per decade of input power.
     * @param quiescent Control power subtracted post-conversion.
     */
    SigmoidEfficiencyConverter(double eta_floor, double eta_ceiling,
                               Watts p_half, double slope,
                               Watts quiescent);

    Watts outputPower(Watts input_power) const override;

  private:
    double etaFloor;
    double etaCeiling;
    Watts pHalf;
    double slope;
    Watts quiescent;
};

/** Powercast P2110B-like RF-to-DC rectifier. */
class RfRectifier : public SigmoidEfficiencyConverter
{
  public:
    RfRectifier();
};

/** TI bq25570-like solar boost charger with MPPT. */
class SolarBoostCharger : public SigmoidEfficiencyConverter
{
  public:
    SolarBoostCharger();
};

} // namespace harvest
} // namespace react

#endif // REACT_HARVEST_CONVERTER_HH
