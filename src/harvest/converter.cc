#include "converter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace harvest {

double
Converter::efficiency(Watts input_power) const
{
    if (input_power <= Watts(0.0))
        return 0.0;
    return outputPower(input_power) / input_power;
}

Watts
IdentityConverter::outputPower(Watts input_power) const
{
    return std::max(input_power, Watts(0.0));
}

SigmoidEfficiencyConverter::SigmoidEfficiencyConverter(
    double eta_floor, double eta_ceiling, Watts p_half, double slope_param,
    Watts quiescent_power)
    : etaFloor(eta_floor), etaCeiling(eta_ceiling), pHalf(p_half),
      slope(slope_param), quiescent(quiescent_power)
{
    react_assert(eta_ceiling > eta_floor && eta_floor >= 0.0,
                 "efficiency bounds must be ordered and non-negative");
    react_assert(eta_ceiling <= 1.0, "efficiency cannot exceed 1");
    react_assert(p_half > Watts(0.0) && slope > 0.0,
                 "sigmoid parameters must be positive");
}

Watts
SigmoidEfficiencyConverter::outputPower(Watts input_power) const
{
    if (input_power <= Watts(0.0))
        return Watts(0.0);
    const double x = std::log10(input_power / pHalf);
    const double sig = 1.0 / (1.0 + std::exp(-slope * x));
    const double eta = etaFloor + (etaCeiling - etaFloor) * sig;
    return std::max(input_power * eta - quiescent, Watts(0.0));
}

RfRectifier::RfRectifier()
    // P2110B: ~5 % at 10 uW RF input rising to ~55 % above a few mW.
    : SigmoidEfficiencyConverter(0.02, 0.58, units::microwatts(300.0), 2.0,
                                 units::microwatts(1.0))
{
}

SolarBoostCharger::SolarBoostCharger()
    // bq25570: boost efficiency climbs from ~40 % near cold-start input to
    // >90 % above a milliwatt, with sub-microwatt quiescent draw.
    : SigmoidEfficiencyConverter(0.30, 0.92, units::microwatts(100.0), 1.8,
                                 units::microwatts(0.5))
{
}

} // namespace harvest
} // namespace react
