#include "converter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace harvest {

double
Converter::efficiency(double input_power) const
{
    if (input_power <= 0.0)
        return 0.0;
    return outputPower(input_power) / input_power;
}

double
IdentityConverter::outputPower(double input_power) const
{
    return std::max(input_power, 0.0);
}

SigmoidEfficiencyConverter::SigmoidEfficiencyConverter(
    double eta_floor, double eta_ceiling, double p_half, double slope,
    double quiescent)
    : etaFloor(eta_floor), etaCeiling(eta_ceiling), pHalf(p_half),
      slope(slope), quiescent(quiescent)
{
    react_assert(eta_ceiling > eta_floor && eta_floor >= 0.0,
                 "efficiency bounds must be ordered and non-negative");
    react_assert(eta_ceiling <= 1.0, "efficiency cannot exceed 1");
    react_assert(p_half > 0.0 && slope > 0.0,
                 "sigmoid parameters must be positive");
}

double
SigmoidEfficiencyConverter::outputPower(double input_power) const
{
    if (input_power <= 0.0)
        return 0.0;
    const double x = std::log10(input_power / pHalf);
    const double sig = 1.0 / (1.0 + std::exp(-slope * x));
    const double eta = etaFloor + (etaCeiling - etaFloor) * sig;
    return std::max(input_power * eta - quiescent, 0.0);
}

RfRectifier::RfRectifier()
    // P2110B: ~5 % at 10 uW RF input rising to ~55 % above a few mW.
    : SigmoidEfficiencyConverter(0.02, 0.58, units::microwatts(300.0), 2.0,
                                 units::microwatts(1.0))
{
}

SolarBoostCharger::SolarBoostCharger()
    // bq25570: boost efficiency climbs from ~40 % near cold-start input to
    // >90 % above a milliwatt, with sub-microwatt quiescent draw.
    : SigmoidEfficiencyConverter(0.30, 0.92, units::microwatts(100.0), 1.8,
                                 units::microwatts(0.5))
{
}

} // namespace harvest
} // namespace react
