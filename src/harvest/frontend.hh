/**
 * @file
 * Ekho-style record-and-replay harvesting frontend.
 *
 * The paper makes its experiments repeatable by replaying recorded power
 * traces through a programmable supply (S 4.3).  HarvesterFrontend is the
 * simulator's equivalent: it binds a PowerTrace to an optional converter
 * model and answers "how much power is entering the buffer at time t".
 * The evaluation traces (Table 3) are recorded at the harvester *output*,
 * so the main experiments use the identity converter; the converter models
 * are exercised by the frontend ablation bench and by users composing raw
 * irradiance/RF-field traces.
 */

#ifndef REACT_HARVEST_FRONTEND_HH
#define REACT_HARVEST_FRONTEND_HH

#include <memory>
#include <vector>

#include "harvest/converter.hh"
#include "trace/power_trace.hh"
#include "util/units.hh"

namespace react {
namespace harvest {

using units::Seconds;

/** Replay frontend: trace plus converter. */
class HarvesterFrontend
{
  public:
    /**
     * @param trace Power trace to replay (copied).
     * @param converter Conversion stage; identity when null.
     */
    explicit HarvesterFrontend(trace::PowerTrace trace,
                               std::unique_ptr<Converter> converter =
                                   nullptr);

    /** Power delivered into the buffer at the given time. */
    Watts power(Seconds t) const;

    /**
     * Compile the per-step at-buffer power sequence of a fixed-dt
     * replay (`t = 0; repeat { t += step_dt; power(Seconds(t)); }`)
     * into run-length spans, appended to @p out.  The trace's raw spans
     * (trace::PowerTrace::compileStepSpans) are mapped through the
     * converter once per span -- zero-order hold means equal input bits
     * yield equal output bits, so one evaluation covers every step of
     * the span -- and adjacent spans with bit-equal outputs are merged.
     * Sweeping the result is bit-identical to calling power() every
     * step; the lane engine's hot loop relies on exactly that.
     *
     * @param step_dt Replay timestep, seconds (> 0).
     * @param out Receives the spans (appended; not cleared).
     */
    void compileStepSpans(double step_dt,
                          std::vector<trace::StepSpan> &out) const;

    /**
     * Earliest time at or after `t` where power() can be nonzero (the
     * quiescent fast-path horizon).  Identity frontends forward the
     * trace's zero-sample scan; with a converter attached the result is
     * conservatively `t` (a converter may bias zero input), declining
     * the fast path.
     */
    Seconds zeroPowerUntil(Seconds t) const;

    /** Duration of the underlying trace. */
    Seconds traceDuration() const;

    /** Underlying trace. */
    const trace::PowerTrace &trace() const { return powerTrace; }

  private:
    trace::PowerTrace powerTrace;
    std::unique_ptr<Converter> conv;
};

} // namespace harvest
} // namespace react

#endif // REACT_HARVEST_FRONTEND_HH
