/**
 * @file
 * Ekho-style record-and-replay harvesting frontend.
 *
 * The paper makes its experiments repeatable by replaying recorded power
 * traces through a programmable supply (S 4.3).  HarvesterFrontend is the
 * simulator's equivalent: it binds a PowerTrace to an optional converter
 * model and answers "how much power is entering the buffer at time t".
 * The evaluation traces (Table 3) are recorded at the harvester *output*,
 * so the main experiments use the identity converter; the converter models
 * are exercised by the frontend ablation bench and by users composing raw
 * irradiance/RF-field traces.
 */

#ifndef REACT_HARVEST_FRONTEND_HH
#define REACT_HARVEST_FRONTEND_HH

#include <memory>

#include "harvest/converter.hh"
#include "trace/power_trace.hh"
#include "util/units.hh"

namespace react {
namespace harvest {

using units::Seconds;

/** Replay frontend: trace plus converter. */
class HarvesterFrontend
{
  public:
    /**
     * @param trace Power trace to replay (copied).
     * @param converter Conversion stage; identity when null.
     */
    explicit HarvesterFrontend(trace::PowerTrace trace,
                               std::unique_ptr<Converter> converter =
                                   nullptr);

    /** Power delivered into the buffer at the given time. */
    Watts power(Seconds t) const;

    /**
     * Earliest time at or after `t` where power() can be nonzero (the
     * quiescent fast-path horizon).  Identity frontends forward the
     * trace's zero-sample scan; with a converter attached the result is
     * conservatively `t` (a converter may bias zero input), declining
     * the fast path.
     */
    Seconds zeroPowerUntil(Seconds t) const;

    /** Duration of the underlying trace. */
    Seconds traceDuration() const;

    /** Underlying trace. */
    const trace::PowerTrace &trace() const { return powerTrace; }

  private:
    trace::PowerTrace powerTrace;
    std::unique_ptr<Converter> conv;
};

} // namespace harvest
} // namespace react

#endif // REACT_HARVEST_FRONTEND_HH
