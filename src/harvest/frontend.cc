#include "frontend.hh"

namespace react {
namespace harvest {

HarvesterFrontend::HarvesterFrontend(trace::PowerTrace trace,
                                     std::unique_ptr<Converter> converter)
    : powerTrace(std::move(trace)), conv(std::move(converter))
{
}

Watts
HarvesterFrontend::power(Seconds t) const
{
    // The trace layer stays in raw doubles (file I/O boundary); wrap its
    // sample into the typed domain here.
    const Watts raw{powerTrace.power(t.raw())};
    return conv ? conv->outputPower(raw) : raw;
}

Seconds
HarvesterFrontend::zeroPowerUntil(Seconds t) const
{
    return conv ? t : Seconds(powerTrace.zeroUntil(t.raw()));
}

Seconds
HarvesterFrontend::traceDuration() const
{
    return Seconds(powerTrace.duration());
}

} // namespace harvest
} // namespace react
