#include "frontend.hh"

namespace react {
namespace harvest {

HarvesterFrontend::HarvesterFrontend(trace::PowerTrace trace,
                                     std::unique_ptr<Converter> converter)
    : powerTrace(std::move(trace)), conv(std::move(converter))
{
}

double
HarvesterFrontend::power(double t) const
{
    const double raw = powerTrace.power(t);
    return conv ? conv->outputPower(raw) : raw;
}

double
HarvesterFrontend::traceDuration() const
{
    return powerTrace.duration();
}

} // namespace harvest
} // namespace react
