#include "frontend.hh"

#include <cstdint>
#include <cstring>

namespace react {
namespace harvest {

namespace {

/** Bit equality (see trace::PowerTrace::compileStepSpans): converter
 *  outputs must merge only when the hot loop would see identical
 *  doubles, and -0.0 != +0.0 bitwise. */
inline bool
sameBits(double a, double b)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

/** Span-length addition with the open-ended tail absorbing. */
inline uint64_t
addSpanSteps(uint64_t a, uint64_t b)
{
    if (a == trace::StepSpan::kOpenEnded ||
        b == trace::StepSpan::kOpenEnded)
        return trace::StepSpan::kOpenEnded;
    return a + b;
}

} // namespace

HarvesterFrontend::HarvesterFrontend(trace::PowerTrace trace,
                                     std::unique_ptr<Converter> converter)
    : powerTrace(std::move(trace)), conv(std::move(converter))
{
}

Watts
HarvesterFrontend::power(Seconds t) const
{
    // The trace layer stays in raw doubles (file I/O boundary); wrap its
    // sample into the typed domain here.
    const Watts raw{powerTrace.power(t.raw())};
    return conv ? conv->outputPower(raw) : raw;
}

void
HarvesterFrontend::compileStepSpans(double step_dt,
                                    std::vector<trace::StepSpan> &out) const
{
    const size_t first = out.size();
    powerTrace.compileStepSpans(step_dt, out);
    if (!conv)
        // Identity frontend: power() wraps the raw sample unchanged.
        return;
    // Map each raw span through the converter and merge adjacent spans
    // whose outputs are bit-equal (a converter may flatten distinct
    // inputs, e.g. everything under its cut-in threshold to one value).
    size_t w = first;
    for (size_t r = first; r < out.size(); ++r) {
        const double converted =
            conv->outputPower(Watts(out[r].watts)).raw();
        if (w > first && sameBits(converted, out[w - 1].watts)) {
            out[w - 1].steps = addSpanSteps(out[w - 1].steps,
                                            out[r].steps);
            continue;
        }
        out[w].watts = converted;
        out[w].steps = out[r].steps;
        ++w;
    }
    out.resize(w);
}

Seconds
HarvesterFrontend::zeroPowerUntil(Seconds t) const
{
    return conv ? t : Seconds(powerTrace.zeroUntil(t.raw()));
}

Seconds
HarvesterFrontend::traceDuration() const
{
    return Seconds(powerTrace.duration());
}

} // namespace harvest
} // namespace react
