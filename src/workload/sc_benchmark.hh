/**
 * @file
 * Sense and Compute (SC): periodic microphone sampling (S 4.2).
 *
 * Every five seconds a deadline fires (from a remanence timekeeper that
 * survives power loss); if the device is powered it wakes from deep
 * sleep, samples the microphone for 100 ms, low-pass filters the buffer,
 * and stores the RMS feature.  Deadlines that fire while the device is
 * off -- or while a sample is already in flight -- are missed.  SC rewards
 * reactivity: small enable energy keeps the system online to catch
 * deadlines even under weak input power.
 */

#ifndef REACT_WORKLOAD_SC_BENCHMARK_HH
#define REACT_WORKLOAD_SC_BENCHMARK_HH

#include <vector>

#include "mcu/event_queue.hh"
#include "util/rng.hh"
#include "workload/benchmark.hh"
#include "workload/filter.hh"

namespace react {
namespace workload {

/** Periodic sense-and-filter workload. */
class SenseComputeBenchmark : public Benchmark
{
  public:
    /**
     * @param params Workload parameters.
     * @param horizon Time span over which deadlines are scheduled,
     *        seconds (trace duration plus drain allowance).
     * @param seed Seed for the synthetic microphone signal.
     */
    SenseComputeBenchmark(const WorkloadParams &params, double horizon,
                          uint64_t seed = 42);

    std::string name() const override { return "SC"; }
    void tick(BenchContext &ctx) override;
    /** Fixed pipeline: tick() reads only the device and clock. */
    bool tickObservesBuffer() const override { return false; }
    void onPowerDown(BenchContext &ctx) override;
    void reset() override;

    /** Most recent filtered RMS feature. */
    double lastFeature() const { return feature; }

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    /** Run the acquisition + filtering computation for one burst. */
    void processSample();

    WorkloadParams params;
    double horizon;
    uint64_t seed;
    mcu::EventQueue deadlines;
    Rng rng;
    BiquadCascade filter;

    /** Seconds left in the in-flight sampling burst; < 0 means idle. */
    double sampling = -1.0;
    double feature = 0.0;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_SC_BENCHMARK_HH
