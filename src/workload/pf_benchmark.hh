/**
 * @file
 * Packet Forwarding (PF): receive and retransmit unpredictable traffic
 * (S 4.2, S 5.4.1).
 *
 * PF stresses both reactivity (a packet can only be received at the
 * instant it arrives) and longevity (retransmission is atomic and
 * expensive), and showcases energy fungibility: software maintains
 * separate longevity requirements for the receive and transmit tasks and
 * lets an incoming packet preempt the transmit-charging phase when
 * enough energy is banked for the cheaper receive.  Received frames are
 * CRC-verified and queued in FRAM until retransmission.
 */

#ifndef REACT_WORKLOAD_PF_BENCHMARK_HH
#define REACT_WORKLOAD_PF_BENCHMARK_HH

#include <deque>

#include "mcu/event_queue.hh"
#include "workload/benchmark.hh"
#include "workload/packet.hh"

namespace react {
namespace workload {

/** Receive-store-forward workload. */
class PacketForwardBenchmark : public Benchmark
{
  public:
    /**
     * @param params Workload parameters.
     * @param horizon Time span over which arrivals are scheduled.
     * @param seed Seed for the Poisson arrival process.
     */
    PacketForwardBenchmark(const WorkloadParams &params, double horizon,
                           uint64_t seed = 7);

    std::string name() const override { return "PF"; }
    void onPowerUp(BenchContext &ctx) override;
    void tick(BenchContext &ctx) override;
    void onPowerDown(BenchContext &ctx) override;
    void reset() override;

    /** Packets offered by the arrival process so far. */
    uint64_t packetsOffered() const { return offered; }

    /** Receive bursts aborted by power loss. */
    uint64_t failedReceives() const { return failedRx; }

    /** Transmit bursts aborted by power loss (frame retained). */
    uint64_t failedTransmits() const { return failedTx; }

    /** Packets currently queued for retransmission. */
    size_t queueDepth() const { return queue.size(); }

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    mcu::EventQueue makeArrivals() const;

    WorkloadParams params;
    double horizon;
    uint64_t seed;
    mcu::EventQueue arrivals;

    /** Seconds left in the in-flight burst; < 0 when idle. */
    double receiving = -1.0;
    double transmitting = -1.0;
    /** Energy of one receive burst (gates receive attempts). */
    double rxEnergy = 0.0;
    /** Energy of one transmit burst (gates early transmission). */
    double txEnergy = 0.0;
    int txLevel = 0;
    bool levelsComputed = false;
    uint16_t nextSequence = 0;
    uint64_t offered = 0;
    uint64_t failedRx = 0;
    uint64_t failedTx = 0;
    /** FRAM retransmission queue (serialized frames). */
    std::deque<std::vector<uint8_t>> queue;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_PF_BENCHMARK_HH
