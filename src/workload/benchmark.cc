#include "benchmark.hh"

namespace react {
namespace workload {

void
Benchmark::reset()
{
    work = rx = tx = failed = missed = 0;
}

int
Benchmark::levelForEnergy(const buffer::EnergyBuffer &buffer, double energy,
                          double margin)
{
    const int max_level = buffer.maxCapacitanceLevel();
    if (max_level == 0)
        return 0;  // static buffer: no control surface
    const double target = energy * margin;
    for (int level = 0; level <= max_level; ++level) {
        if (buffer.usableEnergyAtLevel(level).raw() >= target)
            return level;
    }
    return max_level;
}

} // namespace workload
} // namespace react
