#include "benchmark.hh"

#include "snapshot/snapshot.hh"

namespace react {
namespace workload {

void
Benchmark::reset()
{
    work = rx = tx = failed = missed = 0;
}

void
Benchmark::save(snapshot::SnapshotWriter &w) const
{
    w.u64(work);
    w.u64(rx);
    w.u64(tx);
    w.u64(failed);
    w.u64(missed);
}

void
Benchmark::restore(snapshot::SnapshotReader &r)
{
    work = r.u64();
    rx = r.u64();
    tx = r.u64();
    failed = r.u64();
    missed = r.u64();
}

int
Benchmark::levelForEnergy(const buffer::EnergyBuffer &buffer, double energy,
                          double margin)
{
    const int max_level = buffer.maxCapacitanceLevel();
    if (max_level == 0)
        return 0;  // static buffer: no control surface
    const double target = energy * margin;
    for (int level = 0; level <= max_level; ++level) {
        if (buffer.usableEnergyAtLevel(level).raw() >= target)
            return level;
    }
    return max_level;
}

} // namespace workload
} // namespace react
