/**
 * @file
 * Digital filtering for the Sense-and-Compute benchmark.
 *
 * SC wakes every five seconds to "sample and digitally filter readings
 * from a low-power microphone" (S 4.2).  We implement a standard biquad
 * (direct form II transposed) section with Butterworth low-pass design,
 * plus a cascade helper -- the kind of front-end filtering an acoustic
 * event detector runs on an MSP430.
 */

#ifndef REACT_WORKLOAD_FILTER_HH
#define REACT_WORKLOAD_FILTER_HH

#include <cstddef>
#include <vector>

namespace react {
namespace workload {

/** Normalized biquad coefficients (a0 == 1). */
struct BiquadCoefficients
{
    double b0 = 1.0, b1 = 0.0, b2 = 0.0;
    double a1 = 0.0, a2 = 0.0;

    /**
     * Second-order Butterworth low-pass section.
     *
     * @param cutoff_hz Cutoff frequency in hertz.
     * @param sample_rate_hz Sample rate in hertz (> 2 * cutoff).
     */
    static BiquadCoefficients lowpass(double cutoff_hz,
                                      double sample_rate_hz);
};

/** One biquad section, direct form II transposed. */
class Biquad
{
  public:
    explicit Biquad(const BiquadCoefficients &coefficients);

    /** Filter one sample. */
    double process(double x);

    /** Clear delay state. */
    void reset();

  private:
    BiquadCoefficients c;
    double z1 = 0.0;
    double z2 = 0.0;
};

/** Cascade of biquad sections (higher-order filters). */
class BiquadCascade
{
  public:
    explicit BiquadCascade(std::vector<BiquadCoefficients> sections);

    /** Filter one sample through every section. */
    double process(double x);

    /** Filter a buffer in place; returns the RMS of the output (the
     *  "acoustic energy" feature SC stores). */
    double processBuffer(std::vector<double> &samples);

    /** Clear all delay state. */
    void reset();

  private:
    std::vector<Biquad> stages;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_FILTER_HH
