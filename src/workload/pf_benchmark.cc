#include "pf_benchmark.hh"

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace workload {

PacketForwardBenchmark::PacketForwardBenchmark(
    const WorkloadParams &workload_params, double sim_horizon,
    uint64_t rng_seed)
    : params(workload_params), horizon(sim_horizon), seed(rng_seed),
      arrivals(makeArrivals())
{
}

mcu::EventQueue
PacketForwardBenchmark::makeArrivals() const
{
    Rng rng(seed * 0x7f4a7c15u + 3);
    return mcu::EventQueue::poisson(params.packetInterarrival, horizon,
                                    rng);
}

void
PacketForwardBenchmark::onPowerUp(BenchContext &ctx)
{
    if (!levelsComputed) {
        const auto &spec = ctx.device->spec();
        rxEnergy =
            (spec.activeCurrent + params.rxCurrent) * params.nominalRail *
            params.rxDuration;
        txEnergy =
            (spec.activeCurrent + params.txCurrent) * params.nominalRail *
            params.pfTxDuration;
        txLevel = levelForEnergy(*ctx.buffer, txEnergy,
                                 params.energyMargin);
        levelsComputed = true;
    }
}

void
PacketForwardBenchmark::tick(BenchContext &ctx)
{
    if (receiving >= 0.0) {
        ctx.device->setState(mcu::PowerState::Active);
        ctx.device->setPeripheralCurrent(params.rxCurrent);
        receiving -= ctx.dt;
        if (receiving < 0.0) {
            // Frame received: verify its CRC and queue it in FRAM.
            const Packet pkt = Packet::make(
                nextSequence++, static_cast<size_t>(params.payloadBytes));
            auto frame = pkt.serialize();
            if (Packet::deserialize(frame, nullptr)) {
                ++rx;
                queue.push_back(std::move(frame));
            } else {
                ++failed;
            }
            ctx.device->setPeripheralCurrent(0.0);
        }
        return;
    }

    if (transmitting >= 0.0) {
        ctx.device->setState(mcu::PowerState::Active);
        ctx.device->setPeripheralCurrent(params.txCurrent);
        transmitting -= ctx.dt;
        if (transmitting < 0.0) {
            react_assert(!queue.empty(), "transmit with empty queue");
            queue.pop_front();
            ++tx;
            ++work;
            ctx.device->setPeripheralCurrent(0.0);
        }
        return;
    }

    // Idle: deep sleep with the wake-up receiver listening.
    ctx.device->setState(mcu::PowerState::DeepSleep);
    ctx.device->setPeripheralCurrent(params.listenCurrent);

    // Arrivals take priority over a pending retransmission: software
    // disregards the transmit longevity requirement when a packet shows
    // up and the cheaper receive is covered (S 5.4.1).
    double when = 0.0;
    while (arrivals.consumeNext(ctx.now, &when)) {
        ++offered;
        if (when <= ctx.now - ctx.dt) {
            // Arrived while the device was off.
            ++missed;
            continue;
        }
        if (ctx.buffer->availableEnergy(units::Volts(1.8)).raw() >=
                rxEnergy * params.energyMargin) {
            receiving = params.rxDuration;
            ctx.device->setState(mcu::PowerState::Active);
            ctx.device->setPeripheralCurrent(params.rxCurrent);
            return;
        }
        // Powered but energy-starved: the packet passes by.
        ++missed;
    }

    if (!queue.empty()) {
        // The paper's protocol: charge to the transmit task's minimum
        // capacitance level before forwarding (S 5.4.1).  Static buffers
        // self-check their rail with the ADC instead.
        ctx.buffer->requestMinLevel(txLevel);
        const bool is_static = ctx.buffer->maxCapacitanceLevel() == 0;
        const bool ready =
            is_static
                ? ctx.buffer->availableEnergy(units::Volts(1.8)).raw() >= txEnergy
                : ctx.buffer->levelSatisfied();
        if (ready) {
            transmitting = params.pfTxDuration;
            ctx.device->setState(mcu::PowerState::Active);
            ctx.device->setPeripheralCurrent(params.txCurrent);
        }
    } else {
        ctx.buffer->requestMinLevel(0);
    }
}

void
PacketForwardBenchmark::onPowerDown(BenchContext &)
{
    if (receiving >= 0.0) {
        // The frame in flight is lost.
        ++failed;
        ++failedRx;
        receiving = -1.0;
    }
    if (transmitting >= 0.0) {
        // The frame stays queued in FRAM and is retried later.
        ++failed;
        ++failedTx;
        transmitting = -1.0;
    }
}

void
PacketForwardBenchmark::reset()
{
    Benchmark::reset();
    arrivals = makeArrivals();
    receiving = -1.0;
    transmitting = -1.0;
    rxEnergy = 0.0;
    txEnergy = 0.0;
    txLevel = 0;
    levelsComputed = false;
    nextSequence = 0;
    offered = 0;
    failedRx = 0;
    failedTx = 0;
    queue.clear();
}

void
PacketForwardBenchmark::save(snapshot::SnapshotWriter &w) const
{
    Benchmark::save(w);
    arrivals.save(w);
    w.f64(receiving);
    w.f64(transmitting);
    w.f64(rxEnergy);
    w.f64(txEnergy);
    w.u32(static_cast<uint32_t>(txLevel));
    w.b(levelsComputed);
    w.u32(nextSequence);
    w.u64(offered);
    w.u64(failedRx);
    w.u64(failedTx);
    w.u32(static_cast<uint32_t>(queue.size()));
    for (const auto &frame : queue)
        w.bytes(frame);
}

void
PacketForwardBenchmark::restore(snapshot::SnapshotReader &r)
{
    Benchmark::restore(r);
    arrivals.restore(r);
    receiving = r.f64();
    transmitting = r.f64();
    rxEnergy = r.f64();
    txEnergy = r.f64();
    txLevel = static_cast<int>(r.u32());
    levelsComputed = r.b();
    nextSequence = static_cast<uint16_t>(r.u32());
    offered = r.u64();
    failedRx = r.u64();
    failedTx = r.u64();
    queue.clear();
    const uint32_t depth = r.u32();
    for (uint32_t i = 0; i < depth; ++i)
        queue.push_back(r.bytes());
}

} // namespace workload
} // namespace react
