/**
 * @file
 * Radio Transmission (RT): send buffered data to a base station (S 4.2).
 *
 * Transmissions are atomic and energy-intensive: a brown-out mid-burst
 * wastes everything spent so far.  On a static buffer the workload simply
 * transmits whenever powered -- the 770 uF buffer "wastes power on
 * doomed-to-fail transmissions" because its usable window is smaller than
 * one burst (S 5.4).  On an adaptive buffer (REACT / Morphy) the workload
 * uses software-directed longevity: it computes the capacitance level
 * whose guaranteed energy covers a burst, requests it, and deep-sleeps
 * until the buffer reports the level reached.
 */

#ifndef REACT_WORKLOAD_RT_BENCHMARK_HH
#define REACT_WORKLOAD_RT_BENCHMARK_HH

#include "workload/benchmark.hh"
#include "workload/packet.hh"

namespace react {
namespace workload {

/** Buffered-data transmission workload. */
class RadioTransmitBenchmark : public Benchmark
{
  public:
    explicit RadioTransmitBenchmark(const WorkloadParams &params =
                                        WorkloadParams());

    std::string name() const override { return "RT"; }
    void onPowerUp(BenchContext &ctx) override;
    void tick(BenchContext &ctx) override;
    void onPowerDown(BenchContext &ctx) override;
    void reset() override;

    /** Energy of one transmit burst at the nominal rail voltage. */
    double burstEnergy(const mcu::DeviceSpec &device) const;

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    WorkloadParams params;
    /** Seconds left in the in-flight burst; < 0 means idle. */
    double transmitting = -1.0;
    /** Longevity level to request before each batch (computed once per
     *  buffer at power-up). */
    int requiredLevel = 0;
    bool levelComputed = false;
    /** Bursts still covered by the last satisfied longevity request. */
    int burstsRemaining = 0;
    uint16_t sequence = 0;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_RT_BENCHMARK_HH
