/**
 * @file
 * Benchmark framework for the paper's four computational workloads
 * (S 4.2): Data Encryption (DE), Sense and Compute (SC), Radio
 * Transmission (RT), and Packet Forwarding (PF).
 *
 * Benchmarks are state machines ticked by the harness while the backend
 * is powered.  Object state persists across power cycles (FRAM
 * semantics); anything a benchmark considers volatile it discards in its
 * onPowerDown handler -- e.g. an in-flight radio operation fails when the
 * rail browns out mid-burst, which is exactly the "doomed-to-fail
 * transmission" failure mode of S 5.4.
 */

#ifndef REACT_WORKLOAD_BENCHMARK_HH
#define REACT_WORKLOAD_BENCHMARK_HH

#include <cstdint>
#include <string>

#include "buffers/energy_buffer.hh"
#include "mcu/device.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace workload {

/** Peripheral and task parameters shared by the benchmarks. */
struct WorkloadParams
{
    /** @name Data Encryption */
    /** @{ */
    /** Wall-clock cost of one software AES-128 batch on the MCU. */
    double encryptionDuration = 0.15;
    /** @} */

    /** @name Sense and Compute */
    /** @{ */
    /** Sensing deadline period (paper: every five seconds). */
    double sensePeriod = 5.0;
    /** Microphone sampling + filtering burst length. */
    double sampleDuration = 0.10;
    /** Microphone supply current while sampling (SPU0414HR5H-class). */
    double micCurrent = 0.5e-3;
    /** @} */

    /** @name Radio (RT / PF) */
    /** @{ */
    /** Transmit burst length (atomic). */
    double txDuration = 0.30;
    /** Radio transmit current (ZL70251-class sub-GHz transceiver with
     *  PA; one burst ~7.7 mJ -- beyond the 770 uF usable window, so a
     *  small buffer completes it only when a harvest spike assists). */
    double txCurrent = 8e-3;
    /** Receive burst length (atomic). */
    double rxDuration = 0.10;
    /** Radio receive current (one burst ~1.8 mJ, inside the 770 uF
     *  window). */
    double rxCurrent = 5e-3;
    /** Forwarding transmit burst length (PF relays one short frame per
     *  burst, unlike RT's bulk uploads; ~3.6 mJ -- completable from a
     *  full 770 uF buffer with harvest assist). */
    double pfTxDuration = 0.08;
    /** Wake-up receiver current while listening in deep sleep
     *  (RFicient-class). */
    double listenCurrent = 10e-6;
    /** Mean packet inter-arrival for PF's Poisson process. */
    double packetInterarrival = 12.0;
    /** Payload bytes per radio frame. */
    int payloadBytes = 24;
    /** @} */

    /** Safety margin applied to energy requirements when translating them
     *  into capacitance levels (covers overhead draw and leakage during
     *  the operation). */
    double energyMargin = 1.2;

    /** Nominal rail voltage used to pre-compute operation energies. */
    double nominalRail = 2.7;
};

/** Per-tick context handed to a benchmark. */
struct BenchContext
{
    /** Simulation time at the end of this tick, seconds. */
    double now = 0.0;
    /** Tick length, seconds. */
    double dt = 0.0;
    /** Backend device (power state and peripheral loads). */
    mcu::Device *device = nullptr;
    /** Energy buffer (capacitance-level control surface). */
    buffer::EnergyBuffer *buffer = nullptr;
    /** Compute-rate multiplier (1 - monitoring-software overhead). */
    double workScale = 1.0;
};

/** Abstract workload. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    /** Short name ("DE", "SC", "RT", "PF"). */
    virtual std::string name() const = 0;

    /** Called when the power gate enables the backend. */
    virtual void onPowerUp(BenchContext &ctx) { (void)ctx; }

    /** Called when the backend browns out. */
    virtual void onPowerDown(BenchContext &ctx) { (void)ctx; }

    /** Advance the workload by one tick (only called while powered). */
    virtual void tick(BenchContext &ctx) = 0;

    /**
     * Does tick() ever read ctx.buffer?  Workloads that adapt to the
     * buffer's energy state (RT, PF) return true (the default);
     * fixed-pipeline workloads (DE, SC) override to false, which lets
     * the lane engine skip re-syncing the lane voltage into the buffer
     * object before every tick (the lane array is the compute truth
     * while a cell is batched; see harness/batch_runner.cc).  Power
     * hooks may observe the buffer regardless -- the contract covers
     * tick() only.
     */
    virtual bool tickObservesBuffer() const { return true; }

    /** Primary figure of merit (encryptions, samples, transmissions...). */
    uint64_t workUnits() const { return work; }

    /** Packets successfully received (PF). */
    uint64_t packetsReceived() const { return rx; }

    /** Packets successfully retransmitted (PF). */
    uint64_t packetsSent() const { return tx; }

    /** Operations aborted by power loss. */
    uint64_t failedOperations() const { return failed; }

    /** Deadlines / arrivals missed while unpowered or energy-starved. */
    uint64_t missedEvents() const { return missed; }

    /** Clear all progress (fresh deployment). */
    virtual void reset();

    /**
     * Serialize the workload's complete mutable state -- counters,
     * in-flight operation progress, event-queue cursors, RNG streams,
     * and queued data -- so a restored run replays bit-identically.
     * Construction parameters are not serialized (restore() assumes an
     * identically-constructed benchmark).  Overrides call the base
     * implementation first.
     */
    virtual void save(snapshot::SnapshotWriter &w) const;
    virtual void restore(snapshot::SnapshotReader &r);

  protected:
    /**
     * Smallest capacitance level whose buffer-full discharge window
     * guarantees the given energy -- the level to request so that
     * levelSatisfied() implies the operation can complete (S 3.4.1).
     */
    static int levelForEnergy(const buffer::EnergyBuffer &buffer,
                              double energy, double margin);

    uint64_t work = 0;
    uint64_t rx = 0;
    uint64_t tx = 0;
    uint64_t failed = 0;
    uint64_t missed = 0;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_BENCHMARK_HH
