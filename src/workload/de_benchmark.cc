#include "de_benchmark.hh"

#include "snapshot/snapshot.hh"

namespace react {
namespace workload {

namespace {

Aes128::Key
benchmarkKey()
{
    // Fixed key: the FIPS-197 example key.
    return {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

} // namespace

DataEncryptionBenchmark::DataEncryptionBenchmark(
    const WorkloadParams &workload_params)
    : params(workload_params), aes(benchmarkKey())
{
    block.fill(0);
}

void
DataEncryptionBenchmark::tick(BenchContext &ctx)
{
    ctx.device->setState(mcu::PowerState::Active);
    progress += ctx.dt * ctx.workScale;
    while (progress >= params.encryptionDuration) {
        progress -= params.encryptionDuration;
        block = aes.encrypt(block);
        ++work;
    }
}

void
DataEncryptionBenchmark::onPowerDown(BenchContext &)
{
    // The in-flight batch is volatile state and is lost.
    progress = 0.0;
}

void
DataEncryptionBenchmark::reset()
{
    Benchmark::reset();
    progress = 0.0;
    block.fill(0);
}

void
DataEncryptionBenchmark::save(snapshot::SnapshotWriter &w) const
{
    Benchmark::save(w);
    for (uint8_t byte : block)
        w.u8(byte);
    w.f64(progress);
}

void
DataEncryptionBenchmark::restore(snapshot::SnapshotReader &r)
{
    Benchmark::restore(r);
    for (uint8_t &byte : block)
        byte = r.u8();
    progress = r.f64();
}

} // namespace workload
} // namespace react
