#include "rt_benchmark.hh"

#include <algorithm>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace workload {

RadioTransmitBenchmark::RadioTransmitBenchmark(
    const WorkloadParams &workload_params)
    : params(workload_params)
{
}

double
RadioTransmitBenchmark::burstEnergy(const mcu::DeviceSpec &device) const
{
    return (device.activeCurrent + params.txCurrent) * params.nominalRail *
        params.txDuration;
}

void
RadioTransmitBenchmark::onPowerUp(BenchContext &ctx)
{
    if (!levelComputed) {
        requiredLevel = levelForEnergy(*ctx.buffer,
                                       burstEnergy(ctx.device->spec()),
                                       params.energyMargin);
        levelComputed = true;
    }
}

void
RadioTransmitBenchmark::tick(BenchContext &ctx)
{
    if (transmitting >= 0.0) {
        ctx.device->setState(mcu::PowerState::Active);
        ctx.device->setPeripheralCurrent(params.txCurrent);
        transmitting -= ctx.dt;
        if (transmitting < 0.0) {
            // Burst completed: frame the next chunk of buffered data with
            // a real CRC (the marshalling work a deployment would do).
            const Packet pkt = Packet::make(
                sequence++, static_cast<size_t>(params.payloadBytes));
            const auto frame = pkt.serialize();
            react_assert(Packet::deserialize(frame, nullptr),
                         "self-framed packet failed verification");
            ++tx;
            ++work;
            ctx.device->setPeripheralCurrent(0.0);
        }
        return;
    }

    // Idle: gather energy.  Static buffers have no control surface and
    // fire immediately (levelSatisfied() is true); adaptive buffers
    // follow the paper's protocol and wait for the requested minimum
    // capacitance level (S 3.4.1 / S 5.4).  Once the level is reached
    // the guaranteed window covers usable(level) / E_burst consecutive
    // bursts, so software batches that many before waiting again.
    if (burstsRemaining == 0) {
        ctx.buffer->requestMinLevel(requiredLevel);
        if (ctx.buffer->levelSatisfied()) {
            const int max_level = ctx.buffer->maxCapacitanceLevel();
            if (max_level > 0) {
                const double burst = burstEnergy(ctx.device->spec()) *
                    params.energyMargin;
                const double banked = ctx.buffer->usableEnergyAtLevel(
                    ctx.buffer->capacitanceLevel()).raw();
                burstsRemaining = std::max(
                    1, static_cast<int>(banked / burst));
            } else {
                burstsRemaining = 1;
            }
        }
    }
    if (burstsRemaining > 0) {
        --burstsRemaining;
        transmitting = params.txDuration;
        ctx.device->setState(mcu::PowerState::Active);
        ctx.device->setPeripheralCurrent(params.txCurrent);
    } else {
        // No deadline to react to: lowest-power wait for the charge.
        ctx.device->setState(mcu::PowerState::DeepSleep);
    }
}

void
RadioTransmitBenchmark::onPowerDown(BenchContext &)
{
    if (transmitting >= 0.0) {
        // Doomed-to-fail transmission: energy spent, nothing delivered.
        ++failed;
        transmitting = -1.0;
    }
    // The guarantee backing the rest of the batch died with the power.
    burstsRemaining = 0;
}

void
RadioTransmitBenchmark::reset()
{
    Benchmark::reset();
    transmitting = -1.0;
    requiredLevel = 0;
    levelComputed = false;
    burstsRemaining = 0;
    sequence = 0;
}

void
RadioTransmitBenchmark::save(snapshot::SnapshotWriter &w) const
{
    Benchmark::save(w);
    w.f64(transmitting);
    w.u32(static_cast<uint32_t>(requiredLevel));
    w.b(levelComputed);
    w.u32(static_cast<uint32_t>(burstsRemaining));
    w.u32(sequence);
}

void
RadioTransmitBenchmark::restore(snapshot::SnapshotReader &r)
{
    Benchmark::restore(r);
    transmitting = r.f64();
    requiredLevel = static_cast<int>(r.u32());
    levelComputed = r.b();
    burstsRemaining = static_cast<int>(r.u32());
    sequence = static_cast<uint16_t>(r.u32());
}

} // namespace workload
} // namespace react
