/**
 * @file
 * Data Encryption (DE): continuous software AES-128 (S 4.2).
 *
 * DE has no reactivity or persistence requirements and a flat,
 * predictable power draw; the paper uses it to isolate REACT's software
 * and power overhead (S 5.1).  The workload chains real AES-128
 * encryptions: each completed batch feeds its ciphertext into the next
 * plaintext, so the computation cannot be optimized away and the final
 * digest doubles as an end-to-end correctness check.
 */

#ifndef REACT_WORKLOAD_DE_BENCHMARK_HH
#define REACT_WORKLOAD_DE_BENCHMARK_HH

#include "workload/aes128.hh"
#include "workload/benchmark.hh"

namespace react {
namespace workload {

/** Continuous AES-128 encryption workload. */
class DataEncryptionBenchmark : public Benchmark
{
  public:
    explicit DataEncryptionBenchmark(const WorkloadParams &params =
                                         WorkloadParams());

    std::string name() const override { return "DE"; }
    void tick(BenchContext &ctx) override;
    /** Fixed pipeline: tick() reads only the device and clock. */
    bool tickObservesBuffer() const override { return false; }
    void onPowerDown(BenchContext &ctx) override;
    void reset() override;

    /** Running ciphertext (for end-to-end verification). */
    const Aes128::Block &digest() const { return block; }

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    WorkloadParams params;
    Aes128 aes;
    Aes128::Block block;
    /** CPU-time progress toward the next completed encryption batch;
     *  volatile -- lost on power failure. */
    double progress = 0.0;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_DE_BENCHMARK_HH
