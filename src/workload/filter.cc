#include "filter.hh"

#include <cmath>

#include "util/logging.hh"

namespace react {
namespace workload {

BiquadCoefficients
BiquadCoefficients::lowpass(double cutoff_hz, double sample_rate_hz)
{
    react_assert(cutoff_hz > 0.0, "cutoff must be positive");
    react_assert(sample_rate_hz > 2.0 * cutoff_hz,
                 "sample rate must exceed the Nyquist bound");
    // Bilinear-transform Butterworth section (Q = 1/sqrt(2)).
    const double w0 = 2.0 * M_PI * cutoff_hz / sample_rate_hz;
    const double cos_w0 = std::cos(w0);
    const double sin_w0 = std::sin(w0);
    const double q = 1.0 / std::sqrt(2.0);
    const double alpha = sin_w0 / (2.0 * q);
    const double a0 = 1.0 + alpha;

    BiquadCoefficients c;
    c.b0 = (1.0 - cos_w0) / 2.0 / a0;
    c.b1 = (1.0 - cos_w0) / a0;
    c.b2 = c.b0;
    c.a1 = -2.0 * cos_w0 / a0;
    c.a2 = (1.0 - alpha) / a0;
    return c;
}

Biquad::Biquad(const BiquadCoefficients &coefficients)
    : c(coefficients)
{
}

double
Biquad::process(double x)
{
    const double y = c.b0 * x + z1;
    z1 = c.b1 * x - c.a1 * y + z2;
    z2 = c.b2 * x - c.a2 * y;
    return y;
}

void
Biquad::reset()
{
    z1 = z2 = 0.0;
}

BiquadCascade::BiquadCascade(std::vector<BiquadCoefficients> sections)
{
    react_assert(!sections.empty(), "cascade needs at least one section");
    stages.reserve(sections.size());
    for (const auto &coeffs : sections)
        stages.emplace_back(coeffs);
}

double
BiquadCascade::process(double x)
{
    for (auto &stage : stages)
        x = stage.process(x);
    return x;
}

double
BiquadCascade::processBuffer(std::vector<double> &samples)
{
    double sum_sq = 0.0;
    for (double &s : samples) {
        s = process(s);
        sum_sq += s * s;
    }
    if (samples.empty())
        return 0.0;
    return std::sqrt(sum_sq / static_cast<double>(samples.size()));
}

void
BiquadCascade::reset()
{
    for (auto &stage : stages)
        stage.reset();
}

} // namespace workload
} // namespace react
