/**
 * @file
 * CRC-16 framing and the packet model for the radio benchmarks.
 *
 * RT transmits buffered data; PF receives, stores, and retransmits
 * packets (S 4.2).  Frames carry a sequence number, payload, and a
 * CRC-16/CCITT checksum that the receiver verifies -- giving the radio
 * benchmarks real marshalling/validation work rather than empty delays.
 */

#ifndef REACT_WORKLOAD_PACKET_HH
#define REACT_WORKLOAD_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace react {
namespace workload {

/** CRC-16/CCITT-FALSE over a byte buffer (init 0xFFFF, poly 0x1021). */
uint16_t crc16(const uint8_t *data, size_t length);

/** One radio frame. */
struct Packet
{
    uint16_t sequence = 0;
    std::vector<uint8_t> payload;

    /** Serialize: [seq_hi, seq_lo, len, payload..., crc_hi, crc_lo]. */
    std::vector<uint8_t> serialize() const;

    /**
     * Parse and verify a frame.
     *
     * @param bytes Raw frame.
     * @param out Parsed packet on success.
     * @return false when the frame is malformed or fails its CRC.
     */
    static bool deserialize(const std::vector<uint8_t> &bytes, Packet *out);

    /** Build a packet with a deterministic pseudo-payload. */
    static Packet make(uint16_t sequence, size_t payload_size);
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_PACKET_HH
