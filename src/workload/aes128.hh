/**
 * @file
 * Software AES-128 (FIPS-197), the Data Encryption benchmark kernel.
 *
 * The paper's DE benchmark "continuously performs AES-128 encryptions in
 * software" as a predictable compute load (S 4.2).  This is a
 * straightforward table-free implementation (on-the-fly S-box lookups,
 * xtime-based MixColumns) of the kind that fits an MSP430-class device;
 * it is validated against the FIPS-197 and SP 800-38A known-answer
 * vectors in the test suite.
 */

#ifndef REACT_WORKLOAD_AES128_HH
#define REACT_WORKLOAD_AES128_HH

#include <array>
#include <cstdint>

namespace react {
namespace workload {

/** AES-128 block cipher (encrypt-only, as the benchmark requires). */
class Aes128
{
  public:
    /** 16-byte block. */
    using Block = std::array<uint8_t, 16>;
    /** 16-byte key. */
    using Key = std::array<uint8_t, 16>;

    /** Expand the given cipher key. */
    explicit Aes128(const Key &key);

    /** Encrypt one block. */
    Block encrypt(const Block &plaintext) const;

    /** Number of 32-bit round-key words (44 for AES-128). */
    static constexpr int kRoundKeyWords = 44;

  private:
    /** Round keys as bytes, 11 round keys of 16 bytes each. */
    std::array<uint8_t, 176> roundKeys;
};

} // namespace workload
} // namespace react

#endif // REACT_WORKLOAD_AES128_HH
