#include "packet.hh"

#include <cstddef>

namespace react {
namespace workload {

uint16_t
crc16(const uint8_t *data, size_t length)
{
    uint16_t crc = 0xffff;
    for (size_t i = 0; i < length; ++i) {
        crc ^= static_cast<uint16_t>(data[i]) << 8;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x8000)
                crc = static_cast<uint16_t>((crc << 1) ^ 0x1021);
            else
                crc = static_cast<uint16_t>(crc << 1);
        }
    }
    return crc;
}

std::vector<uint8_t>
Packet::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(payload.size() + 5);
    out.push_back(static_cast<uint8_t>(sequence >> 8));
    out.push_back(static_cast<uint8_t>(sequence & 0xff));
    out.push_back(static_cast<uint8_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    const uint16_t crc = crc16(out.data(), out.size());
    out.push_back(static_cast<uint8_t>(crc >> 8));
    out.push_back(static_cast<uint8_t>(crc & 0xff));
    return out;
}

bool
Packet::deserialize(const std::vector<uint8_t> &bytes, Packet *out)
{
    if (bytes.size() < 5)
        return false;
    const size_t body_len = bytes.size() - 2;
    const uint16_t expected = crc16(bytes.data(), body_len);
    const uint16_t actual = static_cast<uint16_t>(
        (static_cast<uint16_t>(bytes[body_len]) << 8) | bytes[body_len + 1]);
    if (expected != actual)
        return false;
    const size_t payload_len = bytes[2];
    if (payload_len != body_len - 3)
        return false;
    if (out) {
        out->sequence = static_cast<uint16_t>(
            (static_cast<uint16_t>(bytes[0]) << 8) | bytes[1]);
        out->payload.assign(bytes.begin() + 3,
                            bytes.begin() + 3 +
                                static_cast<long>(payload_len));
    }
    return true;
}

Packet
Packet::make(uint16_t sequence, size_t payload_size)
{
    Packet p;
    p.sequence = sequence;
    p.payload.resize(payload_size);
    // Deterministic pseudo-payload keyed by the sequence number.
    uint8_t v = static_cast<uint8_t>(sequence * 31 + 7);
    for (auto &byte : p.payload) {
        byte = v;
        v = static_cast<uint8_t>(v * 13 + 17);
    }
    return p;
}

} // namespace workload
} // namespace react
