#include "sc_benchmark.hh"

#include <cmath>

#include "snapshot/snapshot.hh"

namespace react {
namespace workload {

namespace {

/** 4th-order Butterworth low-pass at 1 kHz for an 8 kHz microphone. */
std::vector<BiquadCoefficients>
micFilterDesign()
{
    return {BiquadCoefficients::lowpass(1000.0, 8000.0),
            BiquadCoefficients::lowpass(1000.0, 8000.0)};
}

} // namespace

SenseComputeBenchmark::SenseComputeBenchmark(
    const WorkloadParams &workload_params, double sim_horizon,
    uint64_t rng_seed)
    : params(workload_params), horizon(sim_horizon), seed(rng_seed),
      deadlines(mcu::EventQueue::periodic(params.sensePeriod, horizon)),
      rng(seed), filter(micFilterDesign())
{
}

void
SenseComputeBenchmark::processSample()
{
    // Synthetic microphone buffer: tone plus noise, then the real filter.
    const int n = 256;
    std::vector<double> samples(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / 8000.0;
        samples[static_cast<size_t>(i)] =
            0.4 * std::sin(2.0 * M_PI * 440.0 * t) + 0.1 * rng.normal();
    }
    filter.reset();
    feature = filter.processBuffer(samples);
    ++work;
}

void
SenseComputeBenchmark::tick(BenchContext &ctx)
{
    if (sampling >= 0.0) {
        // Acquisition burst in progress.
        ctx.device->setState(mcu::PowerState::Active);
        ctx.device->setPeripheralCurrent(params.micCurrent);
        sampling -= ctx.dt * ctx.workScale;
        if (sampling < 0.0) {
            processSample();
            ctx.device->setPeripheralCurrent(0.0);
        }
        return;
    }

    // Idle: deep sleep, waiting on the timekeeper.
    ctx.device->setState(mcu::PowerState::Sleep);
    double when = 0.0;
    while (deadlines.consumeNext(ctx.now, &when)) {
        if (when > ctx.now - ctx.dt) {
            // Deadline fired this tick: start the burst.
            sampling = params.sampleDuration;
            break;
        }
        // Fired while the device was off: missed.
        ++missed;
    }
}

void
SenseComputeBenchmark::onPowerDown(BenchContext &)
{
    if (sampling >= 0.0) {
        // Burst aborted mid-flight.
        ++failed;
        sampling = -1.0;
    }
}

void
SenseComputeBenchmark::reset()
{
    Benchmark::reset();
    deadlines = mcu::EventQueue::periodic(params.sensePeriod, horizon);
    rng = Rng(seed);
    sampling = -1.0;
    feature = 0.0;
}

void
SenseComputeBenchmark::save(snapshot::SnapshotWriter &w) const
{
    Benchmark::save(w);
    deadlines.save(w);
    snapshot::saveRng(w, rng);
    w.f64(sampling);
    w.f64(feature);
    // The biquad filter is reset at the start of every processSample()
    // burst, so its taps carry no state across ticks -- not serialized.
}

void
SenseComputeBenchmark::restore(snapshot::SnapshotReader &r)
{
    Benchmark::restore(r);
    deadlines.restore(r);
    snapshot::restoreRng(r, &rng);
    sampling = r.f64();
    feature = r.f64();
}

} // namespace workload
} // namespace react
