/**
 * @file
 * Factory for the power traces used in the paper's evaluation.
 *
 * Table 3 of the paper characterizes five traces (three RF, recorded with a
 * Powercast P2110B in an office; two solar, from the EnHANTs mobile
 * irradiance dataset).  The raw recordings are not redistributable, so this
 * factory synthesizes seeded traces matching the published duration, mean
 * power, and coefficient of variation, with regime structure appropriate to
 * each scenario.  Two additional traces back the motivation experiments:
 * the Fig. 1 pedestrian-solar trace (5 cm^2, 22 % efficient panel) and the
 * S 2.1.2 night-time solar trace.
 */

#ifndef REACT_TRACE_PAPER_TRACES_HH
#define REACT_TRACE_PAPER_TRACES_HH

#include <array>
#include <string>

#include "trace/power_trace.hh"

namespace react {
namespace trace {

/** The five evaluation traces of Table 3. */
enum class PaperTrace
{
    RfCart,
    RfObstruction,
    RfMobile,
    SolarCampus,
    SolarCommute,
};

/** All five evaluation traces, in the paper's row order. */
constexpr std::array<PaperTrace, 5> kAllPaperTraces = {
    PaperTrace::RfCart, PaperTrace::RfObstruction, PaperTrace::RfMobile,
    PaperTrace::SolarCampus, PaperTrace::SolarCommute,
};

/** Published Table-3 statistics for one trace. */
struct PaperTraceSpec
{
    const char *name;
    double duration;      ///< seconds
    double meanPower;     ///< watts
    double cv;            ///< coefficient of variation (1.0 == 100 %)
};

/** Published statistics for the given trace (the reproduction target). */
const PaperTraceSpec &paperTraceSpec(PaperTrace which);

/** Short display name ("RF Cart", "Sol. Camp.", ...). */
std::string paperTraceName(PaperTrace which);

/**
 * Synthesize the given evaluation trace.
 *
 * @param which Trace to build.
 * @param seed Stream seed; the default reproduces the repository's
 *        reference results.
 */
PowerTrace makePaperTrace(PaperTrace which, uint64_t seed = 1);

/**
 * Fig. 1 pedestrian solar-harvester trace: spike-dominated outdoor walking
 * irradiance scaled to a 5 cm^2, 22 % efficient panel.  Designed to match
 * S 2.1.2's decomposition (approx. 82 % of energy above 10 mW, 77 % of time
 * below 3 mW).
 */
PowerTrace makePedestrianSolarTrace(uint64_t seed = 1,
                                    double duration = 3600.0);

/** S 2.1.2 night-time solar trace: scarce, smooth, ~0.25 mW. */
PowerTrace makeNightSolarTrace(uint64_t seed = 1);

} // namespace trace
} // namespace react

#endif // REACT_TRACE_PAPER_TRACES_HH
