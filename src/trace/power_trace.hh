/**
 * @file
 * Power-trace container and characterization.
 *
 * A PowerTrace is a fixed-rate, zero-order-hold sampling of harvested power
 * versus time -- the digital equivalent of what the paper's Ekho-style
 * frontend replays into the buffer.  The characterization helpers compute
 * the statistics the paper reports: Table 3's mean power and coefficient of
 * variation, and S 2.1.2's spike-energy decomposition (what fraction of
 * total energy arrives above a power threshold, what fraction of time is
 * spent below one).
 */

#ifndef REACT_TRACE_POWER_TRACE_HH
#define REACT_TRACE_POWER_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace react {
namespace trace {

/**
 * Raised when a trace file is malformed: unreadable, truncated,
 * non-numeric, non-monotonic or non-uniform timestamps, or negative
 * power.  what() carries file and line context ("path:line: message")
 * so a bad row in a thousand-line capture is findable directly.
 */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * One run of consecutive fixed-dt replay steps over which power() keeps
 * returning the same double (bit-identical).  The batch runner's hot
 * loop consumes a precompiled span table as a linear sweep -- one
 * counter decrement per lane per step -- instead of a per-step
 * divide-and-index lookup.
 */
struct StepSpan
{
    /** steps value of the final span: the trace has ended and power()
     *  is 0.0 (or the converter's image of 0.0) forever after. */
    static constexpr uint64_t kOpenEnded = ~0ull;

    /** power() during every step of the span, watts. */
    double watts = 0.0;
    /** Number of consecutive steps the value holds (kOpenEnded for the
     *  unbounded tail past the trace end). */
    uint64_t steps = 0;
};

/** Summary statistics for a trace (the paper's Table 3 row). */
struct TraceStats
{
    double duration = 0.0;      ///< seconds
    double meanPower = 0.0;     ///< watts
    double cv = 0.0;            ///< stddev / mean
    double totalEnergy = 0.0;   ///< joules
    double peakPower = 0.0;     ///< watts
};

/** Fixed-rate power-versus-time series with zero-order-hold lookup. */
class PowerTrace
{
  public:
    PowerTrace() = default;

    /**
     * @param sample_dt Sampling interval in seconds (> 0).
     * @param samples Power samples in watts (each >= 0).
     * @param name Human-readable label used in reports.
     */
    PowerTrace(double sample_dt, std::vector<double> samples,
               std::string name = "");

    /** Trace label. */
    const std::string &name() const { return label; }

    /** Sampling interval in seconds. */
    double sampleDt() const { return dt; }

    /** Number of samples. */
    size_t size() const { return samples.size(); }

    /** Total duration in seconds. */
    double duration() const;

    /** Raw sample access. */
    const std::vector<double> &data() const { return samples; }

    /**
     * Power at the given time (zero-order hold); 0 outside the trace.
     *
     * @param t Time in seconds from the start of the trace.
     */
    double power(double t) const;

    /**
     * Start time (seconds) of the first sample at or after `t` with
     * nonzero power, i.e. how long power() stays exactly 0 from `t`
     * onward.  Returns +infinity when the remainder of the trace (and
     * hence everything past its end) is zero; may return a value <= t
     * when the sample containing `t` itself is nonzero.  Used by the
     * harness to size quiescent fast-path horizons.
     */
    double zeroUntil(double t) const;

    /**
     * Compile the fixed-dt replay `t = 0; repeat { t += step_dt;
     * power(t); }` into run-length spans, appended to @p out.  The
     * boundaries come from replaying that exact accumulated-t sequence
     * (including its floating-point rounding) through power()'s own
     * index arithmetic, so sweeping the spans yields bit-identical
     * power values to calling power() every step -- this is what lets
     * the lane engine hoist trace sampling out of its hot loop.  The
     * final span is the unbounded zero tail past the trace end
     * (StepSpan::kOpenEnded).
     *
     * @param step_dt Replay timestep, seconds (> 0).
     * @param out Receives the spans (appended; not cleared).
     */
    void compileStepSpans(double step_dt,
                          std::vector<StepSpan> &out) const;

    /** Total energy contained in the trace, in joules. */
    double totalEnergy() const;

    /** Table-3 style summary statistics. */
    TraceStats stats() const;

    /** Fraction of total energy delivered while power >= threshold. */
    double energyFractionAbove(double threshold) const;

    /** Fraction of time spent with power <= threshold. */
    double timeFractionBelow(double threshold) const;

    /** Multiply every sample by the given factor. */
    void scale(double factor);

    /** Rescale samples so the mean power equals the target. */
    void scaleToMeanPower(double target_mean);

    /**
     * Resample to a different interval (zero-order hold).
     *
     * @param new_dt Target sampling interval in seconds.
     */
    PowerTrace resampled(double new_dt) const;

    /** Serialize as two-column CSV (time_s, power_w). */
    std::string toCsv() const;

    /**
     * Parse from two-column CSV (time_s, power_w); dt from row spacing.
     * Validates the same invariants as fromCsvFile().
     * @throws TraceError on malformed input.
     */
    static PowerTrace fromCsv(const std::string &text,
                              const std::string &name = "");

    /**
     * Load and validate a trace capture from disk.  Rejected with a
     * TraceError carrying "path:line" context: unreadable or empty
     * files, fewer than two data rows, non-numeric fields, timestamps
     * that are not strictly increasing on a uniform grid, non-finite or
     * negative power samples, and rows missing a column.
     *
     * @param path CSV file with time_s/power_w columns (or two unnamed
     *        columns in that order).
     * @param name Trace label; defaults to the path.
     */
    static PowerTrace fromCsvFile(const std::string &path,
                                  const std::string &name = "");

  private:
    std::string label;
    double dt = 0.0;
    std::vector<double> samples;
};

} // namespace trace
} // namespace react

#endif // REACT_TRACE_POWER_TRACE_HH
