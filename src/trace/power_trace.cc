#include "power_trace.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace react {
namespace trace {

PowerTrace::PowerTrace(double sample_dt, std::vector<double> sample_values,
                       std::string name)
    : label(std::move(name)), dt(sample_dt), samples(std::move(sample_values))
{
    react_assert(sample_dt > 0.0, "trace sample interval must be positive");
    for (double p : this->samples)
        react_assert(p >= 0.0, "trace power samples must be >= 0");
}

double
PowerTrace::duration() const
{
    return dt * static_cast<double>(samples.size());
}

double
PowerTrace::power(double t) const
{
    if (t < 0.0 || samples.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(t / dt);
    if (idx >= samples.size())
        return 0.0;
    return samples[idx];
}

double
PowerTrace::totalEnergy() const
{
    double e = 0.0;
    for (double p : samples)
        e += p * dt;
    return e;
}

TraceStats
PowerTrace::stats() const
{
    RunningStats rs;
    for (double p : samples)
        rs.add(p);
    TraceStats out;
    out.duration = duration();
    out.meanPower = rs.mean();
    out.cv = rs.cv();
    out.totalEnergy = totalEnergy();
    out.peakPower = rs.max();
    return out;
}

double
PowerTrace::energyFractionAbove(double threshold) const
{
    const double total = totalEnergy();
    if (total <= 0.0)
        return 0.0;
    double above = 0.0;
    for (double p : samples) {
        if (p >= threshold)
            above += p * dt;
    }
    return above / total;
}

double
PowerTrace::timeFractionBelow(double threshold) const
{
    if (samples.empty())
        return 0.0;
    size_t below = 0;
    for (double p : samples) {
        if (p <= threshold)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(samples.size());
}

void
PowerTrace::scale(double factor)
{
    react_assert(factor >= 0.0, "trace scale factor must be >= 0");
    for (double &p : samples)
        p *= factor;
}

void
PowerTrace::scaleToMeanPower(double target_mean)
{
    RunningStats rs;
    for (double p : samples)
        rs.add(p);
    const double mean = rs.mean();
    react_assert(mean > 0.0, "cannot rescale an all-zero trace");
    scale(target_mean / mean);
}

PowerTrace
PowerTrace::resampled(double new_dt) const
{
    react_assert(new_dt > 0.0, "resample interval must be positive");
    const size_t n = static_cast<size_t>(std::ceil(duration() / new_dt));
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        out[i] = power(static_cast<double>(i) * new_dt);
    return PowerTrace(new_dt, std::move(out), label);
}

std::string
PowerTrace::toCsv() const
{
    std::ostringstream out;
    out << "time_s,power_w\n";
    out.precision(9);
    for (size_t i = 0; i < samples.size(); ++i)
        out << static_cast<double>(i) * dt << ',' << samples[i] << '\n';
    return out.str();
}

PowerTrace
PowerTrace::fromCsv(const std::string &text, const std::string &name)
{
    const CsvTable table = parseCsv(text);
    react_assert(table.rows.size() >= 2, "trace csv needs >= 2 rows");
    int t_col = table.columnIndex("time_s");
    int p_col = table.columnIndex("power_w");
    if (t_col < 0 || p_col < 0) {
        t_col = 0;
        p_col = 1;
    }
    const double sample_dt =
        table.rows[1][static_cast<size_t>(t_col)] -
        table.rows[0][static_cast<size_t>(t_col)];
    std::vector<double> samples;
    samples.reserve(table.rows.size());
    for (const auto &row : table.rows)
        samples.push_back(row[static_cast<size_t>(p_col)]);
    return PowerTrace(sample_dt, std::move(samples), name);
}

} // namespace trace
} // namespace react
