#include "power_trace.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace react {
namespace trace {

namespace {

/** Prefix a diagnostic with its source ("path: msg" / "path:line: msg"). */
[[noreturn]] void
traceFail(const std::string &source, size_t line, const std::string &msg)
{
    std::string where = source;
    if (line > 0)
        where += ":" + std::to_string(line);
    throw TraceError(where + ": " + msg);
}

/**
 * Validate a parsed table as a power capture and build the trace:
 * >= 2 rows, every row wide enough, timestamps strictly increasing on a
 * uniform grid (dt from the first two rows, 0.1 % relative tolerance --
 * loggers quantize timestamps), power finite and non-negative.
 */
PowerTrace
traceFromTable(const CsvTable &table, const std::string &source,
               const std::string &name)
{
    if (table.rows.size() < 2)
        traceFail(source, 0,
                  "a trace needs at least 2 data rows (got " +
                      std::to_string(table.rows.size()) + ")");
    int t_col = table.columnIndex("time_s");
    int p_col = table.columnIndex("power_w");
    if (t_col < 0 || p_col < 0) {
        t_col = 0;
        p_col = 1;
    }
    const size_t width =
        static_cast<size_t>(std::max(t_col, p_col)) + 1;
    auto row_line = [&](size_t i) {
        return i < table.rowLines.size() ? table.rowLines[i] : 0;
    };
    for (size_t i = 0; i < table.rows.size(); ++i) {
        if (table.rows[i].size() < width)
            traceFail(source, row_line(i),
                      "row has " + std::to_string(table.rows[i].size()) +
                          " column(s), need " + std::to_string(width));
    }

    const double t0 = table.rows[0][static_cast<size_t>(t_col)];
    const double sample_dt =
        table.rows[1][static_cast<size_t>(t_col)] - t0;
    if (!(sample_dt > 0.0) || !std::isfinite(sample_dt))
        traceFail(source, row_line(1),
                  "timestamps must be strictly increasing (dt = " +
                      std::to_string(sample_dt) + ")");

    std::vector<double> samples;
    samples.reserve(table.rows.size());
    for (size_t i = 0; i < table.rows.size(); ++i) {
        const double t = table.rows[i][static_cast<size_t>(t_col)];
        const double expected = t0 + static_cast<double>(i) * sample_dt;
        if (!std::isfinite(t) ||
            std::abs(t - expected) > 1e-3 * sample_dt)
            traceFail(source, row_line(i),
                      "timestamp " + std::to_string(t) +
                          " breaks the uniform grid (expected " +
                          std::to_string(expected) + ")");
        const double p = table.rows[i][static_cast<size_t>(p_col)];
        if (!std::isfinite(p) || p < 0.0)
            traceFail(source, row_line(i),
                      "power sample " + std::to_string(p) +
                          " must be finite and >= 0");
        samples.push_back(p);
    }
    return PowerTrace(sample_dt, std::move(samples), name);
}

} // namespace

PowerTrace::PowerTrace(double sample_dt, std::vector<double> sample_values,
                       std::string name)
    : label(std::move(name)), dt(sample_dt), samples(std::move(sample_values))
{
    react_assert(sample_dt > 0.0, "trace sample interval must be positive");
    for (double p : this->samples)
        react_assert(p >= 0.0, "trace power samples must be >= 0");
}

double
PowerTrace::duration() const
{
    return dt * static_cast<double>(samples.size());
}

double
PowerTrace::power(double t) const
{
    if (t < 0.0 || samples.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(t / dt);
    if (idx >= samples.size())
        return 0.0;
    return samples[idx];
}

namespace {

/** Bit equality: the span sweep must reproduce power()'s exact result
 *  doubles, and value equality would conflate 0.0 with -0.0 (whose bits
 *  diverge downstream, e.g. through std::max in a converter). */
inline bool
sameBits(double a, double b)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

} // namespace

void
PowerTrace::compileStepSpans(double step_dt,
                             std::vector<StepSpan> &out) const
{
    react_assert(step_dt > 0.0, "span replay timestep must be positive");
    const size_t n = samples.size();
    double t = 0.0;
    double current = 0.0;
    uint64_t run = 0;
    if (n > 0) {
        for (;;) {
            // Exactly power()'s arithmetic under the caller's
            // accumulated t (t > 0 always holds here).
            t += step_dt;
            const size_t idx = static_cast<size_t>(t / dt);
            if (idx >= n)
                break;
            const double w = samples[idx];
            if (run > 0 && sameBits(w, current)) {
                ++run;
                continue;
            }
            if (run > 0)
                out.push_back({current, run});
            current = w;
            run = 1;
        }
        if (run > 0)
            out.push_back({current, run});
    }
    // Past the trace end power() is 0.0 forever (t only grows).
    out.push_back({0.0, StepSpan::kOpenEnded});
}

double
PowerTrace::zeroUntil(double t) const
{
    if (samples.empty())
        return std::numeric_limits<double>::infinity();
    if (t < 0.0)
        t = 0.0;
    size_t idx = static_cast<size_t>(t / dt);
    while (idx < samples.size() && samples[idx] == 0.0)
        ++idx;
    if (idx >= samples.size())
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(idx) * dt;
}

double
PowerTrace::totalEnergy() const
{
    double e = 0.0;
    for (double p : samples)
        e += p * dt;
    return e;
}

TraceStats
PowerTrace::stats() const
{
    RunningStats rs;
    for (double p : samples)
        rs.add(p);
    TraceStats out;
    out.duration = duration();
    out.meanPower = rs.mean();
    out.cv = rs.cv();
    out.totalEnergy = totalEnergy();
    out.peakPower = rs.max();
    return out;
}

double
PowerTrace::energyFractionAbove(double threshold) const
{
    const double total = totalEnergy();
    if (total <= 0.0)
        return 0.0;
    double above = 0.0;
    for (double p : samples) {
        if (p >= threshold)
            above += p * dt;
    }
    return above / total;
}

double
PowerTrace::timeFractionBelow(double threshold) const
{
    if (samples.empty())
        return 0.0;
    size_t below = 0;
    for (double p : samples) {
        if (p <= threshold)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(samples.size());
}

void
PowerTrace::scale(double factor)
{
    react_assert(factor >= 0.0, "trace scale factor must be >= 0");
    for (double &p : samples)
        p *= factor;
}

void
PowerTrace::scaleToMeanPower(double target_mean)
{
    RunningStats rs;
    for (double p : samples)
        rs.add(p);
    const double mean = rs.mean();
    react_assert(mean > 0.0, "cannot rescale an all-zero trace");
    scale(target_mean / mean);
}

PowerTrace
PowerTrace::resampled(double new_dt) const
{
    react_assert(new_dt > 0.0, "resample interval must be positive");
    const size_t n = static_cast<size_t>(std::ceil(duration() / new_dt));
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        out[i] = power(static_cast<double>(i) * new_dt);
    return PowerTrace(new_dt, std::move(out), label);
}

std::string
PowerTrace::toCsv() const
{
    std::ostringstream out;
    out << "time_s,power_w\n";
    out.precision(9);
    for (size_t i = 0; i < samples.size(); ++i)
        out << static_cast<double>(i) * dt << ',' << samples[i] << '\n';
    return out.str();
}

PowerTrace
PowerTrace::fromCsv(const std::string &text, const std::string &name)
{
    CsvTable table;
    std::string error;
    if (!tryParseCsv(text, &table, &error))
        traceFail("<csv>", 0, error);
    return traceFromTable(table, "<csv>", name);
}

PowerTrace
PowerTrace::fromCsvFile(const std::string &path, const std::string &name)
{
    std::ifstream in(path);
    if (!in)
        traceFail(path, 0, "cannot open trace file");
    std::stringstream buf;
    buf << in.rdbuf();
    CsvTable table;
    std::string error;
    if (!tryParseCsv(buf.str(), &table, &error))
        traceFail(path, 0, error);
    return traceFromTable(table, path, name.empty() ? path : name);
}

} // namespace trace
} // namespace react
