#include "generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace react {
namespace trace {

double
highFractionForCv(double target_cv, double amplitude_sigma)
{
    react_assert(target_cv > 0.0, "target CV must be positive");
    // Lognormal squared-CV of episode amplitudes.
    const double cv_x2 = std::exp(amplitude_sigma * amplitude_sigma) - 1.0;
    const double f = (1.0 + cv_x2) / (1.0 + target_cv * target_cv);
    return std::clamp(f, 0.01, 0.95);
}

namespace {

/** One realization at a given HIGH-time fraction. */
PowerTrace
generateOnce(const VolatileSourceParams &params, double f, Rng rng)
{
    const double mean_low_duration =
        params.meanHighDuration * (1.0 - f) / f;

    const size_t n =
        static_cast<size_t>(std::ceil(params.duration / params.sampleDt));
    std::vector<double> samples(n, 0.0);

    // Unit-scale HIGH amplitude; the final rescale fixes absolute level.
    const double mu = -0.5 * params.amplitudeSigma * params.amplitudeSigma;

    bool high = rng.chance(f);
    double episode_left = high ? rng.exponential(params.meanHighDuration)
                               : rng.exponential(mean_low_duration);
    double high_amp = rng.lognormal(mu, params.amplitudeSigma);
    double drift = 1.0;
    double smoothed = 0.0;
    const double alpha =
        params.smoothingTau > 0.0
            ? 1.0 - std::exp(-params.sampleDt / params.smoothingTau)
            : 1.0;
    // Random-walk drift step sized so total drift variance over the trace
    // matches driftSigma.
    const double drift_step =
        params.driftSigma / std::sqrt(static_cast<double>(n));

    for (size_t i = 0; i < n; ++i) {
        episode_left -= params.sampleDt;
        if (episode_left <= 0.0) {
            high = !high;
            if (high) {
                episode_left = rng.exponential(params.meanHighDuration);
                high_amp = rng.lognormal(mu, params.amplitudeSigma);
            } else {
                episode_left = rng.exponential(mean_low_duration);
            }
        }
        double level = high ? high_amp : params.lowLevelFraction;
        if (params.flickerSigma > 0.0) {
            level *= std::max(0.0,
                              1.0 + params.flickerSigma * rng.normal());
        }
        drift *= std::max(0.2, 1.0 + drift_step * rng.normal());
        level *= drift;
        smoothed += alpha * (level - smoothed);
        samples[i] = std::max(smoothed, 0.0);
    }

    PowerTrace out(params.sampleDt, std::move(samples), params.name);
    out.scaleToMeanPower(params.targetMeanPower);
    return out;
}

} // namespace

PowerTrace
generateVolatileSource(const VolatileSourceParams &params, Rng &rng)
{
    react_assert(params.duration > 0.0, "duration must be positive");
    react_assert(params.sampleDt > 0.0, "sample interval must be positive");
    react_assert(params.targetMeanPower > 0.0,
                 "mean power must be positive");

    // The closed-form HIGH-time fraction ignores the nonzero LOW level,
    // output smoothing, and flicker, all of which compress (or, for
    // heavy-tailed realizations, inflate) the realized CV.  Calibrate by
    // measurement: regenerate with an adjusted CV target until the
    // realization lands near the requested one.  The loop is
    // deterministic -- each iteration draws from an independent split of
    // the caller's stream.
    double cv_adj = params.targetCv;
    PowerTrace current = generateOnce(
        params, highFractionForCv(cv_adj, params.amplitudeSigma),
        rng.split());
    PowerTrace best = current;
    double best_err = std::abs(best.stats().cv - params.targetCv);
    for (int iter = 0; iter < 6 && best_err > 0.05 * params.targetCv;
         ++iter) {
        const double measured = current.stats().cv;
        if (measured <= 0.0)
            break;
        cv_adj = std::clamp(cv_adj * params.targetCv / measured,
                            0.15 * params.targetCv, 6.0 * params.targetCv);
        current = generateOnce(
            params, highFractionForCv(cv_adj, params.amplitudeSigma),
            rng.split());
        const double err =
            std::abs(current.stats().cv - params.targetCv);
        if (err < best_err) {
            best = current;
            best_err = err;
        }
    }
    return best;
}

} // namespace trace
} // namespace react
