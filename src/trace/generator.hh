/**
 * @file
 * Synthetic harvested-power generators.
 *
 * The paper's RF and solar traces are not redistributable, but its
 * evaluation depends on them only through published statistics: duration,
 * mean power, and coefficient of variation (Table 3), plus the qualitative
 * structure called out in S 2 -- power arrives in short high-power episodes
 * separated by long lulls (82 % of energy above 10 mW while 77 % of time
 * sits below 3 mW for the pedestrian solar trace).
 *
 * We reproduce that structure with a two-regime semi-Markov process: the
 * source alternates between a HIGH regime (direct sun / strong RF
 * illumination) and a LOW regime (shadow / obstruction), with
 * exponentially distributed episode lengths and a fresh lognormal episode
 * amplitude each time it enters HIGH.  For a process that spends fraction f
 * of its time in HIGH with episode amplitudes of squared coefficient of
 * variation cv_x^2 and a negligible LOW level, the overall CV obeys
 *
 *     CV^2 = (1 + cv_x^2) / f - 1
 *
 * so the HIGH-time fraction is solved directly from the target CV.  A
 * single-pole smoothing filter models converter/output capacitance so
 * regime edges are not instantaneous, and the finished trace is rescaled to
 * the exact target mean.
 */

#ifndef REACT_TRACE_GENERATOR_HH
#define REACT_TRACE_GENERATOR_HH

#include <string>

#include "trace/power_trace.hh"
#include "util/rng.hh"

namespace react {
namespace trace {

/** Parameters for the two-regime volatile-source model. */
struct VolatileSourceParams
{
    /** Trace name for reports. */
    std::string name;
    /** Total duration in seconds. */
    double duration = 300.0;
    /** Sampling interval in seconds. */
    double sampleDt = 0.01;
    /** Target mean power in watts (trace is rescaled to hit it exactly). */
    double targetMeanPower = 1e-3;
    /** Target coefficient of variation (stddev / mean). */
    double targetCv = 1.0;
    /** Mean duration of a HIGH episode in seconds. */
    double meanHighDuration = 2.0;
    /** Lognormal sigma of per-episode HIGH amplitudes. */
    double amplitudeSigma = 0.6;
    /** LOW-regime power as a fraction of the mean HIGH amplitude. */
    double lowLevelFraction = 0.05;
    /** Relative sigma of fast within-regime flicker (multiplicative). */
    double flickerSigma = 0.10;
    /** Smoothing time constant in seconds (0 disables smoothing). */
    double smoothingTau = 0.05;
    /** Slow drift of the environment's overall level: relative sigma of a
     *  random walk applied over the full trace (models time-of-day or
     *  ambient-RF drift). */
    double driftSigma = 0.15;
};

/**
 * Generate a trace from the two-regime model.
 *
 * @param params Model parameters.
 * @param rng Seeded random stream (consumed).
 * @return Trace rescaled to exactly params.targetMeanPower.
 */
PowerTrace generateVolatileSource(const VolatileSourceParams &params,
                                  Rng &rng);

/**
 * Derive the HIGH-time fraction needed to hit a target CV given the
 * per-episode amplitude sigma (lognormal), from
 * CV^2 = (1 + cv_x^2) / f - 1.
 *
 * @param target_cv Desired coefficient of variation (> 0).
 * @param amplitude_sigma Lognormal sigma of episode amplitudes.
 * @return Fraction of time in the HIGH regime, clamped to (0.01, 0.95).
 */
double highFractionForCv(double target_cv, double amplitude_sigma);

} // namespace trace
} // namespace react

#endif // REACT_TRACE_GENERATOR_HH
