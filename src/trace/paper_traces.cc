#include "paper_traces.hh"

#include "trace/generator.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace trace {

namespace {

using units::milliwatts;

const PaperTraceSpec kSpecs[] = {
    {"RF Cart", 313.0, milliwatts(2.12).raw(), 1.03},
    {"RF Obs.", 313.0, milliwatts(0.227).raw(), 0.61},
    {"RF Mob.", 318.0, milliwatts(0.5).raw(), 1.66},
    {"Sol. Camp.", 3609.0, milliwatts(5.18).raw(), 2.07},
    {"Sol. Comm.", 6030.0, milliwatts(0.148).raw(), 3.33},
};

/** Per-trace generator parameters; regime time scales reflect the physical
 *  scenario (cart motion, office obstruction, walking sun/shade, commute). */
VolatileSourceParams
paramsFor(PaperTrace which)
{
    const PaperTraceSpec &spec = paperTraceSpec(which);
    VolatileSourceParams p;
    p.name = spec.name;
    p.duration = spec.duration;
    p.targetMeanPower = spec.meanPower;
    p.targetCv = spec.cv;
    switch (which) {
      case PaperTrace::RfCart:
        // Cart rolls through the transmitter beam: second-scale bursts.
        p.meanHighDuration = 3.0;
        p.amplitudeSigma = 0.5;
        p.lowLevelFraction = 0.10;
        p.smoothingTau = 0.2;
        break;
      case PaperTrace::RfObstruction:
        // Mostly line-of-sight with occasional occlusions: high regime
        // dominates, shallow dips.
        p.meanHighDuration = 12.0;
        p.amplitudeSigma = 0.35;
        p.lowLevelFraction = 0.25;
        p.smoothingTau = 0.3;
        break;
      case PaperTrace::RfMobile:
        // Hand-carried receiver: rapid orientation fades.
        p.meanHighDuration = 1.5;
        p.amplitudeSigma = 0.6;
        p.lowLevelFraction = 0.06;
        p.smoothingTau = 0.1;
        break;
      case PaperTrace::SolarCampus:
        // Walking across campus: tens-of-seconds sun patches between
        // building shadows.
        p.meanHighDuration = 25.0;
        p.amplitudeSigma = 0.8;
        p.lowLevelFraction = 0.03;
        p.smoothingTau = 1.0;
        p.sampleDt = 0.05;
        break;
      case PaperTrace::SolarCommute:
        // Commute is mostly indoors/shade with rare strong sun exposure.
        p.meanHighDuration = 18.0;
        p.amplitudeSigma = 1.0;
        p.lowLevelFraction = 0.015;
        p.smoothingTau = 1.0;
        p.sampleDt = 0.05;
        break;
    }
    return p;
}

} // namespace

const PaperTraceSpec &
paperTraceSpec(PaperTrace which)
{
    const auto idx = static_cast<size_t>(which);
    react_assert(idx < std::size(kSpecs), "invalid trace id");
    return kSpecs[idx];
}

std::string
paperTraceName(PaperTrace which)
{
    return paperTraceSpec(which).name;
}

PowerTrace
makePaperTrace(PaperTrace which, uint64_t seed)
{
    // Offset the seed by the trace id so all five traces can share one
    // user-facing seed while drawing independent streams.
    Rng rng(seed * 0x9e3779b97f4a7c15ull +
            static_cast<uint64_t>(which) + 1);
    return generateVolatileSource(paramsFor(which), rng);
}

PowerTrace
makePedestrianSolarTrace(uint64_t seed, double duration)
{
    VolatileSourceParams p;
    p.name = "Solar Pedestrian";
    p.duration = duration;
    p.sampleDt = 0.05;
    p.targetMeanPower = milliwatts(2.8).raw();
    // Rare direct-sun spikes over a shaded baseline give the S 2.1.2
    // structure (most energy above 10 mW, most time below 3 mW).
    p.targetCv = 2.9;
    p.meanHighDuration = 10.0;
    p.amplitudeSigma = 1.0;
    p.lowLevelFraction = 0.03;
    p.smoothingTau = 0.8;
    Rng rng(seed * 0x2545f4914f6cdd1dull + 7);
    return generateVolatileSource(p, rng);
}

PowerTrace
makeNightSolarTrace(uint64_t seed)
{
    VolatileSourceParams p;
    p.name = "Solar Night";
    p.duration = 1800.0;
    p.sampleDt = 0.05;
    p.targetMeanPower = milliwatts(0.25).raw();
    p.targetCv = 0.5;
    p.meanHighDuration = 40.0;
    p.amplitudeSigma = 0.3;
    p.lowLevelFraction = 0.4;
    p.smoothingTau = 2.0;
    p.driftSigma = 0.05;
    Rng rng(seed * 0xd1342543de82ef95ull + 13);
    return generateVolatileSource(p, rng);
}

} // namespace trace
} // namespace react
