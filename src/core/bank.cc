#include "bank.hh"

#include <cmath>
#include <limits>

#include "sim/hotloop_stats.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

using units::Ohms;

const char *
bankStateName(BankState state)
{
    switch (state) {
      case BankState::Disconnected:
        return "disconnected";
      case BankState::Series:
        return "series";
      case BankState::Parallel:
        return "parallel";
    }
    return "?";
}

CapacitorBank::CapacitorBank(const BankSpec &spec)
    : bankSpec(spec)
{
    react_assert(spec.count >= 1, "bank needs at least one capacitor");
    react_assert(spec.unit.capacitance > Farads(0),
                 "bank unit capacitance must be positive");
    rebuildLeakCache();
}

void
CapacitorBank::rebuildLeakCache()
{
    const Ohms r = bankSpec.unit.leakResistance();
    leakTauFinite = units::isfinite(r);
    leakTau = leakTauFinite ? r * bankSpec.unit.capacitance : Seconds(0.0);
    cachedLeakDt = Seconds(-1.0);
    cachedLeakDecay = 1.0;
}

void
CapacitorBank::setUnitVoltage(Volts v)
{
    react_assert(v >= Volts(0), "unit voltage must be >= 0");
    vUnit = v;
}

Joules
CapacitorBank::setUnitCapacitance(Farads capacitance)
{
    react_assert(capacitance > Farads(0),
                 "bank unit capacitance must be positive");
    const Joules before = storedEnergy();
    bankSpec.unit.capacitance = capacitance;
    rebuildLeakCache();
    return before - storedEnergy();
}

void
CapacitorBank::setState(BankState state)
{
    // Break-before-make switches: per-capacitor charge is untouched, so
    // stored energy is identical before and after (verified by tests).
    bankState = state;
}

void
CapacitorBank::addChargeAtTerminal(Coulombs dq)
{
    react_assert(connected(), "cannot move charge on a disconnected bank");
    const double n = static_cast<double>(bankSpec.count);
    if (bankState == BankState::Series) {
        // The same charge flows through every series member.
        vUnit += dq / bankSpec.unit.capacitance;
    } else {
        vUnit += dq / (n * bankSpec.unit.capacitance);
    }
    if (vUnit < Volts(0))
        vUnit = Volts(0);
}

Joules
CapacitorBank::leakN(Seconds dt, uint64_t n)
{
    if (!leakTauFinite || vUnit <= Volts(0) || n == 0)
        return Joules(0);
    if (dt == cachedLeakDt) {
        ++sim::hotloop::counters().leakCacheHits;
    } else {
        cachedLeakDecay = std::exp(-dt / leakTau);
        cachedLeakDt = dt;
        ++sim::hotloop::counters().leakCacheMisses;
    }
    const Joules before = storedEnergy();
    vUnit *= std::pow(cachedLeakDecay, static_cast<double>(n));
    return before - storedEnergy();
}

void
CapacitorBank::save(snapshot::SnapshotWriter &w) const
{
    w.u8(static_cast<uint8_t>(bankState));
    w.f64(vUnit.raw());
    w.f64(bankSpec.unit.capacitance.raw());
}

void
CapacitorBank::restore(snapshot::SnapshotReader &r)
{
    bankState = static_cast<BankState>(r.u8());
    vUnit = Volts(r.f64());
    bankSpec.unit.capacitance = Farads(r.f64());
    rebuildLeakCache();
}

} // namespace core
} // namespace react
