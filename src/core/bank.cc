#include "bank.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

const char *
bankStateName(BankState state)
{
    switch (state) {
      case BankState::Disconnected:
        return "disconnected";
      case BankState::Series:
        return "series";
      case BankState::Parallel:
        return "parallel";
    }
    return "?";
}

double
BankSpec::seriesCapacitance() const
{
    return unit.capacitance / static_cast<double>(count);
}

double
BankSpec::parallelCapacitance() const
{
    return unit.capacitance * static_cast<double>(count);
}

double
BankSpec::energyAtUnitVoltage(double v_unit) const
{
    return static_cast<double>(count) *
        units::capEnergy(unit.capacitance, v_unit);
}

CapacitorBank::CapacitorBank(const BankSpec &spec)
    : bankSpec(spec)
{
    react_assert(spec.count >= 1, "bank needs at least one capacitor");
    react_assert(spec.unit.capacitance > 0.0,
                 "bank unit capacitance must be positive");
}

void
CapacitorBank::setUnitVoltage(double v)
{
    react_assert(v >= 0.0, "unit voltage must be >= 0");
    vUnit = v;
}

double
CapacitorBank::setUnitCapacitance(double capacitance)
{
    react_assert(capacitance > 0.0, "bank unit capacitance must be positive");
    const double before = storedEnergy();
    bankSpec.unit.capacitance = capacitance;
    return before - storedEnergy();
}

double
CapacitorBank::terminalVoltage() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return 0.0;
      case BankState::Series:
        return vUnit * static_cast<double>(bankSpec.count);
      case BankState::Parallel:
        return vUnit;
    }
    return 0.0;
}

double
CapacitorBank::terminalCapacitance() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return 0.0;
      case BankState::Series:
        return bankSpec.seriesCapacitance();
      case BankState::Parallel:
        return bankSpec.parallelCapacitance();
    }
    return 0.0;
}

double
CapacitorBank::storedEnergy() const
{
    return bankSpec.energyAtUnitVoltage(vUnit);
}

void
CapacitorBank::setState(BankState state)
{
    // Break-before-make switches: per-capacitor charge is untouched, so
    // stored energy is identical before and after (verified by tests).
    bankState = state;
}

void
CapacitorBank::addChargeAtTerminal(double dq)
{
    react_assert(connected(), "cannot move charge on a disconnected bank");
    const double n = static_cast<double>(bankSpec.count);
    if (bankState == BankState::Series) {
        // The same charge flows through every series member.
        vUnit += dq / bankSpec.unit.capacitance;
    } else {
        vUnit += dq / (n * bankSpec.unit.capacitance);
    }
    if (vUnit < 0.0)
        vUnit = 0.0;
}

double
CapacitorBank::leak(double dt)
{
    const double r = bankSpec.unit.leakResistance();
    if (!std::isfinite(r) || vUnit <= 0.0)
        return 0.0;
    const double before = storedEnergy();
    vUnit *= std::exp(-dt / (r * bankSpec.unit.capacitance));
    return before - storedEnergy();
}

double
CapacitorBank::clipToRating()
{
    if (vUnit <= bankSpec.unit.ratedVoltage)
        return 0.0;
    const double before = storedEnergy();
    vUnit = bankSpec.unit.ratedVoltage;
    return before - storedEnergy();
}

} // namespace core
} // namespace react
