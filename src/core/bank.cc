#include "bank.hh"

#include <cmath>
#include <limits>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

using units::Ohms;

const char *
bankStateName(BankState state)
{
    switch (state) {
      case BankState::Disconnected:
        return "disconnected";
      case BankState::Series:
        return "series";
      case BankState::Parallel:
        return "parallel";
    }
    return "?";
}

Farads
BankSpec::seriesCapacitance() const
{
    return unit.capacitance / static_cast<double>(count);
}

Farads
BankSpec::parallelCapacitance() const
{
    return unit.capacitance * static_cast<double>(count);
}

Joules
BankSpec::energyAtUnitVoltage(Volts v_unit) const
{
    return static_cast<double>(count) *
        units::capEnergy(unit.capacitance, v_unit);
}

CapacitorBank::CapacitorBank(const BankSpec &spec)
    : bankSpec(spec)
{
    react_assert(spec.count >= 1, "bank needs at least one capacitor");
    react_assert(spec.unit.capacitance > Farads(0),
                 "bank unit capacitance must be positive");
}

void
CapacitorBank::setUnitVoltage(Volts v)
{
    react_assert(v >= Volts(0), "unit voltage must be >= 0");
    vUnit = v;
}

Joules
CapacitorBank::setUnitCapacitance(Farads capacitance)
{
    react_assert(capacitance > Farads(0),
                 "bank unit capacitance must be positive");
    const Joules before = storedEnergy();
    bankSpec.unit.capacitance = capacitance;
    return before - storedEnergy();
}

Volts
CapacitorBank::terminalVoltage() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return Volts(0.0);
      case BankState::Series:
        return vUnit * static_cast<double>(bankSpec.count);
      case BankState::Parallel:
        return vUnit;
    }
    return Volts(0.0);
}

Farads
CapacitorBank::terminalCapacitance() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return Farads(0.0);
      case BankState::Series:
        return bankSpec.seriesCapacitance();
      case BankState::Parallel:
        return bankSpec.parallelCapacitance();
    }
    return Farads(0.0);
}

Joules
CapacitorBank::storedEnergy() const
{
    return bankSpec.energyAtUnitVoltage(vUnit);
}

void
CapacitorBank::setState(BankState state)
{
    // Break-before-make switches: per-capacitor charge is untouched, so
    // stored energy is identical before and after (verified by tests).
    bankState = state;
}

void
CapacitorBank::addChargeAtTerminal(Coulombs dq)
{
    react_assert(connected(), "cannot move charge on a disconnected bank");
    const double n = static_cast<double>(bankSpec.count);
    if (bankState == BankState::Series) {
        // The same charge flows through every series member.
        vUnit += dq / bankSpec.unit.capacitance;
    } else {
        vUnit += dq / (n * bankSpec.unit.capacitance);
    }
    if (vUnit < Volts(0))
        vUnit = Volts(0);
}

Joules
CapacitorBank::leak(Seconds dt)
{
    const Ohms r = bankSpec.unit.leakResistance();
    if (!units::isfinite(r) || vUnit <= Volts(0))
        return Joules(0);
    const Joules before = storedEnergy();
    vUnit *= std::exp(-dt / (r * bankSpec.unit.capacitance));
    return before - storedEnergy();
}

Joules
CapacitorBank::clipToRating()
{
    if (vUnit <= bankSpec.unit.ratedVoltage)
        return Joules(0);
    const Joules before = storedEnergy();
    vUnit = bankSpec.unit.ratedVoltage;
    return before - storedEnergy();
}

void
CapacitorBank::save(snapshot::SnapshotWriter &w) const
{
    w.u8(static_cast<uint8_t>(bankState));
    w.f64(vUnit.raw());
    w.f64(bankSpec.unit.capacitance.raw());
}

void
CapacitorBank::restore(snapshot::SnapshotReader &r)
{
    bankState = static_cast<BankState>(r.u8());
    vUnit = Volts(r.f64());
    bankSpec.unit.capacitance = Farads(r.f64());
}

} // namespace core
} // namespace react
