/**
 * @file
 * Pure level <-> bank-state mapping for REACT's controller (S 3.4).
 *
 * The controller tracks a single integer capacitance level.  Each bank
 * contributes two sub-steps in connection order: first Series (a small
 * capacitance increment that avoids yanking the rail down), then Parallel
 * (the full contribution, reached by a lossless reconfiguration of the
 * already-charged bank).  An overvoltage signal raises the level by one; an
 * undervoltage signal lowers it, which walks the same ladder backwards --
 * Parallel -> Series is the charge-reclamation boost of S 3.3.4, and
 * Series -> Disconnected retires a drained bank.
 */

#ifndef REACT_CORE_BANK_POLICY_HH
#define REACT_CORE_BANK_POLICY_HH

#include <cstdint>

#include "core/bank.hh"

namespace react {
namespace core {

/** Capacitance-level arithmetic shared by controller and benches. */
class BankPolicy
{
  public:
    /** @param bank_count Number of configurable banks. */
    explicit BankPolicy(int bank_count);

    /** Number of configurable banks. */
    int bankCount() const { return banks; }

    /** Highest level: every bank parallel. */
    int maxLevel() const { return banks * 2; }

    /**
     * Arrangement of one bank at a given level.
     *
     * @param bank_index Connection-order index (0 connects first).
     * @param level Controller level in [0, maxLevel()].
     */
    BankState stateForLevel(int bank_index, int level) const;

    /** Which bank changes when moving from `level` to `level + 1`;
     *  -1 when already at the top. */
    int bankChangedByRaise(int level) const;

    /** Which bank changes when moving from `level` to `level - 1`;
     *  -1 when already at the bottom. */
    int bankChangedByLower(int level) const;

    /**
     * @name Degraded-mode overloads (watchdog bank retirement)
     *
     * `retired_mask` has bit i set when the watchdog has retired bank i.
     * Retired banks are pinned Disconnected and the level ladder is
     * rebuilt over the surviving banks in the original connection order:
     * the k-th *healthy* bank owns the ladder slots previously owned by
     * the k-th bank.  With mask 0 the overloads match the plain versions
     * exactly.
     * @{
     */

    /** Highest level over the surviving banks. */
    int maxLevel(uint32_t retired_mask) const;

    /** Arrangement of one bank at a level, honouring retirements. */
    BankState stateForLevel(int bank_index, int level,
                            uint32_t retired_mask) const;

    /** Physical index of the bank changed by raising `level`; -1 at top. */
    int bankChangedByRaise(int level, uint32_t retired_mask) const;

    /** Physical index of the bank changed by lowering `level`; -1 at 0. */
    int bankChangedByLower(int level, uint32_t retired_mask) const;

    /** Number of surviving (non-retired) banks. */
    int healthyCount(uint32_t retired_mask) const;

    /** @} */

  private:
    /** Physical index of the rank-th healthy bank; -1 when absent. */
    int nthHealthy(int rank, uint32_t retired_mask) const;

    int banks;
};

} // namespace core
} // namespace react

#endif // REACT_CORE_BANK_POLICY_HH
