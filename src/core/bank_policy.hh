/**
 * @file
 * Pure level <-> bank-state mapping for REACT's controller (S 3.4).
 *
 * The controller tracks a single integer capacitance level.  Each bank
 * contributes two sub-steps in connection order: first Series (a small
 * capacitance increment that avoids yanking the rail down), then Parallel
 * (the full contribution, reached by a lossless reconfiguration of the
 * already-charged bank).  An overvoltage signal raises the level by one; an
 * undervoltage signal lowers it, which walks the same ladder backwards --
 * Parallel -> Series is the charge-reclamation boost of S 3.3.4, and
 * Series -> Disconnected retires a drained bank.
 */

#ifndef REACT_CORE_BANK_POLICY_HH
#define REACT_CORE_BANK_POLICY_HH

#include "core/bank.hh"

namespace react {
namespace core {

/** Capacitance-level arithmetic shared by controller and benches. */
class BankPolicy
{
  public:
    /** @param bank_count Number of configurable banks. */
    explicit BankPolicy(int bank_count);

    /** Number of configurable banks. */
    int bankCount() const { return banks; }

    /** Highest level: every bank parallel. */
    int maxLevel() const { return banks * 2; }

    /**
     * Arrangement of one bank at a given level.
     *
     * @param bank_index Connection-order index (0 connects first).
     * @param level Controller level in [0, maxLevel()].
     */
    BankState stateForLevel(int bank_index, int level) const;

    /** Which bank changes when moving from `level` to `level + 1`;
     *  -1 when already at the top. */
    int bankChangedByRaise(int level) const;

    /** Which bank changes when moving from `level` to `level - 1`;
     *  -1 when already at the bottom. */
    int bankChangedByLower(int level) const;

  private:
    int banks;
};

} // namespace core
} // namespace react

#endif // REACT_CORE_BANK_POLICY_HH
