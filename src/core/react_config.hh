/**
 * @file
 * REACT system configuration: thresholds, bank inventory, and the design
 * constraints of S 3.3.5.
 *
 * Equation 1 of the paper gives the last-level-buffer voltage immediately
 * after a parallel->series reclamation triggered at V_low; Equation 2
 * bounds the per-capacitor size C_unit so that this transient never
 * crosses the buffer-full threshold V_high (which would confuse the
 * controller into adding capacitance on an almost-empty buffer, or exceed
 * component ratings).  validate() checks every bank against these
 * constraints, so misconfigured hardware is rejected at construction time
 * rather than producing silently wrong dynamics.
 */

#ifndef REACT_CORE_REACT_CONFIG_HH
#define REACT_CORE_REACT_CONFIG_HH

#include <string>
#include <vector>

#include "core/bank.hh"
#include "sim/capacitor.hh"

namespace react {
namespace core {

using units::Hertz;
using units::Ohms;
using units::Watts;

/** Full REACT hardware description. */
struct ReactConfig
{
    /** Bank 0 of Table 1: the always-connected last-level buffer. */
    sim::CapacitorSpec lastLevel{Farads(770e-6), Volts(6.3), units::Amps(2.4e-7)};

    /** Banks 1..5 of Table 1, in software connection order. */
    std::vector<BankSpec> banks;

    /** Buffer-full comparator threshold (adds capacitance above it). */
    Volts vHigh{3.5};
    /** Near-empty comparator threshold (reclaims/boosts below it). */
    Volts vLow{1.9};
    /** Overvoltage-protection clamp on the rail. */
    Volts railClamp{3.6};

    /** Controller sampling rate (paper: 10 Hz, S 5.1). */
    Hertz pollRateHz{10.0};
    /** Fraction of backend compute stolen per poll-period by the
     *  monitoring software at 10 Hz (paper: 1.8 %, S 5.1). */
    double softwareOverheadAt10Hz = 0.018;
    /** Quiescent hardware power per connected bank (paper: ~14 uW/bank,
     *  68 uW total for 5 banks, S 5.1). */
    Watts overheadPerBank{14e-6};
    /** Baseline hardware draw independent of bank count (comparators on
     *  the last-level buffer). */
    Watts overheadBase{8e-6};

    /** Series resistance of a bank-to-last-level discharge path (switch +
     *  ideal-diode pass FET). */
    Ohms transferResistance{1.0};
    /** Forward drop of the active ideal diodes. */
    Volts diodeDrop{0.01};

    /**
     * @name Watchdog thresholds (fault-hardened management software)
     *
     * After every commanded switch actuation the software reads the bank
     * terminal back and compares it to the lossless-reconfiguration
     * prediction; a bank that keeps disagreeing is retired from the
     * level ladder.  Only exercised when a fault injector is attached.
     * @{
     */

    /** Consecutive failed actuation read-backs before retirement. */
    int watchdogMismatchPolls = 3;
    /** Consecutive polls a commanded-connected bank may read floating
     *  (terminal < 0.02 V) while harvest surplus holds the rail near
     *  V_high before retirement (catches switches stuck open). */
    int watchdogFloatingPolls = 50;
    /** Allowed |expected - observed| terminal deviation. */
    Volts watchdogTolerance{0.05};

    /** @} */

    /** Total capacitance with every bank parallel (the "18 mF" of S 4). */
    Farads maxCapacitance() const;

    /** Minimum capacitance (last-level only; the "770 uF"). */
    Farads minCapacitance() const;

    /**
     * Equation 1: last-level voltage right after switching a bank of
     * N capacitors of size C_unit from parallel to series at V_low.
     */
    Volts reclamationSpikeVoltage(const BankSpec &bank) const;

    /**
     * Equation 2: the C_unit ceiling for a bank of N capacitors, or
     * +infinity when the transition cannot reach V_high at all
     * (N V_low <= V_high).
     */
    Farads unitCapacitanceLimit(int count) const;

    /**
     * Check thresholds and every bank against Equations 1-2 and basic
     * sanity (ordering, ratings).
     *
     * @param error Filled with a description of the first violation.
     * @return true when the configuration is buildable.
     */
    bool validate(std::string *error = nullptr) const;

    /** The paper's Table-1 test implementation (770 uF - 18.03 mF). */
    static ReactConfig paperConfig();
};

} // namespace core
} // namespace react

#endif // REACT_CORE_REACT_CONFIG_HH
