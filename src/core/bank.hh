/**
 * @file
 * One isolated REACT capacitor bank (S 3.3).
 *
 * A bank holds N identical capacitors that are only ever arranged
 * full-series or full-parallel, so no current ever flows *between* the
 * capacitors of a bank: by symmetry every member carries the same charge,
 * and a series<->parallel transition merely rewires terminals while
 * conserving each capacitor's charge.  That is the paper's key efficiency
 * property -- reconfiguration is lossless (S 3.3.3) -- and it also enables
 * charge reclamation: switching a drained parallel bank into series
 * multiplies the terminal voltage by N, making energy below the
 * undervoltage threshold extractable again (S 3.3.4, an N^2 reduction in
 * stranded energy).
 */

#ifndef REACT_CORE_BANK_HH
#define REACT_CORE_BANK_HH

#include "sim/capacitor.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace core {

using units::Coulombs;
using units::Farads;
using units::Joules;
using units::Seconds;
using units::Volts;

/** Electrical arrangement of a bank's capacitors. */
enum class BankState
{
    /** Normally-open switches released: no terminal connection. */
    Disconnected,
    /** Full series chain: capacitance C/N, terminal N * v_unit. */
    Series,
    /** Full parallel: capacitance N * C, terminal v_unit. */
    Parallel,
};

/** Human-readable state name. */
const char *bankStateName(BankState state);

/** Static description of one bank (a Table-1 row). */
struct BankSpec
{
    /** Number of identical capacitors. */
    int count = 1;
    /** Part parameters of each capacitor. */
    sim::CapacitorSpec unit;

    /** Capacitance in the series arrangement. */
    Farads seriesCapacitance() const;
    /** Capacitance in the parallel arrangement. */
    Farads parallelCapacitance() const;
    /** Total energy capacity at a given per-capacitor voltage. */
    Joules energyAtUnitVoltage(Volts v_unit) const;
};

/** Run-time state of one bank. */
class CapacitorBank
{
  public:
    explicit CapacitorBank(const BankSpec &spec);

    /** Static description. */
    const BankSpec &spec() const { return bankSpec; }

    /** Present arrangement. */
    BankState state() const { return bankState; }

    /** Per-capacitor voltage (identical across members by symmetry). */
    Volts unitVoltage() const { return vUnit; }

    /** Force the per-capacitor voltage (tests / initialization). */
    void setUnitVoltage(Volts v);

    /**
     * Re-derate the per-capacitor capacitance (dielectric aging under
     * fault injection).  Voltage is preserved, so charge and energy drop
     * with the capacitance; the caller books the returned energy delta
     * against the ledger's fault-loss category.
     *
     * @return Energy lost to the fade (>= 0 when shrinking).
     */
    Joules setUnitCapacitance(Farads capacitance);

    /** Whether the bank participates in the power network. */
    bool connected() const { return bankState != BankState::Disconnected; }

    /**
     * Terminal voltage as seen from the common rail; 0 when disconnected
     * (the terminal floats).
     */
    Volts terminalVoltage() const;

    /** Capacitance presented at the terminals; 0 when disconnected. */
    Farads terminalCapacitance() const;

    /** Total stored energy (retained even while disconnected). */
    Joules storedEnergy() const;

    /**
     * Rewire the bank.  Per-capacitor charge is conserved -- the operation
     * is lossless, only the terminal abstraction changes.
     */
    void setState(BankState state);

    /**
     * Add signed charge at the terminals.  Series chains pass the same
     * charge through every member (v_unit += dq / C_unit); parallel banks
     * split it evenly (v_unit += dq / (N C_unit)).  Must be connected.
     */
    void addChargeAtTerminal(Coulombs dq);

    /** Exact exponential self-discharge; returns energy leaked. */
    Joules leak(Seconds dt);

    /** Closed-form n-step leak (one pow instead of n multiplies); same
     *  contract and rounding bound as sim::Capacitor::leakN.  Fast-path
     *  only -- not bit-identical to n leak(dt) calls. */
    Joules leakN(Seconds dt, uint64_t n);

    /**
     * Clamp the per-capacitor voltage to the part rating.
     *
     * @return Energy clipped.
     */
    Joules clipToRating();

    /** Serialize arrangement, per-capacitor voltage, and the unit
     *  capacitance (mutable under dielectric-aging injection). */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    BankSpec bankSpec;
    BankState bankState = BankState::Disconnected;
    Volts vUnit{0.0};

    /**
     * @name Memoized leak-decay cache
     *
     * Same scheme as sim::Capacitor: the per-step exp(-dt / (R_leak C))
     * of leak() depends only on the unit part parameters and dt, so the
     * time constant and last decay factor are cached and rebuilt at
     * every mutation point (construction, setUnitCapacitance, snapshot
     * restore).  The cached expression repeats the original operation
     * sequence exactly, keeping results bit-identical.
     * @{
     */
    Seconds leakTau{0.0};
    bool leakTauFinite = false;
    Seconds cachedLeakDt{-1.0};
    double cachedLeakDecay = 1.0;
    void rebuildLeakCache();
    /** @} */
};

// Inline definitions for the per-step leaf operations: REACT touches
// every bank every engine step (leak, clip, terminal reads), so these
// must inline into the buffer's step() rather than pay a cross-TU call.

inline Farads
BankSpec::seriesCapacitance() const
{
    return unit.capacitance / static_cast<double>(count);
}

inline Farads
BankSpec::parallelCapacitance() const
{
    return unit.capacitance * static_cast<double>(count);
}

inline Joules
BankSpec::energyAtUnitVoltage(Volts v_unit) const
{
    return static_cast<double>(count) *
        units::capEnergy(unit.capacitance, v_unit);
}

inline Volts
CapacitorBank::terminalVoltage() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return Volts(0.0);
      case BankState::Series:
        return vUnit * static_cast<double>(bankSpec.count);
      case BankState::Parallel:
        return vUnit;
    }
    return Volts(0.0);
}

inline Farads
CapacitorBank::terminalCapacitance() const
{
    switch (bankState) {
      case BankState::Disconnected:
        return Farads(0.0);
      case BankState::Series:
        return bankSpec.seriesCapacitance();
      case BankState::Parallel:
        return bankSpec.parallelCapacitance();
    }
    return Farads(0.0);
}

inline Joules
CapacitorBank::storedEnergy() const
{
    return bankSpec.energyAtUnitVoltage(vUnit);
}

inline Joules
CapacitorBank::leak(Seconds dt)
{
    if (!leakTauFinite || vUnit <= Volts(0))
        return Joules(0);
    if (dt == cachedLeakDt) {
        ++sim::hotloop::counters().leakCacheHits;
    } else {
        cachedLeakDecay = std::exp(-dt / leakTau);
        cachedLeakDt = dt;
        ++sim::hotloop::counters().leakCacheMisses;
    }
    const Joules before = storedEnergy();
    vUnit *= cachedLeakDecay;
    return before - storedEnergy();
}

inline Joules
CapacitorBank::clipToRating()
{
    if (vUnit <= bankSpec.unit.ratedVoltage)
        return Joules(0);
    const Joules before = storedEnergy();
    vUnit = bankSpec.unit.ratedVoltage;
    return before - storedEnergy();
}

} // namespace core
} // namespace react

#endif // REACT_CORE_BANK_HH
