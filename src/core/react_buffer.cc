#include "react_buffer.hh"

#include <algorithm>
#include <cmath>

#include "sim/charge_transfer.hh"
#include "sim/fault_injector.hh"
#include "snapshot/snapshot.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

namespace {

/**
 * Capacitor view of a bank's terminals: lets the generic charge-transfer
 * integrator operate on a bank, with the charge delta written back through
 * the bank's own series/parallel arithmetic.
 */
sim::Capacitor
terminalView(const CapacitorBank &bank)
{
    sim::CapacitorSpec spec;
    spec.capacitance = bank.terminalCapacitance();
    spec.ratedVoltage = Volts(1e9);  // ratings are enforced by the bank
    spec.leakageCurrentAtRated = Amps(0.0);
    return sim::Capacitor(spec, bank.terminalVoltage());
}

} // namespace

namespace {

/** Floating-terminal threshold: below this a commanded-connected bank
 *  reads as not-actually-in-the-network. */
constexpr Volts kFloatingVoltage{0.02};

/** Stable per-bank component name, e.g. "react.bank2.switch". */
std::string
bankComponent(int index, const char *part)
{
    return "react.bank" + std::to_string(index) + "." + part;
}

} // namespace

ReactBuffer::ReactBuffer(const ReactConfig &config)
    : cfg(config), policy(static_cast<int>(config.banks.size())),
      lastLevel(config.lastLevel)
{
    std::string error;
    react_assert(cfg.validate(&error), "invalid REACT config: %s",
                 error.c_str());
    react_assert(cfg.banks.size() <= 32,
                 "retirement mask supports at most 32 banks");
    banks.reserve(cfg.banks.size());
    for (const auto &spec : cfg.banks)
        banks.emplace_back(spec);
    watch.resize(banks.size());
    outTransfer.resize(banks.size());
    backTransfer.resize(banks.size());
    for (int i = 0; i < bankCount(); ++i) {
        switchNames.push_back(bankComponent(i, "switch"));
        telemetryNames.push_back(bankComponent(i, "telemetry"));
        inDiodeNames.push_back(bankComponent(i, "diode.in"));
        outDiodeNames.push_back(bankComponent(i, "diode.out"));
        bankCapNames.push_back(bankComponent(i, "cap"));
    }
}

void
ReactBuffer::attachFaultInjector(sim::FaultInjector *injector)
{
    faults = injector;
    if (faults != nullptr)
        persistFramRecord();
}

int
ReactBuffer::retiredBankCount() const
{
    int n = 0;
    for (int i = 0; i < bankCount(); ++i)
        n += (retiredMask & (1u << i)) != 0 ? 1 : 0;
    return n;
}

Volts
ReactBuffer::railVoltage() const
{
    return lastLevel.voltage();
}

Joules
ReactBuffer::storedEnergy() const
{
    Joules e = lastLevel.energy();
    for (const auto &bank : banks)
        e += bank.storedEnergy();
    return e;
}

Farads
ReactBuffer::equivalentCapacitance() const
{
    Farads c = lastLevel.capacitance();
    for (const auto &bank : banks)
        c += bank.terminalCapacitance();
    return c;
}

void
ReactBuffer::requestMinLevel(int min_level)
{
    requestedLevel = std::clamp(min_level, 0, policy.maxLevel(retiredMask));
}

bool
ReactBuffer::levelSatisfied() const
{
    if (requestedLevel <= 0)
        return true;
    // The capacitance level is only a valid stored-energy surrogate
    // while the buffer is near-full (it is raised at V_high and decays
    // into staleness after a discharge until an undervoltage walks it
    // down).  The guarantee therefore requires both: at or beyond the
    // requested level, with the buffer-full comparator asserted --
    // stored energy is then at least the requested level's full window.
    return level >= requestedLevel && lastLevel.voltage() >= cfg.vHigh;
}

Joules
ReactBuffer::usableEnergyAtLevel(int query_level) const
{
    // Conservative: the discharge window between the two comparator
    // thresholds at that level's capacitance (reclamation extracts more).
    const int lv = std::clamp(query_level, 0, policy.maxLevel(retiredMask));
    Farads c = lastLevel.capacitance();
    for (int i = 0; i < bankCount(); ++i) {
        const BankState s = policy.stateForLevel(i, lv, retiredMask);
        const BankSpec &spec = cfg.banks[static_cast<size_t>(i)];
        if (s == BankState::Series)
            c += spec.seriesCapacitance();
        else if (s == BankState::Parallel)
            c += spec.parallelCapacitance();
    }
    return units::capEnergyWindow(c, cfg.vHigh, cfg.vLow);
}

Joules
ReactBuffer::availableEnergy(Volts floor_voltage) const
{
    // Last-level window plus every connected bank's discharge window
    // down to the same rail floor (banks feed the rail through their
    // output diodes).  Conservative: ignores the extra charge the
    // parallel->series reclamation would recover below the floor.
    Joules e{0.0};
    if (lastLevel.voltage() > floor_voltage) {
        e += units::capEnergyWindow(lastLevel.capacitance(),
                                    lastLevel.voltage(), floor_voltage);
    }
    for (const auto &bank : banks) {
        if (!bank.connected())
            continue;
        const Volts v_t = bank.terminalVoltage();
        if (v_t > floor_voltage) {
            e += units::capEnergyWindow(bank.terminalCapacitance(), v_t,
                                        floor_voltage);
        }
    }
    return e;
}

void
ReactBuffer::notifyBackendPower(bool on)
{
    if (on == backendOn)
        return;
    backendOn = on;
    if (on) {
        // Power-up: restore the FRAM-recorded bank states.  The switches
        // reconnect banks at whatever charge they retained; isolation
        // diodes prevent any equalization current, so this is lossless.
        // Under fault injection the record is CRC-checked first: a write
        // torn by the preceding power loss resets to the safe default.
        if (faults != nullptr)
            restoreFramRecord();
        applyLevel();
        pollAccumulator = Seconds(0.0);
    } else {
        // Brown-out: normally-open switches release; banks float,
        // retaining per-capacitor charge.  A jammed switch cannot
        // release and keeps its bank wired into the network.
        for (int i = 0; i < bankCount(); ++i) {
            if (faults != nullptr &&
                faults->isSwitchStuck(switchNames[static_cast<size_t>(i)])) {
                continue;
            }
            banks[static_cast<size_t>(i)].setState(BankState::Disconnected);
        }
        // The power loss may have interrupted an FRAM config write.
        if (faults != nullptr && !framImage.empty())
            faults->maybeCorruptOnPowerLoss("react.fram", &framImage);
    }
}

double
ReactBuffer::softwareOverheadFraction() const
{
    return cfg.softwareOverheadAt10Hz * (cfg.pollRateHz / Hertz(10.0));
}

const CapacitorBank &
ReactBuffer::bank(int index) const
{
    return banks.at(static_cast<size_t>(index));
}

void
ReactBuffer::applyLevel()
{
    for (int i = 0; i < bankCount(); ++i) {
        const BankState target = policy.stateForLevel(i, level, retiredMask);
        actuateBank(i, target);
    }
}

bool
ReactBuffer::actuateBank(int index, BankState target)
{
    auto &bank = banks[static_cast<size_t>(index)];
    if (bank.state() == target)
        return true;
    if (faults == nullptr) {
        bank.setState(target);
        ++transitionCount;
        return true;
    }

    const size_t i = static_cast<size_t>(index);
    const BankState from = bank.state();
    const Volts v_before = bank.terminalVoltage();
    const double n = static_cast<double>(bank.spec().count);

    bool moved = false;
    if (faults->switchActuates(switchNames[i])) {
        if (faults->switchDelayed(switchNames[i])) {
            // Sluggish mechanism: the transition lands one poll late.
            // In flight, not a fault the read-back should punish.
            watch[i].pending = true;
            watch[i].pendingTarget = target;
            return false;
        }
        bank.setState(target);
        ++transitionCount;
        moved = true;
    }

    // Read-back verification: lossless reconfiguration makes the
    // post-actuation terminal predictable from the pre-actuation reading
    // whenever the bank was already in the network (a bank reconnecting
    // from Disconnected floats beforehand, so its retained charge -- and
    // hence the expected terminal -- is unknown to the software).
    Volts expected{-1.0};
    if (target == BankState::Disconnected)
        expected = Volts(0.0);
    else if (from == BankState::Parallel && target == BankState::Series)
        expected = v_before * n;
    else if (from == BankState::Series && target == BankState::Parallel)
        expected = v_before / n;

    const Volts observed =
        faults->comparatorRead(telemetryNames[i], bank.terminalVoltage());
    if (expected >= Volts(0.0)) {
        if (units::abs(observed - expected) > cfg.watchdogTolerance)
            ++watch[i].mismatch;
        else if (moved)
            watch[i].mismatch = 0;
    } else if (!moved && observed < kFloatingVoltage) {
        // Commanded into the network but the terminal still floats.
        // Count only under harvest surplus: a healthy just-connected
        // empty bank would be soaking up input and rising off zero.
        if (lastLevel.voltage() >= cfg.vHigh - Volts(0.1))
            ++watch[i].floating;
    } else if (moved) {
        watch[i].floating = 0;
    }
    return moved;
}

void
ReactBuffer::watchdogService()
{
    // 1. Land slow actuations drawn at the previous poll.
    for (size_t i = 0; i < banks.size(); ++i) {
        if (!watch[i].pending)
            continue;
        watch[i].pending = false;
        if (banks[i].state() != watch[i].pendingTarget) {
            banks[i].setState(watch[i].pendingTarget);
            ++transitionCount;
        }
    }

    // 2. Retry divergent banks (read-back inside actuateBank feeds the
    //    counters) and retire any past the thresholds.
    bool retired_any = false;
    for (int i = 0; i < bankCount(); ++i) {
        if ((retiredMask & (1u << i)) != 0)
            continue;
        const BankState target =
            policy.stateForLevel(i, level, retiredMask);
        if (banks[static_cast<size_t>(i)].state() != target) {
            actuateBank(i, target);
        } else {
            // Physical state agrees with the command: the counters only
            // measure *persistent* divergence, so clear them (a transient
            // telemetry misread must not linger toward retirement).
            watch[static_cast<size_t>(i)].mismatch = 0;
            watch[static_cast<size_t>(i)].floating = 0;
        }
        const BankWatch &w = watch[static_cast<size_t>(i)];
        if (w.mismatch >= cfg.watchdogMismatchPolls ||
            w.floating >= cfg.watchdogFloatingPolls) {
            retireBank(i);
            retired_any = true;
        }
    }
    // Retirement remapped the ladder; re-command the survivors.
    if (retired_any)
        applyLevel();
}

void
ReactBuffer::retireBank(int index)
{
    if ((retiredMask & (1u << index)) != 0)
        return;
    retiredMask |= 1u << index;

    // Best effort: command the bank out of the network.  A switch jammed
    // closed keeps the bank electrically present, but the software stops
    // counting on it either way.
    auto &bank = banks[static_cast<size_t>(index)];
    if (!faults->isSwitchStuck(switchNames[static_cast<size_t>(index)]) &&
        bank.state() != BankState::Disconnected) {
        bank.setState(BankState::Disconnected);
        ++transitionCount;
    }

    const int top = policy.maxLevel(retiredMask);
    if (level > top)
        level = top;
    if (requestedLevel > top)
        requestedLevel = top;

    faults->recordEvent(sim::FaultEventKind::BankRetired,
                        switchNames[static_cast<size_t>(index)],
                        static_cast<double>(index));
    persistFramRecord();
}

void
ReactBuffer::pollController()
{
    if (faults != nullptr)
        watchdogService();

    Volts v = lastLevel.voltage();
    if (faults != nullptr)
        v = faults->comparatorRead("react.comparator", v);

    const int top = policy.maxLevel(retiredMask);
    if (v >= cfg.vHigh && level < top) {
        ++level;
        applyLevel();
        if (faults != nullptr)
            persistFramRecord();
    } else if (v <= cfg.vLow && level > 0) {
        --level;
        applyLevel();
        if (faults != nullptr)
            persistFramRecord();
    }
}

void
ReactBuffer::persistFramRecord()
{
    // Layout: [version][level][retiredMask LE32][crc32 LE32] = 10 bytes.
    framImage.assign(10, 0);
    framImage[0] = 1;
    framImage[1] = static_cast<uint8_t>(level);
    for (int b = 0; b < 4; ++b)
        framImage[static_cast<size_t>(2 + b)] =
            static_cast<uint8_t>(retiredMask >> (8 * b));
    const uint32_t crc = crc32(framImage.data(), 6);
    for (int b = 0; b < 4; ++b)
        framImage[static_cast<size_t>(6 + b)] =
            static_cast<uint8_t>(crc >> (8 * b));
}

void
ReactBuffer::restoreFramRecord()
{
    bool valid = framImage.size() == 10 && framImage[0] == 1;
    if (valid) {
        uint32_t stored = 0;
        for (int b = 0; b < 4; ++b)
            stored |= static_cast<uint32_t>(framImage[static_cast<size_t>(
                          6 + b)])
                << (8 * b);
        valid = stored == crc32(framImage.data(), 6);
    }
    if (valid) {
        uint32_t mask = 0;
        for (int b = 0; b < 4; ++b)
            mask |= static_cast<uint32_t>(
                        framImage[static_cast<size_t>(2 + b)])
                << (8 * b);
        const int lv = framImage[1];
        const uint32_t mask_limit = bankCount() >= 32
            ? 0xffffffffu
            : (1u << bankCount()) - 1u;
        valid = (mask & ~mask_limit) == 0 && lv <= policy.maxLevel(mask);
        if (valid) {
            retiredMask = mask;
            level = lv;
            return;
        }
    }
    // Torn or nonsensical record: fall back to the safe default.  Level
    // 0 re-grows from the last-level buffer exactly like a cold start;
    // forgetting retirements only costs the watchdog a re-detection.
    level = 0;
    retiredMask = 0;
    if (requestedLevel > policy.maxLevel(retiredMask))
        requestedLevel = policy.maxLevel(retiredMask);
    ++framRecoveryCount;
    faults->recordEvent(sim::FaultEventKind::FramRecovery, "react.fram");
    persistFramRecord();
}

void
ReactBuffer::applyAging()
{
    energyLedger.faultLoss += lastLevel.setCapacitance(
        cfg.lastLevel.capacitance *
        faults->capacitanceFactor("react.lastlevel.cap"));
    for (int i = 0; i < bankCount(); ++i) {
        auto &bank = banks[static_cast<size_t>(i)];
        energyLedger.faultLoss += bank.setUnitCapacitance(
            cfg.banks[static_cast<size_t>(i)].unit.capacitance *
            faults->capacitanceFactor(bankCapNames[static_cast<size_t>(i)]));
    }
}

void
ReactBuffer::routeInput(Watts input_power, Seconds dt)
{
    if (input_power <= Watts(0.0))
        return;

    // Current from the harvester flows through the input ideal diodes to
    // the lowest-voltage connected element (S 3.2.1).  Under fault
    // injection a diode failed open removes its path from the race (that
    // element can no longer charge); one failed short merely loses its
    // forward drop.
    int target = -1;      // -1 == last-level buffer, -2 == no path at all
    Volts drop = cfg.diodeDrop;
    Volts v_min = lastLevel.voltage();
    if (faults != nullptr) {
        const sim::DiodeFault f = faults->diodeFault("react.lastlevel.diode.in");
        if (f == sim::DiodeFault::Open)
            target = -2;
        else if (f == sim::DiodeFault::Short)
            drop = Volts(0.0);
    }
    for (int i = 0; i < bankCount(); ++i) {
        const auto &bank = banks[static_cast<size_t>(i)];
        if (!bank.connected())
            continue;
        sim::DiodeFault f = sim::DiodeFault::None;
        if (faults != nullptr)
            f = faults->diodeFault(inDiodeNames[static_cast<size_t>(i)]);
        if (f == sim::DiodeFault::Open)
            continue;
        if (bank.terminalVoltage() < v_min || target == -2) {
            v_min = bank.terminalVoltage();
            target = i;
            drop = f == sim::DiodeFault::Short ? Volts(0.0) : cfg.diodeDrop;
        }
    }

    if (target == -2) {
        // Every input path failed open: the harvested power never enters
        // the buffer (it is dissipated at the stalled harvester).
        return;
    }
    if (target < 0) {
        const Joules e_before = lastLevel.energy();
        const auto res = sim::chargeFromPower(lastLevel, input_power, dt,
                                              drop);
        energyLedger.harvested += lastLevel.energy() - e_before +
            res.diodeLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    } else {
        auto &bank = banks[static_cast<size_t>(target)];
        sim::Capacitor view = terminalView(bank);
        const Joules e_before = view.energy();
        const auto res = sim::chargeFromPower(view, input_power, dt,
                                              drop);
        bank.addChargeAtTerminal(res.charge);
        energyLedger.harvested += view.energy() - e_before + res.diodeLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    }
}

void
ReactBuffer::replenishLastLevel(Seconds dt)
{
    // Output isolation diodes: every connected bank whose terminal sits
    // above the rail sources current into the last-level buffer.  Exact
    // two-capacitor relaxation keeps this stable even during the
    // reclamation voltage spike (terminal boosted to N * V_low).
    for (int i = 0; i < bankCount(); ++i) {
        auto &bank = banks[static_cast<size_t>(i)];
        if (!bank.connected())
            continue;

        Volts drop = cfg.diodeDrop;
        Ohms resistance = cfg.transferResistance;
        if (faults != nullptr) {
            const sim::DiodeFault f =
                faults->diodeFault(outDiodeNames[static_cast<size_t>(i)]);
            resistance *=
                faults->esrMultiplier(switchNames[static_cast<size_t>(i)]);
            if (f == sim::DiodeFault::Open)
                continue;  // the bank can no longer feed the rail
            if (f == sim::DiodeFault::Short) {
                drop = Volts(0.0);
                // A shorted isolation diode also conducts backwards: a
                // rail above the bank terminal bleeds into the bank.
                // The resistive dissipation is fault-attributed.
                if (lastLevel.voltage() > bank.terminalVoltage()) {
                    sim::Capacitor view = terminalView(bank);
                    const auto back = sim::transferCharge(
                        lastLevel, view, resistance, Volts(0.0), dt,
                        &backTransfer[static_cast<size_t>(i)]);
                    bank.addChargeAtTerminal(back.charge);
                    energyLedger.faultLoss += back.resistiveLoss;
                    continue;
                }
            }
        }

        if (bank.terminalVoltage() <= lastLevel.voltage() + drop)
            continue;
        sim::Capacitor view = terminalView(bank);
        const auto res = sim::transferCharge(view, lastLevel, resistance,
                                             drop, dt,
                                             &outTransfer[static_cast<size_t>(i)]);
        bank.addChargeAtTerminal(-res.charge);
        energyLedger.switchLoss += res.resistiveLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    }
}

void
ReactBuffer::step(Seconds dt, Watts input_power, Amps load_current)
{
    // 0. Hardware aging (fault injection only): re-derate capacitances
    //    at the controller's poll cadence -- far finer than the hours
    //    over which fade acts, far cheaper than every millisecond step.
    if (faults != nullptr &&
        faults->plan().capacitanceFadePerHour > 0.0) {
        agingAccumulator += dt;
        const Seconds aging_period = 1.0 / cfg.pollRateHz;
        if (agingAccumulator >= aging_period) {
            agingAccumulator = Seconds(0.0);
            applyAging();
        }
    }

    // 1. Self-discharge (banks leak even while disconnected).
    Joules leaked = lastLevel.leak(dt);
    for (auto &bank : banks)
        leaked += bank.leak(dt);
    energyLedger.leaked += leaked;

    // 2. Harvested input.
    routeInput(input_power, dt);

    // 3. Backend load plus REACT's own hardware draw, both from the
    //    rail.  The comparator/ideal-diode control circuits are powered
    //    from the gated rail (the paper measures the 68 uW draw while
    //    the MCU runs), so the draw vanishes with the backend.
    int connected = 0;
    for (const auto &bank : banks)
        connected += bank.connected() ? 1 : 0;
    const Watts overhead_power =
        backendOn ? cfg.overheadBase + cfg.overheadPerBank * connected
                  : Watts(0.0);
    const Volts v_rail = std::max(lastLevel.voltage(), Volts(0.5));
    const Amps overhead_current = overhead_power / v_rail;
    const Amps total_current = load_current + overhead_current;
    if (total_current > Amps(0.0) && lastLevel.voltage() > Volts(0.0)) {
        const Joules e_before = lastLevel.energy();
        lastLevel.applyCurrent(-total_current, dt);
        const Joules removed = e_before - lastLevel.energy();
        const double load_share =
            total_current > Amps(0.0) ? load_current / total_current : 0.0;
        energyLedger.delivered += removed * load_share;
        energyLedger.overhead += removed * (1.0 - load_share);
    }

    // 4. Banks above the rail refill the last-level buffer.
    replenishLastLevel(dt);

    // 5. Overvoltage protection: the clamp sits on the rail; banks are
    //    additionally bounded by their per-part rating.
    energyLedger.clipped += lastLevel.clip(cfg.railClamp);
    for (auto &bank : banks)
        energyLedger.clipped += bank.clipToRating();

    // 6. Management software: polls only while the backend MCU is alive.
    if (backendOn) {
        pollAccumulator += dt;
        const Seconds poll_period = 1.0 / cfg.pollRateHz;
        while (pollAccumulator >= poll_period) {
            pollAccumulator -= poll_period;
            pollController();
        }
    }
}

uint64_t
ReactBuffer::advanceQuiescent(Seconds dt, uint64_t max_steps)
{
    // Quiescence analysis: with the backend MCU off the management
    // software does not poll and the control-circuit overhead draw is
    // zero; with every bank disconnected (the normal powered-down state
    // -- normally-open switches released) routeInput and
    // replenishLastLevel are no-ops even in exact mode.  What remains
    // per step is pure leak of the last level and of each floating
    // bank, which collapses to one closed-form decay apiece.  Clips
    // cannot fire because every voltage starts at or under its limit
    // and only decays.  Decline under fault injection (aging, stuck
    // switches keeping banks wired in) and whenever any of the above
    // does not hold.
    if (faults != nullptr || backendOn || max_steps == 0)
        return 0;
    if (lastLevel.voltage() > cfg.railClamp)
        return 0;
    for (const auto &bank : banks) {
        if (bank.connected() ||
            bank.unitVoltage() > bank.spec().unit.ratedVoltage)
            return 0;
    }
    Joules leaked = lastLevel.leakN(dt, max_steps);
    for (auto &bank : banks)
        leaked += bank.leakN(dt, max_steps);
    energyLedger.leaked += leaked;
    return max_steps;
}

void
ReactBuffer::reset()
{
    lastLevel.setVoltage(Volts(0.0));
    for (auto &bank : banks) {
        bank.setUnitVoltage(Volts(0.0));
        bank.setState(BankState::Disconnected);
    }
    level = 0;
    requestedLevel = 0;
    backendOn = false;
    pollAccumulator = Seconds(0.0);
    agingAccumulator = Seconds(0.0);
    transitionCount = 0;
    retiredMask = 0;
    framRecoveryCount = 0;
    std::fill(watch.begin(), watch.end(), BankWatch());
    framImage.clear();
    if (faults != nullptr)
        persistFramRecord();
    energyLedger = sim::EnergyLedger();
}

void
ReactBuffer::save(snapshot::SnapshotWriter &w) const
{
    EnergyBuffer::save(w);
    lastLevel.save(w);
    w.u32(static_cast<uint32_t>(banks.size()));
    for (const auto &bank : banks)
        bank.save(w);
    w.u32(static_cast<uint32_t>(level));
    w.u32(static_cast<uint32_t>(requestedLevel));
    w.b(backendOn);
    w.f64(pollAccumulator.raw());
    w.f64(agingAccumulator.raw());
    w.u64(transitionCount);
    w.u32(retiredMask);
    w.u32(static_cast<uint32_t>(framRecoveryCount));
    for (const BankWatch &bw : watch) {
        w.u32(static_cast<uint32_t>(bw.mismatch));
        w.u32(static_cast<uint32_t>(bw.floating));
        w.b(bw.pending);
        w.u8(static_cast<uint8_t>(bw.pendingTarget));
    }
    // The raw image, not its decoded fields: a torn record must survive
    // the checkpoint verbatim so boot-time CRC recovery replays the same.
    w.bytes(framImage);
}

void
ReactBuffer::restore(snapshot::SnapshotReader &r)
{
    EnergyBuffer::restore(r);
    lastLevel.restore(r);
    const uint32_t count = r.u32();
    if (count != banks.size())
        throw snapshot::SnapshotError(
            "react-buffer snapshot bank count mismatch");
    for (auto &bank : banks)
        bank.restore(r);
    level = static_cast<int>(r.u32());
    requestedLevel = static_cast<int>(r.u32());
    backendOn = r.b();
    pollAccumulator = Seconds(r.f64());
    agingAccumulator = Seconds(r.f64());
    transitionCount = r.u64();
    retiredMask = r.u32();
    framRecoveryCount = static_cast<int>(r.u32());
    for (BankWatch &bw : watch) {
        bw.mismatch = static_cast<int>(r.u32());
        bw.floating = static_cast<int>(r.u32());
        bw.pending = r.b();
        bw.pendingTarget = static_cast<BankState>(r.u8());
    }
    framImage = r.bytes();
}

} // namespace core
} // namespace react
