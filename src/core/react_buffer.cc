#include "react_buffer.hh"

#include <algorithm>
#include <cmath>

#include "sim/charge_transfer.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

namespace {

/**
 * Capacitor view of a bank's terminals: lets the generic charge-transfer
 * integrator operate on a bank, with the charge delta written back through
 * the bank's own series/parallel arithmetic.
 */
sim::Capacitor
terminalView(const CapacitorBank &bank)
{
    sim::CapacitorSpec spec;
    spec.capacitance = bank.terminalCapacitance();
    spec.ratedVoltage = 1e9;  // ratings are enforced by the bank itself
    spec.leakageCurrentAtRated = 0.0;
    return sim::Capacitor(spec, bank.terminalVoltage());
}

} // namespace

ReactBuffer::ReactBuffer(const ReactConfig &config)
    : cfg(config), policy(static_cast<int>(config.banks.size())),
      lastLevel(config.lastLevel)
{
    std::string error;
    react_assert(cfg.validate(&error), "invalid REACT config: %s",
                 error.c_str());
    banks.reserve(cfg.banks.size());
    for (const auto &spec : cfg.banks)
        banks.emplace_back(spec);
}

double
ReactBuffer::railVoltage() const
{
    return lastLevel.voltage();
}

double
ReactBuffer::storedEnergy() const
{
    double e = lastLevel.energy();
    for (const auto &bank : banks)
        e += bank.storedEnergy();
    return e;
}

double
ReactBuffer::equivalentCapacitance() const
{
    double c = lastLevel.capacitance();
    for (const auto &bank : banks)
        c += bank.terminalCapacitance();
    return c;
}

void
ReactBuffer::requestMinLevel(int min_level)
{
    requestedLevel = std::clamp(min_level, 0, policy.maxLevel());
}

bool
ReactBuffer::levelSatisfied() const
{
    if (requestedLevel <= 0)
        return true;
    // The capacitance level is only a valid stored-energy surrogate
    // while the buffer is near-full (it is raised at V_high and decays
    // into staleness after a discharge until an undervoltage walks it
    // down).  The guarantee therefore requires both: at or beyond the
    // requested level, with the buffer-full comparator asserted --
    // stored energy is then at least the requested level's full window.
    return level >= requestedLevel && lastLevel.voltage() >= cfg.vHigh;
}

double
ReactBuffer::usableEnergyAtLevel(int query_level) const
{
    // Conservative: the discharge window between the two comparator
    // thresholds at that level's capacitance (reclamation extracts more).
    const int lv = std::clamp(query_level, 0, policy.maxLevel());
    double c = lastLevel.capacitance();
    for (int i = 0; i < bankCount(); ++i) {
        const BankState s = policy.stateForLevel(i, lv);
        const BankSpec &spec = cfg.banks[static_cast<size_t>(i)];
        if (s == BankState::Series)
            c += spec.seriesCapacitance();
        else if (s == BankState::Parallel)
            c += spec.parallelCapacitance();
    }
    return units::capEnergyWindow(c, cfg.vHigh, cfg.vLow);
}

double
ReactBuffer::availableEnergy(double floor_voltage) const
{
    // Last-level window plus every connected bank's discharge window
    // down to the same rail floor (banks feed the rail through their
    // output diodes).  Conservative: ignores the extra charge the
    // parallel->series reclamation would recover below the floor.
    double e = 0.0;
    if (lastLevel.voltage() > floor_voltage) {
        e += units::capEnergyWindow(lastLevel.capacitance(),
                                    lastLevel.voltage(), floor_voltage);
    }
    for (const auto &bank : banks) {
        if (!bank.connected())
            continue;
        const double v_t = bank.terminalVoltage();
        if (v_t > floor_voltage) {
            e += units::capEnergyWindow(bank.terminalCapacitance(), v_t,
                                        floor_voltage);
        }
    }
    return e;
}

void
ReactBuffer::notifyBackendPower(bool on)
{
    if (on == backendOn)
        return;
    backendOn = on;
    if (on) {
        // Power-up: restore the FRAM-recorded bank states.  The switches
        // reconnect banks at whatever charge they retained; isolation
        // diodes prevent any equalization current, so this is lossless.
        applyLevel();
        pollAccumulator = 0.0;
    } else {
        // Brown-out: normally-open switches release; banks float,
        // retaining per-capacitor charge.
        for (auto &bank : banks)
            bank.setState(BankState::Disconnected);
    }
}

double
ReactBuffer::softwareOverheadFraction() const
{
    return cfg.softwareOverheadAt10Hz * (cfg.pollRateHz / 10.0);
}

const CapacitorBank &
ReactBuffer::bank(int index) const
{
    return banks.at(static_cast<size_t>(index));
}

void
ReactBuffer::applyLevel()
{
    for (int i = 0; i < bankCount(); ++i) {
        auto &bank = banks[static_cast<size_t>(i)];
        const BankState target = policy.stateForLevel(i, level);
        if (bank.state() != target) {
            bank.setState(target);
            ++transitionCount;
        }
    }
}

void
ReactBuffer::pollController()
{
    const double v = lastLevel.voltage();
    if (v >= cfg.vHigh && level < policy.maxLevel()) {
        ++level;
        applyLevel();
    } else if (v <= cfg.vLow && level > 0) {
        --level;
        applyLevel();
    }
}

void
ReactBuffer::routeInput(double input_power, double dt)
{
    if (input_power <= 0.0)
        return;

    // Current from the harvester flows through the input ideal diodes to
    // the lowest-voltage connected element (S 3.2.1).
    int target = -1;  // -1 == last-level buffer
    double v_min = lastLevel.voltage();
    for (int i = 0; i < bankCount(); ++i) {
        const auto &bank = banks[static_cast<size_t>(i)];
        if (bank.connected() && bank.terminalVoltage() < v_min) {
            v_min = bank.terminalVoltage();
            target = i;
        }
    }

    if (target < 0) {
        const double e_before = lastLevel.energy();
        const auto res = sim::chargeFromPower(lastLevel, input_power, dt,
                                              cfg.diodeDrop);
        energyLedger.harvested += lastLevel.energy() - e_before +
            res.diodeLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    } else {
        auto &bank = banks[static_cast<size_t>(target)];
        sim::Capacitor view = terminalView(bank);
        const double e_before = view.energy();
        const auto res = sim::chargeFromPower(view, input_power, dt,
                                              cfg.diodeDrop);
        bank.addChargeAtTerminal(res.charge);
        energyLedger.harvested += view.energy() - e_before + res.diodeLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    }
}

void
ReactBuffer::replenishLastLevel(double dt)
{
    // Output isolation diodes: every connected bank whose terminal sits
    // above the rail sources current into the last-level buffer.  Exact
    // two-capacitor relaxation keeps this stable even during the
    // reclamation voltage spike (terminal boosted to N * V_low).
    for (auto &bank : banks) {
        if (!bank.connected())
            continue;
        if (bank.terminalVoltage() <=
                lastLevel.voltage() + cfg.diodeDrop) {
            continue;
        }
        sim::Capacitor view = terminalView(bank);
        const auto res = sim::transferCharge(view, lastLevel,
                                             cfg.transferResistance,
                                             cfg.diodeDrop, dt);
        bank.addChargeAtTerminal(-res.charge);
        energyLedger.switchLoss += res.resistiveLoss;
        energyLedger.diodeLoss += res.diodeLoss;
    }
}

void
ReactBuffer::step(double dt, double input_power, double load_current)
{
    // 1. Self-discharge (banks leak even while disconnected).
    double leaked = lastLevel.leak(dt);
    for (auto &bank : banks)
        leaked += bank.leak(dt);
    energyLedger.leaked += leaked;

    // 2. Harvested input.
    routeInput(input_power, dt);

    // 3. Backend load plus REACT's own hardware draw, both from the
    //    rail.  The comparator/ideal-diode control circuits are powered
    //    from the gated rail (the paper measures the 68 uW draw while
    //    the MCU runs), so the draw vanishes with the backend.
    int connected = 0;
    for (const auto &bank : banks)
        connected += bank.connected() ? 1 : 0;
    const double overhead_power =
        backendOn ? cfg.overheadBase + cfg.overheadPerBank * connected
                  : 0.0;
    const double v_rail = std::max(lastLevel.voltage(), 0.5);
    const double overhead_current = overhead_power / v_rail;
    const double total_current = load_current + overhead_current;
    if (total_current > 0.0 && lastLevel.voltage() > 0.0) {
        const double e_before = lastLevel.energy();
        lastLevel.applyCurrent(-total_current, dt);
        const double removed = e_before - lastLevel.energy();
        const double load_share =
            total_current > 0.0 ? load_current / total_current : 0.0;
        energyLedger.delivered += removed * load_share;
        energyLedger.overhead += removed * (1.0 - load_share);
    }

    // 4. Banks above the rail refill the last-level buffer.
    replenishLastLevel(dt);

    // 5. Overvoltage protection: the clamp sits on the rail; banks are
    //    additionally bounded by their per-part rating.
    energyLedger.clipped += lastLevel.clip(cfg.railClamp);
    for (auto &bank : banks)
        energyLedger.clipped += bank.clipToRating();

    // 6. Management software: polls only while the backend MCU is alive.
    if (backendOn) {
        pollAccumulator += dt;
        const double poll_period = 1.0 / cfg.pollRateHz;
        while (pollAccumulator >= poll_period) {
            pollAccumulator -= poll_period;
            pollController();
        }
    }
}

void
ReactBuffer::reset()
{
    lastLevel.setVoltage(0.0);
    for (auto &bank : banks) {
        bank.setUnitVoltage(0.0);
        bank.setState(BankState::Disconnected);
    }
    level = 0;
    requestedLevel = 0;
    backendOn = false;
    pollAccumulator = 0.0;
    transitionCount = 0;
    energyLedger = sim::EnergyLedger();
}

} // namespace core
} // namespace react
