#include "react_config.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace core {

using units::microfarads;
using units::microamps;
using units::Amps;
using units::Coulombs;
using units::Seconds;

Farads
ReactConfig::maxCapacitance() const
{
    Farads total = lastLevel.capacitance;
    for (const auto &bank : banks)
        total += bank.parallelCapacitance();
    return total;
}

Farads
ReactConfig::minCapacitance() const
{
    return lastLevel.capacitance;
}

Volts
ReactConfig::reclamationSpikeVoltage(const BankSpec &bank) const
{
    // Equation 1: charge sharing between the series-configured bank
    // (C_unit / N at N V_low) and the last-level buffer (C_last at V_low).
    const double n = static_cast<double>(bank.count);
    const Farads c_ser = bank.unit.capacitance / n;
    const Farads c_last = lastLevel.capacitance;
    return ((n * vLow) * c_ser + vLow * c_last) / (c_last + c_ser);
}

Farads
ReactConfig::unitCapacitanceLimit(int count) const
{
    const double n = static_cast<double>(count);
    const Volts denom = n * vLow - vHigh;
    if (denom <= Volts(0)) {
        // The boosted voltage N * V_low cannot even reach V_high, so no
        // unit size violates the constraint.
        return Farads(std::numeric_limits<double>::infinity());
    }
    return n * lastLevel.capacitance * (vHigh - vLow) / denom;
}

bool
ReactConfig::validate(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    if (!(vLow < vHigh))
        return fail("vLow must be below vHigh");
    if (!(vHigh <= railClamp))
        return fail("vHigh must not exceed the rail clamp");
    if (lastLevel.capacitance <= Farads(0))
        return fail("last-level capacitance must be positive");
    if (pollRateHz <= Hertz(0))
        return fail("poll rate must be positive");
    if (watchdogMismatchPolls < 1)
        return fail("watchdog mismatch threshold must be >= 1 poll");
    if (watchdogFloatingPolls < 1)
        return fail("watchdog floating threshold must be >= 1 poll");
    if (watchdogTolerance <= Volts(0))
        return fail("watchdog tolerance must be positive");

    for (size_t i = 0; i < banks.size(); ++i) {
        const BankSpec &bank = banks[i];
        if (bank.count < 1)
            return fail(detail::format("bank %zu has no capacitors", i));
        if (bank.unit.capacitance <= Farads(0)) {
            return fail(detail::format(
                "bank %zu unit capacitance must be positive", i));
        }
        // Equation 2: keep the reclamation spike below V_high.
        const Farads limit = unitCapacitanceLimit(bank.count);
        if (bank.unit.capacitance >= limit) {
            return fail(detail::format(
                "bank %zu violates Eq. 2: C_unit %.0f uF >= limit %.0f uF",
                i, bank.unit.capacitance.raw() * 1e6, limit.raw() * 1e6));
        }
        // The series terminal voltage N * V_low must respect per-part
        // ratings while the spike drains into the last-level buffer.
        const Volts boosted = static_cast<double>(bank.count) * vLow;
        if (boosted > bank.unit.ratedVoltage *
                static_cast<double>(bank.count)) {
            return fail(detail::format(
                "bank %zu exceeds unit voltage rating during reclamation",
                i));
        }
    }
    return true;
}

ReactConfig
ReactConfig::paperConfig()
{
    ReactConfig cfg;

    // Last-level buffer: 770 uF of ceramic capacitance (Table 1, bank 0).
    // Leakage follows an insulation-resistance model with tau ~= 2000 s
    // (see DESIGN.md: datasheet worst-case microamp figures would swamp
    // every buffer equally and contradict the paper's multi-minute storage
    // horizons).
    auto ceramic = [](Farads capacitance) {
        sim::CapacitorSpec spec;
        spec.capacitance = capacitance;
        spec.ratedVoltage = Volts(6.3);
        // tau = R C = 2000 s  =>  I(V_rated) = V_rated C / tau.
        spec.leakageCurrentAtRated =
            Volts(6.3) * capacitance / Seconds(2000.0);
        return spec;
    };
    // Supercapacitors (Table 1, bank 5): 0.15 uA at 5.5 V.
    auto supercap = [](Farads capacitance) {
        sim::CapacitorSpec spec;
        spec.capacitance = capacitance;
        spec.ratedVoltage = Volts(5.5);
        spec.leakageCurrentAtRated = microamps(0.15);
        return spec;
    };

    cfg.lastLevel = ceramic(microfarads(770.0));
    cfg.banks = {
        {3, ceramic(microfarads(220.0))},
        {3, ceramic(microfarads(440.0))},
        {3, ceramic(microfarads(880.0))},
        {3, ceramic(microfarads(880.0))},
        {2, supercap(microfarads(5000.0))},
    };

    std::string error;
    react_assert(cfg.validate(&error), "paper config invalid: %s",
                 error.c_str());
    return cfg;
}

} // namespace core
} // namespace react
