/**
 * @file
 * The REACT energy buffer: the paper's primary contribution (S 3).
 *
 * Hardware model (Fig. 2): a small always-connected last-level buffer sets
 * the cold-start capacitance, so the system enables as fast as the
 * smallest static design.  Configurable banks hang off the harvester node
 * through normally-open switches and ideal isolation diodes: banks charge
 * only from the harvester (current flows to the lowest-voltage connected
 * element) and discharge only into the last-level buffer (when their
 * terminal exceeds the rail).  Because capacitors within a bank are only
 * ever full-series or full-parallel, reconfiguration never moves charge
 * between capacitors and is lossless -- the decisive difference from the
 * fully-interconnected Morphy network.
 *
 * Software model (S 3.4): the management code runs on the backend MCU,
 * polling two comparators at 10 Hz.  Overvoltage raises the capacitance
 * level (connect-in-series, then reconfigure-to-parallel); undervoltage
 * lowers it (parallel -> series boosts the bank terminal by N, reclaiming
 * charge below V_low; series -> disconnected retires a drained bank).
 * When the MCU loses power the normally-open switches release: all banks
 * physically disconnect, retaining charge, and reconnect from FRAM state
 * at the next power-up.
 *
 * Fault hardening (only active while a sim::FaultInjector is attached):
 * every commanded switch actuation is verified by reading the bank
 * terminal back against the lossless-reconfiguration prediction, and a
 * bank whose telemetry keeps disagreeing -- or that keeps floating when
 * commanded into the network under harvest surplus -- is *retired*: the
 * level ladder is rebuilt over the surviving banks, degrading in the
 * limit to last-level-only operation (static 770 uF equivalent).  The
 * controller level and retirement mask are persisted in a CRC-protected
 * FRAM record; a record torn by a power-loss write is detected at boot
 * and replaced with the safe default (level 0, nothing retired).
 */

#ifndef REACT_CORE_REACT_BUFFER_HH
#define REACT_CORE_REACT_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "buffers/energy_buffer.hh"
#include "core/bank.hh"
#include "core/bank_policy.hh"
#include "core/react_config.hh"
#include "sim/capacitor.hh"
#include "sim/charge_transfer.hh"

namespace react {
namespace core {

using units::Amps;

/** REACT: reconfigurable, energy-adaptive capacitor banks. */
class ReactBuffer final : public buffer::EnergyBuffer
{
  public:
    /** @param config Hardware description; must pass validate(). */
    explicit ReactBuffer(const ReactConfig &config =
                             ReactConfig::paperConfig());

    std::string name() const override { return "REACT"; }
    void step(Seconds dt, Watts input_power, Amps load_current) override;
    uint64_t advanceQuiescent(Seconds dt, uint64_t max_steps) override;
    Volts railVoltage() const override;
    Joules storedEnergy() const override;
    Farads equivalentCapacitance() const override;
    void reset() override;

    int capacitanceLevel() const override { return level; }
    int maxCapacitanceLevel() const override
    {
        return policy.maxLevel(retiredMask);
    }
    Joules availableEnergy(Volts floor_voltage) const override;
    void requestMinLevel(int min_level) override;
    bool levelSatisfied() const override;
    Joules usableEnergyAtLevel(int query_level) const override;
    void notifyBackendPower(bool on) override;

    /** Compute-time fraction stolen by the 10 Hz monitoring software. */
    double softwareOverheadFraction() const override;

    /** Hardware configuration. */
    const ReactConfig &config() const { return cfg; }

    /** Voltage on the last-level buffer (== rail). */
    Volts lastLevelVoltage() const { return lastLevel.voltage(); }

    /** Run-time state of one bank. */
    const CapacitorBank &bank(int index) const;

    /** Number of configurable banks. */
    int bankCount() const { return static_cast<int>(banks.size()); }

    /** Cumulative count of bank state transitions. */
    uint64_t transitions() const { return transitionCount; }

    /** Attach the fault injector and seed the FRAM config record. */
    void attachFaultInjector(sim::FaultInjector *injector) override;

    /** Watchdog retirement mask: bit i set when bank i was retired. */
    uint32_t retiredBankMask() const { return retiredMask; }

    /** Number of banks the watchdog has retired. */
    int retiredBankCount() const;

    /** Times a corrupt FRAM record was replaced with the safe default. */
    int framRecoveries() const { return framRecoveryCount; }

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    /** Watchdog bookkeeping for one bank's switch. */
    struct BankWatch
    {
        /** Consecutive failed actuation read-backs. */
        int mismatch = 0;
        /** Consecutive floating reads while commanded connected. */
        int floating = 0;
        /** A slow actuation is in flight, landing at the next poll. */
        bool pending = false;
        BankState pendingTarget = BankState::Disconnected;
    };

    /** Reapply the logical (FRAM) bank states to the physical switches. */
    void applyLevel();

    /**
     * Command one bank's switch toward `target`, drawing stuck/slow
     * faults and verifying the actuation by terminal read-back.
     *
     * @return true when the bank physically reached `target`.
     */
    bool actuateBank(int index, BankState target);

    /** Per-poll watchdog pass: land slow actuations, retry and verify
     *  divergent banks, retire banks past the thresholds. */
    void watchdogService();

    /** Retire a bank: pin it out of the ladder and persist the mask. */
    void retireBank(int index);

    /** One controller poll: read comparators, step the level. */
    void pollController();

    /** Route harvested input to the lowest-voltage connected element. */
    void routeInput(Watts input_power, Seconds dt);

    /** Drain banks above the rail into the last-level buffer. */
    void replenishLastLevel(Seconds dt);

    /** Apply capacitance fade to the last level and every bank. */
    void applyAging();

    /** Serialize {level, retiredMask} + CRC into the FRAM image. */
    void persistFramRecord();

    /** Decode the FRAM image; on CRC failure fall back to the safe
     *  default (level 0, no retirements) and log the recovery. */
    void restoreFramRecord();

    ReactConfig cfg;
    BankPolicy policy;
    sim::Capacitor lastLevel;
    std::vector<CapacitorBank> banks;

    /** Controller level persisted in FRAM across power failures. */
    int level = 0;
    int requestedLevel = 0;
    bool backendOn = false;
    Seconds pollAccumulator{0.0};
    Seconds agingAccumulator{0.0};
    uint64_t transitionCount = 0;

    /**
     * @name Per-path charge-transfer memos
     *
     * One TransferCache per bank for the bank -> last-level output-diode
     * path, plus one for the fault-only reverse path through a shorted
     * isolation diode.  The caches are key-checked on every use
     * (capacitance, resistance, dt), so reconfiguration, aging, and
     * snapshot restore need no explicit invalidation -- a changed key
     * simply recomputes.  Sized once at construction; never reallocated
     * on the step path.
     * @{
     */
    std::vector<sim::TransferCache> outTransfer;
    std::vector<sim::TransferCache> backTransfer;
    /** @} */

    /** @name Fault-hardening state (inert without an injector). @{ */
    uint32_t retiredMask = 0;
    int framRecoveryCount = 0;
    std::vector<BankWatch> watch;
    std::vector<uint8_t> framImage;
    /** Cached component names (stable injector stream identities). */
    std::vector<std::string> switchNames;
    std::vector<std::string> telemetryNames;
    std::vector<std::string> inDiodeNames;
    std::vector<std::string> outDiodeNames;
    std::vector<std::string> bankCapNames;
    /** @} */
};

} // namespace core
} // namespace react

#endif // REACT_CORE_REACT_BUFFER_HH
