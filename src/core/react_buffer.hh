/**
 * @file
 * The REACT energy buffer: the paper's primary contribution (S 3).
 *
 * Hardware model (Fig. 2): a small always-connected last-level buffer sets
 * the cold-start capacitance, so the system enables as fast as the
 * smallest static design.  Configurable banks hang off the harvester node
 * through normally-open switches and ideal isolation diodes: banks charge
 * only from the harvester (current flows to the lowest-voltage connected
 * element) and discharge only into the last-level buffer (when their
 * terminal exceeds the rail).  Because capacitors within a bank are only
 * ever full-series or full-parallel, reconfiguration never moves charge
 * between capacitors and is lossless -- the decisive difference from the
 * fully-interconnected Morphy network.
 *
 * Software model (S 3.4): the management code runs on the backend MCU,
 * polling two comparators at 10 Hz.  Overvoltage raises the capacitance
 * level (connect-in-series, then reconfigure-to-parallel); undervoltage
 * lowers it (parallel -> series boosts the bank terminal by N, reclaiming
 * charge below V_low; series -> disconnected retires a drained bank).
 * When the MCU loses power the normally-open switches release: all banks
 * physically disconnect, retaining charge, and reconnect from FRAM state
 * at the next power-up.
 */

#ifndef REACT_CORE_REACT_BUFFER_HH
#define REACT_CORE_REACT_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "buffers/energy_buffer.hh"
#include "core/bank.hh"
#include "core/bank_policy.hh"
#include "core/react_config.hh"
#include "sim/capacitor.hh"

namespace react {
namespace core {

/** REACT: reconfigurable, energy-adaptive capacitor banks. */
class ReactBuffer : public buffer::EnergyBuffer
{
  public:
    /** @param config Hardware description; must pass validate(). */
    explicit ReactBuffer(const ReactConfig &config =
                             ReactConfig::paperConfig());

    std::string name() const override { return "REACT"; }
    void step(double dt, double input_power, double load_current) override;
    double railVoltage() const override;
    double storedEnergy() const override;
    double equivalentCapacitance() const override;
    void reset() override;

    int capacitanceLevel() const override { return level; }
    int maxCapacitanceLevel() const override { return policy.maxLevel(); }
    double availableEnergy(double floor_voltage) const override;
    void requestMinLevel(int min_level) override;
    bool levelSatisfied() const override;
    double usableEnergyAtLevel(int query_level) const override;
    void notifyBackendPower(bool on) override;

    /** Compute-time fraction stolen by the 10 Hz monitoring software. */
    double softwareOverheadFraction() const override;

    /** Hardware configuration. */
    const ReactConfig &config() const { return cfg; }

    /** Voltage on the last-level buffer (== rail). */
    double lastLevelVoltage() const { return lastLevel.voltage(); }

    /** Run-time state of one bank. */
    const CapacitorBank &bank(int index) const;

    /** Number of configurable banks. */
    int bankCount() const { return static_cast<int>(banks.size()); }

    /** Cumulative count of bank state transitions. */
    uint64_t transitions() const { return transitionCount; }

  private:
    /** Reapply the logical (FRAM) bank states to the physical switches. */
    void applyLevel();

    /** One controller poll: read comparators, step the level. */
    void pollController();

    /** Route harvested input to the lowest-voltage connected element. */
    void routeInput(double input_power, double dt);

    /** Drain banks above the rail into the last-level buffer. */
    void replenishLastLevel(double dt);

    ReactConfig cfg;
    BankPolicy policy;
    sim::Capacitor lastLevel;
    std::vector<CapacitorBank> banks;

    /** Controller level persisted in FRAM across power failures. */
    int level = 0;
    int requestedLevel = 0;
    bool backendOn = false;
    double pollAccumulator = 0.0;
    uint64_t transitionCount = 0;
};

} // namespace core
} // namespace react

#endif // REACT_CORE_REACT_BUFFER_HH
