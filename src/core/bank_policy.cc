#include "bank_policy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace react {
namespace core {

BankPolicy::BankPolicy(int bank_count)
    : banks(bank_count)
{
    react_assert(bank_count >= 0, "bank count must be >= 0");
}

BankState
BankPolicy::stateForLevel(int bank_index, int level) const
{
    react_assert(bank_index >= 0 && bank_index < banks,
                 "bank index out of range");
    react_assert(level >= 0 && level <= maxLevel(),
                 "level %d out of range", level);
    const int sub = std::clamp(level - 2 * bank_index, 0, 2);
    switch (sub) {
      case 0:
        return BankState::Disconnected;
      case 1:
        return BankState::Series;
      default:
        return BankState::Parallel;
    }
}

int
BankPolicy::bankChangedByRaise(int level) const
{
    if (level >= maxLevel())
        return -1;
    return level / 2;
}

int
BankPolicy::bankChangedByLower(int level) const
{
    if (level <= 0)
        return -1;
    return (level - 1) / 2;
}

int
BankPolicy::healthyCount(uint32_t retired_mask) const
{
    int n = 0;
    for (int i = 0; i < banks; ++i) {
        if ((retired_mask & (1u << i)) == 0)
            ++n;
    }
    return n;
}

int
BankPolicy::nthHealthy(int rank, uint32_t retired_mask) const
{
    for (int i = 0; i < banks; ++i) {
        if ((retired_mask & (1u << i)) != 0)
            continue;
        if (rank == 0)
            return i;
        --rank;
    }
    return -1;
}

int
BankPolicy::maxLevel(uint32_t retired_mask) const
{
    return healthyCount(retired_mask) * 2;
}

BankState
BankPolicy::stateForLevel(int bank_index, int level,
                          uint32_t retired_mask) const
{
    react_assert(bank_index >= 0 && bank_index < banks,
                 "bank index out of range");
    react_assert(level >= 0 && level <= maxLevel(retired_mask),
                 "level %d out of range", level);
    if ((retired_mask & (1u << bank_index)) != 0)
        return BankState::Disconnected;
    int rank = 0;
    for (int i = 0; i < bank_index; ++i) {
        if ((retired_mask & (1u << i)) == 0)
            ++rank;
    }
    const int sub = std::clamp(level - 2 * rank, 0, 2);
    switch (sub) {
      case 0:
        return BankState::Disconnected;
      case 1:
        return BankState::Series;
      default:
        return BankState::Parallel;
    }
}

int
BankPolicy::bankChangedByRaise(int level, uint32_t retired_mask) const
{
    if (level >= maxLevel(retired_mask))
        return -1;
    return nthHealthy(level / 2, retired_mask);
}

int
BankPolicy::bankChangedByLower(int level, uint32_t retired_mask) const
{
    if (level <= 0)
        return -1;
    return nthHealthy((level - 1) / 2, retired_mask);
}

} // namespace core
} // namespace react
