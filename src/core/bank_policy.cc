#include "bank_policy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace react {
namespace core {

BankPolicy::BankPolicy(int bank_count)
    : banks(bank_count)
{
    react_assert(bank_count >= 0, "bank count must be >= 0");
}

BankState
BankPolicy::stateForLevel(int bank_index, int level) const
{
    react_assert(bank_index >= 0 && bank_index < banks,
                 "bank index out of range");
    react_assert(level >= 0 && level <= maxLevel(),
                 "level %d out of range", level);
    const int sub = std::clamp(level - 2 * bank_index, 0, 2);
    switch (sub) {
      case 0:
        return BankState::Disconnected;
      case 1:
        return BankState::Series;
      default:
        return BankState::Parallel;
    }
}

int
BankPolicy::bankChangedByRaise(int level) const
{
    if (level >= maxLevel())
        return -1;
    return level / 2;
}

int
BankPolicy::bankChangedByLower(int level) const
{
    if (level <= 0)
        return -1;
    return (level - 1) / 2;
}

} // namespace core
} // namespace react
