/**
 * @file
 * The evaluation grid as a library: stable cell identities, shared trace
 * cache, and the one-cell runner.
 *
 * Historically this lived in bench/bench_common.hh, which made the grid
 * reachable only from bench binaries.  The experiment service (reactd)
 * and the soak harness need to run exactly the same cells from library
 * code -- the byte-identity contract between a served job and a direct
 * run only holds if both sides call the same function with the same
 * seeding -- so the cell machinery lives here and bench_common forwards
 * to it.
 *
 * Determinism contract (unchanged from PR 3): every cell's randomness is
 * seeded from its *stable identity* (gridCellKey()), never from thread
 * identity or execution order, so the same cell reproduces the same
 * numbers in every sweep, every thread count, and every transport.
 */

#ifndef REACT_HARNESS_GRID_HH
#define REACT_HARNESS_GRID_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/paper_setup.hh"
#include "sim/simd.hh"
#include "trace/paper_traces.hh"

namespace react {
namespace harness {

/** Drain allowance used by the table benches (run-until-drain, S 5). */
constexpr double kGridDrainAllowance = 900.0;

/** Base seed of the evaluation; cell streams derive from it via
 *  cellSeed(). */
constexpr uint64_t kEvaluationSeed = 42;

/**
 * Stable identity of one evaluation-grid cell, e.g. "DE:RF Cart:REACT".
 * Deliberately excludes the figure that runs the cell: the same cell
 * must produce the same numbers wherever it appears.
 */
std::string gridCellKey(BenchmarkKind bench_kind,
                        trace::PaperTrace trace_kind,
                        BufferKind buffer_kind);

/**
 * Lazily built, shared copies of the five Table-3 traces.  Thread-safe:
 * the builds run under a lock, so concurrent cells may block on first
 * access but always observe a fully built trace.  Parallel callers run
 * prewarmEvaluationTraces() first so no cell pays the build.
 */
const trace::PowerTrace &evaluationTrace(trace::PaperTrace which);

/** Build all five evaluation traces up front (serially, deterministic
 *  order) so parallel cells only ever read the cache. */
void prewarmEvaluationTraces();

/**
 * Run one cell of the evaluation grid; the workload seed derives from
 * the cell's stable identity and @p base_seed.  With REACT_CHECKPOINT_DIR
 * set the cell checkpoints/resumes against a snapshot named after that
 * identity (see harness/checkpoint.hh); callers that manage their own
 * checkpoint location (reactd) set config.checkpointPath before calling.
 */
ExperimentResult runGridCell(BufferKind buffer_kind,
                             BenchmarkKind bench_kind,
                             trace::PaperTrace trace_kind,
                             const ExperimentConfig &config =
                                 ExperimentConfig(),
                             uint64_t base_seed = kEvaluationSeed);

struct BatchPhaseStats;

/** One grid cell for the lane engine: its identity plus the slot its
 *  result lands in. */
struct GridBatchCell
{
    BufferKind bufferKind;
    BenchmarkKind benchKind;
    trace::PaperTrace traceKind;
    ExperimentResult *slot;
};

/**
 * Run a set of grid cells on the batch-of-cells lane engine
 * (sim/batch_stepper.hh) as one lane-refilled stream, admitted longest
 * trace first (the LPT schedule; see grid.cc).  Construction and
 * seeding are identical to runGridCell -- workload seeds derive from
 * each cell's stable identity, never from batch composition or
 * admission order -- and every slot receives bit-identical numbers to
 * a runGridCell call.
 * Cells the lane engine cannot take (non-static buffers, checkpoint
 * env, fast path on, or a Disabled kernel) fall back to runGridCell
 * semantics inline.  @p kernel defaults to the process-wide REACT_SIMD
 * selection; benches that compare engines in one process (parallel_sweep's
 * lane_engine section) pass it explicitly.  @p stats, when non-null,
 * accumulates the per-phase wall-time split of the streaming run (see
 * harness/batch_runner.hh; cells that fell back to runExperiment are not
 * timed) -- pass null for gated perf runs so the loop reads no clocks.
 */
void runGridCellBatch(const std::vector<GridBatchCell> &cells,
                      const ExperimentConfig &config = ExperimentConfig(),
                      uint64_t base_seed = kEvaluationSeed,
                      sim::simd::Kernel kernel = sim::simd::selectedKernel(),
                      BatchPhaseStats *stats = nullptr);

/** @name Name <-> enum lookups (CLI / wire protocol)
 *
 * Accept the exact display name ("Sol. Camp.") case-sensitively.
 * Return false on an unknown name, leaving @p out untouched.
 * @{ */
bool parseBenchmarkKind(const std::string &name, BenchmarkKind *out);
bool parsePaperTrace(const std::string &name, trace::PaperTrace *out);
bool parseBufferKind(const std::string &name, BufferKind *out);
/** @} */

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_GRID_HH
