/**
 * @file
 * Deterministic shard planning for fleet-distributed sweeps.
 *
 * The fleet coordinator (net/fleet.hh) splits a sweep's job list into
 * shards -- the unit of lease-based dispatch and re-dispatch.  The plan
 * must be a pure function of (item count, shard count): every
 * coordinator incarnation (including one restarted mid-sweep) derives
 * the identical plan, so a restart re-covers exactly the same shards
 * and the merged output order never depends on scheduling.
 *
 * Items are dealt round-robin (item i -> shard i % shards) rather than
 * in contiguous blocks: grid enumeration orders cells by benchmark and
 * trace, so contiguous blocks would concentrate the slowest cells in
 * one shard; interleaving keeps shard costs comparable, which is what
 * makes re-dispatch after a worker loss cheap.
 */

#ifndef REACT_HARNESS_SHARD_HH
#define REACT_HARNESS_SHARD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace react {
namespace harness {

/** Item indices per shard; see file comment for the dealing order. */
struct ShardPlan
{
    std::vector<std::vector<size_t>> shards;

    /** Total items across all shards. */
    size_t itemCount() const;
};

/**
 * Partition @p item_count items into min(@p shard_count, item_count)
 * round-robin shards (empty shards are never produced).  @p shard_count
 * of 0 is treated as 1.
 */
ShardPlan planShards(size_t item_count, size_t shard_count);

/**
 * Shard count giving re-dispatch granularity: a few shards per worker,
 * capped by the item count so no shard is empty.  One worker still gets
 * multiple shards, keeping lease units small relative to the sweep.
 */
size_t recommendedShardCount(size_t item_count, size_t worker_count);

/**
 * Order-sensitive digest of one shard's item indices (folded through
 * the same splitmix construction as cellSeed) -- a cheap cross-check
 * that two coordinator incarnations derived the same plan.
 */
uint64_t shardSignature(const std::vector<size_t> &items);

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_SHARD_HH
