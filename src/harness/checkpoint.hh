/**
 * @file
 * Environment-driven checkpoint wiring for long sweeps.
 *
 * The sweep benches are embarrassingly parallel grids of independent
 * cells; a crash hours into one should cost the unfinished cells, not
 * the whole grid.  Setting
 *
 *     REACT_CHECKPOINT_DIR=<dir>
 *
 * makes every grid cell checkpoint its simulation state to
 * `<dir>/<cell-key>.snap` (atomically, with a `.prev` fallback -- see
 * snapshot/snapshot.hh) and resume from it on the next run: finished
 * cells return their stored result instantly, interrupted cells pick up
 * from their last periodic checkpoint bit-identically, and damaged
 * snapshot files degrade to a cold start.  The cadence defaults to
 * kDefaultCheckpointInterval steps and can be overridden with
 *
 *     REACT_CHECKPOINT_INTERVAL=<steps>
 *
 * Both variables are read per cell, so the switch needs no code changes
 * in the individual benches: bench::runCell() routes through
 * applyCheckpointEnv().
 */

#ifndef REACT_HARNESS_CHECKPOINT_HH
#define REACT_HARNESS_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/experiment.hh"

namespace react {
namespace harness {

/**
 * Default periodic-checkpoint cadence, in engine steps.  At the
 * evaluation timestep (1 ms) this is every 250 simulated seconds --
 * frequent enough that a crash loses little, rare enough that snapshot
 * I/O stays invisible next to the physics.
 */
constexpr uint64_t kDefaultCheckpointInterval = 250000;

/**
 * Map an arbitrary cell key (e.g. "DE:RF Cart:REACT") to a safe
 * snapshot filename: [A-Za-z0-9._-] pass through, every other byte
 * becomes '_', and ".snap" is appended.  Distinct keys that sanitize to
 * the same name would share a file, but the experiment identity stored
 * in the snapshot's meta section rejects the mismatch at load time.
 */
std::string checkpointFileName(std::string_view cell_key);

/**
 * Apply the REACT_CHECKPOINT_DIR / REACT_CHECKPOINT_INTERVAL
 * environment to @p config for the cell named @p cell_key.  No-op
 * (returns false) when REACT_CHECKPOINT_DIR is unset or empty.
 */
bool applyCheckpointEnv(ExperimentConfig *config,
                        std::string_view cell_key);

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_CHECKPOINT_HH
