/**
 * @file
 * Deterministic parallel experiment engine.
 *
 * The paper evaluation is an embarrassingly parallel grid of independent
 * (buffer config x trace x seed) simulation *cells*, but reproducibility
 * demands that parallelism never leak into the physics: a sweep run on
 * one thread and on sixteen must produce bit-identical results.  The
 * runner enforces the two rules that make that true:
 *
 *  1. Every cell is a self-contained closure writing to its own result
 *     slot.  Cells share nothing mutable; the runner only schedules.
 *  2. Randomness is seeded from the *cell key* (a stable string naming
 *     the cell, see cellSeed()), never from thread identity, scheduling
 *     order, time, or any other execution accident.
 *
 * Scheduling is work-stealing: cells are dealt round-robin onto per-
 * worker deques at submission time (a deterministic assignment), each
 * worker drains its own deque from the front and steals from the back of
 * its neighbours' when empty, so one long cell cannot strand the sweep
 * behind an idle core.  With one thread the runner degrades to an inline
 * serial loop in submission order -- the reference execution that the
 * determinism suite compares against.
 */

#ifndef REACT_HARNESS_PARALLEL_RUNNER_HH
#define REACT_HARNESS_PARALLEL_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace react {
namespace harness {

/**
 * Derive a deterministic RNG seed from a stable cell identity.
 *
 * The key should name the cell the way a person would ("table2:DE:RF
 * Cart:REACT"), so the same cell gets the same stream in every sweep,
 * any thread count, any submission order -- and two different cells get
 * statistically unrelated streams.  FNV-1a over the key, avalanched
 * together with the caller's base seed via splitmix64 finalizers.
 */
uint64_t cellSeed(uint64_t base_seed, std::string_view cell_key);

/** Wall-clock accounting for one executed cell. */
struct CellTiming
{
    /** Display label the cell was submitted under. */
    std::string label;
    /** Wall seconds the cell's closure ran for. */
    double seconds = 0.0;
};

/**
 * How a runner reacts to SIGINT/SIGTERM during run().
 *
 * Either way the batch *drains gracefully*: no new cells are dispatched
 * once the stop flag is up, in-flight cells run to completion (writing
 * their checkpoints when REACT_CHECKPOINT_DIR is set), and the pool
 * joins cleanly.  The policies differ only in who owns the process
 * afterwards.
 */
enum class SignalPolicy
{
    /**
     * Default for command-line sweeps: run() installs SIGINT/SIGTERM
     * handlers for its duration and, if a signal arrived, exits the
     * process with kInterruptedExitStatus after the drain -- so a
     * partially-swept bench never writes a truncated CSV artifact.
     */
    ExitAfterDrain,
    /**
     * For embedding (reactd): no handlers are installed and run()
     * simply returns after the drain; the host consults interrupted()
     * and decides what to do.  The host raises the stop flag itself
     * via requestStop().
     */
    External,
};

/** Work-stealing scheduler for independent simulation cells. */
class ParallelRunner
{
  public:
    /** Exit status of a sweep that drained after SIGINT/SIGTERM
     *  (distinct from success, crash-hook kills, and sanitizer
     *  failures). */
    static constexpr int kInterruptedExitStatus = 75;

    /**
     * @param threads Worker count; 0 picks defaultThreadCount().  One
     *        worker executes inline (no thread is spawned).
     */
    explicit ParallelRunner(int threads = 0);

    /**
     * Thread count used when the constructor is given 0: the REACT_THREADS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency (at least 1).
     */
    static int defaultThreadCount();

    /** Number of workers this runner executes with. */
    int threadCount() const { return nThreads; }

    /**
     * Submit one cell.  The closure must be independent of every other
     * submitted cell (no shared mutable state) and deterministic given
     * its captures; it typically writes into a caller-owned result slot.
     *
     * @param label Display/timing label (stable, human-readable).
     * @param fn Cell body.
     * @return Submission index (also the index into timings()).
     */
    size_t submit(std::string label, std::function<void()> fn);

    /**
     * Execute every submitted cell and block until all complete.  The
     * first exception thrown by a cell is rethrown here after the pool
     * drains.  The runner may be reused: cells submitted after run()
     * form a new batch.
     */
    void run();

    /** Wall seconds of the last run() (scheduling included). */
    double wallSeconds() const { return lastWallSeconds; }

    /** Per-cell wall timings of the last run(), in submission order. */
    const std::vector<CellTiming> &timings() const { return cellTimings; }

    /** Sum of per-cell wall seconds of the last run() (the serial-
     *  equivalent work content). */
    double busySeconds() const;

    /** Select the SIGINT/SIGTERM behaviour (default ExitAfterDrain). */
    void setSignalPolicy(SignalPolicy policy) { signalPolicy = policy; }

    /**
     * Raise the process-wide stop flag: every running batch (in this or
     * any other runner) stops dispatching new cells and drains its
     * in-flight ones.  Async-signal-safe; this is exactly what the
     * installed handlers call.
     */
    static void requestStop();

    /** Whether the process-wide stop flag is up. */
    static bool stopRequested();

    /** Lower the stop flag (External hosts, between drain cycles). */
    static void clearStopRequest();

    /** True when the last run() stopped early on the stop flag. */
    bool interrupted() const { return lastInterrupted; }

    /** Cells actually executed by the last run() (== timings().size()
     *  unless the batch was interrupted). */
    size_t executedCells() const { return executedCount.load(); }

  private:
    struct Task
    {
        std::string label;
        std::function<void()> fn;
    };

    /** Worker loop: drain own deque, then steal. */
    void workerLoop(int worker_index);

    /** Pop the next task index for this worker; -1 when the batch is
     *  exhausted. */
    long nextTask(int worker_index);

    int nThreads = 1;
    SignalPolicy signalPolicy = SignalPolicy::ExitAfterDrain;
    bool lastInterrupted = false;
    std::atomic<size_t> executedCount{0};
    std::vector<Task> tasks;
    std::vector<CellTiming> cellTimings;
    double lastWallSeconds = 0.0;

    /** Per-worker task-index deques (guarded by one mutex each); rebuilt
     *  by run() from the round-robin deal. */
    struct WorkerQueue;
    std::vector<WorkerQueue> *queues = nullptr;  // set during run() only
};

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_PARALLEL_RUNNER_HH
