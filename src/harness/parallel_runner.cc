#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/logging.hh"

namespace react {
namespace harness {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Crash-recovery test hook: REACT_CRASH_AFTER_CELLS=N hard-kills the
 * process (std::_Exit(3), no destructors, no flushing -- as close to a
 * power failure as a simulation gets) once N cells have completed.  The
 * golden-resume suite uses this to interrupt a checkpointed sweep and
 * prove the rerun reproduces the uninterrupted artifact byte-exactly.
 */
long
crashAfterCells()
{
    static const long n = [] {
        const char *env = std::getenv("REACT_CRASH_AFTER_CELLS");
        if (env == nullptr)
            return -1L;
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 0)
            return v;
        react_warn("ignoring REACT_CRASH_AFTER_CELLS='%s' (want a "
                   "non-negative integer)",
                   env);
        return -1L;
    }();
    return n;
}

std::atomic<long> completedCells{0};

void
noteCellCompleted()
{
    const long limit = crashAfterCells();
    if (limit < 0)
        return;
    if (completedCells.fetch_add(1, std::memory_order_relaxed) + 1 >= limit)
        std::_Exit(3);
}

} // namespace

uint64_t
cellSeed(uint64_t base_seed, std::string_view cell_key)
{
    // FNV-1a over the key bytes...
    uint64_t h = 1469598103934665603ull;
    for (const char c : cell_key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    // ...then avalanche the base seed in.  Two mix rounds so that keys
    // differing in one late byte and bases differing in one bit both
    // flip about half the output.
    return mix64(h + mix64(base_seed + 0x9e3779b97f4a7c15ull));
}

struct ParallelRunner::WorkerQueue
{
    std::mutex lock;
    std::deque<size_t> indices;
};

ParallelRunner::ParallelRunner(int threads)
    : nThreads(threads > 0 ? threads : defaultThreadCount())
{
}

int
ParallelRunner::defaultThreadCount()
{
    if (const char *env = std::getenv("REACT_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<int>(n);
        react_warn("ignoring REACT_THREADS='%s' (want a positive integer)",
                   env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

size_t
ParallelRunner::submit(std::string label, std::function<void()> fn)
{
    tasks.push_back(Task{std::move(label), std::move(fn)});
    return tasks.size() - 1;
}

long
ParallelRunner::nextTask(int worker_index)
{
    auto &queues_ref = *queues;
    // Own deque first, front-out: preserves the deterministic deal order
    // for the common un-stolen case.
    {
        auto &q = queues_ref[static_cast<size_t>(worker_index)];
        std::lock_guard<std::mutex> g(q.lock);
        if (!q.indices.empty()) {
            const size_t idx = q.indices.front();
            q.indices.pop_front();
            return static_cast<long>(idx);
        }
    }
    // Steal from the back of the other workers' deques (back-out keeps
    // the victim's front cache-warm for the victim).
    const int n = static_cast<int>(queues_ref.size());
    for (int offset = 1; offset < n; ++offset) {
        auto &victim =
            queues_ref[static_cast<size_t>((worker_index + offset) % n)];
        std::lock_guard<std::mutex> g(victim.lock);
        if (!victim.indices.empty()) {
            const size_t idx = victim.indices.back();
            victim.indices.pop_back();
            return static_cast<long>(idx);
        }
    }
    return -1;
}

void
ParallelRunner::workerLoop(int worker_index)
{
    for (;;) {
        const long idx = nextTask(worker_index);
        if (idx < 0)
            return;
        auto &task = tasks[static_cast<size_t>(idx)];
        const auto t0 = std::chrono::steady_clock::now();
        task.fn();
        const auto t1 = std::chrono::steady_clock::now();
        cellTimings[static_cast<size_t>(idx)].seconds =
            std::chrono::duration<double>(t1 - t0).count();
        noteCellCompleted();
    }
}

void
ParallelRunner::run()
{
    cellTimings.clear();
    cellTimings.reserve(tasks.size());
    for (const auto &task : tasks)
        cellTimings.push_back(CellTiming{task.label, 0.0});

    const auto t0 = std::chrono::steady_clock::now();

    if (nThreads <= 1 || tasks.size() <= 1) {
        // Serial reference path: submission order, no pool machinery.
        for (size_t i = 0; i < tasks.size(); ++i) {
            const auto c0 = std::chrono::steady_clock::now();
            tasks[i].fn();
            const auto c1 = std::chrono::steady_clock::now();
            cellTimings[i].seconds =
                std::chrono::duration<double>(c1 - c0).count();
            noteCellCompleted();
        }
    } else {
        // Deterministic round-robin deal onto per-worker deques.  The
        // deal (and hence which cell lands where when nothing is
        // stolen) depends only on submission order and thread count --
        // and cell *results* depend on neither, which the determinism
        // suite enforces.
        const int n = std::min<int>(nThreads,
                                    static_cast<int>(tasks.size()));
        std::vector<WorkerQueue> worker_queues(
            static_cast<size_t>(n));
        for (size_t i = 0; i < tasks.size(); ++i) {
            worker_queues[i % static_cast<size_t>(n)].indices.push_back(i);
        }
        queues = &worker_queues;

        std::exception_ptr first_error;
        std::mutex error_lock;
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(n));
        for (int w = 0; w < n; ++w) {
            workers.emplace_back([this, w, &first_error, &error_lock] {
                try {
                    workerLoop(w);
                } catch (...) {
                    std::lock_guard<std::mutex> g(error_lock);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            });
        }
        for (auto &worker : workers)
            worker.join();
        queues = nullptr;
        if (first_error)
            std::rethrow_exception(first_error);
    }

    const auto t1 = std::chrono::steady_clock::now();
    lastWallSeconds = std::chrono::duration<double>(t1 - t0).count();
    tasks.clear();
}

double
ParallelRunner::busySeconds() const
{
    double total = 0.0;
    for (const auto &timing : cellTimings)
        total += timing.seconds;
    return total;
}

} // namespace harness
} // namespace react
