#include "parallel_runner.hh"

#include <atomic>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/determinism.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace react {
namespace harness {

namespace {

/**
 * Monotonic timestamp for the runner's wall-time telemetry: per-cell
 * timings, lastWallSeconds, and the BENCH_parallel speedup numbers.
 * Cell *results* are a pure function of (spec, identity-derived seed);
 * wall time never reaches them, which is why this is the runner's only
 * sanctioned clock read.
 */
std::chrono::steady_clock::time_point
telemetryNow()
{
    REACT_NONDET_OK("steady_clock feeds timing telemetry only, never cell results");
    return std::chrono::steady_clock::now();
}

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Crash-recovery test hook: REACT_CRASH_AFTER_CELLS=N hard-kills the
 * process (std::_Exit(3), no destructors, no flushing -- as close to a
 * power failure as a simulation gets) once N cells have completed.  The
 * golden-resume suite uses this to interrupt a checkpointed sweep and
 * prove the rerun reproduces the uninterrupted artifact byte-exactly.
 */
long
crashAfterCells()
{
    static const long n = static_cast<long>(
        env::intVar("REACT_CRASH_AFTER_CELLS", 0, LONG_MAX).value_or(-1));
    return n;
}

/**
 * Graceful-drain test hook: REACT_SIGNAL_AFTER_CELLS=N raises SIGTERM
 * in-process once N cells have completed -- the deliverable sibling of
 * the crash hook above.  Under the default SignalPolicy the sweep must
 * stop dispatching, finish its in-flight cells, and exit with
 * kInterruptedExitStatus, which the signal-drain test asserts.
 */
long
signalAfterCells()
{
    static const long n = static_cast<long>(
        env::intVar("REACT_SIGNAL_AFTER_CELLS", 0, LONG_MAX).value_or(-1));
    return n;
}

REACT_NONDET_OK("crash/signal test-hook progress count; never read into results");
std::atomic<long> completedCells{0};

void
noteCellCompleted()
{
    const long crash_limit = crashAfterCells();
    const long signal_limit = signalAfterCells();
    if (crash_limit < 0 && signal_limit < 0)
        return;
    const long done =
        completedCells.fetch_add(1, std::memory_order_relaxed) + 1;
    if (crash_limit >= 0 && done >= crash_limit)
        std::_Exit(3);
    if (signal_limit >= 0 && done == signal_limit)
        std::raise(SIGTERM);
}

/** Process-wide stop flag; shared so one Ctrl-C stops every batch.
 *  Dispatched cells always run to completion, so the flag decides only
 *  *how many* cells a drained run finishes, never what any cell
 *  computes. */
REACT_NONDET_OK("signal-drain stop flag gates dispatch only; cell results unaffected");
std::atomic<bool> stopFlag{false};

/** Signal handler installed by run() under SignalPolicy::ExitAfterDrain:
 *  just raise the flag (an atomic store is async-signal-safe); the
 *  worker loops notice it between cells. */
void
onStopSignal(int)
{
    stopFlag.store(true, std::memory_order_relaxed);
}

} // namespace

uint64_t
cellSeed(uint64_t base_seed, std::string_view cell_key)
{
    // FNV-1a over the key bytes...
    uint64_t h = 1469598103934665603ull;
    for (const char c : cell_key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    // ...then avalanche the base seed in.  Two mix rounds so that keys
    // differing in one late byte and bases differing in one bit both
    // flip about half the output.
    return mix64(h + mix64(base_seed + 0x9e3779b97f4a7c15ull));
}

struct ParallelRunner::WorkerQueue
{
    std::mutex lock;
    std::deque<size_t> indices;
};

ParallelRunner::ParallelRunner(int threads)
    : nThreads(threads > 0 ? threads : defaultThreadCount())
{
}

int
ParallelRunner::defaultThreadCount()
{
    if (const auto n = env::intVar("REACT_THREADS", 1, 1 << 16))
        return static_cast<int>(*n);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
ParallelRunner::requestStop()
{
    stopFlag.store(true, std::memory_order_relaxed);
}

bool
ParallelRunner::stopRequested()
{
    return stopFlag.load(std::memory_order_relaxed);
}

void
ParallelRunner::clearStopRequest()
{
    stopFlag.store(false, std::memory_order_relaxed);
}

size_t
ParallelRunner::submit(std::string label, std::function<void()> fn)
{
    tasks.push_back(Task{std::move(label), std::move(fn)});
    return tasks.size() - 1;
}

long
ParallelRunner::nextTask(int worker_index)
{
    // Graceful drain: once the stop flag is up no new cell is handed
    // out; the cell currently executing on each worker finishes.
    if (stopRequested())
        return -1;
    auto &queues_ref = *queues;
    // Own deque first, front-out: preserves the deterministic deal order
    // for the common un-stolen case.
    {
        auto &q = queues_ref[static_cast<size_t>(worker_index)];
        std::lock_guard<std::mutex> g(q.lock);
        if (!q.indices.empty()) {
            const size_t idx = q.indices.front();
            q.indices.pop_front();
            return static_cast<long>(idx);
        }
    }
    // Steal from the back of the other workers' deques (back-out keeps
    // the victim's front cache-warm for the victim).
    const int n = static_cast<int>(queues_ref.size());
    for (int offset = 1; offset < n; ++offset) {
        auto &victim =
            queues_ref[static_cast<size_t>((worker_index + offset) % n)];
        std::lock_guard<std::mutex> g(victim.lock);
        if (!victim.indices.empty()) {
            const size_t idx = victim.indices.back();
            victim.indices.pop_back();
            return static_cast<long>(idx);
        }
    }
    return -1;
}

void
ParallelRunner::workerLoop(int worker_index)
{
    for (;;) {
        const long idx = nextTask(worker_index);
        if (idx < 0)
            return;
        auto &task = tasks[static_cast<size_t>(idx)];
        const auto t0 = telemetryNow();
        task.fn();
        const auto t1 = telemetryNow();
        cellTimings[static_cast<size_t>(idx)].seconds =
            std::chrono::duration<double>(t1 - t0).count();
        executedCount.fetch_add(1, std::memory_order_relaxed);
        noteCellCompleted();
    }
}

void
ParallelRunner::run()
{
    cellTimings.clear();
    cellTimings.reserve(tasks.size());
    for (const auto &task : tasks)
        cellTimings.push_back(CellTiming{task.label, 0.0});

    // Under the default policy this run owns SIGINT/SIGTERM: the
    // handler raises the stop flag, the batch drains, and run() exits
    // the process below.  Previous dispositions are restored on every
    // path out so embedding code (tests) is unaffected.
    struct sigaction old_int = {}, old_term = {};
    const bool own_signals = signalPolicy == SignalPolicy::ExitAfterDrain;
    if (own_signals) {
        struct sigaction sa = {};
        sa.sa_handler = onStopSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, &old_int);
        sigaction(SIGTERM, &sa, &old_term);
    }

    executedCount.store(0);
    lastInterrupted = false;
    const size_t batch_size = tasks.size();

    const auto t0 = telemetryNow();

    if (nThreads <= 1 || tasks.size() <= 1) {
        // Serial reference path: submission order, no pool machinery.
        for (size_t i = 0; i < tasks.size(); ++i) {
            if (stopRequested())
                break;
            const auto c0 = telemetryNow();
            tasks[i].fn();
            const auto c1 = telemetryNow();
            cellTimings[i].seconds =
                std::chrono::duration<double>(c1 - c0).count();
            executedCount.fetch_add(1, std::memory_order_relaxed);
            noteCellCompleted();
        }
    } else {
        // Deterministic round-robin deal onto per-worker deques.  The
        // deal (and hence which cell lands where when nothing is
        // stolen) depends only on submission order and thread count --
        // and cell *results* depend on neither, which the determinism
        // suite enforces.
        const int n = std::min<int>(nThreads,
                                    static_cast<int>(tasks.size()));
        std::vector<WorkerQueue> worker_queues(
            static_cast<size_t>(n));
        for (size_t i = 0; i < tasks.size(); ++i) {
            worker_queues[i % static_cast<size_t>(n)].indices.push_back(i);
        }
        queues = &worker_queues;

        std::exception_ptr first_error;
        std::mutex error_lock;
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(n));
        for (int w = 0; w < n; ++w) {
            workers.emplace_back([this, w, &first_error, &error_lock] {
                try {
                    workerLoop(w);
                } catch (...) {
                    std::lock_guard<std::mutex> g(error_lock);
                    if (!first_error)
                        first_error = std::current_exception();
                }
            });
        }
        for (auto &worker : workers)
            worker.join();
        queues = nullptr;
        if (first_error)
            std::rethrow_exception(first_error);
    }

    const auto t1 = telemetryNow();
    lastWallSeconds = std::chrono::duration<double>(t1 - t0).count();
    tasks.clear();
    lastInterrupted = stopRequested();

    if (own_signals) {
        sigaction(SIGINT, &old_int, nullptr);
        sigaction(SIGTERM, &old_term, nullptr);
        if (lastInterrupted) {
            // The drain is complete: every dispatched cell finished (and
            // wrote its checkpoint when REACT_CHECKPOINT_DIR is set).
            // Exit with a status distinct from success and from the
            // crash hook so drivers can tell "interrupted cleanly" from
            // "died"; a rerun resumes the finished cells from their
            // snapshots.
            react_warn("sweep interrupted by signal: completed %zu of "
                       "%zu cells, exiting with status %d",
                       executedCount.load(), batch_size,
                       kInterruptedExitStatus);
            std::fflush(nullptr);
            std::_Exit(kInterruptedExitStatus);
        }
    }
}

double
ParallelRunner::busySeconds() const
{
    double total = 0.0;
    for (const auto &timing : cellTimings)
        total += timing.seconds;
    return total;
}

} // namespace harness
} // namespace react
