#include "grid.hh"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <mutex>

#include "harness/batch_runner.hh"
#include "harness/checkpoint.hh"
#include "harness/parallel_runner.hh"
#include "harvest/frontend.hh"
#include "util/determinism.hh"
#include "util/logging.hh"

namespace react {
namespace harness {

std::string
gridCellKey(BenchmarkKind bench_kind, trace::PaperTrace trace_kind,
            BufferKind buffer_kind)
{
    return benchmarkKindName(bench_kind) + ":" +
        trace::paperTraceName(trace_kind) + ":" +
        bufferKindName(buffer_kind);
}

const trace::PowerTrace &
evaluationTrace(trace::PaperTrace which)
{
    // Shared across every thread and cell, but safe for the contract:
    // mutex-guarded, keyed by a closed enum in an *ordered* map, and
    // makePaperTrace is a pure seeded synthesis -- whichever thread
    // populates an entry first, every reader observes identical bytes.
    REACT_NONDET_OK("mutex-guarded memo of pure seeded trace synthesis");
    static std::mutex lock;
    REACT_NONDET_OK("value per key is bit-identical regardless of populating thread");
    static std::map<trace::PaperTrace, trace::PowerTrace> cache;
    const std::lock_guard<std::mutex> guard(lock);
    auto it = cache.find(which);
    if (it == cache.end())
        it = cache.emplace(which, trace::makePaperTrace(which)).first;
    return it->second;
}

void
prewarmEvaluationTraces()
{
    for (const auto which : trace::kAllPaperTraces)
        evaluationTrace(which);
}

ExperimentResult
runGridCell(BufferKind buffer_kind, BenchmarkKind bench_kind,
            trace::PaperTrace trace_kind, const ExperimentConfig &config,
            uint64_t base_seed)
{
    const std::string cell_key =
        gridCellKey(bench_kind, trace_kind, buffer_kind);
    auto buffer = makeBuffer(buffer_kind);
    const auto &power = evaluationTrace(trace_kind);
    auto benchmark = makeBenchmark(
        bench_kind, power.duration() + kGridDrainAllowance,
        cellSeed(base_seed, cell_key));
    harvest::HarvesterFrontend frontend(power);
    ExperimentConfig cell_config = config;
    applyCheckpointEnv(&cell_config, cell_key);
    return runExperiment(*buffer, benchmark.get(), frontend, cell_config);
}

void
runGridCellBatch(const std::vector<GridBatchCell> &cells,
                 const ExperimentConfig &config, uint64_t base_seed,
                 sim::simd::Kernel kernel, BatchPhaseStats *stats)
{

    /** Constructed components of one admitted cell, kept alive for the
     *  duration of the streaming run. */
    struct PreparedCell
    {
        std::unique_ptr<buffer::EnergyBuffer> buffer;
        std::unique_ptr<workload::Benchmark> benchmark;
        std::unique_ptr<harvest::HarvesterFrontend> frontend;
        ExperimentResult *slot;
    };
    std::vector<PreparedCell> pending;
    pending.reserve(cells.size());

    for (const GridBatchCell &cell : cells) {
        const std::string cell_key =
            gridCellKey(cell.benchKind, cell.traceKind, cell.bufferKind);
        auto buffer = makeBuffer(cell.bufferKind);
        const auto &power = evaluationTrace(cell.traceKind);
        auto benchmark = makeBenchmark(
            cell.benchKind, power.duration() + kGridDrainAllowance,
            cellSeed(base_seed, cell_key));
        auto frontend = std::make_unique<harvest::HarvesterFrontend>(power);
        ExperimentConfig cell_config = config;
        applyCheckpointEnv(&cell_config, cell_key);
        // The checkpoint env makes the cell inadmissible (non-empty
        // path), so every admitted cell's effective config equals the
        // shared one runExperimentBatch receives.
        if (kernel == sim::simd::Kernel::Disabled ||
            !batchAdmissible(*buffer, cell_config)) {
            *cell.slot = runExperiment(*buffer, benchmark.get(), *frontend,
                                       cell_config);
            continue;
        }
        pending.push_back(PreparedCell{std::move(buffer),
                                       std::move(benchmark),
                                       std::move(frontend), cell.slot});
    }
    if (pending.empty())
        return;

    // Stream every admitted cell through one lane-refilled run, longest
    // trace first: with slot refill, longest-first admission minimizes
    // the makespan (the classic LPT schedule -- total iterations land
    // near max(sum/kMaxLanes, longest cell) instead of the
    // sum-of-group-maxima a fixed grouping pays).  Each cell's numbers
    // are independent of admission order (tests prove composition
    // independence), so the sort changes wall time only; stable_sort on
    // the duration keeps tie order deterministic.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PreparedCell &a, const PreparedCell &b) {
                         return a.frontend->traceDuration().raw() >
                             b.frontend->traceDuration().raw();
                     });
    std::vector<BatchCell> batch;
    batch.reserve(pending.size());
    for (PreparedCell &prepared : pending) {
        auto *static_buffer =
            dynamic_cast<buffer::StaticBuffer *>(prepared.buffer.get());
        react_assert(static_buffer != nullptr,
                     "admitted batch cell lost its StaticBuffer");
        batch.push_back(BatchCell{static_buffer, prepared.benchmark.get(),
                                  prepared.frontend.get(), prepared.slot});
    }
    runExperimentBatch(batch.data(), static_cast<int>(batch.size()),
                       config, kernel, stats);
}

bool
parseBenchmarkKind(const std::string &name, BenchmarkKind *out)
{
    for (const auto kind : kAllBenchmarks) {
        if (benchmarkKindName(kind) == name) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parsePaperTrace(const std::string &name, trace::PaperTrace *out)
{
    for (const auto kind : trace::kAllPaperTraces) {
        if (trace::paperTraceName(kind) == name) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parseBufferKind(const std::string &name, BufferKind *out)
{
    for (const auto kind : kAllBuffers) {
        if (bufferKindName(kind) == name) {
            *out = kind;
            return true;
        }
    }
    return false;
}

} // namespace harness
} // namespace react
