/**
 * @file
 * End-to-end experiment runner: harvesting frontend -> buffer -> power
 * gate -> MCU -> benchmark, the full loop of the paper's testbed (S 4).
 *
 * Following the paper's protocol (S 5), each run replays one power trace
 * into one buffer while the backend executes one benchmark, then lets the
 * system run on stored energy until the buffer drains.  The runner
 * reports the paper's metrics: system latency (first enable, Table 4),
 * work counts (Tables 2 and 5), on-time, power cycles, and the full
 * energy ledger behind Fig. 7.
 */

#ifndef REACT_HARNESS_EXPERIMENT_HH
#define REACT_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "buffers/energy_buffer.hh"
#include "harvest/frontend.hh"
#include "mcu/device.hh"
#include "sim/energy_ledger.hh"
#include "sim/fault_injector.hh"
#include "sim/power_gate.hh"
#include "workload/benchmark.hh"

namespace react {
namespace harness {

/**
 * Quiescent fast-path policy (see EnergyBuffer::advanceQuiescent and
 * DESIGN.md, "Hot loop").  The fast path replaces provably-inert spans
 * (zero harvest, backend off) with closed-form decay; it is *opt-in*
 * because results differ from exact stepping by the documented
 * pow-vs-iterated rounding bound, and default runs must stay
 * byte-exact against the golden suite.
 */
enum class FastPath
{
    /** Consult REACT_FAST_PATH once per process: unset/"0" -> Off,
     *  "check" -> Check, anything else -> On. */
    Auto,
    /** Exact stepping only (the default behaviour). */
    Off,
    /** Engage the closed-form fast path on quiescent spans. */
    On,
    /** Engage it, then re-run every span exactly and panic if the fast
     *  result diverges beyond the documented bound (the divergence
     *  gate; runs at exact-mode speed and continues from exact state). */
    Check,
};

/** Runner options. */
struct ExperimentConfig
{
    /** Integration timestep, seconds. */
    double dt = 1e-3;
    /** Maximum extra run time after the trace ends (run-until-drain
     *  allowance). */
    double drainAllowance = 900.0;
    /** After the trace ends, stop once the backend has been continuously
     *  off for this long (no input power remains to restart it). */
    double settleTime = 20.0;
    /** Power-gate enable threshold, volts. */
    double enableVoltage = 3.3;
    /** Power-gate brown-out threshold, volts. */
    double brownoutVoltage = 1.8;
    /** Record the rail voltage (for the figure benches). */
    bool recordRail = false;
    /** Sampling interval of the rail recording, seconds. */
    double recordInterval = 0.5;
    /** Stop as soon as the backend first enables (latency-only runs,
     *  Table 4: charge time is software-invariant). */
    bool stopAfterLatency = false;
    /** Quiescent fast-path policy; Auto defers to REACT_FAST_PATH. */
    FastPath fastPath = FastPath::Auto;

    /**
     * Hardware fault schedule.  The default all-zero plan leaves the run
     * bit-identical to a build without fault injection (no injector is
     * even constructed).  When any rate is non-zero, one seeded injector
     * is attached to the buffer and the power gate for the whole run.
     */
    sim::FaultPlan faultPlan;
    /** Master seed for the fault injector's component streams. */
    uint64_t faultSeed = 0x5eedull;
    /**
     * Escalate an energy-conservation violation (|error| beyond 1e-9 J
     * per joule harvested) from a warning to a panic.  Tests enable
     * this; interactive benches keep the warning so a sweep finishes.
     */
    bool strictConservation = false;

    /**
     * @name Checkpoint / restore (crash resilience for long runs)
     *
     * With a non-empty checkpointPath the runner periodically writes a
     * versioned, CRC-guarded snapshot of the complete simulation state
     * (atomically: see snapshot::saveSnapshotFile), and a "finished"
     * snapshot carrying the final result once the run completes.  With
     * resume set, the runner first tries to load that file: a finished
     * snapshot returns the stored result immediately, a mid-run one
     * resumes the loop bit-identically, and a damaged one falls back to
     * the previous snapshot or a cold start -- never undefined behaviour.
     * @{
     */
    /** Snapshot file path; empty disables checkpointing entirely. */
    std::string checkpointPath;
    /** Steps between periodic checkpoints (0 = only the finished one). */
    uint64_t checkpointEverySteps = 0;
    /** Try to resume from checkpointPath before cold-starting. */
    bool resume = false;
    /**
     * Simulated crash for the crash-consistency fuzzer: stop abruptly
     * after this many steps (0 = never) *without* writing a checkpoint
     * at the kill step, exactly as a power failure would.
     */
    uint64_t haltAfterSteps = 0;
    /** @} */
};

/** One recorded rail sample. */
struct RailSample
{
    double time = 0.0;
    double voltage = 0.0;
    bool backendOn = false;
    int level = 0;
};

/** Outcome of one run. */
struct ExperimentResult
{
    std::string bufferName;
    std::string benchmarkName;
    std::string traceName;

    /** Time of first backend enable, seconds; < 0 when it never starts
     *  (the paper's "-" entries in Table 4). */
    double latency = -1.0;
    /** Total time the backend was powered, seconds. */
    double onTime = 0.0;
    /** Total simulated time, seconds. */
    double totalTime = 0.0;
    /** Fixed-timestep engine iterations executed (totalTime / dt). */
    uint64_t steps = 0;
    /** Of `steps`, how many were advanced by the opt-in quiescent
     *  fast path (REACT_FAST_PATH; always 0 in default exact mode). */
    uint64_t fastSteps = 0;
    /** Number of power cycles (off -> on transitions). */
    uint64_t powerCycles = 0;
    /** Mean uninterrupted on-period, seconds. */
    double meanOnPeriod() const;
    /** Fraction of total time the backend was powered. */
    double dutyCycle() const;

    /** Benchmark counters. */
    uint64_t workUnits = 0;
    uint64_t packetsRx = 0;
    uint64_t packetsTx = 0;
    uint64_t failedOps = 0;
    uint64_t missedEvents = 0;

    /** Buffer energy audit. */
    sim::EnergyLedger ledger;
    /** Energy still stored when the run ended, joules. */
    double residualEnergy = 0.0;
    /** Ledger conservation error for the whole run, joules (signed). */
    double conservationError = 0.0;

    /** @name Fault-injection outcome (zero without a fault plan). @{ */
    /** Injected hardware faults over the run. */
    uint64_t faultEvents = 0;
    /** Recovery actions the hardened management software took. */
    uint64_t recoveryEvents = 0;
    /** Banks the REACT watchdog retired. */
    int banksRetired = 0;
    /** Corrupt FRAM config records replaced with the safe default. */
    int framRecoveries = 0;
    /** Chronological fault/recovery log (capped inside the injector). */
    std::vector<sim::FaultEvent> faultLog;
    /** @} */

    /**
     * Work lost to hardware faults versus a reference run of the same
     * setup without them (clamped at zero: noise can make a faulted run
     * marginally luckier).
     */
    uint64_t workLostVersus(const ExperimentResult &fault_free) const;

    /** Rail recording (when enabled). */
    std::vector<RailSample> rail;

    /** @name Checkpoint / restore outcome. @{ */
    /** The run stopped at haltAfterSteps (result is partial). */
    bool halted = false;
    /** The run resumed from (or returned directly out of) a snapshot. */
    bool resumed = false;
    /** The primary snapshot was damaged and `.prev` (or a cold start)
     *  was used instead. */
    bool snapshotFallback = false;
    /** Human-readable account of the snapshot load (empty when no
     *  resume was attempted). */
    std::string snapshotDiagnostic;
    /**
     * CRC-32 over the serialized final state of every component (gate,
     * device, buffer, benchmark including event-queue delivery ids, and
     * fault injector).  Two runs are bit-identical iff their digests --
     * and the explicit counters above -- match; the crash fuzzer uses
     * this to prove checkpoint/restore transparency.
     */
    uint32_t stateDigest = 0;
    /** @} */
};

/**
 * Resolve FastPath::Auto against REACT_FAST_PATH (read once per
 * process: the mode must not change between cells of one sweep).
 * Exposed so the lane-engine admission check (harness/batch_runner.hh)
 * sees the same effective mode runExperiment would use.
 */
FastPath resolveFastPath(FastPath configured);

/**
 * Run one experiment.  The buffer and benchmark are reset first.
 *
 * @param buffer Energy buffer under test.
 * @param benchmark Workload; may be null, in which case the backend sits
 *        in active mode whenever powered (the Fig. 1 motivation setup).
 * @param frontend Power replay source.
 * @param config Runner options.
 */
ExperimentResult runExperiment(buffer::EnergyBuffer &buffer,
                               workload::Benchmark *benchmark,
                               const harvest::HarvesterFrontend &frontend,
                               const ExperimentConfig &config =
                                   ExperimentConfig());

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_EXPERIMENT_HH
