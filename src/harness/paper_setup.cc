#include "paper_setup.hh"

#include "buffers/morphy_buffer.hh"
#include "buffers/static_buffer.hh"
#include "core/react_buffer.hh"
#include "util/logging.hh"
#include "util/units.hh"
#include "workload/de_benchmark.hh"
#include "workload/pf_benchmark.hh"
#include "workload/rt_benchmark.hh"
#include "workload/sc_benchmark.hh"

namespace react {
namespace harness {

using units::microfarads;
using units::millifarads;

std::string
bufferKindName(BufferKind kind)
{
    switch (kind) {
      case BufferKind::Static770uF:
        return "770uF";
      case BufferKind::Static10mF:
        return "10mF";
      case BufferKind::Static17mF:
        return "17mF";
      case BufferKind::Morphy:
        return "Morphy";
      case BufferKind::React:
        return "REACT";
    }
    return "?";
}

std::string
benchmarkKindName(BenchmarkKind kind)
{
    switch (kind) {
      case BenchmarkKind::DataEncryption:
        return "DE";
      case BenchmarkKind::SenseCompute:
        return "SC";
      case BenchmarkKind::RadioTransmit:
        return "RT";
      case BenchmarkKind::PacketForward:
        return "PF";
    }
    return "?";
}

sim::CapacitorSpec
staticBufferSpec(units::Farads capacitance)
{
    sim::CapacitorSpec spec;
    spec.capacitance = capacitance;
    spec.ratedVoltage = units::Volts(6.3);
    // Insulation-resistance leakage with tau = 2000 s (see DESIGN.md).
    spec.leakageCurrentAtRated =
        units::Volts(6.3) * capacitance / units::Seconds(2000.0);
    return spec;
}

std::unique_ptr<buffer::EnergyBuffer>
makeBuffer(BufferKind kind)
{
    switch (kind) {
      case BufferKind::Static770uF:
        return std::make_unique<buffer::StaticBuffer>(
            staticBufferSpec(microfarads(770.0)));
      case BufferKind::Static10mF:
        return std::make_unique<buffer::StaticBuffer>(
            staticBufferSpec(millifarads(10.0)));
      case BufferKind::Static17mF:
        return std::make_unique<buffer::StaticBuffer>(
            staticBufferSpec(millifarads(17.0)), units::Volts(3.6), "17mF");
      case BufferKind::Morphy:
        return std::make_unique<buffer::MorphyBuffer>();
      case BufferKind::React:
        return std::make_unique<core::ReactBuffer>(
            core::ReactConfig::paperConfig());
    }
    react_panic("unknown buffer kind");
}

std::unique_ptr<workload::Benchmark>
makeBenchmark(BenchmarkKind kind, double horizon, uint64_t seed)
{
    const workload::WorkloadParams params = workloadParams();
    switch (kind) {
      case BenchmarkKind::DataEncryption:
        return std::make_unique<workload::DataEncryptionBenchmark>(params);
      case BenchmarkKind::SenseCompute:
        return std::make_unique<workload::SenseComputeBenchmark>(
            params, horizon, seed);
      case BenchmarkKind::RadioTransmit:
        return std::make_unique<workload::RadioTransmitBenchmark>(params);
      case BenchmarkKind::PacketForward:
        return std::make_unique<workload::PacketForwardBenchmark>(
            params, horizon, seed);
    }
    react_panic("unknown benchmark kind");
}

mcu::DeviceSpec
backendSpec()
{
    mcu::DeviceSpec spec;
    spec.activeCurrent = 1.5e-3;
    spec.sleepCurrent = 300e-6;
    return spec;
}

workload::WorkloadParams
workloadParams()
{
    return workload::WorkloadParams();
}

} // namespace harness
} // namespace react
