#include "shard.hh"

namespace react {
namespace harness {

namespace {

/** splitmix64 finalizer (same mixing stage the Rng seeds through). */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

size_t
ShardPlan::itemCount() const
{
    size_t n = 0;
    for (const auto &shard : shards)
        n += shard.size();
    return n;
}

ShardPlan
planShards(size_t item_count, size_t shard_count)
{
    ShardPlan plan;
    if (item_count == 0)
        return plan;
    if (shard_count == 0)
        shard_count = 1;
    if (shard_count > item_count)
        shard_count = item_count;
    plan.shards.resize(shard_count);
    for (size_t item = 0; item < item_count; ++item)
        plan.shards[item % shard_count].push_back(item);
    return plan;
}

size_t
recommendedShardCount(size_t item_count, size_t worker_count)
{
    if (worker_count == 0)
        worker_count = 1;
    // Four lease units per worker: small enough that losing one costs a
    // quarter of a worker's share, large enough to keep lease traffic
    // trivial next to cell runtimes.
    const size_t want = worker_count * 4;
    return item_count < want ? (item_count == 0 ? 1 : item_count) : want;
}

uint64_t
shardSignature(const std::vector<size_t> &items)
{
    uint64_t h = 0x53484152u; // "SHAR"
    for (const size_t item : items)
        h = mix64(h ^ static_cast<uint64_t>(item));
    return h;
}

} // namespace harness
} // namespace react
