/**
 * @file
 * Lockstep experiment driver for the batch-of-cells lane engine.
 *
 * runExperimentBatch streams any number of independent static-buffer
 * experiments through sim::BatchStepper::kMaxLanes lockstep lanes, and
 * the whole step loop -- not just the physics -- is lane-major:
 *
 *  - trace sampling and converter evaluation are hoisted to lane
 *    admission: each lane's frontend is precompiled into run-length
 *    power spans (HarvesterFrontend::compileStepSpans), so the hot
 *    loop's "frontend" is one counter decrement per lane per step
 *    instead of a divide-and-index trace lookup plus a virtual
 *    converter call;
 *  - lanes are *refilled*: when a cell finishes, its lane is
 *    immediately re-admitted for the next queued cell (which starts
 *    from t = 0 on its own per-lane clock), so a long cell never
 *    idles seven lanes behind it -- utilization approaches 100% of
 *    sum-of-steps / kMaxLanes regardless of duration spread;
 *  - power-gate threshold checks run as a lane mask
 *    (sim::GateLaneBank): one compare pair per lane, with the
 *    authoritative PowerGate objects updated only on actual
 *    transitions (injector-observed gates keep per-step updates --
 *    comparator reads consume randomness);
 *  - the backend load current is re-queried only when it can have
 *    changed (gate transitions and benchmark ticks), not every step;
 *  - the four physics phases run vectorized across all lanes at once
 *    (scalar/AVX2/AVX-512 kernels, sim/batch_stepper.hh), steps where
 *    no lane harvests or draws load collapse to the quiet-step
 *    peephole (leak only -- bit-identical, see BatchStepper::step),
 *    and a nearly drained batch (at most two live cells) steps those
 *    lanes scalar instead of running the full-width kernel over
 *    frozen no-op lanes (BatchStepper::stepLane);
 *  - the per-lane control plane is *event-driven*: a gate-off lane
 *    with no injector, aging, or rail recording sleeps -- zero
 *    per-step control work beyond one shared clock advance and two
 *    SoA wake compares -- until a gate flip (caught by the bank's
 *    vector compare), its next span roll, its settle-exit step, or an
 *    endT/hardEndT crossing, all of which are precomputed wake
 *    targets (see Engine in batch_runner.cc for the equivalence
 *    argument).
 *
 * Every lane's result -- counters, ledger, rail recording,
 * conservation audit, and the CRC-32 stateDigest -- is bit-identical
 * to runExperiment() running that cell alone: the physics kernel
 * replays the exact scalar operation sequence, the span table replays
 * the exact per-step trace/converter arithmetic, and the control plane
 * replicates runExperiment's loop order statement for statement.
 * Cells that finish early are frozen in place until their lane
 * refills, so batch composition, batch size, ragged tails, and refill
 * order provably do not affect any cell's numbers
 * (tests/test_batch_stepper.cc holds the proof).
 *
 * Admissibility: the lane engine covers the classic exact-stepping
 * configuration -- a StaticBuffer, fast path off, no checkpointing, no
 * simulated crash.  Fault plans *are* admissible (each lane owns its
 * injector, and the aging phase runs scalar per lane).  Anything else
 * falls back to runExperiment, which remains the semantics reference.
 */

#ifndef REACT_HARNESS_BATCH_RUNNER_HH
#define REACT_HARNESS_BATCH_RUNNER_HH

#include "buffers/static_buffer.hh"
#include "harness/experiment.hh"
#include "sim/batch_stepper.hh"

namespace react {
namespace harness {

/** One cell of a lockstep batch (all pointers non-owning; benchmark may
 *  be null, as in runExperiment). */
struct BatchCell
{
    buffer::StaticBuffer *buffer = nullptr;
    workload::Benchmark *benchmark = nullptr;
    const harvest::HarvesterFrontend *frontend = nullptr;
    ExperimentResult *result = nullptr;
};

/**
 * Can this buffer/config pair run on the lane engine bit-identically?
 * False for non-static buffers, an effective fast-path mode other than
 * Off, any checkpoint/resume involvement, or a simulated crash.
 */
bool batchAdmissible(const buffer::EnergyBuffer &buffer,
                     const ExperimentConfig &config);

/**
 * Optional per-phase wall-time breakdown of one batch run -- the
 * Amdahl split bench/hot_loop.cc --json reports.  The phase clock is
 * the TSC where available (cheap enough to read per phase boundary
 * without distorting the split), converted to nanoseconds against a
 * steady_clock calibration pair bracketing the run; refill admissions
 * fall outside the phase windows, so the four totals cover
 * steady-state stepping only.  The control flow is identical either
 * way -- instrumentation only adds the per-iteration clock reads --
 * but gated perf numbers still run uninstrumented (stats == nullptr
 * reads no clocks at all).
 */
struct BatchPhaseStats
{
    /** Pre-physics control plane: span sweep, gate lane masks,
     *  injector filtering, load refresh, aging resync. */
    uint64_t frontendNs = 0;
    /** The vectorized physics step (sim::BatchStepper::step). */
    uint64_t physicsNs = 0;
    /** Post-physics workload section: on-time accounting and
     *  benchmark ticks. */
    uint64_t workloadNs = 0;
    /** Rail recording, exit checks, and lane finalization. */
    uint64_t bookkeepingNs = 0;
    /** Step-loop iterations timed. */
    uint64_t steps = 0;
};

/**
 * Stream @p count admissible cells through the lockstep lane engine,
 * in array order, refilling lanes as cells finish.  Each cell's
 * *result receives exactly what runExperiment(buffer, benchmark,
 * frontend, config) would have produced.
 *
 * @param cells Cell array; every entry must satisfy batchAdmissible.
 * @param count Number of cells (>= 1; any size -- cells beyond the
 *        first kMaxLanes queue for lane refill).
 * @param config Shared runner options (grid sweeps share one config).
 * @param kernel Scalar, Avx2, or Avx512 (typically
 *        sim::simd::selectedKernel()).
 * @param stats Optional phase-timing sink; null (the default and the
 *        perf-run configuration) reads no clocks at all.
 */
void runExperimentBatch(const BatchCell *cells, int count,
                        const ExperimentConfig &config,
                        sim::simd::Kernel kernel,
                        BatchPhaseStats *stats = nullptr);

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_BATCH_RUNNER_HH
