/**
 * @file
 * Lockstep experiment driver for the batch-of-cells lane engine.
 *
 * runExperimentBatch advances up to sim::BatchStepper::kMaxLanes
 * independent static-buffer experiments together: per step, the scalar
 * control plane (power gate, device, benchmark hooks, fault injector,
 * trace lookup, exit checks) runs per lane in admission order, and the
 * four physics phases run vectorized across all lanes at once.  Every
 * lane's result -- counters, ledger, rail recording, conservation
 * audit, and the CRC-32 stateDigest -- is bit-identical to
 * runExperiment() running that cell alone: the physics kernel replays
 * the exact scalar operation sequence (see sim/batch_stepper.hh), and
 * the control plane replicates runExperiment's loop order statement for
 * statement.  Cells that finish early are frozen in place, so batch
 * composition, batch size, and ragged tails provably do not affect any
 * cell's numbers (tests/test_batch_stepper.cc holds the proof).
 *
 * Admissibility: the lane engine covers the classic exact-stepping
 * configuration -- a StaticBuffer, fast path off, no checkpointing, no
 * simulated crash.  Fault plans *are* admissible (each lane owns its
 * injector, and the aging phase runs scalar per lane).  Anything else
 * falls back to runExperiment, which remains the semantics reference.
 */

#ifndef REACT_HARNESS_BATCH_RUNNER_HH
#define REACT_HARNESS_BATCH_RUNNER_HH

#include "buffers/static_buffer.hh"
#include "harness/experiment.hh"
#include "sim/batch_stepper.hh"

namespace react {
namespace harness {

/** One cell of a lockstep batch (all pointers non-owning; benchmark may
 *  be null, as in runExperiment). */
struct BatchCell
{
    buffer::StaticBuffer *buffer = nullptr;
    workload::Benchmark *benchmark = nullptr;
    const harvest::HarvesterFrontend *frontend = nullptr;
    ExperimentResult *result = nullptr;
};

/**
 * Can this buffer/config pair run on the lane engine bit-identically?
 * False for non-static buffers, an effective fast-path mode other than
 * Off, any checkpoint/resume involvement, or a simulated crash.
 */
bool batchAdmissible(const buffer::EnergyBuffer &buffer,
                     const ExperimentConfig &config);

/**
 * Run up to sim::BatchStepper::kMaxLanes admissible cells in lockstep.
 * Each cell's *result receives exactly what runExperiment(buffer,
 * benchmark, frontend, config) would have produced.
 *
 * @param cells Cell array; every entry must satisfy batchAdmissible.
 * @param count Number of cells (1 .. kMaxLanes).
 * @param config Shared runner options (grid sweeps share one config).
 * @param kernel Scalar or Avx2 (typically sim::simd::selectedKernel()).
 */
void runExperimentBatch(const BatchCell *cells, int count,
                        const ExperimentConfig &config,
                        sim::simd::Kernel kernel);

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_BATCH_RUNNER_HH
