#include "batch_runner.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "harness/paper_setup.hh"
#include "snapshot/snapshot.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace react {
namespace harness {

namespace {

/** Per-lane control-plane state (everything runExperiment keeps in
 *  locals, one copy per cell). */
struct Lane
{
    Lane(const BatchCell &cell, const ExperimentConfig &config)
        : buffer(cell.buffer), benchmark(cell.benchmark),
          frontend(cell.frontend), result(cell.result),
          device(backendSpec()),
          gate(units::Volts(config.enableVoltage),
               units::Volts(config.brownoutVoltage))
    {
    }

    buffer::StaticBuffer *buffer;
    workload::Benchmark *benchmark;
    const harvest::HarvesterFrontend *frontend;
    ExperimentResult *result;
    mcu::Device device;
    sim::PowerGate gate;
    std::unique_ptr<sim::FaultInjector> injector;
    workload::BenchContext ctx;
    double storedStart = 0.0;
    double traceDuration = 0.0;
    double t = 0.0;
    double offStreak = 0.0;
    double nextRecord = 0.0;
    bool aging = false;
    bool done = false;
};

/** The lane voltage is the compute truth while a cell is batched; sync
 *  it into the buffer object before anything can observe the buffer
 *  (benchmark hooks, aging, finalization). */
inline void
syncLaneVoltage(Lane &lane, const sim::BatchStepper &stepper, int index)
{
    lane.buffer->laneCapacitor().setVoltage(
        units::Volts(stepper.voltage(index)));
}

/** runExperiment's finalization tail, statement for statement. */
void
finalizeLane(Lane &lane, sim::BatchStepper &stepper, int index,
             const ExperimentConfig &config)
{
    ExperimentResult &result = *lane.result;
    result.totalTime = lane.t;
    result.powerCycles = lane.device.powerCycles();
    if (lane.benchmark) {
        result.workUnits = lane.benchmark->workUnits();
        result.packetsRx = lane.benchmark->packetsReceived();
        result.packetsTx = lane.benchmark->packetsSent();
        result.failedOps = lane.benchmark->failedOperations();
        result.missedEvents = lane.benchmark->missedEvents();
    }

    // Write the lane physics state back: voltage, then the four ledger
    // accumulators the kernel carried (faultLoss accrued directly on
    // the buffer's ledger via laneStepAging; the rest were never
    // touched, exactly as in per-cell stepping).
    syncLaneVoltage(lane, stepper, index);
    sim::EnergyLedger &ledger = lane.buffer->laneLedger();
    ledger.leaked = units::Joules(stepper.leaked(index));
    ledger.harvested = units::Joules(stepper.harvested(index));
    ledger.delivered = units::Joules(stepper.delivered(index));
    ledger.clipped = units::Joules(stepper.clipped(index));

    result.ledger = lane.buffer->ledger();
    result.residualEnergy = lane.buffer->storedEnergy().raw();

    result.conservationError =
        result.ledger
            .conservationError(units::Joules(result.residualEnergy -
                                             lane.storedStart))
            .raw();
    const double tolerance =
        1e-9 * std::max(1.0, result.ledger.harvested.raw());
    if (std::abs(result.conservationError) > tolerance) {
        if (config.strictConservation) {
            react_panic("energy ledger violated conservation: error %.3e J "
                        "(harvested %.3e J, tolerance %.3e J)",
                        result.conservationError,
                        result.ledger.harvested.raw(), tolerance);
        }
        react_warn("energy ledger conservation error %.3e J exceeds "
                   "tolerance %.3e J (%s / %s / %s)",
                   result.conservationError, tolerance,
                   result.bufferName.c_str(),
                   result.benchmarkName.c_str(),
                   result.traceName.c_str());
    }

    if (lane.injector) {
        result.faultEvents = lane.injector->faultCount();
        result.recoveryEvents = lane.injector->recoveryCount();
        result.banksRetired = static_cast<int>(
            lane.injector->eventCount(sim::FaultEventKind::BankRetired));
        result.framRecoveries = static_cast<int>(
            lane.injector->eventCount(sim::FaultEventKind::FramRecovery));
        result.faultLog = lane.injector->events();
    }

    {
        snapshot::SnapshotWriter dw;
        dw.beginSection("digest");
        lane.gate.save(dw);
        lane.device.save(dw);
        lane.buffer->save(dw);
        if (lane.benchmark)
            lane.benchmark->save(dw);
        if (lane.injector)
            lane.injector->save(dw);
        dw.endSection();
        const std::vector<uint8_t> image = dw.finish();
        result.stateDigest = crc32(image.data(), image.size());
    }
    // No finished-checkpoint write: admission requires an empty
    // checkpointPath, where runExperiment skips it too.

    if (lane.injector) {
        lane.buffer->attachFaultInjector(nullptr);
        lane.gate.attachFaultInjector(nullptr);
    }
}

} // namespace

bool
batchAdmissible(const buffer::EnergyBuffer &buffer,
                const ExperimentConfig &config)
{
    if (dynamic_cast<const buffer::StaticBuffer *>(&buffer) == nullptr)
        return false;
    // The quiescent fast path collapses spans per cell; lanes must stay
    // in lockstep.  (Off-mode results are the byte-exact reference.)
    if (resolveFastPath(config.fastPath) != FastPath::Off)
        return false;
    // Checkpoint/resume serializes mid-run state the lane engine holds
    // outside the buffer object, and the crash fuzzer's haltAfterSteps
    // must stop exactly like a power failure -- both stay per-cell.
    if (!config.checkpointPath.empty() || config.resume)
        return false;
    if (config.haltAfterSteps > 0)
        return false;
    return true;
}

void
runExperimentBatch(const BatchCell *cells, int count,
                   const ExperimentConfig &config, sim::simd::Kernel kernel)
{
    react_assert(count >= 1 && count <= sim::BatchStepper::kMaxLanes,
                 "batch size %d outside 1..%d", count,
                 sim::BatchStepper::kMaxLanes);

    std::vector<Lane> lanes;
    lanes.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const BatchCell &cell = cells[i];
        react_assert(cell.buffer != nullptr && cell.frontend != nullptr &&
                         cell.result != nullptr,
                     "batch cell %d is missing a component", i);
        react_assert(batchAdmissible(*cell.buffer, config),
                     "batch cell %d is not lane-engine admissible", i);
        lanes.emplace_back(cell, config);
    }

    // Per-lane setup, mirroring runExperiment's preamble.
    for (Lane &lane : lanes) {
        lane.buffer->reset();
        if (lane.benchmark)
            lane.benchmark->reset();
        if (config.faultPlan.enabled()) {
            lane.injector = std::make_unique<sim::FaultInjector>(
                config.faultPlan, config.faultSeed);
            lane.buffer->attachFaultInjector(lane.injector.get());
            lane.gate.attachFaultInjector(lane.injector.get());
        }
        lane.storedStart = lane.buffer->storedEnergy().raw();

        *lane.result = ExperimentResult();
        lane.result->bufferName = lane.buffer->name();
        lane.result->benchmarkName =
            lane.benchmark ? lane.benchmark->name() : "(none)";
        lane.result->traceName = lane.frontend->trace().name();

        lane.traceDuration = lane.frontend->traceDuration().raw();
        lane.ctx.device = &lane.device;
        lane.ctx.buffer = lane.buffer;
        lane.ctx.workScale =
            1.0 - lane.buffer->softwareOverheadFraction();
        lane.aging = lane.buffer->laneAgingEnabled();
    }

    // Batch admission: transpose per-cell state into the lane arrays.
    sim::BatchStepper stepper(kernel, config.dt);
    for (Lane &lane : lanes) {
        const sim::Capacitor &cap = lane.buffer->laneCapacitor();
        sim::BatchLaneInit init;
        init.voltage = cap.voltage().raw();
        init.capacitance = cap.capacitance().raw();
        init.clamp = lane.buffer->railClamp().raw();
        init.leakDecay = cap.leakDecayFor(units::Seconds(config.dt));
        const sim::EnergyLedger &ledger = lane.buffer->ledger();
        init.leaked = ledger.leaked.raw();
        init.harvested = ledger.harvested.raw();
        init.delivered = ledger.delivered.raw();
        init.clipped = ledger.clipped.raw();
        stepper.addLane(init);
    }

    int active = count;
    while (active > 0) {
        // Control plane, pre-physics: runExperiment's loop head per
        // lane -- advance time, latch the gate on the previous step's
        // rail, look up the harvest input, advance the injector.
        for (int i = 0; i < count; ++i) {
            Lane &lane = lanes[static_cast<size_t>(i)];
            if (lane.done)
                continue;
            lane.t += config.dt;
            ++lane.result->steps;

            if (lane.gate.update(units::Volts(stepper.voltage(i)))) {
                // Hooks may observe the buffer; give it the lane rail.
                syncLaneVoltage(lane, stepper, i);
                lane.ctx.now = lane.t;
                lane.ctx.dt = config.dt;
                if (lane.gate.isOn()) {
                    if (lane.result->latency < 0.0)
                        lane.result->latency = lane.t;
                    lane.device.setState(mcu::PowerState::Active);
                    lane.buffer->notifyBackendPower(true);
                    if (lane.benchmark)
                        lane.benchmark->onPowerUp(lane.ctx);
                } else {
                    if (lane.benchmark)
                        lane.benchmark->onPowerDown(lane.ctx);
                    lane.device.setState(mcu::PowerState::Off);
                    lane.buffer->notifyBackendPower(false);
                }
            }

            units::Watts input_power =
                lane.frontend->power(units::Seconds(lane.t));
            if (lane.injector) {
                lane.injector->advance(units::Seconds(config.dt));
                input_power = lane.injector->filterHarvest(input_power);
            }
            stepper.setHarvestPower(i, input_power.raw());
            stepper.setLoadCurrent(i, lane.device.current());

            // Step phase 0 (dielectric aging) runs scalar on the cell's
            // own capacitor, then the lane constants resync.
            if (lane.aging) {
                syncLaneVoltage(lane, stepper, i);
                lane.buffer->laneStepAging(units::Seconds(config.dt));
                const sim::Capacitor &cap = lane.buffer->laneCapacitor();
                stepper.setLaneCapacitance(
                    i, cap.capacitance().raw(),
                    cap.leakDecayFor(units::Seconds(config.dt)));
            }
        }

        // Physics: phases 1-4 for every lane at once.
        stepper.step();

        // Control plane, post-physics: benchmark tick, rail recording,
        // and the exit checks, in runExperiment's exact order.
        for (int i = 0; i < count; ++i) {
            Lane &lane = lanes[static_cast<size_t>(i)];
            if (lane.done)
                continue;

            if (lane.gate.isOn()) {
                lane.result->onTime += config.dt;
                lane.offStreak = 0.0;
                if (lane.benchmark) {
                    syncLaneVoltage(lane, stepper, i);
                    lane.ctx.now = lane.t;
                    lane.ctx.dt = config.dt;
                    lane.benchmark->tick(lane.ctx);
                } else {
                    lane.device.setState(mcu::PowerState::Active);
                }
            } else {
                lane.offStreak += config.dt;
            }

            if (config.recordRail && lane.t >= lane.nextRecord) {
                lane.nextRecord += config.recordInterval;
                lane.result->rail.push_back(
                    {lane.t, stepper.voltage(i), lane.gate.isOn(),
                     lane.buffer->capacitanceLevel()});
            }

            bool finished = false;
            if (config.stopAfterLatency && lane.result->latency >= 0.0)
                finished = true;
            else if (lane.t >= lane.traceDuration &&
                     (lane.offStreak >= config.settleTime ||
                      lane.t >=
                          lane.traceDuration + config.drainAllowance))
                finished = true;

            if (finished) {
                finalizeLane(lane, stepper, i, config);
                stepper.freezeLane(i);
                lane.done = true;
                --active;
            }
        }
    }
}

} // namespace harness
} // namespace react
