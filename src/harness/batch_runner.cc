#include "batch_runner.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "harness/paper_setup.hh"
#include "snapshot/snapshot.hh"
#include "util/crc32.hh"
#include "util/determinism.hh"
#include "util/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace react {
namespace harness {

namespace {

constexpr int kLanes = sim::BatchStepper::kMaxLanes;

/**
 * Phase-clock read for BatchPhaseStats: the TSC where available, so an
 * instrumented run pays a few ns per phase boundary instead of the
 * ~25 ns a steady_clock read costs (four reads per step at 25 ns each
 * used to flatten the reported split toward uniform).  Ticks are
 * converted to nanoseconds once per run against a steady_clock pair
 * bracketing the whole loop (see Engine::run).
 */
inline uint64_t
phaseTicks()
{
#if defined(__x86_64__) || defined(__i386__)
    REACT_NONDET_OK("rdtsc feeds phase-timing telemetry only, never lane results");
    return __rdtsc();
#else
    REACT_NONDET_OK("steady_clock feeds phase-timing telemetry only, never lane results");
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(t.count());
#endif
}

/** Wall-clock read anchoring the tick calibration (instrumented runs
 *  only). */
inline uint64_t
wallNowNs()
{
    REACT_NONDET_OK("steady_clock calibrates phase-tick telemetry only, never lane results");
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

/** Per-lane control-plane state runExperiment keeps in locals, one
 *  copy per cell -- the *cold* part: objects and event state the hot
 *  loop only touches when something happens (a tick, a gate flip, a
 *  span roll).  Per-step scalars live in Engine::Hot instead. */
struct Lane
{
    Lane(const BatchCell &cell, const ExperimentConfig &config)
        : buffer(cell.buffer), benchmark(cell.benchmark),
          frontend(cell.frontend), result(cell.result),
          device(backendSpec()),
          gate(units::Volts(config.enableVoltage),
               units::Volts(config.brownoutVoltage))
    {
    }

    buffer::StaticBuffer *buffer;
    workload::Benchmark *benchmark;
    const harvest::HarvesterFrontend *frontend;
    ExperimentResult *result;
    mcu::Device device;
    sim::PowerGate gate;
    std::unique_ptr<sim::FaultInjector> injector;
    workload::BenchContext ctx;
    /** Precompiled per-step at-buffer power (admission-time; the hot
     *  loop sweeps it linearly, no per-step trace/converter work). */
    std::vector<trace::StepSpan> spans;
    size_t spanIdx = 0;
    /** The current span's power, the injector filter's input. */
    double spanPower = 0.0;
    double storedStart = 0.0;
    double nextRecord = 0.0;
};

/** The lane voltage is the compute truth while a cell is batched; sync
 *  it into the buffer object before anything can observe the buffer
 *  (benchmark hooks, aging, finalization). */
inline void
syncLaneVoltage(Lane &lane, const sim::BatchStepper &stepper, int slot)
{
    lane.buffer->laneCapacitor().setVoltage(
        units::Volts(stepper.voltage(slot)));
}

/** runExperiment's finalization tail, statement for statement. */
void
finalizeLane(Lane &lane, sim::BatchStepper &stepper, int slot,
             const ExperimentConfig &config, double t, uint64_t steps)
{
    ExperimentResult &result = *lane.result;
    result.totalTime = t;
    result.steps = steps;
    result.powerCycles = lane.device.powerCycles();
    if (lane.benchmark) {
        result.workUnits = lane.benchmark->workUnits();
        result.packetsRx = lane.benchmark->packetsReceived();
        result.packetsTx = lane.benchmark->packetsSent();
        result.failedOps = lane.benchmark->failedOperations();
        result.missedEvents = lane.benchmark->missedEvents();
    }

    // Write the lane physics state back: voltage, then the four ledger
    // accumulators the kernel carried (faultLoss accrued directly on
    // the buffer's ledger via laneStepAging; the rest were never
    // touched, exactly as in per-cell stepping).
    syncLaneVoltage(lane, stepper, slot);
    sim::EnergyLedger &ledger = lane.buffer->laneLedger();
    ledger.leaked = units::Joules(stepper.leaked(slot));
    ledger.harvested = units::Joules(stepper.harvested(slot));
    ledger.delivered = units::Joules(stepper.delivered(slot));
    ledger.clipped = units::Joules(stepper.clipped(slot));

    result.ledger = lane.buffer->ledger();
    result.residualEnergy = lane.buffer->storedEnergy().raw();

    result.conservationError =
        result.ledger
            .conservationError(units::Joules(result.residualEnergy -
                                             lane.storedStart))
            .raw();
    const double tolerance =
        1e-9 * std::max(1.0, result.ledger.harvested.raw());
    if (std::abs(result.conservationError) > tolerance) {
        if (config.strictConservation) {
            react_panic("energy ledger violated conservation: error %.3e J "
                        "(harvested %.3e J, tolerance %.3e J)",
                        result.conservationError,
                        result.ledger.harvested.raw(), tolerance);
        }
        react_warn("energy ledger conservation error %.3e J exceeds "
                   "tolerance %.3e J (%s / %s / %s)",
                   result.conservationError, tolerance,
                   result.bufferName.c_str(),
                   result.benchmarkName.c_str(),
                   result.traceName.c_str());
    }

    if (lane.injector) {
        result.faultEvents = lane.injector->faultCount();
        result.recoveryEvents = lane.injector->recoveryCount();
        result.banksRetired = static_cast<int>(
            lane.injector->eventCount(sim::FaultEventKind::BankRetired));
        result.framRecoveries = static_cast<int>(
            lane.injector->eventCount(sim::FaultEventKind::FramRecovery));
        result.faultLog = lane.injector->events();
    }

    {
        snapshot::SnapshotWriter dw;
        dw.beginSection("digest");
        lane.gate.save(dw);
        lane.device.save(dw);
        lane.buffer->save(dw);
        if (lane.benchmark)
            lane.benchmark->save(dw);
        if (lane.injector)
            lane.injector->save(dw);
        dw.endSection();
        const std::vector<uint8_t> image = dw.finish();
        result.stateDigest = crc32(image.data(), image.size());
    }
    // No finished-checkpoint write: admission requires an empty
    // checkpointPath, where runExperiment skips it too.

    if (lane.injector) {
        lane.buffer->attachFaultInjector(nullptr);
        lane.gate.attachFaultInjector(nullptr);
    }
}

/**
 * The streaming lane scheduler.  Cells are admitted in array order
 * into kLanes lockstep slots; a finished cell's slot immediately
 * refills with the next queued cell, so all lanes stay busy until the
 * queue drains.
 *
 * The control plane is *event-driven*: a lane that is gate-off with no
 * injector, no aging, and no rail recording has nothing to do until
 * its next control event, and those events are all predictable or
 * detectable in O(1) per step without touching the lane --
 *
 *  - gate threshold crossings come out of the lane bank's vector
 *    compare (transitionMask) whether the lane is serviced or not;
 *  - the span roll, the settle-exit step, and the endT/hardEndT
 *    crossings are precomputed as one integer step target
 *    (hot.wakeStep) plus one float time arm (hot.armT) per lane;
 *  - the off-streak itself needs no accumulator: dt is shared, so
 *    "offStreak >= settleTime" is equivalent to "consecutive off
 *    steps >= settleSteps" with settleSteps replaying runExperiment's
 *    exact dt-accumulation once per run (monotone, so the integer
 *    threshold crosses on exactly the same step).
 *
 * Sleeping lanes therefore cost two SoA compares per step in the wake
 * scan (and one shared clock advance); only awake lanes run the
 * workload / exit / control-head sequence.  Waking a lane early is
 * always harmless -- a serviced lane with nothing due performs no
 * state change and re-arms -- so the wake targets only need to be
 * conservative lower bounds, never exact.
 *
 * Gate-on lanes never sleep (the benchmark ticks every on-step, and
 * on-time accounting replays runExperiment's per-step accumulation),
 * nor do injector, aging, or rail-recording lanes (per-step
 * randomness, per-step capacitance drift, per-step sampling).
 *
 * Physics always advances every lane (sleep elides control work
 * only); when at most two cells remain live the full-width vector
 * step gives way to per-lane scalar stepping, which is bit-identical
 * because a frozen lane's step is a bitwise no-op
 * (BatchStepper::stepLane).
 */
class Engine
{
  public:
    Engine(const BatchCell *cells_, int count_,
           const ExperimentConfig &config_, sim::simd::Kernel kernel)
        : cells(cells_), count(count_), config(config_),
          stepper(kernel, config_.dt)
    {
        // runExperiment accumulates the settle off-streak as repeated
        // "+= dt" from 0.0 and compares >= settleTime.  The partial
        // sums are strictly increasing until floating-point plateau,
        // so the compare first holds on a fixed step count -- replay
        // the accumulation once to find it.  A plateau below the
        // threshold means the scalar loop can never satisfy the
        // compare (the lane then exits via hardEndT, same as classic).
        double acc = 0.0;
        while (acc < config.settleTime) {
            const double next = acc + config.dt;
            if (next == acc) {
                settleSteps = UINT64_MAX;
                break;
            }
            acc = next;
            ++settleSteps;
        }
        recordAllMask =
            config.recordRail ? static_cast<uint8_t>(0xFF) : 0;
        // Unoccupied slots must never pull the global next-wake point
        // down (their clocks advance as garbage).
        for (int s = 0; s < kLanes; ++s)
            hot.wakeStep[s] = UINT64_MAX;
    }

    void run(BatchPhaseStats *stats);

  private:
    /** Per-step-hot per-lane scalars, one cache line per field. */
    struct Hot
    {
        /** Simulation time of the lane's current step. */
        alignas(64) double t[kLanes] = {};
        /** Float exit arm: endT until crossed, then hardEndT -- the
         *  time at which the corresponding classic exit-disjunct can
         *  first hold.  svcPre folds the remaining distance into
         *  wakeStep as a conservative integer bound. */
        alignas(64) double armT[kLanes] = {};
        /** Gate-on time accumulator (copied to result->onTime at
         *  retirement; same add sequence, different home). */
        alignas(64) double onTime[kLanes] = {};
        /** Trace end: the exit checks arm past this time. */
        alignas(64) double endT[kLanes] = {};
        /** Trace end plus drain allowance: the hard exit. */
        alignas(64) double hardEndT[kLanes] = {};
        /** Lane step counter (mirrors runExperiment's). */
        alignas(64) uint64_t steps[kLanes] = {};
        /** Integer wake target: the scan fires when steps reaches it
         *  (min of span-roll-minus-one, the pending settle-exit step,
         *  and the conservative armT-crossing bound). */
        alignas(64) uint64_t wakeStep[kLanes] = {};
        /** The step whose control head rolls to the next power span
         *  (UINT64_MAX on a trace's open tail). */
        alignas(64) uint64_t rollStep[kLanes] = {};
        /** Step counter value of the lane's most recent gate-on step
         *  (0 until first power-up): steps - lastOnStep is the
         *  consecutive-off count the settle exit compares. */
        alignas(64) uint64_t lastOnStep[kLanes] = {};
    };

    void admit(int slot);
    void retire(Lane &lane, int slot);
    void refill();
    /** Post-physics workload work for one awake lane: on-time
     *  accounting and the benchmark tick, in runExperiment's exact
     *  order.  (Off lanes accumulate nothing -- their off-streak is
     *  implicit in steps - lastOnStep.) */
    void svcWorkload(int s);
    /** Rail recording plus runExperiment's exit checks (recording
     *  precedes the exits, so a finishing step's sample is captured).
     *  Returns true when the lane's experiment is over. */
    bool svcBookkeeping(int s);
    /** runExperiment's loop head for one lane, for the step at
     *  hot.t[s]: latch the gate (one precomputed compare pair per
     *  mirrored lane via @p flips), roll the power span when due,
     *  advance the injector, run dielectric aging -- then re-arm the
     *  lane's wake targets.  Load re-queries are deferred to
     *  flushLoads (lanes are independent, so querying a lane's
     *  settled device after its batch mates' control work reads the
     *  same value). */
    void svcPre(int s, uint8_t flips);
    /** Re-query the backend load of every lane marked dirty (gate
     *  transitions and benchmark ticks -- the only places device state
     *  or peripheral loads can change). */
    void flushLoads();

    const BatchCell *cells;
    const int count;
    const ExperimentConfig &config;
    sim::BatchStepper stepper;
    sim::GateLaneBank bank;
    std::array<std::optional<Lane>, kLanes> slots;
    Hot hot;
    /** Steps that make runExperiment's off-streak reach settleTime. */
    uint64_t settleSteps = 0;
    /** 0xFF when rail recording keeps every lane awake. */
    uint8_t recordAllMask = 0;
    /** Slots holding a running lane. */
    uint8_t occupied = 0;
    /** Lanes owning a fault injector (per-step authoritative gate +
     *  harvest filtering; never mirrored in the bank). */
    uint8_t injectorMask = 0;
    /** Lanes with a benchmark attached. */
    uint8_t benchMask = 0;
    /** Benchmark lanes whose tick() observes the buffer
     *  (Benchmark::tickObservesBuffer): only these need the lane
     *  voltage synced into the buffer object before every tick. */
    uint8_t tickSyncMask = 0;
    /** Lanes with dielectric aging enabled (scalar phase 0). */
    uint8_t agingMask = 0;
    /** Lanes whose load current must be re-queried before the next
     *  physics step. */
    uint8_t dirtyMask = 0;
    int nextCell = 0;
    int active = 0;
};

void
Engine::admit(int slot)
{
    const BatchCell &cell = cells[nextCell];
    react_assert(cell.buffer != nullptr && cell.frontend != nullptr &&
                     cell.result != nullptr,
                 "batch cell %d is missing a component", nextCell);
    react_assert(batchAdmissible(*cell.buffer, config),
                 "batch cell %d is not lane-engine admissible", nextCell);
    ++nextCell;
    slots[static_cast<size_t>(slot)].emplace(cell, config);
    Lane &lane = *slots[static_cast<size_t>(slot)];
    const uint8_t bit = static_cast<uint8_t>(1u << slot);

    // runExperiment's preamble.
    lane.buffer->reset();
    if (lane.benchmark)
        lane.benchmark->reset();
    if (config.faultPlan.enabled()) {
        lane.injector = std::make_unique<sim::FaultInjector>(
            config.faultPlan, config.faultSeed);
        lane.buffer->attachFaultInjector(lane.injector.get());
        lane.gate.attachFaultInjector(lane.injector.get());
    }
    lane.storedStart = lane.buffer->storedEnergy().raw();

    *lane.result = ExperimentResult();
    lane.result->bufferName = lane.buffer->name();
    lane.result->benchmarkName =
        lane.benchmark ? lane.benchmark->name() : "(none)";
    lane.result->traceName = lane.frontend->trace().name();

    lane.ctx.device = &lane.device;
    lane.ctx.buffer = lane.buffer;
    lane.ctx.dt = config.dt;
    lane.ctx.workScale = 1.0 - lane.buffer->softwareOverheadFraction();

    // Transpose the cell's physics state into the lane arrays and
    // mirror its (freshly reset, off) gate into the lane bank.
    const sim::Capacitor &cap = lane.buffer->laneCapacitor();
    sim::BatchLaneInit init;
    init.voltage = cap.voltage().raw();
    init.capacitance = cap.capacitance().raw();
    init.clamp = lane.buffer->railClamp().raw();
    init.leakDecay = cap.leakDecayFor(units::Seconds(config.dt));
    const sim::EnergyLedger &ledger = lane.buffer->ledger();
    init.leaked = ledger.leaked.raw();
    init.harvested = ledger.harvested.raw();
    init.delivered = ledger.delivered.raw();
    init.clipped = ledger.clipped.raw();
    stepper.reinitLane(slot, init);

    bank.vEnable[slot] = config.enableVoltage;
    bank.vBrownout[slot] = config.brownoutVoltage;
    bank.onMask &= static_cast<uint8_t>(~bit);
    occupied |= bit;
    if (lane.injector) {
        injectorMask |= bit;
        bank.liveMask &= static_cast<uint8_t>(~bit);
    } else {
        injectorMask &= static_cast<uint8_t>(~bit);
        bank.liveMask |= bit;
    }
    if (lane.benchmark)
        benchMask |= bit;
    else
        benchMask &= static_cast<uint8_t>(~bit);
    if (lane.benchmark && lane.benchmark->tickObservesBuffer())
        tickSyncMask |= bit;
    else
        tickSyncMask &= static_cast<uint8_t>(~bit);
    if (lane.buffer->laneAgingEnabled())
        agingMask |= bit;
    else
        agingMask &= static_cast<uint8_t>(~bit);

    // Precompile the frontend into power spans (the per-step trace
    // index arithmetic and converter evaluation happen here, once per
    // distinct sample run, instead of once per step).
    lane.frontend->compileStepSpans(config.dt, lane.spans);
    lane.spanIdx = 0;
    lane.spanPower = lane.spans[0].watts;
    hot.rollStep[slot] = lane.spans[0].steps == trace::StepSpan::kOpenEnded
        ? UINT64_MAX
        : 1 + lane.spans[0].steps;
    if (!lane.injector)
        stepper.setHarvestPower(slot, lane.spanPower);

    const double duration = lane.frontend->traceDuration().raw();
    hot.t[slot] = config.dt;
    hot.onTime[slot] = 0.0;
    hot.endT[slot] = duration;
    hot.hardEndT[slot] = duration + config.drainAllowance;
    hot.armT[slot] = duration;
    hot.steps[slot] = 1;
    hot.lastOnStep[slot] = 0;
    lane.nextRecord = 0.0;

    // First-step control head (the classic loop head at t = dt) --
    // svcPre also computes the initial wake targets -- then the
    // initial load query.
    svcPre(slot, bank.transitionMask(stepper.voltages()));
    dirtyMask |= bit;
    flushLoads();
    ++active;
}

void
Engine::retire(Lane &lane, int slot)
{
    lane.result->onTime = hot.onTime[slot];
    finalizeLane(lane, stepper, slot, config, hot.t[slot],
                 hot.steps[slot]);
    stepper.freezeLane(slot);
    hot.wakeStep[slot] = UINT64_MAX;
    const uint8_t bit = static_cast<uint8_t>(1u << slot);
    bank.liveMask &= static_cast<uint8_t>(~bit);
    occupied &= static_cast<uint8_t>(~bit);
    dirtyMask &= static_cast<uint8_t>(~bit);
    slots[static_cast<size_t>(slot)].reset();
    --active;
}

void
Engine::refill()
{
    // A retired lane re-admits the next queued cell between physics
    // steps, so a fresh lane's first step is the next stepper.step(),
    // exactly like a cell starting alone.
    if (nextCell >= count || active >= kLanes)
        return;
    for (int s = 0; s < kLanes && nextCell < count; ++s) {
        if (!(occupied & (1u << s)))
            admit(s);
    }
}

inline void
Engine::svcWorkload(int s)
{
    const uint8_t bit = static_cast<uint8_t>(1u << s);
    const bool on = (injectorMask & bit) != 0 ? slots[s]->gate.isOn()
                                              : bank.isOn(s);
    if (on) {
        hot.onTime[s] += config.dt;
        hot.lastOnStep[s] = hot.steps[s];
        if ((benchMask & bit) != 0) {
            Lane &lane = *slots[s];
            if ((tickSyncMask & bit) != 0)
                syncLaneVoltage(lane, stepper, s);
            lane.ctx.now = hot.t[s];
            lane.benchmark->tick(lane.ctx);
            dirtyMask |= bit;
        } else {
            slots[s]->device.setState(mcu::PowerState::Active);
        }
    }
}

inline bool
Engine::svcBookkeeping(int s)
{
    if (config.recordRail) {
        Lane &lane = *slots[s];
        if (hot.t[s] >= lane.nextRecord) {
            lane.nextRecord += config.recordInterval;
            const uint8_t bit = static_cast<uint8_t>(1u << s);
            const bool on = (injectorMask & bit) != 0
                ? lane.gate.isOn()
                : bank.isOn(s);
            lane.result->rail.push_back({hot.t[s], stepper.voltage(s), on,
                                         lane.buffer->capacitanceLevel()});
        }
    }

    if (config.stopAfterLatency && slots[s]->result->latency >= 0.0)
        return true;
    if (hot.t[s] >= hot.endT[s]) {
        // The classic exit: past the trace end, leave once the gate
        // has been off settleTime (== settleSteps consecutive off
        // steps) or the drain allowance runs out.
        if (hot.steps[s] - hot.lastOnStep[s] >= settleSteps ||
            hot.t[s] >= hot.hardEndT[s])
            return true;
        // Not exiting yet: the next time-armed wake is the hard end.
        hot.armT[s] = hot.hardEndT[s];
    }
    return false;
}

inline void
Engine::svcPre(int s, uint8_t flips)
{
    const uint8_t bit = static_cast<uint8_t>(1u << s);

    bool changed = false;
    if ((injectorMask & bit) != 0) {
        // Comparator reads consume injector randomness, so the
        // authoritative gate runs every step, as in runExperiment.
        changed = slots[s]->gate.update(units::Volts(stepper.voltage(s)));
    } else if ((flips & bit) != 0) {
        changed = slots[s]->gate.update(units::Volts(stepper.voltage(s)));
        react_assert(changed, "gate bank flagged a transition the "
                              "authoritative gate did not take");
        bank.toggle(bit);
    }
    if (changed) {
        Lane &lane = *slots[s];
        // Hooks may observe the buffer; give it the lane rail.
        syncLaneVoltage(lane, stepper, s);
        lane.ctx.now = hot.t[s];
        if (lane.gate.isOn()) {
            if (lane.result->latency < 0.0)
                lane.result->latency = hot.t[s];
            lane.device.setState(mcu::PowerState::Active);
            lane.buffer->notifyBackendPower(true);
            if (lane.benchmark)
                lane.benchmark->onPowerUp(lane.ctx);
        } else {
            if (lane.benchmark)
                lane.benchmark->onPowerDown(lane.ctx);
            lane.device.setState(mcu::PowerState::Off);
            lane.buffer->notifyBackendPower(false);
        }
        dirtyMask |= bit;
    }

    // Frontend: the precompiled span sweep replaces the per-step
    // frontend->power call bit for bit (rollStep is the step whose
    // head crosses into the next span, exactly the step the old
    // countdown hit zero on).
    if (hot.steps[s] == hot.rollStep[s]) {
        Lane &lane = *slots[s];
        const trace::StepSpan &sp = lane.spans[++lane.spanIdx];
        lane.spanPower = sp.watts;
        hot.rollStep[s] = sp.steps == trace::StepSpan::kOpenEnded
            ? UINT64_MAX
            : hot.rollStep[s] + sp.steps;
        if ((injectorMask & bit) == 0)
            stepper.setHarvestPower(s, sp.watts);
    }

    if ((injectorMask & bit) != 0) {
        Lane &lane = *slots[s];
        lane.injector->advance(units::Seconds(config.dt));
        stepper.setHarvestPower(
            s, lane.injector->filterHarvest(units::Watts(lane.spanPower))
                   .raw());
    }

    // Step phase 0 (dielectric aging) runs scalar on the cell's own
    // capacitor, then the lane constants resync.
    if ((agingMask & bit) != 0) {
        Lane &lane = *slots[s];
        syncLaneVoltage(lane, stepper, s);
        lane.buffer->laneStepAging(units::Seconds(config.dt));
        const sim::Capacitor &cap = lane.buffer->laneCapacitor();
        stepper.setLaneCapacitance(
            s, cap.capacitance().raw(),
            cap.leakDecayFor(units::Seconds(config.dt)));
    }

    // Re-arm the wake target.  A lane that cannot sleep -- gate on,
    // injector, aging, or rail recording -- is in every step's wake
    // set regardless, so it carries no target (and pays none of the
    // arithmetic below; the off transition that makes it sleepable is
    // itself a serviced step that re-arms it).
    const bool awakeAnyway =
        ((injectorMask | agingMask | recordAllMask) & bit) != 0 ||
        bank.isOn(s);
    if (awakeAnyway) {
        hot.wakeStep[s] = UINT64_MAX;
        return;
    }
    // The wake scan fires on the step before the span roll (so this
    // head runs on the roll step itself), on the pending settle-exit
    // step, and before the armT (endT or hardEndT) crossing.  A
    // settle target already reached is dropped -- the exit it guarded
    // now waits on the armT crossing -- which keeps a
    // settled-but-not-ended lane from waking every step.
    uint64_t w = hot.rollStep[s] - 1;
    if (settleSteps != UINT64_MAX) {
        const uint64_t settleAt = hot.lastOnStep[s] + settleSteps;
        if (settleAt > hot.steps[s])
            w = std::min(w, settleAt);
    }
    // The armT crossing step is not exactly predictable (t is a
    // rounded dt-accumulation), but a safe underestimate is: over m
    // steps t grows by at most m*dt plus the accumulated rounding,
    // which for any plausible run length (< 1e10 steps) is far below
    // one dt total, so waking 16 steps shy of the un-rounded distance
    // can never overshoot the true crossing.  Early wake-ups are
    // harmless: the lane re-arms with a fresh (shrinking) bound and
    // scans every step only inside the final 17-step window.
    const double gap = hot.armT[s] - hot.t[s];
    if (gap > 0.0) {
        const double g = gap / config.dt;
        const uint64_t armSafe = g >= 9e18 ? UINT64_MAX / 2
            : g > 17.0 ? static_cast<uint64_t>(g) - 16
                       : 0;
        w = std::min(w, hot.steps[s] + armSafe);
    } else {
        w = hot.steps[s];
    }
    hot.wakeStep[s] = w;
}

inline void
Engine::flushLoads()
{
    for (uint8_t m = dirtyMask; m != 0; m &= static_cast<uint8_t>(m - 1)) {
        const int s = __builtin_ctz(m);
        stepper.setLoadCurrent(s, slots[s]->device.current());
    }
    dirtyMask = 0;
}

void
Engine::run(BatchPhaseStats *stats)
{
    for (int s = 0; s < kLanes && nextCell < count; ++s)
        admit(s);

    const bool timed = stats != nullptr;
    uint64_t frontendTicks = 0, physicsTicks = 0, workloadTicks = 0,
             bookkeepingTicks = 0, timedSteps = 0;
    const uint64_t wallStart = timed ? wallNowNs() : 0;
    const uint64_t tickStart = timed ? phaseTicks() : 0;

    const double dt = config.dt;
    // Every lane's steps counter advances once per iteration, so the
    // distance to a lane's wake target is fixed between services and
    // the earliest due step over all lanes maps to one absolute
    // iteration number.  Between now and nextWakeIter (exclusive) no
    // integer target can fire, so iterations where nothing else is
    // awake skip the whole service machinery.
    uint64_t iter = 0;
    uint64_t nextWakeIter = 0;
    const auto rearmNextWake = [&]() {
        // Branchless over all slots: sleepless and vacant slots carry
        // UINT64_MAX targets, so their deltas never win the min.
        uint64_t d = UINT64_MAX;
        for (int s = 0; s < kLanes; ++s) {
            const uint64_t delta = hot.wakeStep[s] > hot.steps[s]
                ? hot.wakeStep[s] - hot.steps[s]
                : 0;
            d = std::min(d, delta);
        }
        nextWakeIter = d >= UINT64_MAX - iter ? UINT64_MAX : iter + d;
    };
    rearmNextWake();

    // The steady-state fast pass below services plain powered lanes
    // inline; it bows out whenever any per-step special machinery is in
    // play.  stopAfterLatency is per-step state the pass does not check,
    // and instrumented runs keep the general path so the phase split
    // stays attributable (results are identical either way; only the
    // uninstrumented control flow is specialized).
    const bool canFast = !timed && !config.stopAfterLatency;
    while (active > 0) {
        // Dark-idle burst: with every occupied lane gate-off and the
        // whole batch unpowered and unloaded, each rail can only decay
        // -- an off lane's on-threshold (rail >= vEnable) is therefore
        // unreachable before the next serviced step (had a rail been
        // at or above it, the previous iteration's transition scan
        // would have flipped the lane on), no lane needs per-step
        // special machinery, and no integer wake target fires before
        // nextWakeIter.  Every iteration until then is provably
        // service-free, so run them as a tight physics-plus-clock
        // loop with no transition scan and no wake bookkeeping.
        if (canFast && (bank.onMask & occupied) == 0 &&
            ((injectorMask | agingMask | recordAllMask) & occupied) == 0 &&
            stepper.quiet() && nextWakeIter != UINT64_MAX &&
            iter < nextWakeIter) {
            const uint64_t n = nextWakeIter - iter;
            const bool few = __builtin_popcount(occupied) <= 2;
            const bool lower = (occupied & 0xF0u) == 0;
            for (uint64_t k = 0; k < n; ++k) {
                if (few) {
                    for (uint8_t m = occupied; m != 0;
                         m &= static_cast<uint8_t>(m - 1))
                        stepper.stepLane(__builtin_ctz(m));
                } else if (lower) {
                    stepper.stepLower();
                } else {
                    stepper.step();
                }
                for (int s = 0; s < kLanes; ++s) {
                    hot.t[s] += dt;
                    ++hot.steps[s];
                }
            }
            iter += n;
            continue;
        }

        uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
        if (timed)
            c0 = phaseTicks();

        // Physics: every lane at once.  With at most two cells left
        // live, per-lane scalar stepping of just those lanes replaces
        // the full-width kernel -- bit-identical (a frozen lane's step
        // is a bitwise no-op) and cheaper than running the divider
        // over six no-op lanes.
        if (__builtin_popcount(occupied) <= 2) {
            for (uint8_t m = occupied; m != 0;
                 m &= static_cast<uint8_t>(m - 1))
                stepper.stepLane(__builtin_ctz(m));
        } else if ((occupied & 0xF0u) == 0) {
            // LPT admission keeps the longest cells in the low slots,
            // so ragged tails collapse into the lower half: a 4-wide
            // step halves the divider chain and skips the frozen
            // upper lanes' no-op steps.
            stepper.stepLower();
        } else {
            stepper.step();
        }
        if (timed)
            c1 = phaseTicks();

        const uint8_t flips = bank.transitionMask(stepper.voltages());

        // Steady-state fast pass: with no gate flip, no integer wake
        // due, and no lane needing per-step special machinery
        // (injector randomness, aging drift, rail recording), an
        // awake lane's whole service is on-time accounting, the
        // benchmark tick, the span-roll check, and the load re-query
        // -- the exact statements svcWorkload/svcPre would run, with
        // every branch they would not take pre-resolved.  Such a
        // lane's wakeStep is already parked at UINT64_MAX (it went on
        // through a serviced flip step), so no re-arm work exists
        // either, and sleeping lanes' absolute due point is untouched.
        // The pass bows out to the general path once any lane drains
        // past its trace end (the exit checks then need the full
        // bookkeeping sequence).
        if (canFast && flips == 0 && iter < nextWakeIter &&
            ((injectorMask | agingMask | recordAllMask) & occupied) == 0) {
            const uint8_t on = bank.onMask & occupied;
            bool plain = true;
            for (uint8_t m = on; m != 0; m &= static_cast<uint8_t>(m - 1)) {
                const int s = __builtin_ctz(m);
                plain &= hot.t[s] < hot.endT[s];
            }
            if (plain) {
                // One sweep per on lane: the tick at step k, then step
                // k+1's head inline (the only live piece is the span
                // roll -- compared against steps+1, the post-advance
                // counter), then the load re-query.  Lanes are
                // independent, so running lane A's head before lane
                // B's tick changes nothing, and the shared clock
                // advance below touches nothing a head reads.
                for (uint8_t m = on; m != 0;
                     m &= static_cast<uint8_t>(m - 1)) {
                    const int s = __builtin_ctz(m);
                    hot.onTime[s] += dt;
                    hot.lastOnStep[s] = hot.steps[s];
                    Lane &lane = *slots[s];
                    if ((benchMask & (1u << s)) != 0) {
                        if ((tickSyncMask & (1u << s)) != 0)
                            syncLaneVoltage(lane, stepper, s);
                        lane.ctx.now = hot.t[s];
                        lane.benchmark->tick(lane.ctx);
                    } else {
                        lane.device.setState(mcu::PowerState::Active);
                    }
                    if (hot.steps[s] + 1 == hot.rollStep[s]) {
                        const trace::StepSpan &sp =
                            lane.spans[++lane.spanIdx];
                        lane.spanPower = sp.watts;
                        hot.rollStep[s] =
                            sp.steps == trace::StepSpan::kOpenEnded
                            ? UINT64_MAX
                            : hot.rollStep[s] + sp.steps;
                        stepper.setHarvestPower(s, sp.watts);
                    }
                    // A tick is the only thing that can have moved the
                    // backend load here (no flip, no injector); lanes
                    // without a benchmark keep their settled current.
                    if ((benchMask & (1u << s)) != 0)
                        stepper.setLoadCurrent(s, lane.device.current());
                }
                for (int s = 0; s < kLanes; ++s) {
                    hot.t[s] += dt;
                    ++hot.steps[s];
                }
                ++iter;
                continue;
            }
        }

        // Wake set: gate flips from the bank's vector compare, on
        // lanes (per-step ticking), lanes that can never sleep, and --
        // only at the precomputed global due point -- lanes whose
        // integer wake target fired.  Unoccupied slots compute garbage
        // compares and are masked off.
        uint8_t due = 0;
        if (iter >= nextWakeIter) {
            for (int s = 0; s < kLanes; ++s)
                due |= static_cast<uint8_t>(
                    static_cast<unsigned>(hot.steps[s] >= hot.wakeStep[s])
                    << s);
        }
        const uint8_t wake =
            static_cast<uint8_t>((flips | bank.onMask | due | injectorMask |
                                  agingMask | recordAllMask) &
                                 occupied);

        if (wake != 0) {
            if (timed) {
                for (uint8_t m = wake; m != 0;
                     m &= static_cast<uint8_t>(m - 1))
                    svcWorkload(__builtin_ctz(m));
                c2 = phaseTicks();
            } else {
                for (uint8_t m = wake; m != 0;
                     m &= static_cast<uint8_t>(m - 1))
                    svcWorkload(__builtin_ctz(m));
            }

            for (uint8_t m = wake; m != 0;
                 m &= static_cast<uint8_t>(m - 1)) {
                const int s = __builtin_ctz(m);
                if (svcBookkeeping(s))
                    retire(*slots[s], s);
            }
        }
        if (timed) {
            if (wake == 0)
                c2 = c1;
            c3 = phaseTicks();
        }

        // Advance every slot's clock unconditionally (branchless over
        // the fixed arrays; retired and empty slots advance garbage
        // that admission re-seeds).  Sleeping lanes pay exactly this.
        for (int s = 0; s < kLanes; ++s) {
            hot.t[s] += dt;
            ++hot.steps[s];
        }
        ++iter;
        if (wake != 0) {
            for (uint8_t m = static_cast<uint8_t>(wake & occupied);
                 m != 0; m &= static_cast<uint8_t>(m - 1))
                svcPre(__builtin_ctz(m), flips);
            flushLoads();
            refill();
            // Services, retirements, and admissions are the only
            // places wake targets change.
            rearmNextWake();
        }
        if (timed) {
            const uint64_t c4 = phaseTicks();
            physicsTicks += c1 - c0;
            workloadTicks += c2 - c1;
            bookkeepingTicks += c3 - c2;
            frontendTicks += c4 - c3;
            ++timedSteps;
        }
    }

    if (!timed)
        return;
    // Convert tick counts to nanoseconds against one steady_clock pair
    // bracketing the whole loop (per-run calibration keeps the split
    // honest across hosts with different TSC rates).
    const uint64_t tickEnd = phaseTicks();
    const uint64_t wallEnd = wallNowNs();
    const double nsPerTick = tickEnd > tickStart
        ? static_cast<double>(wallEnd - wallStart) /
            static_cast<double>(tickEnd - tickStart)
        : 0.0;
    const auto toNs = [&](uint64_t ticks) {
        return static_cast<uint64_t>(static_cast<double>(ticks) *
                                     nsPerTick);
    };
    stats->frontendNs += toNs(frontendTicks);
    stats->physicsNs += toNs(physicsTicks);
    stats->workloadNs += toNs(workloadTicks);
    stats->bookkeepingNs += toNs(bookkeepingTicks);
    stats->steps += timedSteps;
}

} // namespace

bool
batchAdmissible(const buffer::EnergyBuffer &buffer,
                const ExperimentConfig &config)
{
    if (dynamic_cast<const buffer::StaticBuffer *>(&buffer) == nullptr)
        return false;
    // The quiescent fast path collapses spans per cell; lanes must stay
    // in lockstep.  (Off-mode results are the byte-exact reference.)
    if (resolveFastPath(config.fastPath) != FastPath::Off)
        return false;
    // Checkpoint/resume serializes mid-run state the lane engine holds
    // outside the buffer object, and the crash fuzzer's haltAfterSteps
    // must stop exactly like a power failure -- both stay per-cell.
    if (!config.checkpointPath.empty() || config.resume)
        return false;
    if (config.haltAfterSteps > 0)
        return false;
    return true;
}

void
runExperimentBatch(const BatchCell *cells, int count,
                   const ExperimentConfig &config, sim::simd::Kernel kernel,
                   BatchPhaseStats *stats)
{
    react_assert(count >= 1, "empty batch");
    static_assert(sim::GateLaneBank::kMaxLanes >=
                      sim::BatchStepper::kMaxLanes,
                  "the gate bank must cover every stepper lane");
    Engine engine(cells, count, config, kernel);
    engine.run(stats);
}

} // namespace harness
} // namespace react
