#include "figure_of_merit.hh"

#include "util/logging.hh"

namespace react {
namespace harness {

std::vector<double>
normalizedMerit(const MeritMatrix &matrix, size_t reference_buffer)
{
    react_assert(reference_buffer < matrix.counts.size(),
                 "reference buffer index out of range");
    const auto &ref = matrix.counts[reference_buffer];
    std::vector<double> scores(matrix.counts.size(), 0.0);
    for (size_t b = 0; b < matrix.counts.size(); ++b) {
        react_assert(matrix.counts[b].size() == ref.size(),
                     "ragged merit matrix");
        double sum = 0.0;
        size_t used = 0;
        for (size_t t = 0; t < ref.size(); ++t) {
            if (ref[t] <= 0.0)
                continue;
            sum += matrix.counts[b][t] / ref[t];
            ++used;
        }
        scores[b] = used > 0 ? sum / static_cast<double>(used) : 0.0;
    }
    return scores;
}

std::vector<double>
averageMerit(const std::vector<std::vector<double>> &per_benchmark)
{
    react_assert(!per_benchmark.empty(), "no benchmarks to average");
    std::vector<double> avg(per_benchmark.front().size(), 0.0);
    for (const auto &scores : per_benchmark) {
        react_assert(scores.size() == avg.size(), "ragged merit vectors");
        for (size_t i = 0; i < scores.size(); ++i)
            avg[i] += scores[i];
    }
    for (auto &v : avg)
        v /= static_cast<double>(per_benchmark.size());
    return avg;
}

double
improvementOver(double normalized_score)
{
    if (normalized_score <= 0.0)
        return 0.0;
    return 1.0 / normalized_score - 1.0;
}

} // namespace harness
} // namespace react
