/**
 * @file
 * Figure-of-merit aggregation for Fig. 7.
 *
 * The paper quantifies each buffer's aggregate performance with a
 * benchmark-specific figure of merit (work units completed: encryptions,
 * samples, transmissions, forwarded packets), normalized to REACT per
 * power trace and averaged across traces.  This header provides that
 * normalization plus the headline improvement ratios reported in S 5.5.
 */

#ifndef REACT_HARNESS_FIGURE_OF_MERIT_HH
#define REACT_HARNESS_FIGURE_OF_MERIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace react {
namespace harness {

/** Work counts for one benchmark: matrix[buffer][trace]. */
struct MeritMatrix
{
    std::string benchmarkName;
    std::vector<std::string> bufferNames;
    std::vector<std::string> traceNames;
    /** counts[buffer_index][trace_index]. */
    std::vector<std::vector<double>> counts;
};

/**
 * Normalize each buffer's counts to the reference buffer, per trace, and
 * average across traces -- the bar height in Fig. 7.
 *
 * @param matrix Raw counts.
 * @param reference_buffer Index of the normalization reference (REACT).
 * @return One mean normalized score per buffer.  Traces where the
 *         reference scored zero are skipped.
 */
std::vector<double> normalizedMerit(const MeritMatrix &matrix,
                                    size_t reference_buffer);

/**
 * Average several per-buffer score vectors (one per benchmark) into the
 * overall Fig. 7 aggregate.
 */
std::vector<double> averageMerit(
    const std::vector<std::vector<double>> &per_benchmark);

/**
 * REACT's improvement over a buffer given normalized scores
 * (reference / score - 1, e.g. 0.39 == "+39 %").
 */
double improvementOver(double normalized_score);

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_FIGURE_OF_MERIT_HH
