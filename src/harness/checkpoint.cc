#include "checkpoint.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace react {
namespace harness {

std::string
checkpointFileName(std::string_view cell_key)
{
    std::string name;
    name.reserve(cell_key.size() + 5);
    for (const char c : cell_key) {
        const bool safe = (c >= 'A' && c <= 'Z') ||
            (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '.' || c == '_' || c == '-';
        name.push_back(safe ? c : '_');
    }
    name += ".snap";
    return name;
}

bool
applyCheckpointEnv(ExperimentConfig *config, std::string_view cell_key)
{
    const char *dir = std::getenv("REACT_CHECKPOINT_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return false;

    config->checkpointPath =
        std::string(dir) + "/" + checkpointFileName(cell_key);
    config->resume = true;
    config->checkpointEverySteps = kDefaultCheckpointInterval;
    if (const char *env = std::getenv("REACT_CHECKPOINT_INTERVAL")) {
        char *end = nullptr;
        const unsigned long long steps = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0' && steps > 0) {
            config->checkpointEverySteps = steps;
        } else {
            react_warn("ignoring REACT_CHECKPOINT_INTERVAL='%s' (want a "
                       "positive integer)",
                       env);
        }
    }
    return true;
}

} // namespace harness
} // namespace react
