#include "checkpoint.hh"

#include "util/env.hh"

namespace react {
namespace harness {

std::string
checkpointFileName(std::string_view cell_key)
{
    std::string name;
    name.reserve(cell_key.size() + 5);
    for (const char c : cell_key) {
        const bool safe = (c >= 'A' && c <= 'Z') ||
            (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '.' || c == '_' || c == '-';
        name.push_back(safe ? c : '_');
    }
    name += ".snap";
    return name;
}

bool
applyCheckpointEnv(ExperimentConfig *config, std::string_view cell_key)
{
    const auto dir = env::stringVar("REACT_CHECKPOINT_DIR");
    if (!dir)
        return false;

    config->checkpointPath = *dir + "/" + checkpointFileName(cell_key);
    config->resume = true;
    config->checkpointEverySteps =
        env::u64Var("REACT_CHECKPOINT_INTERVAL", 1, UINT64_MAX)
            .value_or(kDefaultCheckpointInterval);
    return true;
}

} // namespace harness
} // namespace react
