#include "experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "harness/paper_setup.hh"
#include "snapshot/snapshot.hh"
#include "util/crc32.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace react {
namespace harness {

double
ExperimentResult::meanOnPeriod() const
{
    return powerCycles > 0 ? onTime / static_cast<double>(powerCycles)
                           : 0.0;
}

double
ExperimentResult::dutyCycle() const
{
    return totalTime > 0.0 ? onTime / totalTime : 0.0;
}

uint64_t
ExperimentResult::workLostVersus(const ExperimentResult &fault_free) const
{
    return fault_free.workUnits > workUnits
        ? fault_free.workUnits - workUnits
        : 0;
}

namespace {

/** Serialize a complete result (the payload of a "finished" snapshot:
 *  resuming a completed cell returns this instead of re-running). */
void
saveResult(snapshot::SnapshotWriter &w, const ExperimentResult &res)
{
    w.str(res.bufferName);
    w.str(res.benchmarkName);
    w.str(res.traceName);
    w.f64(res.latency);
    w.f64(res.onTime);
    w.f64(res.totalTime);
    w.u64(res.steps);
    w.u64(res.fastSteps);
    w.u64(res.powerCycles);
    w.u64(res.workUnits);
    w.u64(res.packetsRx);
    w.u64(res.packetsTx);
    w.u64(res.failedOps);
    w.u64(res.missedEvents);
    res.ledger.save(w);
    w.f64(res.residualEnergy);
    w.f64(res.conservationError);
    w.u64(res.faultEvents);
    w.u64(res.recoveryEvents);
    w.u32(static_cast<uint32_t>(res.banksRetired));
    w.u32(static_cast<uint32_t>(res.framRecoveries));
    w.u32(static_cast<uint32_t>(res.faultLog.size()));
    for (const auto &ev : res.faultLog) {
        w.f64(ev.time.raw());
        w.u8(static_cast<uint8_t>(ev.kind));
        w.str(ev.component);
        w.f64(ev.magnitude);
    }
    w.u32(static_cast<uint32_t>(res.rail.size()));
    for (const auto &s : res.rail) {
        w.f64(s.time);
        w.f64(s.voltage);
        w.b(s.backendOn);
        w.u32(static_cast<uint32_t>(s.level));
    }
    w.b(res.halted);
    w.u32(res.stateDigest);
}

void
restoreResult(snapshot::SnapshotReader &r, ExperimentResult *res)
{
    res->bufferName = r.str();
    res->benchmarkName = r.str();
    res->traceName = r.str();
    res->latency = r.f64();
    res->onTime = r.f64();
    res->totalTime = r.f64();
    res->steps = r.u64();
    res->fastSteps = r.u64();
    res->powerCycles = r.u64();
    res->workUnits = r.u64();
    res->packetsRx = r.u64();
    res->packetsTx = r.u64();
    res->failedOps = r.u64();
    res->missedEvents = r.u64();
    res->ledger.restore(r);
    res->residualEnergy = r.f64();
    res->conservationError = r.f64();
    res->faultEvents = r.u64();
    res->recoveryEvents = r.u64();
    res->banksRetired = static_cast<int>(r.u32());
    res->framRecoveries = static_cast<int>(r.u32());
    res->faultLog.clear();
    const uint32_t events = r.u32();
    res->faultLog.reserve(events);
    for (uint32_t i = 0; i < events; ++i) {
        sim::FaultEvent ev;
        ev.time = units::Seconds(r.f64());
        ev.kind = static_cast<sim::FaultEventKind>(r.u8());
        ev.component = r.str();
        ev.magnitude = r.f64();
        res->faultLog.push_back(std::move(ev));
    }
    res->rail.clear();
    const uint32_t samples = r.u32();
    res->rail.reserve(samples);
    for (uint32_t i = 0; i < samples; ++i) {
        RailSample s;
        s.time = r.f64();
        s.voltage = r.f64();
        s.backendOn = r.b();
        s.level = static_cast<int>(r.u32());
        res->rail.push_back(s);
    }
    res->halted = r.b();
    res->stateDigest = r.u32();
}

/**
 * FastPath::Check divergence gate: run the closed-form advance, capture
 * its observables, rewind the buffer through a snapshot, replay the same
 * span with exact zero-input steps, and panic if the fast result strays
 * beyond the documented rounding bound (DESIGN.md, "Hot loop": the
 * closed-form pow and the iterated per-step multiplies each accumulate
 * at most ~(n+1) half-ulp roundings, so 100 (n+2) eps with an absolute
 * floor of one covers both with two orders of margin).  The run
 * continues from the *exact* state, so Check mode's final result equals
 * Off mode's.
 */
uint64_t
checkedQuiescentAdvance(buffer::EnergyBuffer &buffer, units::Seconds dt,
                        uint64_t max_steps)
{
    snapshot::SnapshotWriter w;
    w.beginSection("fastcheck");
    buffer.save(w);
    w.endSection();
    std::vector<uint8_t> image = w.finish();

    const uint64_t advanced = buffer.advanceQuiescent(dt, max_steps);
    if (advanced == 0)
        return 0;
    const double fast_rail = buffer.railVoltage().raw();
    const double fast_stored = buffer.storedEnergy().raw();
    const double fast_leaked = buffer.ledger().leaked.raw();

    snapshot::SnapshotReader r(std::move(image));
    r.beginSection("fastcheck");
    buffer.restore(r);
    r.endSection();
    for (uint64_t i = 0; i < advanced; ++i)
        buffer.step(dt, units::Watts(0.0), units::Amps(0.0));

    const double rel = 100.0 * (static_cast<double>(advanced) + 2.0) *
                       2.220446049250313e-16;
    const auto check = [&](const char *what, double fast, double exact) {
        const double bound = rel * std::max(1.0, std::abs(exact));
        react_assert(std::abs(fast - exact) <= bound,
                     "quiescent fast path diverged on %s: fast %.17g "
                     "exact %.17g (bound %.3e over %llu steps)",
                     what, fast, exact, bound,
                     static_cast<unsigned long long>(advanced));
    };
    check("railVoltage", fast_rail, buffer.railVoltage().raw());
    check("storedEnergy", fast_stored, buffer.storedEnergy().raw());
    check("ledger.leaked", fast_leaked, buffer.ledger().leaked.raw());
    return advanced;
}

} // namespace

FastPath
resolveFastPath(FastPath configured)
{
    if (configured != FastPath::Auto)
        return configured;
    static const FastPath env_mode = [] {
        const auto v = env::stringVar("REACT_FAST_PATH");
        if (!v || *v == "0" || *v == "off")
            return FastPath::Off;
        if (*v == "check")
            return FastPath::Check;
        if (*v != "1" && *v != "on")
            react_warn("REACT_FAST_PATH='%s' is not 0/off, 1/on, or "
                       "check; treating as on",
                       v->c_str());
        return FastPath::On;
    }();
    return env_mode;
}

ExperimentResult
runExperiment(buffer::EnergyBuffer &buffer, workload::Benchmark *benchmark,
              const harvest::HarvesterFrontend &frontend,
              const ExperimentConfig &config)
{
    buffer.reset();
    if (benchmark)
        benchmark->reset();

    mcu::Device device(backendSpec());
    sim::PowerGate gate(units::Volts(config.enableVoltage),
                        units::Volts(config.brownoutVoltage));

    // Fault injection is strictly opt-in: with the all-zero default plan
    // no injector exists and every code path below is bit-identical to
    // the fault-free build.
    std::unique_ptr<sim::FaultInjector> injector;
    if (config.faultPlan.enabled()) {
        injector = std::make_unique<sim::FaultInjector>(config.faultPlan,
                                                        config.faultSeed);
        buffer.attachFaultInjector(injector.get());
        gate.attachFaultInjector(injector.get());
    }
    double stored_start = buffer.storedEnergy().raw();

    ExperimentResult result;
    result.bufferName = buffer.name();
    result.benchmarkName = benchmark ? benchmark->name() : "(none)";
    result.traceName = frontend.trace().name();

    const double trace_duration = frontend.traceDuration().raw();
    const double work_scale = 1.0 - buffer.softwareOverheadFraction();

    double t = 0.0;
    double off_streak = 0.0;
    double next_record = 0.0;

    const auto detach_injector = [&]() {
        if (injector) {
            buffer.attachFaultInjector(nullptr);
            gate.attachFaultInjector(nullptr);
        }
    };

    // Snapshot layout.  The meta section pins the experiment identity so
    // a stale checkpoint from a different cell is rejected (and degrades
    // to a cold start) instead of silently resuming the wrong run.
    const auto write_checkpoint = [&](bool finished) {
        snapshot::SnapshotWriter w;
        w.beginSection("meta");
        w.str(result.bufferName);
        w.str(result.benchmarkName);
        w.str(result.traceName);
        w.f64(config.dt);
        w.u64(config.faultSeed);
        w.b(injector != nullptr);
        w.b(finished);
        w.endSection();
        if (finished) {
            w.beginSection("result");
            saveResult(w, result);
            w.endSection();
        } else {
            w.beginSection("experiment");
            w.f64(t);
            w.f64(off_streak);
            w.f64(next_record);
            w.f64(stored_start);
            w.u64(result.steps);
            w.u64(result.fastSteps);
            w.f64(result.latency);
            w.f64(result.onTime);
            w.u32(static_cast<uint32_t>(result.rail.size()));
            for (const auto &s : result.rail) {
                w.f64(s.time);
                w.f64(s.voltage);
                w.b(s.backendOn);
                w.u32(static_cast<uint32_t>(s.level));
            }
            w.endSection();
            w.beginSection("gate");
            gate.save(w);
            w.endSection();
            w.beginSection("device");
            device.save(w);
            w.endSection();
            w.beginSection("buffer");
            buffer.save(w);
            w.endSection();
            if (benchmark) {
                w.beginSection("benchmark");
                benchmark->save(w);
                w.endSection();
            }
            if (injector) {
                w.beginSection("injector");
                injector->save(w);
                w.endSection();
            }
        }
        std::string err;
        if (!snapshot::saveSnapshotFile(config.checkpointPath, w.finish(),
                                        &err))
            react_warn("checkpoint write failed: %s", err.c_str());
    };

    if (!config.checkpointPath.empty() && config.resume) {
        snapshot::SnapshotLoad load =
            snapshot::loadSnapshotFile(config.checkpointPath);
        result.snapshotFallback = load.usedFallback;
        result.snapshotDiagnostic = load.diagnostic;
        if (load.ok) {
            try {
                snapshot::SnapshotReader r(std::move(load.image));
                r.beginSection("meta");
                const std::string buf_name = r.str();
                const std::string bench_name = r.str();
                const std::string trace_name = r.str();
                const double dt = r.f64();
                const uint64_t seed = r.u64();
                const bool had_injector = r.b();
                const bool finished = r.b();
                r.endSection();
                if (buf_name != result.bufferName ||
                    bench_name != result.benchmarkName ||
                    trace_name != result.traceName || dt != config.dt ||
                    seed != config.faultSeed ||
                    had_injector != (injector != nullptr))
                    throw snapshot::SnapshotError(
                        "checkpoint belongs to a different experiment (" +
                        buf_name + " / " + bench_name + " / " +
                        trace_name + ")");
                if (finished) {
                    r.beginSection("result");
                    restoreResult(r, &result);
                    r.endSection();
                    result.resumed = true;
                    detach_injector();
                    return result;
                }
                r.beginSection("experiment");
                t = r.f64();
                off_streak = r.f64();
                next_record = r.f64();
                stored_start = r.f64();
                result.steps = r.u64();
                result.fastSteps = r.u64();
                result.latency = r.f64();
                result.onTime = r.f64();
                result.rail.clear();
                const uint32_t samples = r.u32();
                result.rail.reserve(samples);
                for (uint32_t i = 0; i < samples; ++i) {
                    RailSample s;
                    s.time = r.f64();
                    s.voltage = r.f64();
                    s.backendOn = r.b();
                    s.level = static_cast<int>(r.u32());
                    result.rail.push_back(s);
                }
                r.endSection();
                r.beginSection("gate");
                gate.restore(r);
                r.endSection();
                r.beginSection("device");
                device.restore(r);
                r.endSection();
                r.beginSection("buffer");
                buffer.restore(r);
                r.endSection();
                if (benchmark) {
                    r.beginSection("benchmark");
                    benchmark->restore(r);
                    r.endSection();
                }
                if (injector) {
                    r.beginSection("injector");
                    injector->restore(r);
                    r.endSection();
                }
                result.resumed = true;
            } catch (const snapshot::SnapshotError &e) {
                // A structurally mismatched snapshot may have touched
                // some components before the throw: rebuild everything
                // so the cold start is a true cold start.
                react_warn("checkpoint rejected (%s); cold-starting",
                           e.what());
                result.snapshotDiagnostic +=
                    std::string("; rejected: ") + e.what();
                result.resumed = false;
                buffer.reset();
                if (benchmark)
                    benchmark->reset();
                device.reset();
                gate.reset();
                if (injector) {
                    injector = std::make_unique<sim::FaultInjector>(
                        config.faultPlan, config.faultSeed);
                    buffer.attachFaultInjector(injector.get());
                    gate.attachFaultInjector(injector.get());
                }
                stored_start = buffer.storedEnergy().raw();
                t = 0.0;
                off_streak = 0.0;
                next_record = 0.0;
                result.steps = 0;
                result.latency = -1.0;
                result.onTime = 0.0;
                result.rail.clear();
            }
        }
    }

    workload::BenchContext ctx;
    ctx.device = &device;
    ctx.buffer = &buffer;
    ctx.workScale = work_scale;

    // Quiescent fast path (opt-in; see FastPath).  Fault injection is
    // excluded outright: the injector draws from per-step streams, so
    // skipping steps would desynchronize its randomness.
    const FastPath fast_mode = resolveFastPath(config.fastPath);
    const bool fast_enabled =
        fast_mode != FastPath::Off && injector == nullptr;
    // Below this span length the snapshot/bookkeeping overhead beats the
    // savings and exact stepping is at least as fast.
    constexpr uint64_t kFastPathMinSteps = 16;

    while (true) {
        // Try to collapse a provably-quiescent span before the next
        // exact step.  Preconditions mirror the exact loop: the gate is
        // a pure latch, so with the backend off, zero load, zero trace
        // power, and the rail strictly under the enable threshold (and
        // only decaying), every skipped iteration's gate.update() and
        // benchmark hooks are no-ops.  The horizon stops strictly short
        // of every boundary with its own side effect -- the next nonzero
        // trace sample, the next rail-recording instant, the trace end
        // (where the settle/drain exit checks arm), the settle and drain
        // exits themselves, the simulated-crash step, and the next
        // periodic checkpoint -- so each of those still happens inside
        // an exact step.
        if (fast_enabled && !gate.isOn() && device.current() == 0.0 &&
            frontend.power(units::Seconds(t)).raw() == 0.0 &&
            buffer.railVoltage().raw() < config.enableVoltage) {
            const double zero_until =
                frontend.zeroPowerUntil(units::Seconds(t)).raw();
            double horizon = zero_until - t;
            if (config.recordRail)
                horizon = std::min(horizon, next_record - t);
            if (t < trace_duration) {
                horizon = std::min(horizon, trace_duration - t);
            } else {
                horizon =
                    std::min(horizon, config.settleTime - off_streak);
                horizon = std::min(
                    horizon,
                    trace_duration + config.drainAllowance - t);
            }
            double max_steps_d = std::floor(horizon / config.dt) - 1.0;
            if (config.haltAfterSteps > 0)
                max_steps_d = std::min(
                    max_steps_d,
                    static_cast<double>(config.haltAfterSteps -
                                        result.steps) -
                        1.0);
            if (!config.checkpointPath.empty() &&
                config.checkpointEverySteps > 0)
                max_steps_d = std::min(
                    max_steps_d,
                    static_cast<double>(
                        config.checkpointEverySteps -
                        result.steps % config.checkpointEverySteps) -
                        1.0);
            if (max_steps_d >=
                static_cast<double>(kFastPathMinSteps)) {
                const uint64_t max_steps =
                    static_cast<uint64_t>(max_steps_d);
                const uint64_t advanced =
                    fast_mode == FastPath::Check
                        ? checkedQuiescentAdvance(
                              buffer, units::Seconds(config.dt),
                              max_steps)
                        : buffer.advanceQuiescent(
                              units::Seconds(config.dt), max_steps);
                if (advanced > 0) {
                    // Accumulate time iteratively so t and off_streak
                    // follow the exact loop's floating-point trajectory
                    // (recording instants and exit checks land on the
                    // same step).
                    for (uint64_t i = 0; i < advanced; ++i) {
                        t += config.dt;
                        off_streak += config.dt;
                    }
                    result.steps += advanced;
                    result.fastSteps += advanced;
                    continue;
                }
            }
        }

        t += config.dt;
        ++result.steps;

        // Power gate observes the rail left by the previous step.
        if (gate.update(buffer.railVoltage())) {
            ctx.now = t;
            ctx.dt = config.dt;
            if (gate.isOn()) {
                if (result.latency < 0.0)
                    result.latency = t;
                device.setState(mcu::PowerState::Active);
                buffer.notifyBackendPower(true);
                if (benchmark)
                    benchmark->onPowerUp(ctx);
            } else {
                if (benchmark)
                    benchmark->onPowerDown(ctx);
                device.setState(mcu::PowerState::Off);
                buffer.notifyBackendPower(false);
            }
        }

        units::Watts input_power = frontend.power(units::Seconds(t));
        if (injector) {
            injector->advance(units::Seconds(config.dt));
            input_power = injector->filterHarvest(input_power);
        }
        buffer.step(units::Seconds(config.dt), input_power,
                    units::Amps(device.current()));

        if (gate.isOn()) {
            result.onTime += config.dt;
            off_streak = 0.0;
            if (benchmark) {
                ctx.now = t;
                ctx.dt = config.dt;
                benchmark->tick(ctx);
            } else {
                device.setState(mcu::PowerState::Active);
            }
        } else {
            off_streak += config.dt;
        }

        if (config.recordRail && t >= next_record) {
            next_record += config.recordInterval;
            result.rail.push_back({t, buffer.railVoltage().raw(), gate.isOn(),
                                   buffer.capacitanceLevel()});
        }

        if (config.stopAfterLatency && result.latency >= 0.0)
            break;

        if (t >= trace_duration) {
            if (off_streak >= config.settleTime)
                break;
            if (t >= trace_duration + config.drainAllowance)
                break;
        }

        // The simulated crash stops before the checkpoint below: a real
        // power failure does not get to flush its final state either.
        if (config.haltAfterSteps > 0 &&
            result.steps >= config.haltAfterSteps) {
            result.halted = true;
            break;
        }

        if (!config.checkpointPath.empty() &&
            config.checkpointEverySteps > 0 &&
            result.steps % config.checkpointEverySteps == 0)
            write_checkpoint(false);
    }

    result.totalTime = t;
    result.powerCycles = device.powerCycles();
    if (benchmark) {
        result.workUnits = benchmark->workUnits();
        result.packetsRx = benchmark->packetsReceived();
        result.packetsTx = benchmark->packetsSent();
        result.failedOps = benchmark->failedOperations();
        result.missedEvents = benchmark->missedEvents();
    }
    result.ledger = buffer.ledger();
    result.residualEnergy = buffer.storedEnergy().raw();

    // Per-run conservation audit: everything harvested must be accounted
    // for by delivery, booked losses, or the change in stored energy.
    // (Also valid for a halted partial run: the ledger balances at every
    // step, not just at the end.)
    result.conservationError =
        result.ledger
            .conservationError(units::Joules(result.residualEnergy -
                                             stored_start))
            .raw();
    const double tolerance =
        1e-9 * std::max(1.0, result.ledger.harvested.raw());
    if (std::abs(result.conservationError) > tolerance) {
        if (config.strictConservation) {
            react_panic("energy ledger violated conservation: error %.3e J "
                        "(harvested %.3e J, tolerance %.3e J)",
                        result.conservationError,
                        result.ledger.harvested.raw(), tolerance);
        }
        react_warn("energy ledger conservation error %.3e J exceeds "
                   "tolerance %.3e J (%s / %s / %s)",
                   result.conservationError, tolerance,
                   result.bufferName.c_str(),
                   result.benchmarkName.c_str(),
                   result.traceName.c_str());
    }

    if (injector) {
        result.faultEvents = injector->faultCount();
        result.recoveryEvents = injector->recoveryCount();
        result.banksRetired = static_cast<int>(
            injector->eventCount(sim::FaultEventKind::BankRetired));
        result.framRecoveries = static_cast<int>(
            injector->eventCount(sim::FaultEventKind::FramRecovery));
        result.faultLog = injector->events();
    }

    // Fingerprint the complete final state.  Two runs finished from
    // different checkpoints (or none) are bit-identical iff this digest
    // and the explicit counters match; the event queue cursors inside
    // the benchmark make delivery ids part of the fingerprint.
    {
        snapshot::SnapshotWriter dw;
        dw.beginSection("digest");
        gate.save(dw);
        device.save(dw);
        buffer.save(dw);
        if (benchmark)
            benchmark->save(dw);
        if (injector)
            injector->save(dw);
        dw.endSection();
        const std::vector<uint8_t> image = dw.finish();
        result.stateDigest = crc32(image.data(), image.size());
    }

    // A completed cell leaves a "finished" snapshot behind so resuming
    // it again is instant; a simulated crash leaves whatever periodic
    // checkpoint was last flushed, exactly like a real power failure.
    if (!config.checkpointPath.empty() && !result.halted)
        write_checkpoint(true);

    detach_injector();
    return result;
}

} // namespace harness
} // namespace react
