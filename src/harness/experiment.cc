#include "experiment.hh"

#include <cmath>
#include <memory>

#include "harness/paper_setup.hh"
#include "util/logging.hh"

namespace react {
namespace harness {

double
ExperimentResult::meanOnPeriod() const
{
    return powerCycles > 0 ? onTime / static_cast<double>(powerCycles)
                           : 0.0;
}

double
ExperimentResult::dutyCycle() const
{
    return totalTime > 0.0 ? onTime / totalTime : 0.0;
}

uint64_t
ExperimentResult::workLostVersus(const ExperimentResult &fault_free) const
{
    return fault_free.workUnits > workUnits
        ? fault_free.workUnits - workUnits
        : 0;
}

ExperimentResult
runExperiment(buffer::EnergyBuffer &buffer, workload::Benchmark *benchmark,
              const harvest::HarvesterFrontend &frontend,
              const ExperimentConfig &config)
{
    buffer.reset();
    if (benchmark)
        benchmark->reset();

    mcu::Device device(backendSpec());
    sim::PowerGate gate(units::Volts(config.enableVoltage),
                        units::Volts(config.brownoutVoltage));

    // Fault injection is strictly opt-in: with the all-zero default plan
    // no injector exists and every code path below is bit-identical to
    // the fault-free build.
    std::unique_ptr<sim::FaultInjector> injector;
    if (config.faultPlan.enabled()) {
        injector = std::make_unique<sim::FaultInjector>(config.faultPlan,
                                                        config.faultSeed);
        buffer.attachFaultInjector(injector.get());
        gate.attachFaultInjector(injector.get());
    }
    const double stored_start = buffer.storedEnergy().raw();

    ExperimentResult result;
    result.bufferName = buffer.name();
    result.benchmarkName = benchmark ? benchmark->name() : "(none)";
    result.traceName = frontend.trace().name();

    const double trace_duration = frontend.traceDuration().raw();
    const double work_scale = 1.0 - buffer.softwareOverheadFraction();

    double t = 0.0;
    double off_streak = 0.0;
    double next_record = 0.0;

    workload::BenchContext ctx;
    ctx.device = &device;
    ctx.buffer = &buffer;
    ctx.workScale = work_scale;

    while (true) {
        t += config.dt;
        ++result.steps;

        // Power gate observes the rail left by the previous step.
        if (gate.update(buffer.railVoltage())) {
            ctx.now = t;
            ctx.dt = config.dt;
            if (gate.isOn()) {
                if (result.latency < 0.0)
                    result.latency = t;
                device.setState(mcu::PowerState::Active);
                buffer.notifyBackendPower(true);
                if (benchmark)
                    benchmark->onPowerUp(ctx);
            } else {
                if (benchmark)
                    benchmark->onPowerDown(ctx);
                device.setState(mcu::PowerState::Off);
                buffer.notifyBackendPower(false);
            }
        }

        units::Watts input_power = frontend.power(units::Seconds(t));
        if (injector) {
            injector->advance(units::Seconds(config.dt));
            input_power = injector->filterHarvest(input_power);
        }
        buffer.step(units::Seconds(config.dt), input_power,
                    units::Amps(device.current()));

        if (gate.isOn()) {
            result.onTime += config.dt;
            off_streak = 0.0;
            if (benchmark) {
                ctx.now = t;
                ctx.dt = config.dt;
                benchmark->tick(ctx);
            } else {
                device.setState(mcu::PowerState::Active);
            }
        } else {
            off_streak += config.dt;
        }

        if (config.recordRail && t >= next_record) {
            next_record += config.recordInterval;
            result.rail.push_back({t, buffer.railVoltage().raw(), gate.isOn(),
                                   buffer.capacitanceLevel()});
        }

        if (config.stopAfterLatency && result.latency >= 0.0)
            break;

        if (t >= trace_duration) {
            if (off_streak >= config.settleTime)
                break;
            if (t >= trace_duration + config.drainAllowance)
                break;
        }
    }

    result.totalTime = t;
    result.powerCycles = device.powerCycles();
    if (benchmark) {
        result.workUnits = benchmark->workUnits();
        result.packetsRx = benchmark->packetsReceived();
        result.packetsTx = benchmark->packetsSent();
        result.failedOps = benchmark->failedOperations();
        result.missedEvents = benchmark->missedEvents();
    }
    result.ledger = buffer.ledger();
    result.residualEnergy = buffer.storedEnergy().raw();

    // Per-run conservation audit: everything harvested must be accounted
    // for by delivery, booked losses, or the change in stored energy.
    result.conservationError =
        result.ledger
            .conservationError(units::Joules(result.residualEnergy -
                                             stored_start))
            .raw();
    const double tolerance =
        1e-9 * std::max(1.0, result.ledger.harvested.raw());
    if (std::abs(result.conservationError) > tolerance) {
        if (config.strictConservation) {
            react_panic("energy ledger violated conservation: error %.3e J "
                        "(harvested %.3e J, tolerance %.3e J)",
                        result.conservationError,
                        result.ledger.harvested.raw(), tolerance);
        }
        react_warn("energy ledger conservation error %.3e J exceeds "
                   "tolerance %.3e J (%s / %s / %s)",
                   result.conservationError, tolerance,
                   result.bufferName.c_str(),
                   result.benchmarkName.c_str(),
                   result.traceName.c_str());
    }

    if (injector) {
        result.faultEvents = injector->faultCount();
        result.recoveryEvents = injector->recoveryCount();
        result.banksRetired = static_cast<int>(
            injector->eventCount(sim::FaultEventKind::BankRetired));
        result.framRecoveries = static_cast<int>(
            injector->eventCount(sim::FaultEventKind::FramRecovery));
        result.faultLog = injector->events();
        buffer.attachFaultInjector(nullptr);
        gate.attachFaultInjector(nullptr);
    }
    return result;
}

} // namespace harness
} // namespace react
