/**
 * @file
 * Factories for the paper's evaluation setup (S 4): the five energy
 * buffers (770 uF / 10 mF / 17 mF static, Morphy, REACT), the four
 * benchmarks, and the backend device spec.  Keeping every calibration
 * constant here makes the reproduction's assumptions auditable in one
 * place.
 */

#ifndef REACT_HARNESS_PAPER_SETUP_HH
#define REACT_HARNESS_PAPER_SETUP_HH

#include <array>
#include <memory>
#include <string>

#include "buffers/energy_buffer.hh"
#include "sim/capacitor.hh"
#include "util/units.hh"
#include "mcu/device.hh"
#include "workload/benchmark.hh"

namespace react {
namespace harness {

/** The five buffer designs of the evaluation, in the paper's column
 *  order. */
enum class BufferKind
{
    Static770uF,
    Static10mF,
    Static17mF,
    Morphy,
    React,
};

constexpr std::array<BufferKind, 5> kAllBuffers = {
    BufferKind::Static770uF, BufferKind::Static10mF, BufferKind::Static17mF,
    BufferKind::Morphy, BufferKind::React,
};

/** The four workloads of S 4.2. */
enum class BenchmarkKind
{
    DataEncryption,
    SenseCompute,
    RadioTransmit,
    PacketForward,
};

constexpr std::array<BenchmarkKind, 4> kAllBenchmarks = {
    BenchmarkKind::DataEncryption, BenchmarkKind::SenseCompute,
    BenchmarkKind::RadioTransmit, BenchmarkKind::PacketForward,
};

/** True for the three fixed-capacitor designs -- the cells the batch
 *  lane engine (sim/batch_stepper.hh) can take. */
constexpr bool
isStaticBufferKind(BufferKind kind)
{
    return kind == BufferKind::Static770uF ||
        kind == BufferKind::Static10mF || kind == BufferKind::Static17mF;
}

/** Display name for a buffer column. */
std::string bufferKindName(BufferKind kind);

/** Display name for a benchmark. */
std::string benchmarkKindName(BenchmarkKind kind);

/**
 * Capacitor spec for a bulk ceramic/supercap static buffer with the same
 * insulation-resistance leakage model used inside REACT's banks
 * (tau = R C = 2000 s), so buffer comparisons isolate architecture rather
 * than part quality.
 */
sim::CapacitorSpec staticBufferSpec(units::Farads capacitance);

/** Build one of the five evaluation buffers. */
std::unique_ptr<buffer::EnergyBuffer> makeBuffer(BufferKind kind);

/**
 * Build one of the four benchmarks.
 *
 * @param kind Which workload.
 * @param horizon Scheduling horizon for external events, seconds.
 * @param seed Seed for the workload's random streams.
 */
std::unique_ptr<workload::Benchmark> makeBenchmark(
    BenchmarkKind kind, double horizon, uint64_t seed = 42);

/** Backend device parameters (MSP430FR5994-class, 1.5 mA active). */
mcu::DeviceSpec backendSpec();

/** Shared workload parameters (peripheral currents, burst lengths). */
workload::WorkloadParams workloadParams();

} // namespace harness
} // namespace react

#endif // REACT_HARNESS_PAPER_SETUP_HH
