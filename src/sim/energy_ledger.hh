/**
 * @file
 * End-to-end energy accounting.
 *
 * The paper's evaluation is fundamentally an energy audit: where does each
 * harvested joule go?  Every buffer implementation reports its flows
 * through this ledger so the harness can verify conservation
 * (harvested == delivered + clipped + leaked + switching + diode + overhead
 *  + change in stored energy) and the efficiency benches can break waste
 * down by cause.
 */

#ifndef REACT_SIM_ENERGY_LEDGER_HH
#define REACT_SIM_ENERGY_LEDGER_HH

#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace sim {

using units::Joules;

/** Cumulative energy flows. */
struct EnergyLedger
{
    /** Energy accepted from the harvester at the buffer input. */
    Joules harvested{0.0};
    /** Energy delivered to the computational backend. */
    Joules delivered{0.0};
    /** Energy burned off to prevent overvoltage (full buffer). */
    Joules clipped{0.0};
    /** Energy lost to capacitor self-discharge. */
    Joules leaked{0.0};
    /** Energy dissipated by inter-capacitor current during switching. */
    Joules switchLoss{0.0};
    /** Energy dissipated in isolation/input diodes. */
    Joules diodeLoss{0.0};
    /** Energy consumed by the buffer's own hardware (comparators etc.). */
    Joules overhead{0.0};
    /** Energy destroyed by injected hardware faults (capacitance fade,
     *  shorted-diode backfeed dissipation).  Zero in fault-free runs. */
    Joules faultLoss{0.0};

    /** Sum of all loss categories (everything but delivered). */
    Joules totalLoss() const;

    /** All energy that left the buffer, including useful delivery. */
    Joules totalOut() const;

    /** Fraction of harvested energy delivered to the backend. */
    double efficiency() const;

    /**
     * Conservation audit: harvested energy must equal delivered energy
     * plus all losses plus the change in stored energy.  The residual is
     * the simulator's bookkeeping error and must stay at floating-point
     * noise (the harness enforces |error| < 1e-9 J per joule harvested).
     *
     * @param stored_delta Stored energy now minus stored energy at the
     *        start of the accounting period.
     * @return Signed conservation error (0 == perfect books).
     */
    Joules conservationError(Joules stored_delta) const;

    /** Accumulate another ledger into this one. */
    EnergyLedger &operator+=(const EnergyLedger &other);

    /** Serialize every flow, bit-exact. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);
};

EnergyLedger operator+(EnergyLedger lhs, const EnergyLedger &rhs);

} // namespace sim
} // namespace react

#endif // REACT_SIM_ENERGY_LEDGER_HH
