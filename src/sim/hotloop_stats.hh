/**
 * @file
 * Hot-loop telemetry counters for the memoized transcendental caches.
 *
 * The fixed-timestep engine's dominant cost used to be `std::exp` /
 * `std::log1p` evaluations recomputed every step even though their inputs
 * (dt, RC constants) change only on rare reconfiguration or fault events.
 * The caches that removed them (Capacitor leak decay, charge-transfer
 * decay, Schottky forward-drop memo) report hit/miss counts here so
 * `bench/hot_loop` can emit cache hit rates into BENCH_hotloop.json and a
 * silent cache regression (a key that never matches) shows up as a
 * collapsed hit rate, not just as slower numbers.
 *
 * Counters are thread-local plain integers: the per-step increment is a
 * register bump (no atomics on the hot path), and the single-threaded
 * bench / test readers observe their own thread's counts exactly.  The
 * parallel runner's worker threads each accumulate privately; aggregate
 * telemetry across workers is out of scope by design.
 */

#ifndef REACT_SIM_HOTLOOP_STATS_HH
#define REACT_SIM_HOTLOOP_STATS_HH

#include <cstdint>

namespace react {
namespace sim {
namespace hotloop {

/** Per-thread cache telemetry for one slice of engine execution. */
struct Counters
{
    /** Leak-decay factor served from the owning capacitor's cache. */
    uint64_t leakCacheHits = 0;
    /** Leak-decay factor recomputed (dt or RC constant changed). */
    uint64_t leakCacheMisses = 0;
    /** Charge-transfer decay served from the owner's TransferCache. */
    uint64_t transferCacheHits = 0;
    /** Charge-transfer decay recomputed (capacitance/resistance/dt
     *  key changed). */
    uint64_t transferCacheMisses = 0;
    /** Schottky forward drop served from the repeated-current memo. */
    uint64_t schottkyCacheHits = 0;
    /** Schottky forward drop solved exactly (new current). */
    uint64_t schottkyCacheMisses = 0;

    uint64_t leakTotal() const { return leakCacheHits + leakCacheMisses; }
    uint64_t transferTotal() const
    {
        return transferCacheHits + transferCacheMisses;
    }
    uint64_t schottkyTotal() const
    {
        return schottkyCacheHits + schottkyCacheMisses;
    }
};

inline thread_local Counters tlCounters;

/** This thread's counters (mutable; the caches bump them in place). */
inline Counters &
counters()
{
    return tlCounters;
}

/** Zero this thread's counters (bench/test measurement windows). */
inline void
resetCounters()
{
    tlCounters = Counters();
}

/** Hit fraction helper tolerating an empty window. */
inline double
hitRate(uint64_t hits, uint64_t misses)
{
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
            static_cast<double>(total);
}

} // namespace hotloop
} // namespace sim
} // namespace react

#endif // REACT_SIM_HOTLOOP_STATS_HH
