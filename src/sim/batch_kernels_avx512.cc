/**
 * @file
 * AVX-512 build of the lane kernel: the same operation sequence as
 * detail::batchStepScalar, all 8 lanes in one __m512d per array.
 * Bit-exactness rests on the same three facts as the AVX2 build:
 *
 *  - every vector op used (mul/add/sub/div/max/cmp/masked-move) is
 *    lane-wise and correctly rounded, identical to its scalar double
 *    counterpart; masked moves are bitwise selects, no rounding at all;
 *  - this translation unit is compiled with -mavx512f *only* -- FMA is
 *    a separate ISA extension that -mavx512f does not enable on this
 *    toolchain, and -ffp-contract=off forbids the compiler from
 *    contracting mul+add anywhere in this file (the #errors below pin
 *    both);
 *  - scalar early-outs are replaced by arithmetic/bitwise no-ops
 *    exactly as in the scalar kernel (see batch_stepper.hh): the
 *    zero-power harvest charge is zeroed through a k-mask (+0.0 added,
 *    leaving the voltage bits alone), negative clamps force +0.0 only
 *    on the lanes the scalar `if` would touch, and the clip is a
 *    per-lane blend.
 *
 * There are deliberately no horizontal operations in this file: lane
 * accumulators stay per-lane from admission to readout (the determinism
 * linter's DET007 fixture pins the ban, and it scans this TU too).
 */

#ifndef __AVX512F__
#error "batch_kernels_avx512.cc must be compiled with -mavx512f"
#endif
#ifdef __FMA__
#error "FMA would contract mul+add and break scalar/SIMD bit-identity"
#endif

#include <immintrin.h>

#include "sim/batch_stepper.hh"

namespace react {
namespace sim {
namespace detail {

namespace {

/** (halfC * v) * v: units::capEnergy's operation sequence. */
inline __m512d
laneEnergy(__m512d half_c, __m512d v)
{
    return _mm512_mul_pd(_mm512_mul_pd(half_c, v), v);
}

} // namespace

void
batchStepAvx512(BatchLaneState &s)
{
    static_assert(BatchLaneState::kMaxLanes == 8,
                  "one 8-wide vector covers the batch");

    const __m512d dt = _mm512_set1_pd(s.dt);
    const __m512d zero = _mm512_setzero_pd();
    const __m512d v_floor = _mm512_set1_pd(0.2);

    const __m512d decay = _mm512_load_pd(&s.decay[0]);
    const __m512d half_c = _mm512_load_pd(&s.halfC[0]);
    const __m512d cap = _mm512_load_pd(&s.capacitance[0]);
    const __m512d clamp = _mm512_load_pd(&s.clamp[0]);
    const __m512d p = _mm512_load_pd(&s.harvestW[0]);
    const __m512d dq_over_cap = _mm512_load_pd(&s.dqOverCap[0]);
    const __m512d v0 = _mm512_load_pd(&s.v[0]);

    // 1. Self-discharge.
    const __m512d v1 = _mm512_mul_pd(v0, decay);
    const __m512d leaked = _mm512_add_pd(
        _mm512_load_pd(&s.leaked[0]),
        _mm512_sub_pd(laneEnergy(half_c, v0), laneEnergy(half_c, v1)));
    _mm512_store_pd(&s.leaked[0], leaked);

    // 2. Harvest.  q is zeroed (to +0.0) on zero-power lanes through
    //    the P > 0 k-mask, making the addCharge a bitwise no-op.
    const __m512d v_eff = _mm512_max_pd(v1, v_floor);
    const __m512d current = _mm512_div_pd(p, v_eff);
    const __mmask8 p_mask = _mm512_cmp_pd_mask(p, zero, _CMP_GT_OQ);
    const __m512d q =
        _mm512_maskz_mov_pd(p_mask, _mm512_mul_pd(current, dt));
    __m512d v2 = _mm512_add_pd(v1, _mm512_div_pd(q, cap));
    // addCharge's negative clamp: where v < 0, force +0.0.
    v2 = _mm512_mask_mov_pd(v2, _mm512_cmp_pd_mask(v2, zero, _CMP_LT_OQ),
                            zero);
    const __m512d harvested = _mm512_add_pd(
        _mm512_load_pd(&s.harvested[0]),
        _mm512_sub_pd(laneEnergy(half_c, v2), laneEnergy(half_c, v1)));
    _mm512_store_pd(&s.harvested[0], harvested);

    // 3. Backend load: the voltage delta (-(I*dt))/C is precomputed by
    //    the load/capacitance setters (its operands only move there,
    //    and IEEE division is deterministic, so the cached quotient is
    //    bitwise the per-step division) -- a -0.0 no-op on idle lanes
    //    and one fewer vector divide per step.
    __m512d v3 = _mm512_add_pd(v2, dq_over_cap);
    v3 = _mm512_mask_mov_pd(v3, _mm512_cmp_pd_mask(v3, zero, _CMP_LT_OQ),
                            zero);
    const __m512d delivered = _mm512_add_pd(
        _mm512_load_pd(&s.delivered[0]),
        _mm512_sub_pd(laneEnergy(half_c, v2), laneEnergy(half_c, v3)));
    _mm512_store_pd(&s.delivered[0], delivered);

    // 4. Overvoltage protection: per-lane blend, no rounding.
    const __mmask8 clip_mask =
        _mm512_cmp_pd_mask(v3, clamp, _CMP_GT_OQ);
    const __m512d v4 = _mm512_mask_mov_pd(v3, clip_mask, clamp);
    const __m512d clipped = _mm512_add_pd(
        _mm512_load_pd(&s.clipped[0]),
        _mm512_sub_pd(laneEnergy(half_c, v3), laneEnergy(half_c, v4)));
    _mm512_store_pd(&s.clipped[0], clipped);

    _mm512_store_pd(&s.v[0], v4);
}

} // namespace detail
} // namespace sim
} // namespace react
