/**
 * @file
 * Runtime SIMD dispatch policy for the batch-of-cells lane engine.
 *
 * The batch stepper (sim/batch_stepper.hh) ships three kernels: a
 * portable scalar fallback, an AVX2 build, and an AVX-512 build of the
 * same operation sequence.  Which one runs is decided *once per
 * process* from two inputs:
 *
 *  - the host CPU (cpuid, via __builtin_cpu_supports), and
 *  - the REACT_SIMD environment knob, parsed through react::env:
 *
 *      unset / "off"  -> lane engine disabled; every cell runs the
 *                        classic per-cell scalar path (the bit-exact
 *                        default -- golden results never depend on an
 *                        env var being set);
 *      "scalar"       -> lane engine with the scalar kernel, pinned
 *                        (never a vector kernel, even on capable hosts);
 *      "auto"         -> best kernel the host and build support:
 *                        AVX-512 over AVX2 over scalar;
 *      "avx2"         -> AVX2 kernel, or a loud react_panic when the
 *                        host or build cannot run it -- requesting a
 *                        specific engine and silently getting another
 *                        would invalidate a benchmark run;
 *      "avx512"       -> AVX-512 kernel, with the same loud-failure
 *                        contract as "avx2";
 *      anything else  -> react_warn naming the accepted forms, then the
 *                        unset default (per the react::env contract).
 *
 * Every kernel computes bit-identical results (tests/test_batch_stepper.cc
 * proves it differentially), so the knob is a pure performance choice.
 */

#ifndef REACT_SIM_SIMD_HH
#define REACT_SIM_SIMD_HH

#include <string>

namespace react {
namespace sim {
namespace simd {

/** Parsed REACT_SIMD request. */
enum class Policy
{
    /** Unset/off: classic per-cell stepping, no lane engine. */
    Off,
    /** Best kernel the host supports (AVX2 if possible, else scalar). */
    Auto,
    /** Lane engine with the scalar kernel, pinned. */
    Scalar,
    /** AVX2 kernel or fail loudly. */
    Avx2,
    /** AVX-512 kernel or fail loudly. */
    Avx512,
};

/** Kernel the batch stepper will actually run. */
enum class Kernel
{
    /** No lane engine: cells step one at a time (the default). */
    Disabled,
    /** Portable scalar lane kernel. */
    Scalar,
    /** AVX2 4-wide double kernel (two vectors cover the 8 lanes). */
    Avx2,
    /** AVX-512 8-wide double kernel (one vector covers the batch). */
    Avx512,
};

/** Raw cpuid probe: does this host execute AVX2? */
bool cpuSupportsAvx2();

/** Was the AVX2 kernel translation unit compiled into this binary? */
bool avx2KernelCompiled();

/** Both of the above: the AVX2 kernel can actually run here. */
bool avx2Available();

/** Raw cpuid probe: does this host execute AVX-512F? */
bool cpuSupportsAvx512f();

/** Was the AVX-512 kernel translation unit compiled into this binary? */
bool avx512KernelCompiled();

/** Both of the above: the AVX-512 kernel can actually run here. */
bool avx512Available();

/**
 * Parse a REACT_SIMD value.  Accepts "off", "auto", "scalar", "avx2",
 * "avx512" (exact, lower-case).  Anything else sets *malformed and
 * returns the unset default (Policy::Off); the caller owns the warning
 * so this stays pure and unit-testable.
 */
Policy parsePolicy(const std::string &value, bool *malformed);

/** Read REACT_SIMD through react::env: unset -> Off silently, malformed
 *  -> react_warn naming the accepted forms, then Off. */
Policy envPolicy();

/**
 * Resolve a policy against host capability.  Pure: every input is
 * explicit so the negative paths (avx2/avx512 requested on an incapable
 * host panics; auto falls back) are unit-testable without real
 * hardware.
 */
Kernel resolveKernel(Policy policy, bool avx2_available,
                     bool avx512_available);

/**
 * The process-wide kernel selection: resolveKernel(envPolicy(),
 * avx2Available(), avx512Available()), read once and cached -- the
 * engine must not change between cells of one sweep (mirrors
 * resolveFastPath).
 */
Kernel selectedKernel();

/** Display names for logs and BENCH_*.json. */
const char *kernelName(Kernel kernel);

} // namespace simd
} // namespace sim
} // namespace react

#endif // REACT_SIM_SIMD_HH
