#include "batch_stepper.hh"

#include <algorithm>

#include "util/logging.hh"

namespace react {
namespace sim {

namespace detail {

namespace {

/** units::capEnergy's operation sequence with 0.5*C pre-rounded: the
 *  product 0.5*C is the same double whether formed now or at admission,
 *  so (halfC*v)*v is bitwise capEnergy(C, v). */
inline double
laneEnergy(double half_c, double v)
{
    return (half_c * v) * v;
}

} // namespace

void
batchStepScalar(BatchLaneState &s)
{
    // Phase-for-phase the arithmetic of StaticBuffer::step on one lane,
    // with every scalar early-out replaced by its bitwise-no-op
    // arithmetic form (see batch_stepper.hh).  GCC may auto-vectorize
    // this loop; lane-wise IEEE ops round identically either way.
    for (int l = 0; l < BatchLaneState::kMaxLanes; ++l) {
        const double half_c = s.halfC[l];
        const double cap = s.capacitance[l];

        // 1. Self-discharge: Capacitor::leak.  decay is 1.0 for
        //    lossless/frozen lanes, making the multiply and the ledger
        //    add bitwise no-ops (matching the scalar early-out).
        const double v0 = s.v[l];
        const double v1 = v0 * s.decay[l];
        s.leaked[l] += laneEnergy(half_c, v0) - laneEnergy(half_c, v1);

        // 2. Harvest: chargeFromPower (diode drop 0, floor 0.2 V) into
        //    Capacitor::addCharge.  At zero power the charge is forced
        //    to +0.0, so v1 + (+0.0)/C leaves the voltage bits alone,
        //    exactly like the scalar P <= 0 early-out.
        const double p = s.harvestW[l];
        const double v_eff = std::max(v1, 0.2);
        const double current = p / v_eff;
        double q = current * s.dt;
        if (!(p > 0.0))
            q = 0.0;
        double v2 = v1 + q / cap;
        if (v2 < 0.0)
            v2 = 0.0;
        s.harvested[l] +=
            laneEnergy(half_c, v2) - laneEnergy(half_c, v1);

        // 3. Backend load: applyCurrent(-I, dt).  (-I)*dt and -(I*dt)
        //    are the same bits (negation is exact), and at I == 0 the
        //    added -0.0/C term is again a bitwise no-op.
        const double dq = -(s.loadA[l] * s.dt);
        double v3 = v2 + dq / cap;
        if (v3 < 0.0)
            v3 = 0.0;
        s.delivered[l] +=
            laneEnergy(half_c, v2) - laneEnergy(half_c, v3);

        // 4. Overvoltage protection: Capacitor::clip(clamp).
        double v4 = v3;
        if (v4 > s.clamp[l])
            v4 = s.clamp[l];
        s.clipped[l] += laneEnergy(half_c, v3) - laneEnergy(half_c, v4);

        s.v[l] = v4;
    }
}

#ifndef REACT_HAVE_AVX2_KERNEL
void
batchStepAvx2(BatchLaneState &)
{
    react_panic("AVX2 lane kernel was not compiled into this binary");
}
#endif

} // namespace detail

BatchStepper::BatchStepper(simd::Kernel kernel, double dt)
    : activeKernel(kernel)
{
    react_assert(dt > 0.0, "lane engine timestep must be positive");
    react_assert(kernel != simd::Kernel::Disabled,
                 "BatchStepper constructed with the lane engine disabled");
    if (kernel == simd::Kernel::Avx2)
        react_assert(simd::avx2Available(),
                     "AVX2 lane kernel selected but unavailable "
                     "(resolveKernel should have rejected this)");
    stepFn = kernel == simd::Kernel::Avx2 ? detail::batchStepAvx2
                                          : detail::batchStepScalar;
    state.dt = dt;
    // Inert padding lanes: the kernels process all kMaxLanes
    // unconditionally, so unadmitted lanes carry values for which every
    // phase is a harmless no-op (and divisor-free of zero).
    for (int l = 0; l < kMaxLanes; ++l) {
        state.v[l] = 0.0;
        state.decay[l] = 1.0;
        state.halfC[l] = 0.5;
        state.capacitance[l] = 1.0;
        state.clamp[l] = 1.0;
        state.harvestW[l] = 0.0;
        state.loadA[l] = 0.0;
        state.leaked[l] = 0.0;
        state.harvested[l] = 0.0;
        state.delivered[l] = 0.0;
        state.clipped[l] = 0.0;
    }
}

int
BatchStepper::addLane(const BatchLaneInit &init)
{
    react_assert(laneCount < kMaxLanes, "batch is full (%d lanes)",
                 kMaxLanes);
    react_assert(init.capacitance > 0.0,
                 "lane capacitance must be positive");
    react_assert(init.clamp > 0.0, "lane clamp must be positive");
    const int lane = laneCount++;
    state.v[lane] = init.voltage;
    state.decay[lane] = init.leakDecay;
    state.halfC[lane] = 0.5 * init.capacitance;
    state.capacitance[lane] = init.capacitance;
    state.clamp[lane] = init.clamp;
    state.harvestW[lane] = 0.0;
    state.loadA[lane] = 0.0;
    state.leaked[lane] = init.leaked;
    state.harvested[lane] = init.harvested;
    state.delivered[lane] = init.delivered;
    state.clipped[lane] = init.clipped;
    return lane;
}

void
BatchStepper::setLaneCapacitance(int lane, double capacitance,
                                 double leak_decay)
{
    react_assert(capacitance > 0.0, "lane capacitance must be positive");
    state.capacitance[lane] = capacitance;
    state.halfC[lane] = 0.5 * capacitance;
    state.decay[lane] = leak_decay;
}

void
BatchStepper::freezeLane(int lane)
{
    state.decay[lane] = 1.0;
    state.harvestW[lane] = 0.0;
    state.loadA[lane] = 0.0;
}

} // namespace sim
} // namespace react
