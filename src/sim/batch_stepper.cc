#include "batch_stepper.hh"

#include <algorithm>

#include "util/logging.hh"

namespace react {
namespace sim {

namespace detail {

namespace {

/** units::capEnergy's operation sequence with 0.5*C pre-rounded: the
 *  product 0.5*C is the same double whether formed now or at admission,
 *  so (halfC*v)*v is bitwise capEnergy(C, v). */
inline double
laneEnergy(double half_c, double v)
{
    return (half_c * v) * v;
}

} // namespace

void
batchStepScalar(BatchLaneState &s)
{
    // Phase-for-phase the arithmetic of StaticBuffer::step on one lane,
    // with every scalar early-out replaced by its bitwise-no-op
    // arithmetic form (see batch_stepper.hh).  GCC may auto-vectorize
    // this loop; lane-wise IEEE ops round identically either way.
    for (int l = 0; l < BatchLaneState::kMaxLanes; ++l) {
        const double half_c = s.halfC[l];
        const double cap = s.capacitance[l];

        // 1. Self-discharge: Capacitor::leak.  decay is 1.0 for
        //    lossless/frozen lanes, making the multiply and the ledger
        //    add bitwise no-ops (matching the scalar early-out).
        const double v0 = s.v[l];
        const double v1 = v0 * s.decay[l];
        s.leaked[l] += laneEnergy(half_c, v0) - laneEnergy(half_c, v1);

        // 2. Harvest: chargeFromPower (diode drop 0, floor 0.2 V) into
        //    Capacitor::addCharge.  At zero power the charge is forced
        //    to +0.0, so v1 + (+0.0)/C leaves the voltage bits alone,
        //    exactly like the scalar P <= 0 early-out.
        const double p = s.harvestW[l];
        const double v_eff = std::max(v1, 0.2);
        const double current = p / v_eff;
        double q = current * s.dt;
        if (!(p > 0.0))
            q = 0.0;
        double v2 = v1 + q / cap;
        if (v2 < 0.0)
            v2 = 0.0;
        s.harvested[l] +=
            laneEnergy(half_c, v2) - laneEnergy(half_c, v1);

        // 3. Backend load: applyCurrent(-I, dt).  (-I)*dt and -(I*dt)
        //    are the same bits (negation is exact), at I == 0 the
        //    added -0.0/C term is again a bitwise no-op, and the
        //    division's operands only move through the setters, so the
        //    cached quotient is bitwise the per-step division.
        double v3 = v2 + s.dqOverCap[l];
        if (v3 < 0.0)
            v3 = 0.0;
        s.delivered[l] +=
            laneEnergy(half_c, v2) - laneEnergy(half_c, v3);

        // 4. Overvoltage protection: Capacitor::clip(clamp).
        double v4 = v3;
        if (v4 > s.clamp[l])
            v4 = s.clamp[l];
        s.clipped[l] += laneEnergy(half_c, v3) - laneEnergy(half_c, v4);

        s.v[l] = v4;
    }
}

bool
batchStepQuiet(BatchLaneState &s)
{
    // With every lane unpowered and unloaded, phases 2-4 of the full
    // kernel are bitwise no-ops (see the header comment), so only the
    // leak phase remains -- unless a lane sits above its clamp (a fresh
    // admission can seed that), in which case phase 4 would fire and we
    // must not have mutated anything yet.  Check first, commit second.
    double v1[BatchLaneState::kMaxLanes];
    bool clips = false;
    for (int l = 0; l < BatchLaneState::kMaxLanes; ++l) {
        v1[l] = s.v[l] * s.decay[l];
        clips |= v1[l] > s.clamp[l];
    }
    if (clips)
        return false;
    for (int l = 0; l < BatchLaneState::kMaxLanes; ++l) {
        s.leaked[l] +=
            laneEnergy(s.halfC[l], s.v[l]) - laneEnergy(s.halfC[l], v1[l]);
        s.v[l] = v1[l];
    }
    return true;
}

namespace {

/** One lane of batchStepScalar, same statements in the same order.
 *  Kept separate from the 8-lane loop so the hot all-lane kernel's
 *  codegen (auto-vectorization included) is not perturbed by another
 *  call site. */
void
stepOneLaneFull(BatchLaneState &s, int l)
{
    const double half_c = s.halfC[l];
    const double cap = s.capacitance[l];

    const double v0 = s.v[l];
    const double v1 = v0 * s.decay[l];
    s.leaked[l] += laneEnergy(half_c, v0) - laneEnergy(half_c, v1);

    const double p = s.harvestW[l];
    const double v_eff = std::max(v1, 0.2);
    const double current = p / v_eff;
    double q = current * s.dt;
    if (!(p > 0.0))
        q = 0.0;
    double v2 = v1 + q / cap;
    if (v2 < 0.0)
        v2 = 0.0;
    s.harvested[l] += laneEnergy(half_c, v2) - laneEnergy(half_c, v1);

    double v3 = v2 + s.dqOverCap[l];
    if (v3 < 0.0)
        v3 = 0.0;
    s.delivered[l] += laneEnergy(half_c, v2) - laneEnergy(half_c, v3);

    double v4 = v3;
    if (v4 > s.clamp[l])
        v4 = s.clamp[l];
    s.clipped[l] += laneEnergy(half_c, v3) - laneEnergy(half_c, v4);

    s.v[l] = v4;
}

} // namespace

void
batchStepScalarLower(BatchLaneState &s)
{
    for (int l = 0; l < BatchLaneState::kMaxLanes / 2; ++l)
        stepOneLaneFull(s, l);
}

#ifndef REACT_HAVE_AVX2_KERNEL
void
batchStepAvx2(BatchLaneState &)
{
    react_panic("AVX2 lane kernel was not compiled into this binary");
}

void
batchStepAvx2Lower(BatchLaneState &)
{
    react_panic("AVX2 lane kernel was not compiled into this binary");
}
#endif

#ifndef REACT_HAVE_AVX512_KERNEL
void
batchStepAvx512(BatchLaneState &)
{
    react_panic("AVX-512 lane kernel was not compiled into this binary");
}
#endif

} // namespace detail

BatchStepper::BatchStepper(simd::Kernel kernel, double dt)
    : activeKernel(kernel)
{
    react_assert(dt > 0.0, "lane engine timestep must be positive");
    react_assert(kernel != simd::Kernel::Disabled,
                 "BatchStepper constructed with the lane engine disabled");
    if (kernel == simd::Kernel::Avx2)
        react_assert(simd::avx2Available(),
                     "AVX2 lane kernel selected but unavailable "
                     "(resolveKernel should have rejected this)");
    if (kernel == simd::Kernel::Avx512)
        react_assert(simd::avx512Available(),
                     "AVX-512 lane kernel selected but unavailable "
                     "(resolveKernel should have rejected this)");
    switch (kernel) {
    case simd::Kernel::Avx512:
        stepFn = detail::batchStepAvx512;
        break;
    case simd::Kernel::Avx2:
        stepFn = detail::batchStepAvx2;
        break;
    default:
        stepFn = detail::batchStepScalar;
        break;
    }
    // The half-width tail step: any AVX-512 part also runs AVX2, so
    // both vector kernels share the 4-wide ymm lower step (the xmm/ymm
    // divider is the win over a full-width zmm divide on ragged tails).
#ifdef REACT_HAVE_AVX2_KERNEL
    stepLowerFn = kernel == simd::Kernel::Scalar
        ? detail::batchStepScalarLower
        : detail::batchStepAvx2Lower;
#else
    stepLowerFn = detail::batchStepScalarLower;
#endif
    state.dt = dt;
    // Inert padding lanes: the kernels process all kMaxLanes
    // unconditionally, so unadmitted lanes carry values for which every
    // phase is a harmless no-op (and divisor-free of zero).
    for (int l = 0; l < kMaxLanes; ++l) {
        state.v[l] = 0.0;
        state.decay[l] = 1.0;
        state.halfC[l] = 0.5;
        state.capacitance[l] = 1.0;
        state.clamp[l] = 1.0;
        state.harvestW[l] = 0.0;
        state.loadA[l] = 0.0;
        state.dqOverCap[l] = -0.0;
        state.leaked[l] = 0.0;
        state.harvested[l] = 0.0;
        state.delivered[l] = 0.0;
        state.clipped[l] = 0.0;
    }
}

int
BatchStepper::addLane(const BatchLaneInit &init)
{
    react_assert(laneCount < kMaxLanes, "batch is full (%d lanes)",
                 kMaxLanes);
    const int lane = laneCount;
    reinitLane(lane, init);
    return lane;
}

void
BatchStepper::reinitLane(int lane, const BatchLaneInit &init)
{
    react_assert(lane >= 0 && lane < kMaxLanes,
                 "lane index %d out of range", lane);
    react_assert(init.capacitance > 0.0,
                 "lane capacitance must be positive");
    react_assert(init.clamp > 0.0, "lane clamp must be positive");
    laneCount = std::max(laneCount, lane + 1);
    state.v[lane] = init.voltage;
    state.decay[lane] = init.leakDecay;
    state.halfC[lane] = 0.5 * init.capacitance;
    state.capacitance[lane] = init.capacitance;
    state.clamp[lane] = init.clamp;
    setHarvestPower(lane, 0.0);
    setLoadCurrent(lane, 0.0);
    state.leaked[lane] = init.leaked;
    state.harvested[lane] = init.harvested;
    state.delivered[lane] = init.delivered;
    state.clipped[lane] = init.clipped;
}

void
BatchStepper::setLaneCapacitance(int lane, double capacitance,
                                 double leak_decay)
{
    react_assert(capacitance > 0.0, "lane capacitance must be positive");
    state.capacitance[lane] = capacitance;
    state.halfC[lane] = 0.5 * capacitance;
    state.decay[lane] = leak_decay;
    // The cached load-phase quotient divides by the capacitance;
    // refresh it for the new part (same operand sequence as the
    // setter, so the bits match a per-step division).
    state.dqOverCap[lane] =
        (-(state.loadA[lane] * state.dt)) / capacitance;
}

void
BatchStepper::stepLane(int lane)
{
    react_assert(lane >= 0 && lane < kMaxLanes,
                 "lane index %d out of range", lane);
    // Per-lane quiet peephole, same reasoning as batchStepQuiet but for
    // one lane: unpowered and unloaded means phases 2-4 are bitwise
    // no-ops unless the post-leak voltage would clip.
    if (!lanePowered[lane] && !laneLoaded[lane]) {
        const double v0 = state.v[lane];
        const double v1 = v0 * state.decay[lane];
        if (!(v1 > state.clamp[lane])) {
            state.leaked[lane] += detail::laneEnergy(state.halfC[lane], v0) -
                detail::laneEnergy(state.halfC[lane], v1);
            state.v[lane] = v1;
            return;
        }
    }
    detail::stepOneLaneFull(state, lane);
}

void
BatchStepper::freezeLane(int lane)
{
    state.decay[lane] = 1.0;
    setHarvestPower(lane, 0.0);
    setLoadCurrent(lane, 0.0);
}

} // namespace sim
} // namespace react
