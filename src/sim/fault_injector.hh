/**
 * @file
 * Deterministic hardware fault injection for the energy-circuit simulator.
 *
 * The reproduction's baseline models ideal hardware: every DPDT switch
 * actuates, every comparator reads true, every capacitor holds its
 * datasheet value.  Real batteryless deployments treat misbehaving
 * hardware as the common case, so this module injects the failure modes
 * the intermittency literature documents -- stuck/slow switches,
 * comparator offset drift and transient misreads, capacitance fade and
 * ESR rise, diode open/short failures, harvester dropouts, and FRAM
 * corruption on power-loss writes -- while keeping every run exactly
 * repeatable.
 *
 * ## Seeding scheme (reproducible per-component schedules)
 *
 * A single master seed drives the whole fault universe.  Each simulated
 * component (a bank's switch, a comparator, a diode...) is identified by
 * a stable string name, e.g. "react.bank2.switch"; its private stream is
 * derived as
 *
 *     Rng master(seed);
 *     Rng stream = master.child(fnv1a64(component_name));
 *
 * `Rng::child` is a pure function of (master state, tag), so a
 * component's schedule depends only on the experiment seed and its own
 * name -- never on how many other components exist or the order in which
 * they first query the injector.  Two runs with the same seed and the
 * same component names replay bit-identical fault schedules.
 *
 * Time-driven faults (diode failures, harvester dropouts, comparator
 * misreads) are drawn as Poisson event schedules; per-actuation faults
 * (stuck/slow switches, FRAM torn writes) are Bernoulli draws from the
 * owning component's stream at each opportunity.  The injector never
 * perturbs anything when the corresponding plan rate is zero, so an
 * attached all-zero plan leaves the simulation bit-identical to an
 * unattached one.
 */

#ifndef REACT_SIM_FAULT_INJECTOR_HH
#define REACT_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace sim {

using units::Seconds;
using units::Volts;
using units::Watts;

/** Failure state of one isolation/input diode. */
enum class DiodeFault
{
    /** Operating normally. */
    None,
    /** Failed open: no current passes in either direction. */
    Open,
    /** Failed short: conducts both directions with no forward drop. */
    Short,
};

/** Rates and probabilities for every modelled fault class.
 *  All-zero (the default) disables injection entirely. */
struct FaultPlan
{
    /** P[a commanded switch transition jams, permanently]. */
    double switchStuckProbability = 0.0;
    /** P[a commanded transition lands one controller poll late]. */
    double switchSlowProbability = 0.0;

    /** Comparator offset random-walk intensity, volts per sqrt(hour). */
    double comparatorDriftVoltsPerSqrtHour = 0.0;
    /** Transient comparator misreads per hour (Poisson). */
    double comparatorMisreadsPerHour = 0.0;
    /** Peak magnitude of a misread, volts (error ~ U[-m, +m]). */
    double comparatorMisreadMagnitude = 1.0;

    /** Fraction of capacitance lost per hour (dielectric aging). */
    double capacitanceFadePerHour = 0.0;
    /** Fractional growth of switch/diode series resistance per hour. */
    double esrRisePerHour = 0.0;

    /** Diode failures per diode-hour (Poisson; fail-stop). */
    double diodeFailuresPerHour = 0.0;
    /** Fraction of diode failures that short (rest fail open). */
    double diodeShortFraction = 0.5;

    /** Harvester trace dropouts per hour (Poisson). */
    double harvesterDropoutsPerHour = 0.0;
    /** Mean dropout duration (exponential). */
    Seconds harvesterDropoutMeanSeconds{5.0};

    /** P[a power-loss write tears the FRAM record being written]. */
    double framCorruptionPerPowerLoss = 0.0;

    /** Whether any fault class is active. */
    bool enabled() const;

    /** The all-zero plan (explicit spelling of the default). */
    static FaultPlan none() { return FaultPlan(); }

    /**
     * A canonical mixed-fault plan scaled by a severity knob; severity 1
     * is a plausible harsh deployment, 0 disables everything.  Used by
     * the fault-sweep bench so REACT and the static baselines face the
     * same schedule.
     */
    static FaultPlan stress(double severity);
};

/** What happened, when, to which component. */
enum class FaultEventKind
{
    SwitchStuck,
    SwitchSlow,
    ComparatorMisread,
    DiodeOpen,
    DiodeShort,
    HarvesterDropoutBegin,
    HarvesterDropoutEnd,
    FramCorruption,
    /** Recovery action: the watchdog retired a faulty bank. */
    BankRetired,
    /** Recovery action: a corrupt FRAM config record was reset. */
    FramRecovery,
};

/** Human-readable event-kind name. */
const char *faultEventKindName(FaultEventKind kind);

/** Whether the kind is a recovery action (vs an injected fault). */
bool isRecoveryEvent(FaultEventKind kind);

/** One fault or recovery occurrence. */
struct FaultEvent
{
    /** Injector time. */
    Seconds time{0.0};
    FaultEventKind kind = FaultEventKind::SwitchStuck;
    /** Component name ("react.bank2.switch", "harvester", ...). */
    std::string component;
    /** Kind-specific magnitude (misread error volts, corrupted byte...). */
    double magnitude = 0.0;
};

/**
 * Seeded, deterministic, schedule-driven fault source.  One injector is
 * shared by every component of one experiment; the harness advances its
 * clock once per timestep and components query it from their step paths.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan, uint64_t seed = 0x5eedull);

    const FaultPlan &plan() const { return faultPlan; }

    /** Injector clock. */
    Seconds now() const { return Seconds(t); }

    /** Advance the clock; steps the harvester-dropout schedule. */
    void advance(Seconds dt);

    /**
     * Draw the outcome of one commanded switch actuation.  A stuck draw
     * is permanent: every later actuation of the same component fails
     * too (the mechanism is jammed).
     *
     * @return true when the switch physically moved.
     */
    bool switchActuates(const std::string &component);

    /** Whether the component's switch has jammed (no draw; pure query). */
    bool isSwitchStuck(const std::string &component) const;

    /** One-shot draw: the actuation lands one controller poll late. */
    bool switchDelayed(const std::string &component);

    /**
     * Pass a voltage through a faulty comparator: applies the
     * component's accumulated offset drift, plus a transient misread
     * when the component's Poisson misread schedule fired since the
     * previous read.  Returns the (non-negative) observed voltage.
     */
    Volts comparatorRead(const std::string &component, Volts actual);

    /** Multiplicative capacitance derating at the current time (<= 1). */
    double capacitanceFactor(const std::string &component);

    /** Multiplicative series-resistance growth at the current time. */
    double esrMultiplier(const std::string &component);

    /** Failure state of the named diode at the current time. */
    DiodeFault diodeFault(const std::string &component);

    /** Gate harvester power through the dropout schedule. */
    Watts filterHarvest(Watts input_power) const;

    /** Whether a harvester dropout is in progress. */
    bool inHarvesterDropout() const { return dropoutActive; }

    /**
     * Draw a power-loss torn-write fault; on a hit, flips one random bit
     * of @p bytes (when given and non-empty) and logs the corruption.
     *
     * @return true when the record was corrupted.
     */
    bool maybeCorruptOnPowerLoss(const std::string &component,
                                 std::vector<uint8_t> *bytes);

    /** Append to the event log (components report recovery actions). */
    void recordEvent(FaultEventKind kind, const std::string &component,
                     double magnitude = 0.0);

    /** Event log, oldest first (capped; counts stay exact). */
    const std::vector<FaultEvent> &events() const { return eventLog; }

    /** Exact number of events of one kind, including any dropped from
     *  the capped log. */
    uint64_t eventCount(FaultEventKind kind) const;

    /** Total injected faults (excludes recovery events). */
    uint64_t faultCount() const;

    /** Total recovery actions (bank retirements, FRAM resets). */
    uint64_t recoveryCount() const;

    /**
     * Serialize the complete injector state: clock, master stream, the
     * dropout machine, every lazily-created component (including its
     * full RNG stream state -- there is no hidden static or
     * thread-local state anywhere in the injector), the event log, and
     * the exact per-kind counters.  After restore(), every subsequent
     * draw matches the uninterrupted sequence bit-for-bit.  The plan is
     * construction state and must match (validated by the caller's
     * snapshot layout, not here).
     */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    /** Lazily created per-component fault state. */
    struct Component
    {
        Rng rng{0};
        bool stuck = false;
        double driftOffset = 0.0;
        double driftUpdatedAt = 0.0;
        double nextMisreadAt = 0.0;
        double agingJitter = 1.0;
        double diodeFailsAt = 0.0;
        DiodeFault diodeMode = DiodeFault::None;
        bool diodeReported = false;
    };

    Component &component(const std::string &name);
    const Component *findComponent(const std::string &name) const;

    FaultPlan faultPlan;
    Rng master;
    double t = 0.0;
    std::map<std::string, Component> components;

    /** Harvester dropout state machine (advanced with the clock). */
    bool dropoutActive = false;
    double nextDropoutEdge = 0.0;
    bool dropoutScheduleInit = false;

    std::vector<FaultEvent> eventLog;
    uint64_t kindCounts[10] = {};
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_FAULT_INJECTOR_HH
