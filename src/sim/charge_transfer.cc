#include "charge_transfer.hh"

#include <algorithm>
#include <cmath>

#include "sim/hotloop_stats.hh"
#include "util/logging.hh"

namespace react {
namespace sim {

TransferResult
transferCharge(Capacitor &source, Capacitor &sink, Ohms resistance,
               Volts diode_drop, Seconds dt, TransferCache *cache)
{
    react_assert(resistance > Ohms(0),
                 "transfer resistance must be positive");
    react_assert(diode_drop >= Volts(0), "diode drop must be >= 0");

    TransferResult result;
    const Volts dv = source.voltage() - sink.voltage() - diode_drop;
    if (dv <= Volts(0) || dt <= Seconds(0))
        return result;

    const Farads c1 = source.capacitance();
    const Farads c2 = sink.capacitance();
    Farads ceq;
    double decay;
    if (cache != nullptr && cache->c1 == c1 && cache->c2 == c2 &&
        cache->resistance == resistance && cache->dt == dt) {
        ceq = cache->ceq;
        decay = cache->decay;
        ++hotloop::counters().transferCacheHits;
    } else {
        ceq = c1 * c2 / (c1 + c2);
        const Seconds tau = resistance * ceq;
        // The excess voltage difference (above the diode drop) relaxes
        // exponentially; the transferred charge is the integral of the
        // current.
        decay = std::exp(-dt / tau);
        if (cache != nullptr) {
            *cache = TransferCache{c1, c2, resistance, dt, ceq, decay};
            ++hotloop::counters().transferCacheMisses;
        }
    }
    const Coulombs q = ceq * dv * (1.0 - decay);

    const Joules e_before = source.energy() + sink.energy();
    source.addCharge(-q);
    sink.addCharge(q);
    const Joules e_after = source.energy() + sink.energy();

    result.charge = q;
    result.diodeLoss = diode_drop * q;
    result.resistiveLoss = e_before - e_after - result.diodeLoss;
    // Numerical guard: the closed form keeps this non-negative, but clamp
    // rounding noise so ledgers never accumulate negative loss.
    result.resistiveLoss = std::max(result.resistiveLoss, Joules(0.0));
    return result;
}

TransferResult
chargeFromPower(Capacitor &sink, Watts power, Seconds dt, Volts diode_drop,
                Volts v_floor)
{
    TransferResult result;
    if (power <= Watts(0) || dt <= Seconds(0))
        return result;

    const Volts v_eff = std::max(sink.voltage() + diode_drop, v_floor);
    const Amps current = power / v_eff;
    const Coulombs q = current * dt;

    sink.addCharge(q);
    result.charge = q;
    result.diodeLoss = diode_drop * q;
    return result;
}

Joules
equalizeParallel(Capacitor &a, Capacitor &b)
{
    const Farads c1 = a.capacitance();
    const Farads c2 = b.capacitance();
    const Coulombs q_total = a.charge() + b.charge();
    const Joules e_before = a.energy() + b.energy();
    const Volts v_final = q_total / (c1 + c2);
    a.setVoltage(v_final);
    b.setVoltage(v_final);
    const Joules e_after = a.energy() + b.energy();
    return std::max(e_before - e_after, Joules(0.0));
}

} // namespace sim
} // namespace react
