#include "charge_transfer.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace react {
namespace sim {

TransferResult
transferCharge(Capacitor &source, Capacitor &sink, double resistance,
               double diode_drop, double dt)
{
    react_assert(resistance > 0.0, "transfer resistance must be positive");
    react_assert(diode_drop >= 0.0, "diode drop must be >= 0");

    TransferResult result;
    const double dv = source.voltage() - sink.voltage() - diode_drop;
    if (dv <= 0.0 || dt <= 0.0)
        return result;

    const double c1 = source.capacitance();
    const double c2 = sink.capacitance();
    const double ceq = c1 * c2 / (c1 + c2);
    const double tau = resistance * ceq;

    // The excess voltage difference (above the diode drop) relaxes
    // exponentially; the transferred charge is the integral of the current.
    const double decay = std::exp(-dt / tau);
    const double q = ceq * dv * (1.0 - decay);

    const double e_before = source.energy() + sink.energy();
    source.addCharge(-q);
    sink.addCharge(q);
    const double e_after = source.energy() + sink.energy();

    result.charge = q;
    result.diodeLoss = diode_drop * q;
    result.resistiveLoss = e_before - e_after - result.diodeLoss;
    // Numerical guard: the closed form keeps this non-negative, but clamp
    // rounding noise so ledgers never accumulate negative loss.
    result.resistiveLoss = std::max(result.resistiveLoss, 0.0);
    return result;
}

TransferResult
chargeFromPower(Capacitor &sink, double power, double dt, double diode_drop,
                double v_floor)
{
    TransferResult result;
    if (power <= 0.0 || dt <= 0.0)
        return result;

    const double v_eff = std::max(sink.voltage() + diode_drop, v_floor);
    const double current = power / v_eff;
    const double q = current * dt;

    sink.addCharge(q);
    result.charge = q;
    result.diodeLoss = diode_drop * q;
    return result;
}

double
equalizeParallel(Capacitor &a, Capacitor &b)
{
    const double c1 = a.capacitance();
    const double c2 = b.capacitance();
    const double q_total = a.charge() + b.charge();
    const double e_before = a.energy() + b.energy();
    const double v_final = q_total / (c1 + c2);
    a.setVoltage(v_final);
    b.setVoltage(v_final);
    const double e_after = a.energy() + b.energy();
    return std::max(e_before - e_after, 0.0);
}

} // namespace sim
} // namespace react
