/**
 * @file
 * Batch-of-cells lane engine: advance up to 8 independent StaticBuffer
 * physics states in lockstep, one SIMD lane per cell.
 *
 * The evaluation sweeps (Table 2, Figs. 1/5/7) are embarrassingly
 * parallel across cells, and a static cell's per-step physics is four
 * short phases of straight-line arithmetic (leak, harvest, load, clip --
 * see buffers/static_buffer.cc).  This engine transposes the per-cell
 * state into lane-major arrays at batch admission and replays *exactly*
 * the scalar operation sequence on every lane per step, so each lane's
 * trajectory is bit-identical to the cell stepping alone:
 *
 *  - every IEEE operation (mul/add/sub/div/max/compare) is performed
 *    lane-wise in the same order the scalar code performs it; there are
 *    no horizontal reductions (the determinism linter's DET007 bans
 *    them outright);
 *  - the scalar code's early-outs (no leak on a lossless part, no
 *    harvest at zero power, no load at zero current, no clip under the
 *    clamp) are replaced by arithmetic that is *bitwise* a no-op in the
 *    skipped case: x * 1.0 == x, x + (+-0.0) == x for the x >= +0.0
 *    values that arise here, and accumulator += +0.0 never changes the
 *    accumulator's bits (ledger totals are never -0.0);
 *  - the vector translation units are compiled with -mavx2 / -mavx512f
 *    only (no FMA: neither flag enables it) plus -ffp-contract=off, so
 *    vector and scalar lanes round identically everywhere.
 *
 * Inactive (admitted-short or frozen) lanes carry inert values -- decay
 * 1.0, zero power, zero load -- so the kernels always process all
 * kMaxLanes lanes unconditionally with no tail handling.
 *
 * Everything lives in fixed-capacity member arrays: admission, stepping,
 * and readout perform zero heap allocations (bench/micro_engine.cc's
 * operator-new audit enforces this).
 */

#ifndef REACT_SIM_BATCH_STEPPER_HH
#define REACT_SIM_BATCH_STEPPER_HH

#include "sim/simd.hh"
#include "util/units.hh"

namespace react {
namespace sim {

/**
 * Lane-major state shared with the kernel translation units.  Arrays are
 * 64-byte aligned so both vector kernels use aligned loads/stores (one
 * full __m512d per array for AVX-512, two __m256d for AVX2).
 */
struct BatchLaneState
{
    /** Maximum lanes per batch: two 4-wide AVX2 vectors. */
    static constexpr int kMaxLanes = 8;

    /** Terminal voltage per lane (the compute truth during a batch). */
    alignas(64) double v[kMaxLanes];
    /** Per-step leak decay factor exp(-dt/tau); 1.0 for lossless or
     *  frozen lanes (a bitwise no-op multiply). */
    alignas(64) double decay[kMaxLanes];
    /** 0.5 * C, the first rounded term of units::capEnergy. */
    alignas(64) double halfC[kMaxLanes];
    /** Capacitance (the divisor in Capacitor::addCharge). */
    alignas(64) double capacitance[kMaxLanes];
    /** Overvoltage clamp (StaticBuffer rail clamp). */
    alignas(64) double clamp[kMaxLanes];
    /** Harvest input power for the pending step, watts. */
    alignas(64) double harvestW[kMaxLanes];
    /** Backend load current for the pending step, amps (>= 0). */
    alignas(64) double loadA[kMaxLanes];
    /** Precomputed (-(loadA*dt))/capacitance: the load phase's voltage
     *  delta.  Its three operands only change through the setters, and
     *  IEEE division is deterministic, so caching the quotient there
     *  is bitwise the per-step division -- one of the kernel's three
     *  divides hoisted out of the hot loop. */
    alignas(64) double dqOverCap[kMaxLanes];
    /** @name Ledger accumulators (same one-add-per-step sequence as the
     *  scalar EnergyLedger fields). @{ */
    alignas(64) double leaked[kMaxLanes];
    alignas(64) double harvested[kMaxLanes];
    alignas(64) double delivered[kMaxLanes];
    alignas(64) double clipped[kMaxLanes];
    /** @} */
    /** Integration timestep, seconds (shared by every lane). */
    double dt;
};

namespace detail {

/** Portable lane kernel: the scalar operation sequence, per lane. */
void batchStepScalar(BatchLaneState &s);

/**
 * All-lane quiet-step peephole: when no lane harvests (!(P > 0)
 * everywhere) and no lane draws load (I == +-0 everywhere), phases 2-4
 * collapse to bitwise no-ops -- q and dq are forced (+-)0, x + (+-0.0)
 * leaves the nonnegative rail bits alone, the negative clamps cannot
 * fire, and the harvested/delivered/clipped accumulators each gain
 * +0.0, which never changes a never-negative total's bits.  Only the
 * leak phase remains: v *= decay plus the leaked-ledger add.  Returns
 * false WITHOUT touching state when any lane's post-leak voltage would
 * exceed its clamp (admission can seed a lane above the rail clamp);
 * the caller then runs the full kernel.  The caller asserts the
 * quiet precondition; BatchStepper::step() tracks it via its
 * setter-maintained powered/loaded lane counts.
 */
bool batchStepQuiet(BatchLaneState &s);

/** AVX2 lane kernel (batch_kernels_avx2.cc; only linked when the
 *  toolchain accepts -mavx2).  Bit-identical to batchStepScalar. */
void batchStepAvx2(BatchLaneState &s);

/** Lower-half AVX2 kernel: lanes 0-3 only, lanes 4-7 untouched (the
 *  ragged-tail narrow step; see BatchStepper::stepLower). */
void batchStepAvx2Lower(BatchLaneState &s);

/** Portable lower-half kernel: lanes 0-3 through the scalar operation
 *  sequence (the stepLower fallback when no AVX2 TU is linked). */
void batchStepScalarLower(BatchLaneState &s);

/** AVX-512 lane kernel (batch_kernels_avx512.cc; only linked when the
 *  toolchain accepts -mavx512f).  Bit-identical to batchStepScalar. */
void batchStepAvx512(BatchLaneState &s);

} // namespace detail

/** Per-lane state at batch admission (transposed from the cell's
 *  StaticBuffer / Capacitor / EnergyLedger). */
struct BatchLaneInit
{
    /** Terminal voltage. */
    double voltage = 0.0;
    /** Capacitance. */
    double capacitance = 0.0;
    /** Rail clamp. */
    double clamp = 0.0;
    /** Capacitor::leakDecayFor(dt): exp(-dt/tau), 1.0 when lossless. */
    double leakDecay = 1.0;
    /** @name Ledger totals at admission. @{ */
    double leaked = 0.0;
    double harvested = 0.0;
    double delivered = 0.0;
    double clipped = 0.0;
    /** @} */
};

/**
 * The lane engine.  Usage per step: set each active lane's harvest
 * power and load current, then step() once; read voltages/ledgers back
 * any time.  Lanes that finish early are frozen (freezeLane), which
 * turns every subsequent step into a bitwise no-op for that lane --
 * ragged batch tails cost nothing and perturb nothing.
 */
class BatchStepper
{
  public:
    static constexpr int kMaxLanes = BatchLaneState::kMaxLanes;

    /**
     * @param kernel Scalar, Avx2, or Avx512 (from simd::selectedKernel()
     *        or an explicit test choice).  Disabled is a caller bug; a
     *        vector kernel panics unless the matching
     *        simd::*Available() probe holds.
     * @param dt Integration timestep shared by every lane, seconds.
     */
    BatchStepper(simd::Kernel kernel, double dt);

    /** Admit one cell; returns its lane index. */
    int addLane(const BatchLaneInit &init);

    /**
     * Reinitialize lane @p lane for a new cell (the slot-refill path:
     * a finished cell's lane is immediately re-admitted for the next
     * queued cell).  Extends the admitted-lane count when @p lane is
     * past it.  Lanes are fully independent, so re-seeding one slot
     * never perturbs its batch mates' trajectories.
     */
    void reinitLane(int lane, const BatchLaneInit &init);

    /** Admitted lanes (including frozen ones). */
    int lanes() const { return laneCount; }

    /** The kernel actually stepping this batch. */
    simd::Kernel kernel() const { return activeKernel; }

    /** Set the harvest input power for the pending step. */
    void setHarvestPower(int lane, double watts)
    {
        state.harvestW[lane] = watts;
        // Track the quiet-step precondition exactly as the scalar
        // kernel's harvest early-out sees it: q is forced to zero
        // unless P > 0 (NaN therefore counts as unpowered).
        const bool powered = watts > 0.0;
        poweredLanes += static_cast<int>(powered) -
            static_cast<int>(lanePowered[lane]);
        lanePowered[lane] = powered;
    }

    /** Set the backend load current for the pending step. */
    void setLoadCurrent(int lane, double amps)
    {
        // An unchanged current re-set is a no-op (the == can only
        // alias +0.0 with -0.0, and either zero makes the load phase
        // a bitwise no-op anyway); the step loops re-set the load
        // after every benchmark tick, and it rarely moves.
        if (amps == state.loadA[lane])
            return;
        state.loadA[lane] = amps;
        state.dqOverCap[lane] =
            (-(amps * state.dt)) / state.capacitance[lane];
        // Either zero (+0.0 or -0.0) makes the load phase a bitwise
        // no-op (dq = -+0, and x + (+-0.0) == x for the x >= +0.0 rail
        // values here), so both zeros count as unloaded.
        const bool loaded = amps != 0.0;
        loadedLanes += static_cast<int>(loaded) -
            static_cast<int>(laneLoaded[lane]);
        laneLoaded[lane] = loaded;
    }

    /**
     * Resync a lane whose capacitance changed mid-batch (dielectric
     * aging books the energy delta on the cell's own Capacitor; the
     * lane then continues with the new constants).
     *
     * @param lane Lane index.
     * @param capacitance New capacitance, farads.
     * @param leak_decay Capacitor::leakDecayFor(dt) for the new part.
     */
    void setLaneCapacitance(int lane, double capacitance,
                            double leak_decay);

    /**
     * Freeze a finished lane: decay 1.0, zero power, zero load.  Every
     * later step leaves the lane's voltage and ledger bits untouched,
     * so one cell draining early never perturbs its batch mates.
     */
    void freezeLane(int lane);

    /**
     * Advance every lane one dt (frozen lanes are bitwise no-ops).
     * When no lane is powered or loaded -- tracked by the setters, so
     * the check is two integer compares -- the quiet-step peephole
     * (detail::batchStepQuiet) replaces the full kernel with the leak
     * phase alone; the result is bit-identical either way.
     */
    void step()
    {
        if ((poweredLanes | loadedLanes) == 0 &&
            detail::batchStepQuiet(state))
            return;
        stepFn(state);
    }

    /** Advance one dt through the full kernel, bypassing the
     *  quiet-step peephole (differential tests pin the two paths
     *  against each other). */
    void stepFull() { stepFn(state); }

    /** True when no lane is powered or loaded (the quiet-step
     *  precondition the setters track).  Only harvest/load setter
     *  calls can change this, never step() itself -- the batch
     *  runner's dark-idle burst relies on that invariant. */
    bool quiet() const { return (poweredLanes | loadedLanes) == 0; }

    /**
     * Advance ONE lane one dt through the scalar operation sequence
     * (with the same per-lane quiet peephole).  Because a frozen or
     * inert lane's step is a bitwise no-op, stepping only the live
     * lanes is bit-identical to step() when every other lane is
     * frozen -- the batch runner uses this for ragged tails where one
     * or two cells outlive the rest and a full-width vector step would
     * waste the divider on no-op lanes.
     */
    void stepLane(int lane);

    /**
     * Advance lanes 0-3 one dt, leaving lanes 4-7 completely untouched.
     * Bit-identical to step() whenever every upper lane is frozen or
     * inert (their steps are bitwise no-ops, so skipping them changes
     * nothing).  The batch runner uses this for ragged tails: under LPT
     * admission the longest cells hold the lowest slots, so once the
     * short cells drain only the lower half is live and a half-width
     * vector step halves the divider chain.  Shares the quiet-step
     * peephole with step() (the quiet leak touches all 8 lanes, but a
     * frozen upper lane's leak is itself a bitwise no-op).
     */
    void stepLower()
    {
        if ((poweredLanes | loadedLanes) == 0 &&
            detail::batchStepQuiet(state))
            return;
        stepLowerFn(state);
    }

    /** @name Lane readout. @{ */
    double voltage(int lane) const { return state.v[lane]; }
    /** Lane-major rail voltages (the gate bank's batch read path). */
    const double *voltages() const { return state.v; }
    double leaked(int lane) const { return state.leaked[lane]; }
    double harvested(int lane) const { return state.harvested[lane]; }
    double delivered(int lane) const { return state.delivered[lane]; }
    double clipped(int lane) const { return state.clipped[lane]; }
    /** @} */

  private:
    BatchLaneState state;
    int laneCount = 0;
    simd::Kernel activeKernel;
    void (*stepFn)(BatchLaneState &);
    void (*stepLowerFn)(BatchLaneState &);
    /** @name Quiet-step eligibility tracking (see step()). @{ */
    int poweredLanes = 0;
    int loadedLanes = 0;
    bool lanePowered[kMaxLanes] = {};
    bool laneLoaded[kMaxLanes] = {};
    /** @} */
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_BATCH_STEPPER_HH
