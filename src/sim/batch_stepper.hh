/**
 * @file
 * Batch-of-cells lane engine: advance up to 8 independent StaticBuffer
 * physics states in lockstep, one SIMD lane per cell.
 *
 * The evaluation sweeps (Table 2, Figs. 1/5/7) are embarrassingly
 * parallel across cells, and a static cell's per-step physics is four
 * short phases of straight-line arithmetic (leak, harvest, load, clip --
 * see buffers/static_buffer.cc).  This engine transposes the per-cell
 * state into lane-major arrays at batch admission and replays *exactly*
 * the scalar operation sequence on every lane per step, so each lane's
 * trajectory is bit-identical to the cell stepping alone:
 *
 *  - every IEEE operation (mul/add/sub/div/max/compare) is performed
 *    lane-wise in the same order the scalar code performs it; there are
 *    no horizontal reductions (the determinism linter's DET007 bans
 *    them outright);
 *  - the scalar code's early-outs (no leak on a lossless part, no
 *    harvest at zero power, no load at zero current, no clip under the
 *    clamp) are replaced by arithmetic that is *bitwise* a no-op in the
 *    skipped case: x * 1.0 == x, x + (+-0.0) == x for the x >= +0.0
 *    values that arise here, and accumulator += +0.0 never changes the
 *    accumulator's bits (ledger totals are never -0.0);
 *  - the AVX2 translation unit is compiled with -mavx2 only (no FMA:
 *    -mavx2 does not enable it) plus -ffp-contract=off, so vector and
 *    scalar lanes round identically everywhere.
 *
 * Inactive (admitted-short or frozen) lanes carry inert values -- decay
 * 1.0, zero power, zero load -- so the kernels always process all
 * kMaxLanes lanes unconditionally with no tail handling.
 *
 * Everything lives in fixed-capacity member arrays: admission, stepping,
 * and readout perform zero heap allocations (bench/micro_engine.cc's
 * operator-new audit enforces this).
 */

#ifndef REACT_SIM_BATCH_STEPPER_HH
#define REACT_SIM_BATCH_STEPPER_HH

#include "sim/simd.hh"
#include "util/units.hh"

namespace react {
namespace sim {

/**
 * Lane-major state shared with the kernel translation units.  Arrays are
 * 32-byte aligned so the AVX2 kernel uses aligned loads/stores.
 */
struct BatchLaneState
{
    /** Maximum lanes per batch: two 4-wide AVX2 vectors. */
    static constexpr int kMaxLanes = 8;

    /** Terminal voltage per lane (the compute truth during a batch). */
    alignas(32) double v[kMaxLanes];
    /** Per-step leak decay factor exp(-dt/tau); 1.0 for lossless or
     *  frozen lanes (a bitwise no-op multiply). */
    alignas(32) double decay[kMaxLanes];
    /** 0.5 * C, the first rounded term of units::capEnergy. */
    alignas(32) double halfC[kMaxLanes];
    /** Capacitance (the divisor in Capacitor::addCharge). */
    alignas(32) double capacitance[kMaxLanes];
    /** Overvoltage clamp (StaticBuffer rail clamp). */
    alignas(32) double clamp[kMaxLanes];
    /** Harvest input power for the pending step, watts. */
    alignas(32) double harvestW[kMaxLanes];
    /** Backend load current for the pending step, amps (>= 0). */
    alignas(32) double loadA[kMaxLanes];
    /** @name Ledger accumulators (same one-add-per-step sequence as the
     *  scalar EnergyLedger fields). @{ */
    alignas(32) double leaked[kMaxLanes];
    alignas(32) double harvested[kMaxLanes];
    alignas(32) double delivered[kMaxLanes];
    alignas(32) double clipped[kMaxLanes];
    /** @} */
    /** Integration timestep, seconds (shared by every lane). */
    double dt;
};

namespace detail {

/** Portable lane kernel: the scalar operation sequence, per lane. */
void batchStepScalar(BatchLaneState &s);

/** AVX2 lane kernel (batch_kernels_avx2.cc; only linked when the
 *  toolchain accepts -mavx2).  Bit-identical to batchStepScalar. */
void batchStepAvx2(BatchLaneState &s);

} // namespace detail

/** Per-lane state at batch admission (transposed from the cell's
 *  StaticBuffer / Capacitor / EnergyLedger). */
struct BatchLaneInit
{
    /** Terminal voltage. */
    double voltage = 0.0;
    /** Capacitance. */
    double capacitance = 0.0;
    /** Rail clamp. */
    double clamp = 0.0;
    /** Capacitor::leakDecayFor(dt): exp(-dt/tau), 1.0 when lossless. */
    double leakDecay = 1.0;
    /** @name Ledger totals at admission. @{ */
    double leaked = 0.0;
    double harvested = 0.0;
    double delivered = 0.0;
    double clipped = 0.0;
    /** @} */
};

/**
 * The lane engine.  Usage per step: set each active lane's harvest
 * power and load current, then step() once; read voltages/ledgers back
 * any time.  Lanes that finish early are frozen (freezeLane), which
 * turns every subsequent step into a bitwise no-op for that lane --
 * ragged batch tails cost nothing and perturb nothing.
 */
class BatchStepper
{
  public:
    static constexpr int kMaxLanes = BatchLaneState::kMaxLanes;

    /**
     * @param kernel Scalar or Avx2 (from simd::selectedKernel() or an
     *        explicit test choice).  Disabled is a caller bug; Avx2
     *        panics unless simd::avx2Available().
     * @param dt Integration timestep shared by every lane, seconds.
     */
    BatchStepper(simd::Kernel kernel, double dt);

    /** Admit one cell; returns its lane index. */
    int addLane(const BatchLaneInit &init);

    /** Admitted lanes (including frozen ones). */
    int lanes() const { return laneCount; }

    /** The kernel actually stepping this batch. */
    simd::Kernel kernel() const { return activeKernel; }

    /** Set the harvest input power for the pending step. */
    void setHarvestPower(int lane, double watts)
    {
        state.harvestW[lane] = watts;
    }

    /** Set the backend load current for the pending step. */
    void setLoadCurrent(int lane, double amps) { state.loadA[lane] = amps; }

    /**
     * Resync a lane whose capacitance changed mid-batch (dielectric
     * aging books the energy delta on the cell's own Capacitor; the
     * lane then continues with the new constants).
     *
     * @param lane Lane index.
     * @param capacitance New capacitance, farads.
     * @param leak_decay Capacitor::leakDecayFor(dt) for the new part.
     */
    void setLaneCapacitance(int lane, double capacitance,
                            double leak_decay);

    /**
     * Freeze a finished lane: decay 1.0, zero power, zero load.  Every
     * later step leaves the lane's voltage and ledger bits untouched,
     * so one cell draining early never perturbs its batch mates.
     */
    void freezeLane(int lane);

    /** Advance every lane one dt (frozen lanes are bitwise no-ops). */
    void step() { stepFn(state); }

    /** @name Lane readout. @{ */
    double voltage(int lane) const { return state.v[lane]; }
    double leaked(int lane) const { return state.leaked[lane]; }
    double harvested(int lane) const { return state.harvested[lane]; }
    double delivered(int lane) const { return state.delivered[lane]; }
    double clipped(int lane) const { return state.clipped[lane]; }
    /** @} */

  private:
    BatchLaneState state;
    int laneCount = 0;
    simd::Kernel activeKernel;
    void (*stepFn)(BatchLaneState &);
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_BATCH_STEPPER_HH
