/**
 * @file
 * Diode models for REACT's bank-isolation network.
 *
 * The paper contrasts two implementations (S 3.3.2): passive Schottky
 * diodes, whose forward drop at milliamp currents wastes substantial power,
 * and active "ideal diode" circuits (TI LM66100: a comparator plus a pass
 * FET) which present a tiny series resistance and a microwatt-scale
 * quiescent draw.  Both are modelled here so the diode-type ablation bench
 * can reproduce the paper's 0.02 % dissipation claim.
 */

#ifndef REACT_SIM_DIODE_HH
#define REACT_SIM_DIODE_HH

namespace react {
namespace sim {

/** Common interface: forward voltage as a function of forward current. */
class Diode
{
  public:
    virtual ~Diode() = default;

    /**
     * Forward voltage drop when conducting the given current.
     *
     * @param current Forward current in amperes (>= 0).
     * @return Drop in volts (0 when current is 0 for the ideal diode).
     */
    virtual double forwardDrop(double current) const = 0;

    /** Always-on control power (comparator supply etc.), in watts. */
    virtual double quiescentPower() const = 0;

    /** Power dissipated while conducting the given current, in watts. */
    double conductionPower(double current) const;
};

/**
 * Active ideal diode (LM66100-like): pass FET with on-resistance plus a
 * quiescent comparator draw.  Blocks reverse current exactly.
 */
class IdealDiode : public Diode
{
  public:
    /**
     * @param on_resistance Pass-FET resistance in ohms (LM66100: 79 mOhm).
     * @param quiescent Control power in watts (LM66100: ~0.25 uA @ 3.3 V).
     */
    explicit IdealDiode(double on_resistance = 0.079,
                        double quiescent = 0.8e-6);

    double forwardDrop(double current) const override;
    double quiescentPower() const override { return quiescent; }

    /** Series on-resistance in ohms. */
    double onResistance() const { return rOn; }

  private:
    double rOn;
    double quiescent;
};

/**
 * Passive Schottky diode modelled by the Shockley equation
 * V_f = n V_T ln(1 + I / I_s), matched to a small-signal part
 * (~0.3 V at 1 mA).
 */
class SchottkyDiode : public Diode
{
  public:
    /**
     * @param saturation_current Reverse saturation current in amperes.
     * @param ideality Diode ideality factor n.
     * @param thermal_voltage kT/q in volts (25.85 mV at 300 K).
     */
    explicit SchottkyDiode(double saturation_current = 5e-8,
                           double ideality = 1.5,
                           double thermal_voltage = 0.02585);

    double forwardDrop(double current) const override;
    double quiescentPower() const override { return 0.0; }

  private:
    double iSat;
    double n;
    double vt;
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_DIODE_HH
