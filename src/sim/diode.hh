/**
 * @file
 * Diode models for REACT's bank-isolation network.
 *
 * The paper contrasts two implementations (S 3.3.2): passive Schottky
 * diodes, whose forward drop at milliamp currents wastes substantial power,
 * and active "ideal diode" circuits (TI LM66100: a comparator plus a pass
 * FET) which present a tiny series resistance and a microwatt-scale
 * quiescent draw.  Both are modelled here so the diode-type ablation bench
 * can reproduce the paper's 0.02 % dissipation claim.
 */

#ifndef REACT_SIM_DIODE_HH
#define REACT_SIM_DIODE_HH

#include "util/units.hh"

namespace react {
namespace sim {

using units::Amps;
using units::Ohms;
using units::Volts;
using units::Watts;

/** Common interface: forward voltage as a function of forward current. */
class Diode
{
  public:
    virtual ~Diode() = default;

    /**
     * Forward voltage drop when conducting the given current.
     *
     * @param current Forward current (>= 0).
     * @return Drop (0 when current is 0 for the ideal diode).
     */
    virtual Volts forwardDrop(Amps current) const = 0;

    /** Always-on control power (comparator supply etc.). */
    virtual Watts quiescentPower() const = 0;

    /** Power dissipated while conducting the given current. */
    Watts conductionPower(Amps current) const;
};

/**
 * Active ideal diode (LM66100-like): pass FET with on-resistance plus a
 * quiescent comparator draw.  Blocks reverse current exactly.
 */
class IdealDiode : public Diode
{
  public:
    /**
     * @param on_resistance Pass-FET resistance (LM66100: 79 mOhm).
     * @param quiescent Control power (LM66100: ~0.25 uA @ 3.3 V).
     */
    explicit IdealDiode(Ohms on_resistance = Ohms(0.079),
                        Watts quiescent = Watts(0.8e-6));

    Volts forwardDrop(Amps current) const override;
    Watts quiescentPower() const override { return quiescent; }

    /** Series on-resistance. */
    Ohms onResistance() const { return rOn; }

  private:
    Ohms rOn;
    Watts quiescent;
};

/**
 * Passive Schottky diode modelled by the Shockley equation
 * V_f = n V_T ln(1 + I / I_s), matched to a small-signal part
 * (~0.3 V at 1 mA).
 */
class SchottkyDiode : public Diode
{
  public:
    /**
     * @param saturation_current Reverse saturation current.
     * @param ideality Diode ideality factor n (dimensionless).
     * @param thermal_voltage kT/q (25.85 mV at 300 K).
     */
    explicit SchottkyDiode(Amps saturation_current = Amps(5e-8),
                           double ideality = 1.5,
                           Volts thermal_voltage = Volts(0.02585));

    Volts forwardDrop(Amps current) const override;
    Watts quiescentPower() const override { return Watts(0.0); }

    /** Exact (uncached) Shockley solve, bypassing the repeated-current
     *  memo.  Tests cross-check the memoized path against this. */
    Volts forwardDropExact(Amps current) const;

  private:
    Amps iSat;
    double n;
    Volts vt;

    /**
     * Repeated-current memo: bank-isolation sweeps query the same
     * operating current for long stretches, so the last (current, drop)
     * pair is cached.  A hit requires a bitwise-equal current and
     * returns the previously solved drop verbatim -- trivially
     * bit-identical to the uncached log1p solve, and monotonicity of
     * the Shockley curve is preserved because every *distinct* current
     * is still solved exactly.
     */
    mutable Amps memoCurrent{-1.0};
    mutable Volts memoDrop{0.0};
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_DIODE_HH
