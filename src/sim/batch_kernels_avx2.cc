/**
 * @file
 * AVX2 build of the lane kernel: the same operation sequence as
 * detail::batchStepScalar, four lanes per __m256d, two vectors covering
 * the 8 lanes.  Bit-exactness rests on three facts checked here:
 *
 *  - every vector op used (mul/add/sub/div/max/cmp/blend/and/xor) is
 *    lane-wise and correctly rounded, identical to its scalar double
 *    counterpart;
 *  - this translation unit is compiled with -mavx2 *only* -- FMA is a
 *    separate ISA extension that -mavx2 does not enable, and
 *    -ffp-contract=off forbids the compiler from contracting mul+add
 *    anywhere in this file (the #errors below pin both);
 *  - scalar early-outs are replaced by arithmetic no-ops exactly as in
 *    the scalar kernel (see batch_stepper.hh), so no lane ever needs a
 *    divergent branch.
 *
 * There are deliberately no horizontal operations in this file: lane
 * accumulators stay per-lane from admission to readout (the determinism
 * linter's DET007 fixture pins the ban).
 */

#ifndef __AVX2__
#error "batch_kernels_avx2.cc must be compiled with -mavx2"
#endif
#ifdef __FMA__
#error "FMA would contract mul+add and break scalar/SIMD bit-identity"
#endif

#include <immintrin.h>

#include "sim/batch_stepper.hh"

namespace react {
namespace sim {
namespace detail {

namespace {

/** (halfC * v) * v: units::capEnergy's operation sequence. */
inline __m256d
laneEnergy(__m256d half_c, __m256d v)
{
    return _mm256_mul_pd(_mm256_mul_pd(half_c, v), v);
}

/** Advance lanes [base, base+4). */
inline void
stepVector(BatchLaneState &s, int base)
{
    const __m256d dt = _mm256_set1_pd(s.dt);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d v_floor = _mm256_set1_pd(0.2);

    const __m256d decay = _mm256_load_pd(&s.decay[base]);
    const __m256d half_c = _mm256_load_pd(&s.halfC[base]);
    const __m256d cap = _mm256_load_pd(&s.capacitance[base]);
    const __m256d clamp = _mm256_load_pd(&s.clamp[base]);
    const __m256d p = _mm256_load_pd(&s.harvestW[base]);
    const __m256d dq_over_cap = _mm256_load_pd(&s.dqOverCap[base]);
    const __m256d v0 = _mm256_load_pd(&s.v[base]);

    // 1. Self-discharge.
    const __m256d v1 = _mm256_mul_pd(v0, decay);
    const __m256d leaked = _mm256_add_pd(
        _mm256_load_pd(&s.leaked[base]),
        _mm256_sub_pd(laneEnergy(half_c, v0), laneEnergy(half_c, v1)));
    _mm256_store_pd(&s.leaked[base], leaked);

    // 2. Harvest.  q is masked to +0.0 on zero-power lanes (AND with
    //    the P > 0 compare mask), making the addCharge a bitwise no-op.
    const __m256d v_eff = _mm256_max_pd(v1, v_floor);
    const __m256d current = _mm256_div_pd(p, v_eff);
    const __m256d p_mask = _mm256_cmp_pd(p, zero, _CMP_GT_OQ);
    const __m256d q =
        _mm256_and_pd(_mm256_mul_pd(current, dt), p_mask);
    __m256d v2 = _mm256_add_pd(v1, _mm256_div_pd(q, cap));
    // addCharge's negative clamp: where v < 0, force +0.0.
    v2 = _mm256_andnot_pd(_mm256_cmp_pd(v2, zero, _CMP_LT_OQ), v2);
    const __m256d harvested = _mm256_add_pd(
        _mm256_load_pd(&s.harvested[base]),
        _mm256_sub_pd(laneEnergy(half_c, v2), laneEnergy(half_c, v1)));
    _mm256_store_pd(&s.harvested[base], harvested);

    // 3. Backend load: the voltage delta (-(I*dt))/C is precomputed by
    //    the load/capacitance setters (its operands only move there,
    //    and IEEE division is deterministic, so the cached quotient is
    //    bitwise the per-step division) -- a -0.0 no-op on idle lanes
    //    and one fewer vector divide per step.
    __m256d v3 = _mm256_add_pd(v2, dq_over_cap);
    v3 = _mm256_andnot_pd(_mm256_cmp_pd(v3, zero, _CMP_LT_OQ), v3);
    const __m256d delivered = _mm256_add_pd(
        _mm256_load_pd(&s.delivered[base]),
        _mm256_sub_pd(laneEnergy(half_c, v2), laneEnergy(half_c, v3)));
    _mm256_store_pd(&s.delivered[base], delivered);

    // 4. Overvoltage protection.
    const __m256d clip_mask = _mm256_cmp_pd(v3, clamp, _CMP_GT_OQ);
    const __m256d v4 = _mm256_blendv_pd(v3, clamp, clip_mask);
    const __m256d clipped = _mm256_add_pd(
        _mm256_load_pd(&s.clipped[base]),
        _mm256_sub_pd(laneEnergy(half_c, v3), laneEnergy(half_c, v4)));
    _mm256_store_pd(&s.clipped[base], clipped);

    _mm256_store_pd(&s.v[base], v4);
}

} // namespace

void
batchStepAvx2(BatchLaneState &s)
{
    static_assert(BatchLaneState::kMaxLanes == 8,
                  "two 4-wide vectors cover the batch");
    stepVector(s, 0);
    stepVector(s, 4);
}

void
batchStepAvx2Lower(BatchLaneState &s)
{
    stepVector(s, 0);
}

} // namespace detail
} // namespace sim
} // namespace react
