/**
 * @file
 * Ideal-capacitor-with-leakage model: the basic storage element behind every
 * buffer architecture in this reproduction.
 *
 * The paper's capacitors are characterized by three datasheet values we
 * model directly: capacitance, rated voltage, and leakage current at the
 * rated voltage.  Leakage is modelled as an ohmic parallel resistance
 * R_leak = V_rated / I_leak(V_rated), which matches the first-order
 * behaviour of both the ceramic (28 uA @ 6.3 V) and supercapacitor
 * (0.15 uA @ 5.5 V) parts in Table 1.
 */

#ifndef REACT_SIM_CAPACITOR_HH
#define REACT_SIM_CAPACITOR_HH

#include <cmath>
#include <cstdint>

#include "sim/hotloop_stats.hh"
#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace sim {

using units::Amps;
using units::Coulombs;
using units::Farads;
using units::Joules;
using units::Ohms;
using units::Seconds;
using units::Volts;
using units::Watts;

/** Electrical parameters for a capacitor part (one datasheet row). */
struct CapacitorSpec
{
    /** Capacitance. */
    Farads capacitance{0.0};
    /** Absolute maximum voltage; charge above this is clipped. */
    Volts ratedVoltage{6.3};
    /** Leakage current at the rated voltage. */
    Amps leakageCurrentAtRated{0.0};

    /** Equivalent parallel leakage resistance; infinite if no leak. */
    Ohms leakResistance() const;
};

/**
 * A single capacitor: charge state plus the physics helpers every buffer
 * needs (charge/energy accounting, exact leakage decay, current
 * integration, overvoltage clipping).
 */
class Capacitor
{
  public:
    Capacitor() = default;

    /** Construct from a part spec at an initial voltage (default 0 V). */
    explicit Capacitor(const CapacitorSpec &spec,
                       Volts initial_voltage = Volts(0));

    /** Part parameters. */
    const CapacitorSpec &spec() const { return partSpec; }

    /** Capacitance. */
    Farads capacitance() const { return partSpec.capacitance; }

    /** Terminal voltage. */
    Volts voltage() const { return v; }

    /** Force the terminal voltage (used by reconfiguration logic). */
    void setVoltage(Volts voltage);

    /**
     * Rescale the part capacitance at constant terminal voltage
     * (dielectric aging / fault-injected capacitance fade).  The charge
     * difference vanishes into the degraded dielectric; the caller books
     * the stored-energy delta (E = 1/2 dC V^2) to the fault ledger.
     *
     * @param capacitance New capacitance (> 0).
     * @return Stored energy lost (positive when capacitance shrank).
     */
    Joules setCapacitance(Farads capacitance);

    /** Stored charge Q = C V. */
    Coulombs charge() const;

    /** Stored energy E = 1/2 C V^2. */
    Joules energy() const;

    /**
     * Add signed charge.  Voltage changes by dQ / C; no rails are enforced
     * here (callers clip explicitly so the clipped energy can be accounted).
     *
     * @param dq Charge (negative discharges).
     */
    void addCharge(Coulombs dq);

    /**
     * Integrate a constant current over dt: dV = I dt / C.
     *
     * @param current Signed current (positive charges).
     * @param dt Timestep.
     */
    void applyCurrent(Amps current, Seconds dt);

    /**
     * Exact exponential self-discharge through the leakage resistance over
     * dt: V *= exp(-dt / (R_leak C)).
     *
     * @param dt Timestep.
     * @return Energy lost to leakage.
     */
    Joules leak(Seconds dt);

    /**
     * Decay factor leak() would multiply the voltage by for this dt:
     * exp(-dt / tau), or 1.0 for a lossless part.  Evaluated by the
     * same expression leak() caches, so the batch lane engine
     * (sim/batch_stepper.hh) can precompute a per-lane factor that is
     * bit-identical to per-step leak() calls.
     */
    double leakDecayFor(Seconds dt) const
    {
        if (!leakTauFinite)
            return 1.0;
        return std::exp(-dt / leakTau);
    }

    /** False for a lossless part (leak() is a no-op at any dt). */
    bool leakFinite() const { return leakTauFinite; }

    /**
     * Closed-form n-step leak: equivalent to calling leak(dt) n times,
     * except the decay is applied as one pow(decay, n) instead of n
     * sequential multiplies.  Relative voltage error versus the
     * iterated form is bounded by ~(n + 1) ulp (DESIGN.md, "Hot
     * loop"), so results are *not* bit-identical to stepping; only the
     * opt-in quiescent fast path (REACT_FAST_PATH) uses this.
     *
     * @param dt Per-step timestep.
     * @param n Number of steps to advance.
     * @return Total energy lost to leakage over the n steps.
     */
    Joules leakN(Seconds dt, uint64_t n);

    /**
     * Clamp voltage to the given ceiling (defaults to the rated voltage).
     *
     * @param ceiling Maximum voltage; values above are discarded as heat.
     * @return Energy clipped (0 when under the ceiling).
     */
    Joules clip(Volts ceiling = Volts(-1.0));

    /**
     * Energy released when discharging down to the given floor voltage;
     * zero when already below it.
     */
    Joules energyAbove(Volts floor_voltage) const;

    /** Serialize the mutable state: capacitance (aging derates it at
     *  run time) and terminal voltage.  The rest of the spec is fixed
     *  at construction. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    CapacitorSpec partSpec;
    Volts v{0.0};

    /**
     * @name Memoized leak-decay cache
     *
     * leak() evaluates exp(-dt / (R_leak C)) whose inputs change only
     * when the part parameters change (setCapacitance, snapshot
     * restore) or the caller's dt changes -- never on the per-step hot
     * path.  The time constant and the last decay factor are therefore
     * cached here and rebuilt from rebuildLeakCache() at every
     * parameter mutation point.  The cached expression is evaluated by
     * the exact operation sequence the uncached code used
     * (tau = R_leak * C, then exp(-dt / tau)), so results stay
     * bit-identical.
     * @{
     */
    /** R_leak * C; only meaningful when leakTauFinite. */
    Seconds leakTau{0.0};
    /** False for a lossless part (leakage current 0): leak() is then a
     *  zero-cost early-out with no division or exp at all. */
    bool leakTauFinite = false;
    /** dt key of the cached decay factor (< 0 = empty). */
    Seconds cachedLeakDt{-1.0};
    /** exp(-cachedLeakDt / leakTau). */
    double cachedLeakDecay = 1.0;

    /** Recompute the cached time constant and drop the decay factor.
     *  Call after any mutation of the part spec. */
    void rebuildLeakCache();
    /** @} */
};

// The per-step leaf operations below are defined inline in the header:
// every buffer architecture calls them from its step() at engine rate
// (tens of millions of calls per simulated hour), and keeping them in
// the .cc made the cross-TU call overhead the dominant hot-loop cost.

inline Coulombs
Capacitor::charge() const
{
    return partSpec.capacitance * v;
}

inline Joules
Capacitor::energy() const
{
    return units::capEnergy(partSpec.capacitance, v);
}

inline void
Capacitor::addCharge(Coulombs dq)
{
    v += dq / partSpec.capacitance;
    if (v < Volts(0))
        v = Volts(0);
}

inline void
Capacitor::applyCurrent(Amps current, Seconds dt)
{
    addCharge(current * dt);
}

inline Joules
Capacitor::leak(Seconds dt)
{
    if (!leakTauFinite || v <= Volts(0))
        return Joules(0);
    if (dt == cachedLeakDt) {
        ++hotloop::counters().leakCacheHits;
    } else {
        cachedLeakDecay = std::exp(-dt / leakTau);
        cachedLeakDt = dt;
        ++hotloop::counters().leakCacheMisses;
    }
    const Joules before = energy();
    v *= cachedLeakDecay;
    return before - energy();
}

inline Joules
Capacitor::clip(Volts ceiling)
{
    const Volts limit = ceiling < Volts(0) ? partSpec.ratedVoltage : ceiling;
    if (v <= limit)
        return Joules(0);
    const Joules before = energy();
    v = limit;
    return before - energy();
}

inline Joules
Capacitor::energyAbove(Volts floor_voltage) const
{
    if (v <= floor_voltage)
        return Joules(0);
    return units::capEnergyWindow(partSpec.capacitance, v, floor_voltage);
}

} // namespace sim
} // namespace react

#endif // REACT_SIM_CAPACITOR_HH
