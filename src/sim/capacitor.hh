/**
 * @file
 * Ideal-capacitor-with-leakage model: the basic storage element behind every
 * buffer architecture in this reproduction.
 *
 * The paper's capacitors are characterized by three datasheet values we
 * model directly: capacitance, rated voltage, and leakage current at the
 * rated voltage.  Leakage is modelled as an ohmic parallel resistance
 * R_leak = V_rated / I_leak(V_rated), which matches the first-order
 * behaviour of both the ceramic (28 uA @ 6.3 V) and supercapacitor
 * (0.15 uA @ 5.5 V) parts in Table 1.
 */

#ifndef REACT_SIM_CAPACITOR_HH
#define REACT_SIM_CAPACITOR_HH

namespace react {
namespace sim {

/** Electrical parameters for a capacitor part (one datasheet row). */
struct CapacitorSpec
{
    /** Capacitance in farads. */
    double capacitance = 0.0;
    /** Absolute maximum voltage; charge above this is clipped. */
    double ratedVoltage = 6.3;
    /** Leakage current at the rated voltage (amperes). */
    double leakageCurrentAtRated = 0.0;

    /** Equivalent parallel leakage resistance (ohms); infinite if no leak. */
    double leakResistance() const;
};

/**
 * A single capacitor: charge state plus the physics helpers every buffer
 * needs (charge/energy accounting, exact leakage decay, current
 * integration, overvoltage clipping).
 */
class Capacitor
{
  public:
    Capacitor() = default;

    /** Construct from a part spec at an initial voltage (default 0 V). */
    explicit Capacitor(const CapacitorSpec &spec, double initial_voltage = 0);

    /** Part parameters. */
    const CapacitorSpec &spec() const { return partSpec; }

    /** Capacitance in farads. */
    double capacitance() const { return partSpec.capacitance; }

    /** Terminal voltage in volts. */
    double voltage() const { return v; }

    /** Force the terminal voltage (used by reconfiguration logic). */
    void setVoltage(double voltage);

    /**
     * Rescale the part capacitance at constant terminal voltage
     * (dielectric aging / fault-injected capacitance fade).  The charge
     * difference vanishes into the degraded dielectric; the caller books
     * the stored-energy delta (E = 1/2 dC V^2) to the fault ledger.
     *
     * @param capacitance New capacitance in farads (> 0).
     * @return Stored energy lost (positive when capacitance shrank).
     */
    double setCapacitance(double capacitance);

    /** Stored charge Q = C V in coulombs. */
    double charge() const;

    /** Stored energy E = 1/2 C V^2 in joules. */
    double energy() const;

    /**
     * Add signed charge.  Voltage changes by dQ / C; no rails are enforced
     * here (callers clip explicitly so the clipped energy can be accounted).
     *
     * @param dq Charge in coulombs (negative discharges).
     */
    void addCharge(double dq);

    /**
     * Integrate a constant current over dt: dV = I dt / C.
     *
     * @param current Signed current in amperes (positive charges).
     * @param dt Timestep in seconds.
     */
    void applyCurrent(double current, double dt);

    /**
     * Exact exponential self-discharge through the leakage resistance over
     * dt: V *= exp(-dt / (R_leak C)).
     *
     * @param dt Timestep in seconds.
     * @return Energy lost to leakage in joules.
     */
    double leak(double dt);

    /**
     * Clamp voltage to the given ceiling (defaults to the rated voltage).
     *
     * @param ceiling Maximum voltage; values above are discarded as heat.
     * @return Energy clipped in joules (0 when under the ceiling).
     */
    double clip(double ceiling = -1.0);

    /**
     * Energy released when discharging down to the given floor voltage;
     * zero when already below it.
     */
    double energyAbove(double floor_voltage) const;

  private:
    CapacitorSpec partSpec;
    double v = 0.0;
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_CAPACITOR_HH
