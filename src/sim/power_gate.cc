#include "power_gate.hh"

#include "sim/fault_injector.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace sim {

PowerGate::PowerGate(Volts enable_voltage, Volts brownout_voltage)
    : vEnable(enable_voltage), vBrownout(brownout_voltage)
{
    react_assert(enable_voltage > brownout_voltage,
                 "enable voltage must exceed brown-out voltage");
    react_assert(brownout_voltage > Volts(0),
                 "brown-out voltage must be > 0");
}

bool
PowerGate::update(Volts rail_voltage)
{
    if (faults != nullptr)
        rail_voltage = faults->comparatorRead("powergate.supervisor",
                                              rail_voltage);
    if (!on && rail_voltage >= vEnable) {
        on = true;
        return true;
    }
    if (on && rail_voltage <= vBrownout) {
        on = false;
        return true;
    }
    return false;
}

void
PowerGate::setEnableVoltage(Volts enable_voltage)
{
    react_assert(enable_voltage > vBrownout,
                 "enable voltage must exceed brown-out voltage");
    vEnable = enable_voltage;
}

void
PowerGate::reset()
{
    on = false;
}

void
PowerGate::save(snapshot::SnapshotWriter &w) const
{
    w.f64(vEnable.raw());
    w.b(on);
}

void
PowerGate::restore(snapshot::SnapshotReader &r)
{
    vEnable = Volts(r.f64());
    on = r.b();
}

} // namespace sim
} // namespace react
