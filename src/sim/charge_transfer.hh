/**
 * @file
 * Exact charge-transfer integration between capacitors.
 *
 * The buffer models connect capacitors through switch/diode resistances
 * whose RC time constants (e.g. 770 uF through ~1 Ohm => ~0.8 ms) are on
 * the order of the simulation timestep, so explicit Euler integration of
 * the inter-capacitor current would be unstable.  Instead we integrate the
 * two-capacitor relaxation analytically: for caps C1, C2 joined through
 * resistance R, the voltage difference decays as exp(-t / tau) with
 * tau = R * C1 C2 / (C1 + C2).  This is exact for any dt, making the
 * simulator unconditionally stable, and yields the dissipated energy in
 * closed form -- which is precisely the quantity the paper's Morphy-vs-REACT
 * comparison hinges on.
 */

#ifndef REACT_SIM_CHARGE_TRANSFER_HH
#define REACT_SIM_CHARGE_TRANSFER_HH

#include "sim/capacitor.hh"

namespace react {
namespace sim {

/** Outcome of one charge-transfer step. */
struct TransferResult
{
    /** Charge moved from source to sink (>= 0). */
    Coulombs charge{0.0};
    /** Energy dissipated in the series resistance. */
    Joules resistiveLoss{0.0};
    /** Energy dissipated in the diode drop. */
    Joules diodeLoss{0.0};

    /** Total energy lost during the transfer. */
    Joules totalLoss() const { return resistiveLoss + diodeLoss; }
};

/**
 * Memo for one transfer path's relaxation constants.  transferCharge()
 * evaluates exp(-dt / tau) with tau derived from (C1, C2, R, dt) -- all
 * constant along a given path between reconfigurations -- so the owner
 * of the path (e.g. ReactBuffer, one cache per bank) keeps one of these
 * and passes it in.  A key mismatch recomputes through the exact
 * original operation sequence, so results are bit-identical with or
 * without the cache; mutations (aging, snapshot restore, bank
 * reconfiguration) need no explicit invalidation because they change
 * the key.
 */
struct TransferCache
{
    /** @name Key (raw operand values of the last solve). @{ */
    Farads c1{-1.0};
    Farads c2{-1.0};
    Ohms resistance{-1.0};
    Seconds dt{-1.0};
    /** @} */
    /** @name Cached values. @{ */
    Farads ceq{0.0};
    double decay = 0.0;
    /** @} */
};

/**
 * Move charge from @p source to @p sink through a series resistance and an
 * optional fixed diode drop, integrating the exact exponential relaxation
 * over the timestep.  No transfer occurs unless the source exceeds the sink
 * by more than the drop (diode semantics).
 *
 * @param source Higher-potential capacitor (discharges).
 * @param sink Lower-potential capacitor (charges).
 * @param resistance Series resistance (> 0).
 * @param diode_drop Fixed forward drop (>= 0).
 * @param dt Timestep.
 * @param cache Optional per-path memo for the relaxation constants
 *        (bit-identical results either way).
 * @return Charge moved and the losses incurred.
 */
TransferResult transferCharge(Capacitor &source, Capacitor &sink,
                              Ohms resistance, Volts diode_drop,
                              Seconds dt, TransferCache *cache = nullptr);

/**
 * Charge a capacitor from a constant-power source (the harvester frontend)
 * through an input diode.  The delivered current is P / (V + drop), floored
 * at a converter-dependent minimum voltage so cold-start currents stay
 * physical.
 *
 * @param sink Capacitor being charged.
 * @param power Source power.
 * @param dt Timestep.
 * @param diode_drop Input diode drop.
 * @param v_floor Minimum effective conversion voltage (bounds current).
 * @return Energy deposited on the capacitor in TransferResult semantics:
 *         'charge' is the charge delivered, 'diodeLoss' the diode
 *         dissipation; resistiveLoss is always 0.
 */
TransferResult chargeFromPower(Capacitor &sink, Watts power, Seconds dt,
                               Volts diode_drop = Volts(0.0),
                               Volts v_floor = Volts(0.2));

/**
 * Instantaneously connect two capacitors in parallel and equalize them
 * (the lossy charge-sharing operation at the heart of Morphy's
 * reconfiguration, Fig. 5).  Final voltage is (Q1 + Q2) / (C1 + C2); the
 * difference in stored energy is dissipated in the interconnect.
 *
 * @param a First capacitor.
 * @param b Second capacitor.
 * @return Energy dissipated (>= 0).
 */
Joules equalizeParallel(Capacitor &a, Capacitor &b);

} // namespace sim
} // namespace react

#endif // REACT_SIM_CHARGE_TRANSFER_HH
