#include "diode.hh"

#include <cmath>

#include "sim/hotloop_stats.hh"
#include "util/logging.hh"

namespace react {
namespace sim {

Watts
Diode::conductionPower(Amps current) const
{
    if (current <= Amps(0))
        return Watts(0.0);
    return forwardDrop(current) * current;
}

IdealDiode::IdealDiode(Ohms on_resistance, Watts quiescent_power)
    : rOn(on_resistance), quiescent(quiescent_power)
{
    react_assert(on_resistance >= Ohms(0), "on-resistance must be >= 0");
    react_assert(quiescent >= Watts(0), "quiescent power must be >= 0");
}

Volts
IdealDiode::forwardDrop(Amps current) const
{
    if (current <= Amps(0))
        return Volts(0.0);
    return current * rOn;
}

SchottkyDiode::SchottkyDiode(Amps saturation_current, double ideality,
                             Volts thermal_voltage)
    : iSat(saturation_current), n(ideality), vt(thermal_voltage)
{
    react_assert(saturation_current > Amps(0),
                 "saturation current must be positive");
    react_assert(ideality > 0.0 && thermal_voltage > Volts(0),
                 "diode parameters must be positive");
}

Volts
SchottkyDiode::forwardDrop(Amps current) const
{
    if (current <= Amps(0))
        return Volts(0.0);
    if (current == memoCurrent) {
        ++hotloop::counters().schottkyCacheHits;
        return memoDrop;
    }
    memoDrop = forwardDropExact(current);
    memoCurrent = current;
    ++hotloop::counters().schottkyCacheMisses;
    return memoDrop;
}

Volts
SchottkyDiode::forwardDropExact(Amps current) const
{
    if (current <= Amps(0))
        return Volts(0.0);
    return n * vt * std::log1p(current / iSat);
}

} // namespace sim
} // namespace react
