#include "diode.hh"

#include <cmath>

#include "util/logging.hh"

namespace react {
namespace sim {

double
Diode::conductionPower(double current) const
{
    if (current <= 0.0)
        return 0.0;
    return forwardDrop(current) * current;
}

IdealDiode::IdealDiode(double on_resistance, double quiescent)
    : rOn(on_resistance), quiescent(quiescent)
{
    react_assert(on_resistance >= 0.0, "on-resistance must be >= 0");
    react_assert(quiescent >= 0.0, "quiescent power must be >= 0");
}

double
IdealDiode::forwardDrop(double current) const
{
    if (current <= 0.0)
        return 0.0;
    return current * rOn;
}

SchottkyDiode::SchottkyDiode(double saturation_current, double ideality,
                             double thermal_voltage)
    : iSat(saturation_current), n(ideality), vt(thermal_voltage)
{
    react_assert(saturation_current > 0.0,
                 "saturation current must be positive");
    react_assert(ideality > 0.0 && thermal_voltage > 0.0,
                 "diode parameters must be positive");
}

double
SchottkyDiode::forwardDrop(double current) const
{
    if (current <= 0.0)
        return 0.0;
    return n * vt * std::log1p(current / iSat);
}

} // namespace sim
} // namespace react
