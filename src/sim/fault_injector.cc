#include "fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace sim {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** Cap on the retained event log; counters stay exact past it. */
constexpr size_t kMaxLoggedEvents = 20000;

/** FNV-1a over the component name: the child-stream tag. */
uint64_t
fnv1a64(const std::string &name)
{
    uint64_t hash = 14695981039346656037ull;
    for (char ch : name) {
        hash ^= static_cast<uint8_t>(ch);
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

bool
FaultPlan::enabled() const
{
    return switchStuckProbability > 0.0 || switchSlowProbability > 0.0 ||
        comparatorDriftVoltsPerSqrtHour > 0.0 ||
        comparatorMisreadsPerHour > 0.0 || capacitanceFadePerHour > 0.0 ||
        esrRisePerHour > 0.0 || diodeFailuresPerHour > 0.0 ||
        harvesterDropoutsPerHour > 0.0 || framCorruptionPerPowerLoss > 0.0;
}

FaultPlan
FaultPlan::stress(double severity)
{
    react_assert(severity >= 0.0, "fault severity must be >= 0");
    FaultPlan plan;
    plan.switchStuckProbability = std::min(0.01 * severity, 1.0);
    plan.switchSlowProbability = std::min(0.02 * severity, 1.0);
    plan.comparatorDriftVoltsPerSqrtHour = 0.05 * severity;
    plan.comparatorMisreadsPerHour = 30.0 * severity;
    plan.comparatorMisreadMagnitude = 1.0;
    plan.capacitanceFadePerHour = 0.02 * severity;
    plan.esrRisePerHour = 0.5 * severity;
    plan.diodeFailuresPerHour = 0.05 * severity;
    plan.diodeShortFraction = 0.5;
    plan.harvesterDropoutsPerHour = 20.0 * severity;
    plan.harvesterDropoutMeanSeconds = Seconds(4.0);
    plan.framCorruptionPerPowerLoss = std::min(0.05 * severity, 1.0);
    return plan;
}

const char *
faultEventKindName(FaultEventKind kind)
{
    switch (kind) {
      case FaultEventKind::SwitchStuck:
        return "switch-stuck";
      case FaultEventKind::SwitchSlow:
        return "switch-slow";
      case FaultEventKind::ComparatorMisread:
        return "comparator-misread";
      case FaultEventKind::DiodeOpen:
        return "diode-open";
      case FaultEventKind::DiodeShort:
        return "diode-short";
      case FaultEventKind::HarvesterDropoutBegin:
        return "dropout-begin";
      case FaultEventKind::HarvesterDropoutEnd:
        return "dropout-end";
      case FaultEventKind::FramCorruption:
        return "fram-corruption";
      case FaultEventKind::BankRetired:
        return "bank-retired";
      case FaultEventKind::FramRecovery:
        return "fram-recovery";
    }
    return "?";
}

bool
isRecoveryEvent(FaultEventKind kind)
{
    return kind == FaultEventKind::BankRetired ||
        kind == FaultEventKind::FramRecovery;
}

FaultInjector::FaultInjector(const FaultPlan &plan, uint64_t seed)
    : faultPlan(plan), master(seed)
{
}

FaultInjector::Component &
FaultInjector::component(const std::string &name)
{
    auto it = components.find(name);
    if (it != components.end())
        return it->second;

    Component comp;
    comp.rng = master.child(fnv1a64(name));
    comp.driftUpdatedAt = t;
    comp.nextMisreadAt = faultPlan.comparatorMisreadsPerHour > 0.0
        ? t + comp.rng.exponential(3600.0 /
                                   faultPlan.comparatorMisreadsPerHour)
        : kInfinity;
    // Aging rates vary part-to-part; jitter keeps components from fading
    // in lockstep while remaining a pure function of (seed, name).
    comp.agingJitter = comp.rng.uniform(0.7, 1.3);
    if (faultPlan.diodeFailuresPerHour > 0.0) {
        comp.diodeFailsAt =
            t + comp.rng.exponential(3600.0 / faultPlan.diodeFailuresPerHour);
        comp.diodeMode = comp.rng.chance(faultPlan.diodeShortFraction)
            ? DiodeFault::Short
            : DiodeFault::Open;
    } else {
        comp.diodeFailsAt = kInfinity;
    }
    return components.emplace(name, std::move(comp)).first->second;
}

const FaultInjector::Component *
FaultInjector::findComponent(const std::string &name) const
{
    const auto it = components.find(name);
    return it == components.end() ? nullptr : &it->second;
}

void
FaultInjector::advance(Seconds dt)
{
    react_assert(dt >= Seconds(0),
                 "cannot advance the fault clock backwards");
    t += dt.raw();

    if (faultPlan.harvesterDropoutsPerHour <= 0.0)
        return;
    Rng &rng = component("harvester").rng;
    if (!dropoutScheduleInit) {
        dropoutScheduleInit = true;
        nextDropoutEdge =
            t + rng.exponential(3600.0 / faultPlan.harvesterDropoutsPerHour);
    }
    while (t >= nextDropoutEdge) {
        if (!dropoutActive) {
            dropoutActive = true;
            recordEvent(FaultEventKind::HarvesterDropoutBegin, "harvester");
            nextDropoutEdge +=
                rng.exponential(faultPlan.harvesterDropoutMeanSeconds.raw());
        } else {
            dropoutActive = false;
            recordEvent(FaultEventKind::HarvesterDropoutEnd, "harvester");
            nextDropoutEdge += rng.exponential(
                3600.0 / faultPlan.harvesterDropoutsPerHour);
        }
    }
}

bool
FaultInjector::switchActuates(const std::string &name)
{
    if (faultPlan.switchStuckProbability <= 0.0)
        return true;
    Component &comp = component(name);
    if (comp.stuck)
        return false;
    if (comp.rng.chance(faultPlan.switchStuckProbability)) {
        comp.stuck = true;
        recordEvent(FaultEventKind::SwitchStuck, name);
        return false;
    }
    return true;
}

bool
FaultInjector::isSwitchStuck(const std::string &name) const
{
    const Component *comp = findComponent(name);
    return comp != nullptr && comp->stuck;
}

bool
FaultInjector::switchDelayed(const std::string &name)
{
    if (faultPlan.switchSlowProbability <= 0.0)
        return false;
    Component &comp = component(name);
    if (comp.rng.chance(faultPlan.switchSlowProbability)) {
        recordEvent(FaultEventKind::SwitchSlow, name);
        return true;
    }
    return false;
}

Volts
FaultInjector::comparatorRead(const std::string &name, Volts actual)
{
    if (faultPlan.comparatorDriftVoltsPerSqrtHour <= 0.0 &&
        faultPlan.comparatorMisreadsPerHour <= 0.0) {
        return actual;
    }
    Component &comp = component(name);
    double observed = actual.raw();

    if (faultPlan.comparatorDriftVoltsPerSqrtHour > 0.0) {
        // Random-walk offset: increments are independent over disjoint
        // intervals, so accumulating lazily at read time is equivalent
        // to stepping the walk continuously.
        const double elapsed = t - comp.driftUpdatedAt;
        if (elapsed > 0.0) {
            comp.driftOffset += comp.rng.normal(
                0.0, faultPlan.comparatorDriftVoltsPerSqrtHour *
                    std::sqrt(elapsed / 3600.0));
            comp.driftUpdatedAt = t;
        }
        observed += comp.driftOffset;
    }

    if (faultPlan.comparatorMisreadsPerHour > 0.0) {
        bool fired = false;
        while (t >= comp.nextMisreadAt) {
            fired = true;
            comp.nextMisreadAt += comp.rng.exponential(
                3600.0 / faultPlan.comparatorMisreadsPerHour);
        }
        if (fired) {
            const double error =
                comp.rng.uniform(-faultPlan.comparatorMisreadMagnitude,
                                 faultPlan.comparatorMisreadMagnitude);
            recordEvent(FaultEventKind::ComparatorMisread, name, error);
            observed += error;
        }
    }
    return Volts(std::max(observed, 0.0));
}

double
FaultInjector::capacitanceFactor(const std::string &name)
{
    if (faultPlan.capacitanceFadePerHour <= 0.0)
        return 1.0;
    Component &comp = component(name);
    const double rate = faultPlan.capacitanceFadePerHour * comp.agingJitter;
    return std::exp(-rate * t / 3600.0);
}

double
FaultInjector::esrMultiplier(const std::string &name)
{
    if (faultPlan.esrRisePerHour <= 0.0)
        return 1.0;
    Component &comp = component(name);
    return 1.0 + faultPlan.esrRisePerHour * comp.agingJitter * t / 3600.0;
}

DiodeFault
FaultInjector::diodeFault(const std::string &name)
{
    if (faultPlan.diodeFailuresPerHour <= 0.0)
        return DiodeFault::None;
    Component &comp = component(name);
    if (t < comp.diodeFailsAt)
        return DiodeFault::None;
    if (!comp.diodeReported) {
        comp.diodeReported = true;
        recordEvent(comp.diodeMode == DiodeFault::Short
                        ? FaultEventKind::DiodeShort
                        : FaultEventKind::DiodeOpen,
                    name);
    }
    return comp.diodeMode;
}

Watts
FaultInjector::filterHarvest(Watts input_power) const
{
    return dropoutActive ? Watts(0.0) : input_power;
}

bool
FaultInjector::maybeCorruptOnPowerLoss(const std::string &name,
                                       std::vector<uint8_t> *bytes)
{
    if (faultPlan.framCorruptionPerPowerLoss <= 0.0)
        return false;
    Component &comp = component(name);
    if (!comp.rng.chance(faultPlan.framCorruptionPerPowerLoss))
        return false;
    double where = -1.0;
    if (bytes != nullptr && !bytes->empty()) {
        const int index = comp.rng.uniformInt(
            0, static_cast<int>(bytes->size()) - 1);
        const int bit = comp.rng.uniformInt(0, 7);
        (*bytes)[static_cast<size_t>(index)] ^=
            static_cast<uint8_t>(1u << bit);
        where = static_cast<double>(index);
    }
    recordEvent(FaultEventKind::FramCorruption, name, where);
    return true;
}

void
FaultInjector::recordEvent(FaultEventKind kind, const std::string &name,
                           double magnitude)
{
    ++kindCounts[static_cast<size_t>(kind)];
    if (eventLog.size() < kMaxLoggedEvents)
        eventLog.push_back({Seconds(t), kind, name, magnitude});
}

uint64_t
FaultInjector::eventCount(FaultEventKind kind) const
{
    return kindCounts[static_cast<size_t>(kind)];
}

uint64_t
FaultInjector::faultCount() const
{
    uint64_t n = 0;
    for (size_t k = 0; k < 10; ++k) {
        if (!isRecoveryEvent(static_cast<FaultEventKind>(k)))
            n += kindCounts[k];
    }
    return n;
}

uint64_t
FaultInjector::recoveryCount() const
{
    return eventCount(FaultEventKind::BankRetired) +
        eventCount(FaultEventKind::FramRecovery);
}

void
FaultInjector::save(snapshot::SnapshotWriter &w) const
{
    w.f64(t);
    snapshot::saveRng(w, master);
    w.b(dropoutActive);
    w.f64(nextDropoutEdge);
    w.b(dropoutScheduleInit);

    // std::map iterates in key order: deterministic layout.
    w.u32(static_cast<uint32_t>(components.size()));
    for (const auto &entry : components) {
        w.str(entry.first);
        const Component &comp = entry.second;
        snapshot::saveRng(w, comp.rng);
        w.b(comp.stuck);
        w.f64(comp.driftOffset);
        w.f64(comp.driftUpdatedAt);
        w.f64(comp.nextMisreadAt);
        w.f64(comp.agingJitter);
        w.f64(comp.diodeFailsAt);
        w.u8(static_cast<uint8_t>(comp.diodeMode));
        w.b(comp.diodeReported);
    }

    w.u32(static_cast<uint32_t>(eventLog.size()));
    for (const FaultEvent &event : eventLog) {
        w.f64(event.time.raw());
        w.u8(static_cast<uint8_t>(event.kind));
        w.str(event.component);
        w.f64(event.magnitude);
    }
    for (uint64_t count : kindCounts)
        w.u64(count);
}

void
FaultInjector::restore(snapshot::SnapshotReader &r)
{
    t = r.f64();
    snapshot::restoreRng(r, &master);
    dropoutActive = r.b();
    nextDropoutEdge = r.f64();
    dropoutScheduleInit = r.b();

    components.clear();
    const uint32_t component_count = r.u32();
    for (uint32_t i = 0; i < component_count; ++i) {
        const std::string name = r.str();
        Component comp;
        snapshot::restoreRng(r, &comp.rng);
        comp.stuck = r.b();
        comp.driftOffset = r.f64();
        comp.driftUpdatedAt = r.f64();
        comp.nextMisreadAt = r.f64();
        comp.agingJitter = r.f64();
        comp.diodeFailsAt = r.f64();
        comp.diodeMode = static_cast<DiodeFault>(r.u8());
        comp.diodeReported = r.b();
        components.emplace(name, std::move(comp));
    }

    eventLog.clear();
    const uint32_t event_count = r.u32();
    eventLog.reserve(event_count);
    for (uint32_t i = 0; i < event_count; ++i) {
        FaultEvent event;
        event.time = Seconds(r.f64());
        event.kind = static_cast<FaultEventKind>(r.u8());
        event.component = r.str();
        event.magnitude = r.f64();
        eventLog.push_back(std::move(event));
    }
    for (uint64_t &count : kindCounts)
        count = r.u64();
}

} // namespace sim
} // namespace react
