#include "simd.hh"

#include "util/env.hh"
#include "util/logging.hh"

namespace react {
namespace sim {
namespace simd {

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
avx2KernelCompiled()
{
#ifdef REACT_HAVE_AVX2_KERNEL
    return true;
#else
    return false;
#endif
}

bool
avx2Available()
{
    return avx2KernelCompiled() && cpuSupportsAvx2();
}

bool
cpuSupportsAvx512f()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

bool
avx512KernelCompiled()
{
#ifdef REACT_HAVE_AVX512_KERNEL
    return true;
#else
    return false;
#endif
}

bool
avx512Available()
{
    return avx512KernelCompiled() && cpuSupportsAvx512f();
}

Policy
parsePolicy(const std::string &value, bool *malformed)
{
    if (malformed != nullptr)
        *malformed = false;
    if (value == "off")
        return Policy::Off;
    if (value == "auto")
        return Policy::Auto;
    if (value == "scalar")
        return Policy::Scalar;
    if (value == "avx2")
        return Policy::Avx2;
    if (value == "avx512")
        return Policy::Avx512;
    if (malformed != nullptr)
        *malformed = true;
    return Policy::Off;
}

Policy
envPolicy()
{
    const auto value = env::stringVar("REACT_SIMD");
    if (!value)
        return Policy::Off;
    bool malformed = false;
    const Policy policy = parsePolicy(*value, &malformed);
    if (malformed)
        react_warn("REACT_SIMD='%s' is not off, auto, scalar, avx2, or "
                   "avx512; defaulting to off (classic per-cell engine)",
                   value->c_str());
    return policy;
}

Kernel
resolveKernel(Policy policy, bool avx2_available, bool avx512_available)
{
    switch (policy) {
    case Policy::Off:
        return Kernel::Disabled;
    case Policy::Scalar:
        return Kernel::Scalar;
    case Policy::Auto:
        // Every kernel is bit-identical (the differential harness in
        // tests/test_batch_stepper.cc proves it), so auto may take the
        // widest one without changing any result.
        if (avx512_available)
            return Kernel::Avx512;
        return avx2_available ? Kernel::Avx2 : Kernel::Scalar;
    case Policy::Avx2:
        // An explicit vector-kernel request must never degrade
        // silently: a benchmark run that asked for the vector engine
        // and got the scalar one would report the wrong machine's
        // numbers.
        if (!avx2_available)
            react_panic("REACT_SIMD=avx2 requested but the AVX2 lane "
                        "kernel cannot run here (cpu supports avx2: %s, "
                        "kernel compiled in: %s); use REACT_SIMD=auto "
                        "to fall back",
                        cpuSupportsAvx2() ? "yes" : "no",
                        avx2KernelCompiled() ? "yes" : "no");
        return Kernel::Avx2;
    case Policy::Avx512:
        break;
    }
    if (!avx512_available)
        react_panic("REACT_SIMD=avx512 requested but the AVX-512 lane "
                    "kernel cannot run here (cpu supports avx512f: %s, "
                    "kernel compiled in: %s); use REACT_SIMD=auto to "
                    "fall back",
                    cpuSupportsAvx512f() ? "yes" : "no",
                    avx512KernelCompiled() ? "yes" : "no");
    return Kernel::Avx512;
}

Kernel
selectedKernel()
{
    // Read once per process: the engine must not change between cells
    // of one sweep (mirrors resolveFastPath in harness/experiment.cc).
    static const Kernel kernel =
        resolveKernel(envPolicy(), avx2Available(), avx512Available());
    return kernel;
}

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
    case Kernel::Disabled:
        return "disabled";
    case Kernel::Scalar:
        return "scalar";
    case Kernel::Avx2:
        return "avx2";
    case Kernel::Avx512:
        return "avx512";
    }
    return "?";
}

} // namespace simd
} // namespace sim
} // namespace react
