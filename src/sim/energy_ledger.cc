#include "energy_ledger.hh"

namespace react {
namespace sim {

Joules
EnergyLedger::totalLoss() const
{
    return clipped + leaked + switchLoss + diodeLoss + overhead + faultLoss;
}

Joules
EnergyLedger::totalOut() const
{
    return delivered + totalLoss();
}

double
EnergyLedger::efficiency() const
{
    return harvested > Joules(0) ? delivered / harvested : 0.0;
}

Joules
EnergyLedger::conservationError(Joules stored_delta) const
{
    return harvested - delivered - totalLoss() - stored_delta;
}

EnergyLedger &
EnergyLedger::operator+=(const EnergyLedger &other)
{
    harvested += other.harvested;
    delivered += other.delivered;
    clipped += other.clipped;
    leaked += other.leaked;
    switchLoss += other.switchLoss;
    diodeLoss += other.diodeLoss;
    overhead += other.overhead;
    faultLoss += other.faultLoss;
    return *this;
}

EnergyLedger
operator+(EnergyLedger lhs, const EnergyLedger &rhs)
{
    lhs += rhs;
    return lhs;
}

} // namespace sim
} // namespace react
