#include "energy_ledger.hh"

#include "snapshot/snapshot.hh"

namespace react {
namespace sim {

Joules
EnergyLedger::totalLoss() const
{
    return clipped + leaked + switchLoss + diodeLoss + overhead + faultLoss;
}

Joules
EnergyLedger::totalOut() const
{
    return delivered + totalLoss();
}

double
EnergyLedger::efficiency() const
{
    return harvested > Joules(0) ? delivered / harvested : 0.0;
}

Joules
EnergyLedger::conservationError(Joules stored_delta) const
{
    return harvested - delivered - totalLoss() - stored_delta;
}

EnergyLedger &
EnergyLedger::operator+=(const EnergyLedger &other)
{
    harvested += other.harvested;
    delivered += other.delivered;
    clipped += other.clipped;
    leaked += other.leaked;
    switchLoss += other.switchLoss;
    diodeLoss += other.diodeLoss;
    overhead += other.overhead;
    faultLoss += other.faultLoss;
    return *this;
}

EnergyLedger
operator+(EnergyLedger lhs, const EnergyLedger &rhs)
{
    lhs += rhs;
    return lhs;
}

void
EnergyLedger::save(snapshot::SnapshotWriter &w) const
{
    w.f64(harvested.raw());
    w.f64(delivered.raw());
    w.f64(clipped.raw());
    w.f64(leaked.raw());
    w.f64(switchLoss.raw());
    w.f64(diodeLoss.raw());
    w.f64(overhead.raw());
    w.f64(faultLoss.raw());
}

void
EnergyLedger::restore(snapshot::SnapshotReader &r)
{
    harvested = Joules(r.f64());
    delivered = Joules(r.f64());
    clipped = Joules(r.f64());
    leaked = Joules(r.f64());
    switchLoss = Joules(r.f64());
    diodeLoss = Joules(r.f64());
    overhead = Joules(r.f64());
    faultLoss = Joules(r.f64());
}

} // namespace sim
} // namespace react
