#include "energy_ledger.hh"

namespace react {
namespace sim {

double
EnergyLedger::totalLoss() const
{
    return clipped + leaked + switchLoss + diodeLoss + overhead + faultLoss;
}

double
EnergyLedger::totalOut() const
{
    return delivered + totalLoss();
}

double
EnergyLedger::efficiency() const
{
    return harvested > 0.0 ? delivered / harvested : 0.0;
}

double
EnergyLedger::conservationError(double stored_delta) const
{
    return harvested - delivered - totalLoss() - stored_delta;
}

EnergyLedger &
EnergyLedger::operator+=(const EnergyLedger &other)
{
    harvested += other.harvested;
    delivered += other.delivered;
    clipped += other.clipped;
    leaked += other.leaked;
    switchLoss += other.switchLoss;
    diodeLoss += other.diodeLoss;
    overhead += other.overhead;
    faultLoss += other.faultLoss;
    return *this;
}

EnergyLedger
operator+(EnergyLedger lhs, const EnergyLedger &rhs)
{
    lhs += rhs;
    return lhs;
}

} // namespace sim
} // namespace react
