#include "capacitor.hh"

#include <cmath>
#include <limits>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace sim {

Ohms
CapacitorSpec::leakResistance() const
{
    if (leakageCurrentAtRated <= Amps(0))
        return Ohms(std::numeric_limits<double>::infinity());
    return ratedVoltage / leakageCurrentAtRated;
}

Capacitor::Capacitor(const CapacitorSpec &spec, Volts initial_voltage)
    : partSpec(spec), v(initial_voltage)
{
    react_assert(spec.capacitance > Farads(0),
                 "capacitance must be positive");
    react_assert(initial_voltage >= Volts(0),
                 "initial voltage must be >= 0");
}

void
Capacitor::setVoltage(Volts voltage)
{
    react_assert(voltage >= Volts(0), "capacitor voltage must be >= 0");
    v = voltage;
}

Joules
Capacitor::setCapacitance(Farads capacitance)
{
    react_assert(capacitance > Farads(0), "capacitance must be positive");
    const Joules before = energy();
    partSpec.capacitance = capacitance;
    return before - energy();
}

Coulombs
Capacitor::charge() const
{
    return partSpec.capacitance * v;
}

Joules
Capacitor::energy() const
{
    return units::capEnergy(partSpec.capacitance, v);
}

void
Capacitor::addCharge(Coulombs dq)
{
    v += dq / partSpec.capacitance;
    if (v < Volts(0))
        v = Volts(0);
}

void
Capacitor::applyCurrent(Amps current, Seconds dt)
{
    addCharge(current * dt);
}

Joules
Capacitor::leak(Seconds dt)
{
    const Ohms r = partSpec.leakResistance();
    if (!units::isfinite(r) || v <= Volts(0))
        return Joules(0);
    const Joules before = energy();
    v *= std::exp(-dt / (r * partSpec.capacitance));
    return before - energy();
}

Joules
Capacitor::clip(Volts ceiling)
{
    const Volts limit = ceiling < Volts(0) ? partSpec.ratedVoltage : ceiling;
    if (v <= limit)
        return Joules(0);
    const Joules before = energy();
    v = limit;
    return before - energy();
}

Joules
Capacitor::energyAbove(Volts floor_voltage) const
{
    if (v <= floor_voltage)
        return Joules(0);
    return units::capEnergyWindow(partSpec.capacitance, v, floor_voltage);
}

void
Capacitor::save(snapshot::SnapshotWriter &w) const
{
    w.f64(partSpec.capacitance.raw());
    w.f64(v.raw());
}

void
Capacitor::restore(snapshot::SnapshotReader &r)
{
    partSpec.capacitance = Farads(r.f64());
    v = Volts(r.f64());
}

} // namespace sim
} // namespace react
