#include "capacitor.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace sim {

double
CapacitorSpec::leakResistance() const
{
    if (leakageCurrentAtRated <= 0.0)
        return std::numeric_limits<double>::infinity();
    return ratedVoltage / leakageCurrentAtRated;
}

Capacitor::Capacitor(const CapacitorSpec &spec, double initial_voltage)
    : partSpec(spec), v(initial_voltage)
{
    react_assert(spec.capacitance > 0.0, "capacitance must be positive");
    react_assert(initial_voltage >= 0.0, "initial voltage must be >= 0");
}

void
Capacitor::setVoltage(double voltage)
{
    react_assert(voltage >= 0.0, "capacitor voltage must be >= 0");
    v = voltage;
}

double
Capacitor::setCapacitance(double capacitance)
{
    react_assert(capacitance > 0.0, "capacitance must be positive");
    const double before = energy();
    partSpec.capacitance = capacitance;
    return before - energy();
}

double
Capacitor::charge() const
{
    return partSpec.capacitance * v;
}

double
Capacitor::energy() const
{
    return units::capEnergy(partSpec.capacitance, v);
}

void
Capacitor::addCharge(double dq)
{
    v += dq / partSpec.capacitance;
    if (v < 0.0)
        v = 0.0;
}

void
Capacitor::applyCurrent(double current, double dt)
{
    addCharge(current * dt);
}

double
Capacitor::leak(double dt)
{
    const double r = partSpec.leakResistance();
    if (!std::isfinite(r) || v <= 0.0)
        return 0.0;
    const double before = energy();
    v *= std::exp(-dt / (r * partSpec.capacitance));
    return before - energy();
}

double
Capacitor::clip(double ceiling)
{
    const double limit = ceiling < 0.0 ? partSpec.ratedVoltage : ceiling;
    if (v <= limit)
        return 0.0;
    const double before = energy();
    v = limit;
    return before - energy();
}

double
Capacitor::energyAbove(double floor_voltage) const
{
    if (v <= floor_voltage)
        return 0.0;
    return units::capEnergyWindow(partSpec.capacitance, v, floor_voltage);
}

} // namespace sim
} // namespace react
