#include "capacitor.hh"

#include <cmath>
#include <limits>

#include "sim/hotloop_stats.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace sim {

Ohms
CapacitorSpec::leakResistance() const
{
    if (leakageCurrentAtRated <= Amps(0))
        return Ohms(std::numeric_limits<double>::infinity());
    return ratedVoltage / leakageCurrentAtRated;
}

Capacitor::Capacitor(const CapacitorSpec &spec, Volts initial_voltage)
    : partSpec(spec), v(initial_voltage)
{
    react_assert(spec.capacitance > Farads(0),
                 "capacitance must be positive");
    react_assert(initial_voltage >= Volts(0),
                 "initial voltage must be >= 0");
    rebuildLeakCache();
}

void
Capacitor::rebuildLeakCache()
{
    const Ohms r = partSpec.leakResistance();
    leakTauFinite = units::isfinite(r);
    leakTau = leakTauFinite ? r * partSpec.capacitance : Seconds(0.0);
    cachedLeakDt = Seconds(-1.0);
    cachedLeakDecay = 1.0;
}

void
Capacitor::setVoltage(Volts voltage)
{
    react_assert(voltage >= Volts(0), "capacitor voltage must be >= 0");
    v = voltage;
}

Joules
Capacitor::setCapacitance(Farads capacitance)
{
    react_assert(capacitance > Farads(0), "capacitance must be positive");
    const Joules before = energy();
    partSpec.capacitance = capacitance;
    rebuildLeakCache();
    return before - energy();
}

Joules
Capacitor::leakN(Seconds dt, uint64_t n)
{
    if (!leakTauFinite || v <= Volts(0) || n == 0)
        return Joules(0);
    if (dt == cachedLeakDt) {
        ++hotloop::counters().leakCacheHits;
    } else {
        cachedLeakDecay = std::exp(-dt / leakTau);
        cachedLeakDt = dt;
        ++hotloop::counters().leakCacheMisses;
    }
    const Joules before = energy();
    v *= std::pow(cachedLeakDecay, static_cast<double>(n));
    return before - energy();
}

void
Capacitor::save(snapshot::SnapshotWriter &w) const
{
    w.f64(partSpec.capacitance.raw());
    w.f64(v.raw());
}

void
Capacitor::restore(snapshot::SnapshotReader &r)
{
    partSpec.capacitance = Farads(r.f64());
    v = Volts(r.f64());
    rebuildLeakCache();
}

} // namespace sim
} // namespace react
