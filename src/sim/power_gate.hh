/**
 * @file
 * Hysteretic power gate between the energy buffer and the computational
 * backend.
 *
 * Every platform in the paper's evaluation uses the same intermediate
 * circuit: the MSP430 is enabled once the buffer charges to 3.3 V and
 * disconnected when it falls to 1.8 V (S 4).  Dewdrop-style designs vary
 * the enable voltage at run time, so the threshold is mutable.
 */

#ifndef REACT_SIM_POWER_GATE_HH
#define REACT_SIM_POWER_GATE_HH

#include <cstdint>

#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace sim {

using units::Volts;

class FaultInjector;

/** Voltage-supervisor power gate with enable/brown-out hysteresis. */
class PowerGate
{
  public:
    /**
     * @param enable_voltage Rising threshold that turns the backend on.
     * @param brownout_voltage Falling threshold that cuts power.
     */
    PowerGate(Volts enable_voltage = Volts(3.3),
              Volts brownout_voltage = Volts(1.8));

    /**
     * Observe the rail voltage and update the gate state.
     *
     * @param rail_voltage Buffer output voltage.
     * @return true when the state changed during this update.
     */
    bool update(Volts rail_voltage);

    /** Whether the backend is currently powered. */
    bool isOn() const { return on; }

    /** Rising enable threshold. */
    Volts enableVoltage() const { return vEnable; }

    /** Falling brown-out threshold. */
    Volts brownoutVoltage() const { return vBrownout; }

    /**
     * Retarget the enable threshold (Dewdrop-style adaptive wake-up).
     * Must remain above the brown-out threshold.
     */
    void setEnableVoltage(Volts enable_voltage);

    /** Reset to the powered-off state. */
    void reset();

    /**
     * Attach (or detach with nullptr) a fault injector: the supervisor
     * comparator then observes the rail through the injector's offset
     * drift and misread model.
     */
    void attachFaultInjector(FaultInjector *injector) { faults = injector; }

    /** Serialize the mutable state (enable threshold, gate latch); the
     *  brown-out threshold is construction-fixed and the injector
     *  attachment is re-established by the owner. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    Volts vEnable;
    Volts vBrownout;
    bool on = false;
    FaultInjector *faults = nullptr;
};

/**
 * Lane-major mirror of up to kMaxLanes PowerGate latches for the batch
 * runner's hot loop: the per-step threshold check becomes one compare
 * pair per lane producing a transition bitmask -- no call, no unit
 * wrapping, no per-lane object walk.
 *
 * Without a fault injector, PowerGate::update is a pure hysteresis
 * latch (compare against one of two fixed thresholds), so the mirror
 * is bit-identical by construction; the authoritative PowerGate object
 * remains the source of truth for serialization, and the runner calls
 * its update() on every flagged transition to keep the two in lockstep.
 * Lanes whose gate observes the rail through an injector must NOT be
 * mirrored: comparatorRead consumes injector randomness on every call,
 * so those lanes keep their per-step update() (clear their liveMask
 * bit).
 */
struct GateLaneBank
{
    static constexpr int kMaxLanes = 8;

    /** Rising enable threshold per lane, volts. */
    double vEnable[kMaxLanes] = {};
    /** Falling brown-out threshold per lane, volts. */
    double vBrownout[kMaxLanes] = {};
    /** Bit l set: lane l's latch is currently on. */
    uint8_t onMask = 0;
    /** Bit l set: lane l is mirrored here (live, injector-free). */
    uint8_t liveMask = 0;

    /**
     * The hysteresis check for every mirrored lane at once.
     *
     * @param rail Lane-major rail voltages (e.g.
     *        sim::BatchStepper::voltages()).
     * @return Mask of mirrored lanes whose latch flips on this rail.
     *         The caller forwards each flip to the authoritative
     *         PowerGate::update and toggles onMask.
     */
    uint8_t transitionMask(const double *rail) const
    {
        uint8_t flips = 0;
        for (int l = 0; l < kMaxLanes; ++l) {
            const bool on = (onMask >> l) & 1u;
            const bool flip = on ? rail[l] <= vBrownout[l]
                                 : rail[l] >= vEnable[l];
            flips |= static_cast<uint8_t>(flip ? 1u << l : 0u);
        }
        return flips & liveMask;
    }

    /** Apply a transition mask to the latch mirror. */
    void toggle(uint8_t mask) { onMask ^= mask; }

    /** The mirrored latch state for one lane. */
    bool isOn(int lane) const { return (onMask >> lane) & 1u; }
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_POWER_GATE_HH
