/**
 * @file
 * Hysteretic power gate between the energy buffer and the computational
 * backend.
 *
 * Every platform in the paper's evaluation uses the same intermediate
 * circuit: the MSP430 is enabled once the buffer charges to 3.3 V and
 * disconnected when it falls to 1.8 V (S 4).  Dewdrop-style designs vary
 * the enable voltage at run time, so the threshold is mutable.
 */

#ifndef REACT_SIM_POWER_GATE_HH
#define REACT_SIM_POWER_GATE_HH

#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace sim {

using units::Volts;

class FaultInjector;

/** Voltage-supervisor power gate with enable/brown-out hysteresis. */
class PowerGate
{
  public:
    /**
     * @param enable_voltage Rising threshold that turns the backend on.
     * @param brownout_voltage Falling threshold that cuts power.
     */
    PowerGate(Volts enable_voltage = Volts(3.3),
              Volts brownout_voltage = Volts(1.8));

    /**
     * Observe the rail voltage and update the gate state.
     *
     * @param rail_voltage Buffer output voltage.
     * @return true when the state changed during this update.
     */
    bool update(Volts rail_voltage);

    /** Whether the backend is currently powered. */
    bool isOn() const { return on; }

    /** Rising enable threshold. */
    Volts enableVoltage() const { return vEnable; }

    /** Falling brown-out threshold. */
    Volts brownoutVoltage() const { return vBrownout; }

    /**
     * Retarget the enable threshold (Dewdrop-style adaptive wake-up).
     * Must remain above the brown-out threshold.
     */
    void setEnableVoltage(Volts enable_voltage);

    /** Reset to the powered-off state. */
    void reset();

    /**
     * Attach (or detach with nullptr) a fault injector: the supervisor
     * comparator then observes the rail through the injector's offset
     * drift and misread model.
     */
    void attachFaultInjector(FaultInjector *injector) { faults = injector; }

    /** Serialize the mutable state (enable threshold, gate latch); the
     *  brown-out threshold is construction-fixed and the injector
     *  attachment is re-established by the owner. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    Volts vEnable;
    Volts vBrownout;
    bool on = false;
    FaultInjector *faults = nullptr;
};

} // namespace sim
} // namespace react

#endif // REACT_SIM_POWER_GATE_HH
