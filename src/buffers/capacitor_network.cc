#include "capacitor_network.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace buffer {

Farads
NetworkConfig::equivalentCapacitance(Farads unit_capacitance) const
{
    Farads total{0.0};
    for (const auto &branch : branches) {
        if (!branch.empty())
            total += unit_capacitance / static_cast<double>(branch.size());
    }
    return total;
}

CapacitorNetwork::CapacitorNetwork(int unit_count,
                                   const sim::CapacitorSpec &unit_spec)
{
    react_assert(unit_count > 0, "network needs at least one unit");
    units.reserve(static_cast<size_t>(unit_count));
    for (int i = 0; i < unit_count; ++i)
        units.emplace_back(unit_spec);
    connectedFlags.assign(units.size(), 0);
}

CapacitorNetwork::CapacitorNetwork(const CapacitorNetwork &other)
    : units(other.units), ownedConfig(other.ownedConfig),
      connectedFlags(other.connectedFlags)
{
    // A source that owned its config must not leave the copy aliasing the
    // source's storage; a source borrowing a shared ladder entry may.
    currentCfg = other.currentCfg == &other.ownedConfig ? &ownedConfig
                                                        : other.currentCfg;
}

CapacitorNetwork &
CapacitorNetwork::operator=(const CapacitorNetwork &other)
{
    if (this == &other)
        return *this;
    units = other.units;
    ownedConfig = other.ownedConfig;
    connectedFlags = other.connectedFlags;
    currentCfg = other.currentCfg == &other.ownedConfig ? &ownedConfig
                                                        : other.currentCfg;
    return *this;
}

Volts
CapacitorNetwork::unitVoltage(int index) const
{
    return units.at(static_cast<size_t>(index)).voltage();
}

void
CapacitorNetwork::setUnitVoltage(int index, Volts voltage)
{
    units.at(static_cast<size_t>(index)).setVoltage(voltage);
}

Volts
CapacitorNetwork::branchVoltage(const std::vector<int> &branch) const
{
    Volts v{0.0};
    for (int idx : branch)
        v += units.at(static_cast<size_t>(idx)).voltage();
    return v;
}

Farads
CapacitorNetwork::branchCapacitance(const std::vector<int> &branch) const
{
    react_assert(!branch.empty(), "empty branch");
    return units[0].capacitance() / static_cast<double>(branch.size());
}

Farads
CapacitorNetwork::equivalentCapacitance() const
{
    return currentCfg->equivalentCapacitance(units[0].capacitance());
}

Volts
CapacitorNetwork::outputVoltage() const
{
    // Between reconfigurations the connected branches stay equalized, so
    // any branch's terminal voltage is the node voltage.
    if (currentCfg->branches.empty())
        return Volts(0.0);
    return branchVoltage(currentCfg->branches.front());
}

Joules
CapacitorNetwork::storedEnergy() const
{
    Joules e{0.0};
    for (const auto &unit : units)
        e += unit.energy();
    return e;
}

Joules
CapacitorNetwork::connectedEnergy() const
{
    Joules e{0.0};
    for (const auto &branch : currentCfg->branches) {
        for (int idx : branch)
            e += units[static_cast<size_t>(idx)].energy();
    }
    return e;
}

Joules
CapacitorNetwork::equalizeConnected()
{
    if (currentCfg->branches.empty())
        return Joules(0.0);

    // Parallel equalization: the common terminal voltage conserves total
    // branch charge, V_f = sum(Q_br) / sum(C_br).
    Coulombs q_total{0.0};
    Farads c_total{0.0};
    for (const auto &branch : currentCfg->branches) {
        const Farads c_br = branchCapacitance(branch);
        q_total += c_br * branchVoltage(branch);
        c_total += c_br;
    }
    const Volts v_final = std::max(q_total / c_total, Volts(0.0));

    const Joules e_before = connectedEnergy();
    for (const auto &branch : currentCfg->branches) {
        const Farads c_br = branchCapacitance(branch);
        const Coulombs dq = c_br * (v_final - branchVoltage(branch));
        // Series chains carry the same charge through every member.
        for (int idx : branch)
            units[static_cast<size_t>(idx)].addCharge(dq);
    }
    const Joules e_after = connectedEnergy();
    return std::max(e_before - e_after, Joules(0.0));
}

void
CapacitorNetwork::adoptConfig(const NetworkConfig &next)
{
    // Validate (indices in range, no duplicates) while rebuilding the
    // connected-unit flags in place; the flags double as the "seen" set so
    // reconfiguration needs no temporary container.
    std::fill(connectedFlags.begin(), connectedFlags.end(),
              static_cast<uint8_t>(0));
    for (const auto &branch : next.branches) {
        react_assert(!branch.empty(), "network config has an empty branch");
        for (int idx : branch) {
            react_assert(idx >= 0 && idx < unitCount(),
                         "network config index %d out of range", idx);
            uint8_t &flag = connectedFlags[static_cast<size_t>(idx)];
            react_assert(flag == 0,
                         "unit %d appears twice in network config", idx);
            flag = 1;
        }
    }
}

Joules
CapacitorNetwork::reconfigure(const NetworkConfig &next)
{
    adoptConfig(next);
    ownedConfig = next;
    currentCfg = &ownedConfig;
    return equalizeConnected();
}

Joules
CapacitorNetwork::reconfigureShared(const NetworkConfig *next)
{
    react_assert(next != nullptr, "shared network config must not be null");
    adoptConfig(*next);
    currentCfg = next;
    return equalizeConnected();
}

void
CapacitorNetwork::restoreArrangementShared(const NetworkConfig *next)
{
    react_assert(next != nullptr, "shared network config must not be null");
    adoptConfig(*next);
    currentCfg = next;
}

void
CapacitorNetwork::save(snapshot::SnapshotWriter &w) const
{
    w.u32(static_cast<uint32_t>(units.size()));
    for (const auto &unit : units)
        unit.save(w);
}

void
CapacitorNetwork::restore(snapshot::SnapshotReader &r)
{
    const uint32_t count = r.u32();
    if (count != units.size())
        throw snapshot::SnapshotError(
            "capacitor-network snapshot unit count mismatch");
    for (auto &unit : units)
        unit.restore(r);
}

void
CapacitorNetwork::addChargeAtOutput(Coulombs dq)
{
    if (currentCfg->branches.empty())
        return;
    const Farads c_eq = equivalentCapacitance();
    const Volts dv = dq / c_eq;
    for (const auto &branch : currentCfg->branches) {
        const Coulombs dq_br = branchCapacitance(branch) * dv;
        for (int idx : branch)
            units[static_cast<size_t>(idx)].addCharge(dq_br);
    }
}

Joules
CapacitorNetwork::leak(Seconds dt)
{
    Joules lost{0.0};
    for (auto &unit : units)
        lost += unit.leak(dt);
    // Leakage perturbs series-chain balance only within a chain (all units
    // decay by the same factor, so equal units stay equal); connected
    // branches may drift apart slightly, which the next equalization
    // charges back -- physically this is the standing balancing current.
    return lost;
}

Joules
CapacitorNetwork::clipOutput(Volts ceiling)
{
    Joules clipped{0.0};
    const Volts v_out = outputVoltage();
    if (!currentCfg->branches.empty() && v_out > ceiling) {
        const Joules e_before = connectedEnergy();
        addChargeAtOutput(equivalentCapacitance() * (ceiling - v_out));
        clipped += e_before - connectedEnergy();
    }
    // Disconnected units are bounded only by their rating; the flags are
    // maintained by adoptConfig() so this pass allocates nothing per step.
    for (int i = 0; i < unitCount(); ++i) {
        if (!connectedFlags[static_cast<size_t>(i)])
            clipped += units[static_cast<size_t>(i)].clip();
    }
    return clipped;
}

} // namespace buffer
} // namespace react
