#include "capacitor_network.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace buffer {

Farads
NetworkConfig::equivalentCapacitance(Farads unit_capacitance) const
{
    Farads total{0.0};
    for (const auto &branch : branches) {
        if (!branch.empty())
            total += unit_capacitance / static_cast<double>(branch.size());
    }
    return total;
}

CapacitorNetwork::CapacitorNetwork(int unit_count,
                                   const sim::CapacitorSpec &unit_spec)
{
    react_assert(unit_count > 0, "network needs at least one unit");
    units.reserve(static_cast<size_t>(unit_count));
    for (int i = 0; i < unit_count; ++i)
        units.emplace_back(unit_spec);
    connectedFlags.assign(units.size(), 0);
    // Worst case every unit is connected (uniqueness is asserted), so
    // reserving to the pool size makes every later recompilation
    // allocation-free.
    flatUnits.reserve(units.size());
    branchOffsets.reserve(units.size() + 1);
    branchSizes.reserve(units.size());
    branchOffsets.push_back(0);
}

CapacitorNetwork::CapacitorNetwork(const CapacitorNetwork &other)
    : units(other.units), ownedConfig(other.ownedConfig),
      connectedFlags(other.connectedFlags), flatUnits(other.flatUnits),
      branchOffsets(other.branchOffsets), branchSizes(other.branchSizes),
      cachedEqCap(other.cachedEqCap), cachedEqCapKey(other.cachedEqCapKey)
{
    // A source that owned its config must not leave the copy aliasing the
    // source's storage; a source borrowing a shared ladder entry may.
    currentCfg = other.currentCfg == &other.ownedConfig ? &ownedConfig
                                                        : other.currentCfg;
    // Vector copies size capacity to fit; restore the full-pool reserve
    // so the copy keeps the allocation-free recompilation guarantee.
    flatUnits.reserve(units.size());
    branchOffsets.reserve(units.size() + 1);
    branchSizes.reserve(units.size());
}

CapacitorNetwork &
CapacitorNetwork::operator=(const CapacitorNetwork &other)
{
    if (this == &other)
        return *this;
    units = other.units;
    ownedConfig = other.ownedConfig;
    connectedFlags = other.connectedFlags;
    flatUnits = other.flatUnits;
    branchOffsets = other.branchOffsets;
    branchSizes = other.branchSizes;
    cachedEqCap = other.cachedEqCap;
    cachedEqCapKey = other.cachedEqCapKey;
    currentCfg = other.currentCfg == &other.ownedConfig ? &ownedConfig
                                                        : other.currentCfg;
    flatUnits.reserve(units.size());
    branchOffsets.reserve(units.size() + 1);
    branchSizes.reserve(units.size());
    return *this;
}

Volts
CapacitorNetwork::unitVoltage(int index) const
{
    return units.at(static_cast<size_t>(index)).voltage();
}

void
CapacitorNetwork::setUnitVoltage(int index, Volts voltage)
{
    units.at(static_cast<size_t>(index)).setVoltage(voltage);
}

Joules
CapacitorNetwork::equalizeConnected()
{
    if (branchSizes.empty())
        return Joules(0.0);

    // Parallel equalization: the common terminal voltage conserves total
    // branch charge, V_f = sum(Q_br) / sum(C_br).
    const Farads unit_cap = units[0].capacitance();
    Coulombs q_total{0.0};
    Farads c_total{0.0};
    for (std::size_t b = 0; b < branchSizes.size(); ++b) {
        const Farads c_br = unit_cap / branchSizes[b];
        q_total += c_br * flatBranchVoltage(b);
        c_total += c_br;
    }
    const Volts v_final = std::max(q_total / c_total, Volts(0.0));

    const Joules e_before = connectedEnergy();
    for (std::size_t b = 0; b < branchSizes.size(); ++b) {
        const Farads c_br = unit_cap / branchSizes[b];
        const Coulombs dq = c_br * (v_final - flatBranchVoltage(b));
        // Series chains carry the same charge through every member.
        const int32_t end = branchOffsets[b + 1];
        for (int32_t k = branchOffsets[b]; k < end; ++k)
            units[static_cast<size_t>(flatUnits[static_cast<size_t>(k)])]
                .addCharge(dq);
    }
    const Joules e_after = connectedEnergy();
    return std::max(e_before - e_after, Joules(0.0));
}

void
CapacitorNetwork::adoptConfig(const NetworkConfig &next)
{
    // Validate (indices in range, no duplicates) while rebuilding the
    // connected-unit flags in place; the flags double as the "seen" set so
    // reconfiguration needs no temporary container.  The same pass
    // compiles the flattened step state; clear() keeps the construction
    // -time capacity, so no allocation happens here either.
    std::fill(connectedFlags.begin(), connectedFlags.end(),
              static_cast<uint8_t>(0));
    flatUnits.clear();
    branchOffsets.clear();
    branchSizes.clear();
    branchOffsets.push_back(0);
    for (const auto &branch : next.branches) {
        react_assert(!branch.empty(), "network config has an empty branch");
        for (int idx : branch) {
            react_assert(idx >= 0 && idx < unitCount(),
                         "network config index %d out of range", idx);
            uint8_t &flag = connectedFlags[static_cast<size_t>(idx)];
            react_assert(flag == 0,
                         "unit %d appears twice in network config", idx);
            flag = 1;
            flatUnits.push_back(static_cast<int32_t>(idx));
        }
        branchOffsets.push_back(static_cast<int32_t>(flatUnits.size()));
        branchSizes.push_back(static_cast<double>(branch.size()));
    }
    cachedEqCapKey = Farads(-1.0);
}

Joules
CapacitorNetwork::reconfigure(const NetworkConfig &next)
{
    adoptConfig(next);
    ownedConfig = next;
    currentCfg = &ownedConfig;
    return equalizeConnected();
}

Joules
CapacitorNetwork::reconfigureShared(const NetworkConfig *next)
{
    react_assert(next != nullptr, "shared network config must not be null");
    adoptConfig(*next);
    currentCfg = next;
    return equalizeConnected();
}

void
CapacitorNetwork::restoreArrangementShared(const NetworkConfig *next)
{
    react_assert(next != nullptr, "shared network config must not be null");
    adoptConfig(*next);
    currentCfg = next;
}

void
CapacitorNetwork::save(snapshot::SnapshotWriter &w) const
{
    w.u32(static_cast<uint32_t>(units.size()));
    for (const auto &unit : units)
        unit.save(w);
}

void
CapacitorNetwork::restore(snapshot::SnapshotReader &r)
{
    const uint32_t count = r.u32();
    if (count != units.size())
        throw snapshot::SnapshotError(
            "capacitor-network snapshot unit count mismatch");
    for (auto &unit : units)
        unit.restore(r);
}

Joules
CapacitorNetwork::leakN(Seconds dt, uint64_t n)
{
    Joules lost{0.0};
    for (auto &unit : units)
        lost += unit.leakN(dt, n);
    return lost;
}

} // namespace buffer
} // namespace react
