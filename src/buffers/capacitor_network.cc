#include "capacitor_network.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hh"

namespace react {
namespace buffer {

double
NetworkConfig::equivalentCapacitance(double unit_capacitance) const
{
    double total = 0.0;
    for (const auto &branch : branches) {
        if (!branch.empty())
            total += unit_capacitance / static_cast<double>(branch.size());
    }
    return total;
}

CapacitorNetwork::CapacitorNetwork(int unit_count,
                                   const sim::CapacitorSpec &unit_spec)
{
    react_assert(unit_count > 0, "network needs at least one unit");
    units.reserve(static_cast<size_t>(unit_count));
    for (int i = 0; i < unit_count; ++i)
        units.emplace_back(unit_spec);
}

double
CapacitorNetwork::unitVoltage(int index) const
{
    return units.at(static_cast<size_t>(index)).voltage();
}

void
CapacitorNetwork::setUnitVoltage(int index, double voltage)
{
    units.at(static_cast<size_t>(index)).setVoltage(voltage);
}

double
CapacitorNetwork::branchVoltage(const std::vector<int> &branch) const
{
    double v = 0.0;
    for (int idx : branch)
        v += units.at(static_cast<size_t>(idx)).voltage();
    return v;
}

double
CapacitorNetwork::branchCapacitance(const std::vector<int> &branch) const
{
    react_assert(!branch.empty(), "empty branch");
    return units[0].capacitance() / static_cast<double>(branch.size());
}

double
CapacitorNetwork::equivalentCapacitance() const
{
    return current.equivalentCapacitance(units[0].capacitance());
}

double
CapacitorNetwork::outputVoltage() const
{
    // Between reconfigurations the connected branches stay equalized, so
    // any branch's terminal voltage is the node voltage.
    if (current.branches.empty())
        return 0.0;
    return branchVoltage(current.branches.front());
}

double
CapacitorNetwork::storedEnergy() const
{
    double e = 0.0;
    for (const auto &unit : units)
        e += unit.energy();
    return e;
}

double
CapacitorNetwork::connectedEnergy() const
{
    double e = 0.0;
    for (const auto &branch : current.branches) {
        for (int idx : branch)
            e += units[static_cast<size_t>(idx)].energy();
    }
    return e;
}

double
CapacitorNetwork::equalizeConnected()
{
    if (current.branches.empty())
        return 0.0;

    // Parallel equalization: the common terminal voltage conserves total
    // branch charge, V_f = sum(Q_br) / sum(C_br).
    double q_total = 0.0;
    double c_total = 0.0;
    for (const auto &branch : current.branches) {
        const double c_br = branchCapacitance(branch);
        q_total += c_br * branchVoltage(branch);
        c_total += c_br;
    }
    const double v_final = std::max(q_total / c_total, 0.0);

    double e_before = connectedEnergy();
    for (const auto &branch : current.branches) {
        const double c_br = branchCapacitance(branch);
        const double dq = c_br * (v_final - branchVoltage(branch));
        // Series chains carry the same charge through every member.
        for (int idx : branch)
            units[static_cast<size_t>(idx)].addCharge(dq);
    }
    double e_after = connectedEnergy();
    return std::max(e_before - e_after, 0.0);
}

double
CapacitorNetwork::reconfigure(const NetworkConfig &next)
{
    // Validate: indices in range, no duplicates.
    std::set<int> seen;
    for (const auto &branch : next.branches) {
        react_assert(!branch.empty(), "network config has an empty branch");
        for (int idx : branch) {
            react_assert(idx >= 0 && idx < unitCount(),
                         "network config index %d out of range", idx);
            react_assert(seen.insert(idx).second,
                         "unit %d appears twice in network config", idx);
        }
    }

    current = next;
    return equalizeConnected();
}

void
CapacitorNetwork::addChargeAtOutput(double dq)
{
    if (current.branches.empty())
        return;
    const double c_eq = equivalentCapacitance();
    const double dv = dq / c_eq;
    for (const auto &branch : current.branches) {
        const double dq_br = branchCapacitance(branch) * dv;
        for (int idx : branch)
            units[static_cast<size_t>(idx)].addCharge(dq_br);
    }
}

double
CapacitorNetwork::leak(double dt)
{
    double lost = 0.0;
    for (auto &unit : units)
        lost += unit.leak(dt);
    // Leakage perturbs series-chain balance only within a chain (all units
    // decay by the same factor, so equal units stay equal); connected
    // branches may drift apart slightly, which the next equalization
    // charges back -- physically this is the standing balancing current.
    return lost;
}

double
CapacitorNetwork::clipOutput(double ceiling)
{
    double clipped = 0.0;
    const double v_out = outputVoltage();
    if (!current.branches.empty() && v_out > ceiling) {
        const double e_before = connectedEnergy();
        addChargeAtOutput(equivalentCapacitance() * (ceiling - v_out));
        clipped += e_before - connectedEnergy();
    }
    // Disconnected units are bounded only by their rating.
    std::set<int> connected;
    for (const auto &branch : current.branches)
        connected.insert(branch.begin(), branch.end());
    for (int i = 0; i < unitCount(); ++i) {
        if (!connected.count(i))
            clipped += units[static_cast<size_t>(i)].clip();
    }
    return clipped;
}

} // namespace buffer
} // namespace react
