#include "static_buffer.hh"

#include <cstdio>

#include "sim/charge_transfer.hh"
#include "sim/fault_injector.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace buffer {

namespace {

std::string
defaultName(Farads capacitance)
{
    char buf[32];
    if (capacitance >= Farads(1e-3))
        std::snprintf(buf, sizeof(buf), "%.0fmF", capacitance.raw() * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0fuF", capacitance.raw() * 1e6);
    return buf;
}

} // namespace

StaticBuffer::StaticBuffer(const sim::CapacitorSpec &spec, Volts rail_clamp,
                           std::string display_name)
    : cap(spec), clamp(rail_clamp),
      label(display_name.empty() ? defaultName(spec.capacitance)
                                 : std::move(display_name)),
      baseCapacitance(spec.capacitance)
{
    react_assert(rail_clamp > Volts(0), "rail clamp must be positive");
    react_assert(rail_clamp <= spec.ratedVoltage,
                 "rail clamp cannot exceed the capacitor rating");
}

bool
StaticBuffer::laneAgingEnabled() const
{
    return faults != nullptr &&
        faults->plan().capacitanceFadePerHour > 0.0;
}

void
StaticBuffer::laneStepAging(Seconds dt)
{
    // Dielectric aging (fault injection only; 10 Hz update cadence
    // vastly oversamples hour-scale fade).
    if (laneAgingEnabled()) {
        agingAccumulator += dt;
        if (agingAccumulator >= Seconds(0.1)) {
            agingAccumulator = Seconds(0.0);
            energyLedger.faultLoss += cap.setCapacitance(
                baseCapacitance * faults->capacitanceFactor("static.cap"));
        }
    }
}

void
StaticBuffer::step(Seconds dt, Watts input_power, Amps load_current)
{
    // 0. Dielectric aging.
    laneStepAging(dt);

    // 1. Self-discharge.
    energyLedger.leaked += cap.leak(dt);

    // 2. Harvested input (direct connection, no input diode).
    const Joules e_before_in = cap.energy();
    sim::chargeFromPower(cap, input_power, dt);
    energyLedger.harvested += cap.energy() - e_before_in;

    // 3. Backend load.
    if (load_current > Amps(0)) {
        const Joules e_before_load = cap.energy();
        cap.applyCurrent(-load_current, dt);
        energyLedger.delivered += e_before_load - cap.energy();
    }

    // 4. Overvoltage protection.
    energyLedger.clipped += cap.clip(clamp);
}

uint64_t
StaticBuffer::advanceQuiescent(Seconds dt, uint64_t max_steps)
{
    // Quiescence analysis: with zero input and zero load an exact step
    // reduces to cap.leak(dt) (chargeFromPower and applyCurrent are
    // no-ops, and the clip is a no-op while the voltage sits at or
    // under the clamp -- leak only lowers it further).  No control
    // state exists, so the whole horizon collapses to one closed-form
    // decay.  Decline under fault injection: aging mutates capacitance
    // mid-span.
    if (faults != nullptr || max_steps == 0)
        return 0;
    if (cap.voltage() > clamp)
        return 0;
    energyLedger.leaked += cap.leakN(dt, max_steps);
    return max_steps;
}

Volts
StaticBuffer::railVoltage() const
{
    return cap.voltage();
}

Joules
StaticBuffer::storedEnergy() const
{
    return cap.energy();
}

Farads
StaticBuffer::equivalentCapacitance() const
{
    return cap.capacitance();
}

void
StaticBuffer::reset()
{
    cap.setVoltage(Volts(0.0));
    agingAccumulator = Seconds(0.0);
    energyLedger = sim::EnergyLedger();
}

void
StaticBuffer::save(snapshot::SnapshotWriter &w) const
{
    EnergyBuffer::save(w);
    cap.save(w);
    w.f64(agingAccumulator.raw());
}

void
StaticBuffer::restore(snapshot::SnapshotReader &r)
{
    EnergyBuffer::restore(r);
    cap.restore(r);
    agingAccumulator = Seconds(r.f64());
}

} // namespace buffer
} // namespace react
