/**
 * @file
 * Capybara-style multiplexed static storage (Colin et al., ASPLOS'18),
 * implemented as an extension baseline (S 2.3 of the paper).
 *
 * The design keeps an array of heterogeneous fixed capacitors.  Software
 * selects one as the *active* buffer powering the rail (small for
 * reactive tasks, large for atomic high-energy tasks); harvested energy
 * beyond the active capacitor's capacity spills into the remaining
 * capacitors in a fixed priority order.  This raises total capacity
 * without hurting reactivity, but energy parked on non-active capacitors
 * is not fungible: it can strand below a useful voltage and leak away --
 * the limitation that motivates REACT's unified last-level buffer.
 */

#ifndef REACT_BUFFERS_MULTIPLEXED_BUFFER_HH
#define REACT_BUFFERS_MULTIPLEXED_BUFFER_HH

#include <string>
#include <vector>

#include "buffers/energy_buffer.hh"
#include "sim/capacitor.hh"

namespace react {
namespace buffer {

/** Capybara-like bank of software-selected static buffers. */
class MultiplexedBuffer final : public EnergyBuffer
{
  public:
    /**
     * @param capacitors Capacitor array, ordered by charging priority;
     *        index 0 is the default active buffer.
     * @param rail_clamp Overvoltage clamp applied per capacitor.
     */
    explicit MultiplexedBuffer(const std::vector<sim::CapacitorSpec>
                                   &capacitors,
                               Volts rail_clamp = Volts(3.6));

    std::string name() const override { return "Capybara"; }
    void step(Seconds dt, Watts input_power, Amps load_current) override;
    Volts railVoltage() const override;
    Joules storedEnergy() const override;
    Farads equivalentCapacitance() const override;
    void reset() override;

    /** Capacitance "modes" map onto capacitor indices. */
    int capacitanceLevel() const override { return active; }
    int maxCapacitanceLevel() const override;
    void requestMinLevel(int level) override;
    bool levelSatisfied() const override;
    Joules usableEnergyAtLevel(int level) const override;

    /** Select the capacitor powering the rail (Capybara mode switch). */
    void selectActive(int index);

    /** Voltage of an individual capacitor. */
    Volts capVoltage(int index) const;

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    std::vector<sim::Capacitor> caps;
    Volts clamp;
    int active = 0;
    int requestedLevel = 0;
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_MULTIPLEXED_BUFFER_HH
