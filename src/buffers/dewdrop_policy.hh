/**
 * @file
 * Dewdrop-style adaptive enable voltage (Buettner et al., NSDI'11),
 * implemented as an extension baseline (S 2.4 of the paper).
 *
 * Dewdrop keeps a single fixed capacitor but varies the *enable voltage*
 * to match the next task: a cheap task can start at 2.2 V instead of
 * waiting for 3.6 V, trading stored margin for reactivity.  Energy stays
 * fully fungible (one capacitor), but the approach cannot escape the
 * reactivity-longevity tradeoff of the capacitor size itself -- the
 * limitation REACT's variable capacitance removes.
 */

#ifndef REACT_BUFFERS_DEWDROP_POLICY_HH
#define REACT_BUFFERS_DEWDROP_POLICY_HH

#include "util/units.hh"

namespace react {
namespace buffer {

/** Enable-voltage planner for a fixed-capacitor system. */
class DewdropPolicy
{
  public:
    /**
     * @param capacitance Buffer capacitance.
     * @param brownout_voltage Minimum operating voltage.
     * @param max_voltage Highest permissible enable voltage (rail clamp
     *        or capacitor rating).
     * @param margin Multiplier on the task energy to absorb conversion
     *        losses and estimation error (Dewdrop adapts this online; we
     *        use a fixed factor).
     */
    DewdropPolicy(units::Farads capacitance,
                  units::Volts brownout_voltage = units::Volts(1.8),
                  units::Volts max_voltage = units::Volts(3.6),
                  double margin = 1.3);

    /**
     * Enable voltage that banks enough charge for a task of the given
     * energy: V = sqrt(V_min^2 + 2 E margin / C), clamped to the legal
     * range.
     *
     * @param task_energy Energy of the next task burst.
     */
    units::Volts enableVoltageFor(units::Joules task_energy) const;

    /**
     * Largest task energy startable at all with this capacitor (the
     * window between max voltage and brown-out, de-rated by the margin).
     */
    units::Joules maxTaskEnergy() const;

    /** Whether a task of the given energy can complete at all. */
    bool feasible(units::Joules task_energy) const;

  private:
    units::Farads capacitance;
    units::Volts vMin;
    units::Volts vMax;
    double margin;
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_DEWDROP_POLICY_HH
