/**
 * @file
 * Morphy-style unified dynamic buffer (Yang et al., SenSys'21), the prior
 * dynamic-capacitance system the paper evaluates REACT against (S 4.1).
 *
 * Configuration mirrors the paper's implementation: eight 2 mF capacitors,
 * one kept as an always-connected task capacitor to smooth switching
 * transients, the other seven arranged by software through a fully
 * interconnected switch fabric.  Eleven configurations span roughly
 * 250 uF - 16 mF of equivalent capacitance.  A battery-powered secondary
 * microcontroller (free energy, as in the paper's setup) polls the rail at
 * 10 Hz and steps the configuration ladder up on overvoltage and down on
 * undervoltage.
 *
 * Because all branches share the output node without isolation, every
 * reconfiguration equalizes capacitors at different potentials and burns
 * the energy difference (Fig. 5) -- the architectural flaw REACT's isolated
 * banks eliminate.
 */

#ifndef REACT_BUFFERS_MORPHY_BUFFER_HH
#define REACT_BUFFERS_MORPHY_BUFFER_HH

#include <string>
#include <vector>

#include "buffers/capacitor_network.hh"
#include "buffers/energy_buffer.hh"
#include "sim/capacitor.hh"

namespace react {
namespace buffer {

using units::Hertz;

/** Parameters for the Morphy reproduction. */
struct MorphyParams
{
    /** Always-connected smoothing capacitor across the rail. */
    sim::CapacitorSpec taskCap{Farads(250e-6), Volts(6.3), Amps(0.0)};
    /** Unit capacitor of the reconfigurable pool (paper: 2 mF
     *  electrolytics, ~25.2 uA leakage at 6.3 V). */
    sim::CapacitorSpec unitCap{Farads(2e-3), Volts(6.3), Amps(6.3e-6)};
    /** Number of reconfigurable units. */
    int unitCount = 7;
    /** Overvoltage threshold: step the ladder up at/above this rail
     *  voltage. */
    Volts vHigh{3.5};
    /** Undervoltage threshold: step the ladder down at/below it. */
    Volts vLow{1.9};
    /** Overvoltage-protection clamp on the rail. */
    Volts railClamp{3.6};
    /** Controller sampling rate (battery powered: always on). */
    Hertz pollRateHz{10.0};
};

/** The Morphy buffer: task capacitor + switched network + controller. */
class MorphyBuffer final : public EnergyBuffer
{
  public:
    explicit MorphyBuffer(const MorphyParams &params = MorphyParams());

    std::string name() const override { return "Morphy"; }
    void step(Seconds dt, Watts input_power, Amps load_current) override;
    uint64_t advanceQuiescent(Seconds dt, uint64_t max_steps) override;
    Volts railVoltage() const override;
    Joules storedEnergy() const override;
    Farads equivalentCapacitance() const override;
    void reset() override;

    int capacitanceLevel() const override { return configIndex; }
    int maxCapacitanceLevel() const override;
    void requestMinLevel(int level) override;
    bool levelSatisfied() const override;
    Joules usableEnergyAtLevel(int level) const override;

    /** The configuration ladder (exposed for tests and benches). */
    const std::vector<NetworkConfig> &ladder() const { return configs; }

    /** Cumulative count of ladder transitions taken. */
    uint64_t reconfigurations() const { return reconfigCount; }

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    /** Redistribute a signed rail charge across task cap and network. */
    void addRailCharge(Coulombs dq);

    /** One controller decision at the poll rate. */
    void pollController();

    /** Move to the given ladder index, recording switching loss. */
    void applyConfig(int index);

    MorphyParams params;
    sim::Capacitor task;
    CapacitorNetwork network;
    std::vector<NetworkConfig> configs;
    int configIndex = 0;
    int requestedLevel = 0;
    Seconds pollAccumulator{0.0};
    Seconds agingAccumulator{0.0};
    uint64_t reconfigCount = 0;
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_MORPHY_BUFFER_HH
