/**
 * @file
 * Fixed-size capacitor buffer: the conventional design point REACT is
 * evaluated against (770 uF / 10 mF / 17 mF in the paper).
 *
 * A static buffer is a single capacitor across the rail.  Its behaviour
 * embodies the tradeoff of S 2.1: small capacitors charge quickly (high
 * reactivity) but clip harvested energy once full; large capacitors capture
 * surplus but enable slowly and strand cold-start energy below the minimum
 * operating voltage.
 */

#ifndef REACT_BUFFERS_STATIC_BUFFER_HH
#define REACT_BUFFERS_STATIC_BUFFER_HH

#include <string>

#include "buffers/energy_buffer.hh"
#include "sim/capacitor.hh"

namespace react {
namespace buffer {

/** Single fixed capacitor across the rail. */
class StaticBuffer final : public EnergyBuffer
{
  public:
    /**
     * @param spec Capacitor part parameters.
     * @param rail_clamp Overvoltage-protection clamp; harvested energy
     *        beyond it is discarded as heat (the paper's 3.6 V).
     * @param display_name Report label; derived from capacitance if empty.
     */
    explicit StaticBuffer(const sim::CapacitorSpec &spec,
                          Volts rail_clamp = Volts(3.6),
                          std::string display_name = "");

    std::string name() const override { return label; }
    void step(Seconds dt, Watts input_power, Amps load_current) override;
    uint64_t advanceQuiescent(Seconds dt, uint64_t max_steps) override;
    Volts railVoltage() const override;
    Joules storedEnergy() const override;
    Farads equivalentCapacitance() const override;
    void reset() override;

    /** Overvoltage clamp. */
    Volts railClamp() const { return clamp; }

    /**
     * @name Lane-engine seam (harness/batch_runner.cc)
     *
     * The batch stepper owns the per-step physics while a cell runs in
     * a SIMD lane; the buffer object stays the source of truth for
     * everything else (aging bookkeeping, fault attachment, snapshot
     * layout).  The driver syncs the lane voltage back through
     * laneCapacitor() before any observer can read the buffer, and
     * writes the lane ledger totals back at finalization, so save() and
     * ledger() report exactly what per-cell stepping would have.
     * @{
     */
    /** The rail capacitor (lane voltage sync + aging resync reads). */
    sim::Capacitor &laneCapacitor() { return cap; }
    const sim::Capacitor &laneCapacitor() const { return cap; }
    /** Mutable ledger (lane accumulator write-back at finalization). */
    sim::EnergyLedger &laneLedger() { return energyLedger; }
    /** Does step() run the dielectric-aging phase for this buffer? */
    bool laneAgingEnabled() const;
    /** Step phase 0 (dielectric aging) alone, on the current capacitor
     *  voltage; the fault-loss delta books into this buffer's ledger
     *  exactly as a full step() would. */
    void laneStepAging(Seconds dt);
    /** @} */

    void save(snapshot::SnapshotWriter &w) const override;
    void restore(snapshot::SnapshotReader &r) override;

  private:
    sim::Capacitor cap;
    Volts clamp;
    std::string label;
    /** Nominal capacitance, the baseline that fault-injected dielectric
     *  aging derates from. */
    Farads baseCapacitance;
    Seconds agingAccumulator{0.0};
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_STATIC_BUFFER_HH
