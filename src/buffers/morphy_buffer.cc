#include "morphy_buffer.hh"

#include <algorithm>

#include "sim/charge_transfer.hh"
#include "sim/fault_injector.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace buffer {

namespace {

/**
 * Build the 11-configuration ladder used by the paper's Morphy
 * implementation: the seven reconfigurable units are regrouped into
 * parallel combinations of series chains, ordered by ascending
 * equivalent capacitance.  Each transition regroups chains -- placing
 * branch terminals at different potentials in parallel -- which is
 * exactly the dissipative charge sharing of Fig. 5 that REACT's bank
 * isolation avoids.  Units not referenced by a configuration are
 * disconnected (retaining charge).
 */
std::vector<NetworkConfig>
buildLadder(int unit_count)
{
    react_assert(unit_count == 7,
                 "the paper's Morphy ladder is defined for 7 units");
    auto cfg = [](std::vector<std::vector<int>> branches) {
        NetworkConfig c;
        c.branches = std::move(branches);
        return c;
    };
    std::vector<NetworkConfig> ladder;
    // Equivalent capacitances below include the 250 uF task capacitor.
    ladder.push_back(cfg({}));                          // 0.25 mF
    ladder.push_back(cfg({{0, 1, 2, 3, 4, 5, 6}}));     // 0.54 mF (7s)
    ladder.push_back(cfg({{0, 1, 2, 3}, {4, 5, 6}}));   // 1.42 mF (4s|3s)
    ladder.push_back(cfg({{0, 1, 2, 3, 4}, {5, 6}}));   // 1.65 mF (5s|2s)
    ladder.push_back(cfg({{0, 1, 2}, {3, 4}, {5, 6}})); // 2.92 mF
    ladder.push_back(cfg({{0, 1}, {2, 3}, {4, 5}}));    // 3.25 mF
    ladder.push_back(cfg({{0, 1}, {2, 3}, {4, 5}, {6}}));   // 5.25 mF
    ladder.push_back(cfg({{0, 1}, {2, 3}, {4}, {5}, {6}})); // 7.25 mF
    ladder.push_back(cfg({{0, 1}, {2}, {3}, {4}, {5}, {6}})); // 11.25 mF
    ladder.push_back(cfg({{0}, {1}, {2}, {3}, {4}, {5}}));  // 12.25 mF
    ladder.push_back(cfg({{0}, {1}, {2}, {3}, {4}, {5}, {6}})); // 14.25 mF
    return ladder;
}

} // namespace

MorphyBuffer::MorphyBuffer(const MorphyParams &morphy_params)
    : params(morphy_params), task(morphy_params.taskCap),
      network(morphy_params.unitCount, morphy_params.unitCap),
      configs(buildLadder(morphy_params.unitCount))
{
    react_assert(params.vHigh > params.vLow, "thresholds must be ordered");
    react_assert(params.railClamp >= params.vHigh,
                 "clamp must sit at or above the overvoltage threshold");
}

Volts
MorphyBuffer::railVoltage() const
{
    return task.voltage();
}

Joules
MorphyBuffer::storedEnergy() const
{
    return task.energy() + network.storedEnergy();
}

Farads
MorphyBuffer::equivalentCapacitance() const
{
    return task.capacitance() + network.equivalentCapacitance();
}

int
MorphyBuffer::maxCapacitanceLevel() const
{
    return static_cast<int>(configs.size()) - 1;
}

void
MorphyBuffer::requestMinLevel(int level)
{
    requestedLevel = std::clamp(level, 0, maxCapacitanceLevel());
}

bool
MorphyBuffer::levelSatisfied() const
{
    if (requestedLevel <= 0)
        return true;
    // Same stale-surrogate caveat as REACT: the ladder index guarantees
    // stored energy only while the buffer is near-full at that index.
    return configIndex >= requestedLevel &&
        railVoltage() >= params.vHigh;
}

Joules
MorphyBuffer::usableEnergyAtLevel(int level) const
{
    const int idx = std::clamp(level, 0, maxCapacitanceLevel());
    const Farads c = task.capacitance() +
        configs[static_cast<size_t>(idx)]
            .equivalentCapacitance(params.unitCap.capacitance);
    return units::capEnergyWindow(c, params.vHigh, params.vLow);
}

void
MorphyBuffer::addRailCharge(Coulombs dq)
{
    // Between reconfigurations the connected network tracks the task cap,
    // so charge splits proportionally to capacitance.
    const Farads c_net = network.equivalentCapacitance();
    const Farads c_total = task.capacitance() + c_net;
    const Volts dv = dq / c_total;
    task.addCharge(task.capacitance() * dv);
    if (c_net > Farads(0.0))
        network.addChargeAtOutput(c_net * dv);
}

void
MorphyBuffer::applyConfig(int index)
{
    react_assert(index >= 0 && index <= maxCapacitanceLevel(),
                 "morphy config index out of range");
    if (index == configIndex)
        return;
    // The whole regrouping rides on one fabric command; a jammed fabric
    // freezes Morphy at its present configuration (no watchdog here --
    // graceful degradation is REACT's contribution, not Morphy's).
    if (faults != nullptr && !faults->switchActuates("morphy.fabric"))
        return;
    if (faults != nullptr && faults->switchDelayed("morphy.fabric"))
        return;  // sluggish fabric: the controller retries next poll
    configIndex = index;
    ++reconfigCount;

    // The dissipation is booked as the measured stored-energy drop, not
    // the linear-model prediction: Capacitor::addCharge floors a unit at
    // 0 V, so deeply discharged chains deviate from the branch model and
    // only the physical delta keeps the ledger exactly conservative.
    const Joules e_before = task.energy() + network.storedEnergy();

    // Stage 1: branches of the new arrangement equalize among themselves
    // (reconfigure's own measured loss is subsumed by the bracket here).
    // The ladder is immutable for the buffer's lifetime, so the network
    // borrows the entry instead of copying it -- keeping ladder
    // transitions free of heap allocation on the fixed-timestep path.
    network.reconfigureShared(&configs[static_cast<size_t>(index)]);

    // Stage 2: the (now internally equalized) network shares the output
    // node with the task capacitor; equalize them too.  The staging is
    // energy-equivalent to a single simultaneous equalization.
    const Farads c_net = network.equivalentCapacitance();
    if (c_net > Farads(0.0)) {
        const Volts v_net = network.outputVoltage();
        const Volts v_final =
            (task.charge() + c_net * v_net) / (task.capacitance() + c_net);
        network.addChargeAtOutput(c_net * (v_final - v_net));
        task.setVoltage(v_final);
    }
    energyLedger.switchLoss +=
        e_before - (task.energy() + network.storedEnergy());
}

void
MorphyBuffer::pollController()
{
    Volts v = railVoltage();
    if (faults != nullptr)
        v = faults->comparatorRead("morphy.comparator", v);
    if (v >= params.vHigh && configIndex < maxCapacitanceLevel()) {
        applyConfig(configIndex + 1);
    } else if (v <= params.vLow && configIndex > 0) {
        applyConfig(configIndex - 1);
    }
}

void
MorphyBuffer::step(Seconds dt, Watts input_power, Amps load_current)
{
    // 0. Dielectric aging of the task capacitor (fault injection only;
    //    updated at the poll cadence, which far oversamples hour-scale
    //    fade).  The pooled units age behind the fabric's own dynamics
    //    and are left at their nominal value.
    if (faults != nullptr &&
        faults->plan().capacitanceFadePerHour > 0.0) {
        agingAccumulator += dt;
        if (agingAccumulator >= 1.0 / params.pollRateHz) {
            agingAccumulator = Seconds(0.0);
            energyLedger.faultLoss += task.setCapacitance(
                params.taskCap.capacitance *
                faults->capacitanceFactor("morphy.taskcap"));
        }
    }

    // 1. Self-discharge everywhere.
    energyLedger.leaked += task.leak(dt) + network.leak(dt);

    // Asymmetric leakage pulls the network a hair below the task
    // capacitor each step; physically they share the output node, so a
    // standing balancing current keeps them equalized.  Restore the
    // invariant and charge the (tiny) redistribution loss to leakage.
    const Farads c_net_node = network.equivalentCapacitance();
    if (c_net_node > Farads(0.0)) {
        const Volts v_net = network.outputVoltage();
        const Volts v_task = task.voltage();
        if (v_net != v_task) {
            const Volts v_common =
                (task.charge() + c_net_node * v_net) /
                (task.capacitance() + c_net_node);
            // Measured, not modeled, for the same zero-floor reason as
            // applyConfig: the redistribution must balance the ledger.
            const Joules e_before =
                task.energy() + network.storedEnergy();
            network.addChargeAtOutput(c_net_node * (v_common - v_net));
            task.setVoltage(v_common);
            energyLedger.leaked +=
                e_before - (task.energy() + network.storedEnergy());
        }
    }

    // 2. Harvested input lands on the common rail node.
    if (input_power > Watts(0.0)) {
        const Volts v_eff = std::max(railVoltage(), Volts(0.2));
        const Joules e_before = storedEnergy();
        addRailCharge(input_power / v_eff * dt);
        energyLedger.harvested += storedEnergy() - e_before;
    }

    // 3. Backend load.
    if (load_current > Amps(0.0)) {
        const Joules e_before = storedEnergy();
        addRailCharge(-load_current * dt);
        energyLedger.delivered += e_before - storedEnergy();
    }

    // 4. Overvoltage protection on the rail; disconnected units clamp to
    //    their rating inside the network.
    if (railVoltage() > params.railClamp) {
        const Joules e_before = storedEnergy();
        const Farads c_total = equivalentCapacitance();
        addRailCharge(c_total * (params.railClamp - railVoltage()));
        energyLedger.clipped += e_before - storedEnergy();
    }
    energyLedger.clipped += network.clipOutput(params.railClamp);

    // 5. Battery-powered controller polls at its fixed rate regardless of
    //    the backend's power state.
    pollAccumulator += dt;
    const Seconds poll_period = 1.0 / params.pollRateHz;
    while (pollAccumulator >= poll_period) {
        pollAccumulator -= poll_period;
        pollController();
    }
}

uint64_t
MorphyBuffer::advanceQuiescent(Seconds dt, uint64_t max_steps)
{
    // Quiescence analysis: only ladder entry 0 qualifies -- the network
    // is empty there (c_net = 0), so the standing re-equalization, the
    // rail clip's network share, and addRailCharge all vanish, leaving
    // pure leak of the task capacitor and the disconnected pool units.
    // The battery-powered controller keeps polling, but at entry 0 with
    // the rail below vHigh every poll is a no-op (stepping down needs
    // configIndex > 0) and leak only lowers the rail further; vHigh sits
    // below the clamp, so the rail clip cannot fire either.  Disconnected
    // units clamp to their rating inside clipOutput, so decline unless
    // every unit already sits at or under it.  Decline under fault
    // injection (aging, comparator noise).
    if (faults != nullptr || max_steps == 0)
        return 0;
    if (configIndex != 0 || task.voltage() >= params.vHigh)
        return 0;
    for (int i = 0; i < network.unitCount(); ++i) {
        if (network.unitVoltage(i) > params.unitCap.ratedVoltage)
            return 0;
    }
    energyLedger.leaked +=
        task.leakN(dt, max_steps) + network.leakN(dt, max_steps);
    // Replicate the poll accumulator's per-step arithmetic exactly: the
    // polls themselves are no-ops (see above) but the accumulator's FP
    // trajectory must match iterated stepping bit-for-bit so a later
    // exact step polls at the same instant.
    const Seconds poll_period = 1.0 / params.pollRateHz;
    for (uint64_t i = 0; i < max_steps; ++i) {
        pollAccumulator += dt;
        while (pollAccumulator >= poll_period)
            pollAccumulator -= poll_period;
    }
    return max_steps;
}

void
MorphyBuffer::reset()
{
    task.setVoltage(Volts(0.0));
    for (int i = 0; i < network.unitCount(); ++i)
        network.setUnitVoltage(i, Volts(0.0));
    network.reconfigureShared(&configs[0]);  // ladder entry 0 is empty
    configIndex = 0;
    requestedLevel = 0;
    pollAccumulator = Seconds(0.0);
    agingAccumulator = Seconds(0.0);
    reconfigCount = 0;
    energyLedger = sim::EnergyLedger();
}

void
MorphyBuffer::save(snapshot::SnapshotWriter &w) const
{
    EnergyBuffer::save(w);
    task.save(w);
    network.save(w);
    w.u32(static_cast<uint32_t>(configIndex));
    w.u32(static_cast<uint32_t>(requestedLevel));
    w.f64(pollAccumulator.raw());
    w.f64(agingAccumulator.raw());
    w.u64(reconfigCount);
}

void
MorphyBuffer::restore(snapshot::SnapshotReader &r)
{
    EnergyBuffer::restore(r);
    task.restore(r);
    network.restore(r);
    const uint32_t index = r.u32();
    if (index >= configs.size())
        throw snapshot::SnapshotError(
            "morphy snapshot ladder index out of range");
    configIndex = static_cast<int>(index);
    // Re-adopt the ladder arrangement without equalizing: the unit
    // voltages above already capture the equalized post-reconfiguration
    // state, and a modeled charge-share here would burn phantom energy.
    network.restoreArrangementShared(&configs[index]);
    requestedLevel = static_cast<int>(r.u32());
    pollAccumulator = Seconds(r.f64());
    agingAccumulator = Seconds(r.f64());
    reconfigCount = r.u64();
}

} // namespace buffer
} // namespace react
