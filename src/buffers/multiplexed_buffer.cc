#include "multiplexed_buffer.hh"

#include <algorithm>

#include "sim/charge_transfer.hh"
#include "snapshot/snapshot.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace buffer {

using units::Coulombs;

MultiplexedBuffer::MultiplexedBuffer(
    const std::vector<sim::CapacitorSpec> &capacitors, Volts rail_clamp)
    : clamp(rail_clamp)
{
    react_assert(!capacitors.empty(), "need at least one capacitor");
    caps.reserve(capacitors.size());
    for (const auto &spec : capacitors)
        caps.emplace_back(spec);
}

Volts
MultiplexedBuffer::railVoltage() const
{
    return caps[static_cast<size_t>(active)].voltage();
}

Joules
MultiplexedBuffer::storedEnergy() const
{
    Joules e{0.0};
    for (const auto &cap : caps)
        e += cap.energy();
    return e;
}

Farads
MultiplexedBuffer::equivalentCapacitance() const
{
    return caps[static_cast<size_t>(active)].capacitance();
}

int
MultiplexedBuffer::maxCapacitanceLevel() const
{
    return static_cast<int>(caps.size()) - 1;
}

void
MultiplexedBuffer::requestMinLevel(int level)
{
    requestedLevel = std::clamp(level, 0, maxCapacitanceLevel());
    // Capybara switches modes explicitly: honor the request by selecting
    // the capacitor backing that mode.
    selectActive(requestedLevel);
}

bool
MultiplexedBuffer::levelSatisfied() const
{
    // The requested capacitor must actually be charged to be useful.
    return caps[static_cast<size_t>(requestedLevel)].voltage() >=
        clamp * 0.95;
}

Joules
MultiplexedBuffer::usableEnergyAtLevel(int level) const
{
    const int idx = std::clamp(level, 0, maxCapacitanceLevel());
    return units::capEnergyWindow(
        caps[static_cast<size_t>(idx)].capacitance(), clamp, Volts(1.8));
}

void
MultiplexedBuffer::selectActive(int index)
{
    react_assert(index >= 0 && index <= maxCapacitanceLevel(),
                 "active capacitor index out of range");
    active = index;
}

Volts
MultiplexedBuffer::capVoltage(int index) const
{
    return caps.at(static_cast<size_t>(index)).voltage();
}

void
MultiplexedBuffer::step(Seconds dt, Watts input_power, Amps load_current)
{
    // 1. Self-discharge.
    for (auto &cap : caps)
        energyLedger.leaked += cap.leak(dt);

    // 2. Harvested input charges the active capacitor until full, then
    //    spills down the priority list.
    if (input_power > Watts(0.0)) {
        Seconds remaining_dt = dt;
        // Order: active first, then the others by priority.
        std::vector<int> order;
        order.push_back(active);
        for (int i = 0; i < static_cast<int>(caps.size()); ++i) {
            if (i != active)
                order.push_back(i);
        }
        for (int idx : order) {
            if (remaining_dt <= Seconds(0.0))
                break;
            auto &cap = caps[static_cast<size_t>(idx)];
            if (cap.voltage() >= clamp)
                continue;
            const Joules e_before = cap.energy();
            sim::chargeFromPower(cap, input_power, remaining_dt);
            // If this capacitor hit the clamp mid-step, pass the excess
            // time slice to the next one.
            if (cap.voltage() > clamp) {
                const Volts v_over = cap.voltage();
                const Coulombs q_excess =
                    cap.capacitance() * (v_over - clamp);
                const Volts v_eff = std::max(clamp, Volts(0.2));
                const double used_fraction = 1.0 -
                    q_excess * v_eff / (input_power * remaining_dt);
                cap.setVoltage(clamp);
                remaining_dt *= std::clamp(1.0 - used_fraction, 0.0, 1.0);
            } else {
                remaining_dt = Seconds(0.0);
            }
            energyLedger.harvested += cap.energy() - e_before;
        }
        // Every capacitor full: the remainder burns off.
        if (remaining_dt > Seconds(0.0)) {
            const Joules wasted = input_power * remaining_dt;
            energyLedger.harvested += wasted;
            energyLedger.clipped += wasted;
        }
    }

    // 3. Load draws from the active capacitor only.
    if (load_current > Amps(0.0)) {
        auto &cap = caps[static_cast<size_t>(active)];
        const Joules e_before = cap.energy();
        cap.applyCurrent(-load_current, dt);
        energyLedger.delivered += e_before - cap.energy();
    }

    // 4. Clamp.
    for (auto &cap : caps)
        energyLedger.clipped += cap.clip(clamp);
}

void
MultiplexedBuffer::reset()
{
    for (auto &cap : caps)
        cap.setVoltage(Volts(0.0));
    active = 0;
    requestedLevel = 0;
    energyLedger = sim::EnergyLedger();
}

void
MultiplexedBuffer::save(snapshot::SnapshotWriter &w) const
{
    EnergyBuffer::save(w);
    w.u32(static_cast<uint32_t>(caps.size()));
    for (const auto &cap : caps)
        cap.save(w);
    w.u32(static_cast<uint32_t>(active));
    w.u32(static_cast<uint32_t>(requestedLevel));
}

void
MultiplexedBuffer::restore(snapshot::SnapshotReader &r)
{
    EnergyBuffer::restore(r);
    const uint32_t count = r.u32();
    if (count != caps.size())
        throw snapshot::SnapshotError(
            "multiplexed-buffer snapshot capacitor count mismatch");
    for (auto &cap : caps)
        cap.restore(r);
    active = static_cast<int>(r.u32());
    requestedLevel = static_cast<int>(r.u32());
}

} // namespace buffer
} // namespace react
