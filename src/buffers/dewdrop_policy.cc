#include "dewdrop_policy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace buffer {

using units::Farads;
using units::Joules;
using units::Volts;
using units::VoltsSquared;

DewdropPolicy::DewdropPolicy(Farads cap, Volts brownout_voltage,
                             Volts max_voltage, double safety_margin)
    : capacitance(cap), vMin(brownout_voltage), vMax(max_voltage),
      margin(safety_margin)
{
    react_assert(cap > Farads(0), "capacitance must be positive");
    react_assert(max_voltage > brownout_voltage,
                 "max voltage must exceed brown-out");
    react_assert(safety_margin >= 1.0, "margin must be >= 1");
}

Volts
DewdropPolicy::enableVoltageFor(Joules task_energy) const
{
    react_assert(task_energy >= Joules(0), "task energy must be >= 0");
    const Volts v = units::sqrt(vMin * vMin +
                                2.0 * task_energy * margin / capacitance);
    // A sliver above brown-out is required even for free tasks so the
    // supervisor has hysteresis to work with.
    return std::clamp(v, vMin + Volts(0.1), vMax);
}

Joules
DewdropPolicy::maxTaskEnergy() const
{
    return units::capEnergyWindow(capacitance, vMax, vMin) / margin;
}

bool
DewdropPolicy::feasible(Joules task_energy) const
{
    return task_energy * margin <=
        units::capEnergyWindow(capacitance, vMax, vMin);
}

} // namespace buffer
} // namespace react
