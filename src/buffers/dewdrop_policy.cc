#include "dewdrop_policy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace react {
namespace buffer {

DewdropPolicy::DewdropPolicy(double capacitance, double brownout_voltage,
                             double max_voltage, double margin)
    : capacitance(capacitance), vMin(brownout_voltage), vMax(max_voltage),
      margin(margin)
{
    react_assert(capacitance > 0.0, "capacitance must be positive");
    react_assert(max_voltage > brownout_voltage,
                 "max voltage must exceed brown-out");
    react_assert(margin >= 1.0, "margin must be >= 1");
}

double
DewdropPolicy::enableVoltageFor(double task_energy) const
{
    react_assert(task_energy >= 0.0, "task energy must be >= 0");
    const double v = std::sqrt(vMin * vMin +
                               2.0 * task_energy * margin / capacitance);
    // A sliver above brown-out is required even for free tasks so the
    // supervisor has hysteresis to work with.
    return std::clamp(v, vMin + 0.1, vMax);
}

double
DewdropPolicy::maxTaskEnergy() const
{
    return units::capEnergyWindow(capacitance, vMax, vMin) / margin;
}

bool
DewdropPolicy::feasible(double task_energy) const
{
    return task_energy * margin <=
        units::capEnergyWindow(capacitance, vMax, vMin);
}

} // namespace buffer
} // namespace react
