#include "energy_buffer.hh"

#include <algorithm>

#include "snapshot/snapshot.hh"
#include "util/units.hh"

namespace react {
namespace buffer {

Joules
EnergyBuffer::availableEnergy(Volts floor_voltage) const
{
    const Volts v = railVoltage();
    if (v <= floor_voltage)
        return Joules(0.0);
    return units::capEnergyWindow(equivalentCapacitance(), v,
                                  floor_voltage);
}

void
EnergyBuffer::save(snapshot::SnapshotWriter &w) const
{
    energyLedger.save(w);
}

void
EnergyBuffer::restore(snapshot::SnapshotReader &r)
{
    energyLedger.restore(r);
}

} // namespace buffer
} // namespace react
