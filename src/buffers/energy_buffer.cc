#include "energy_buffer.hh"

#include <algorithm>

#include "util/units.hh"

namespace react {
namespace buffer {

double
EnergyBuffer::availableEnergy(double floor_voltage) const
{
    const double v = railVoltage();
    if (v <= floor_voltage)
        return 0.0;
    return units::capEnergyWindow(equivalentCapacitance(), v,
                                  floor_voltage);
}

} // namespace buffer
} // namespace react
