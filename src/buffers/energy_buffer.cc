#include "energy_buffer.hh"

#include <algorithm>

#include "util/units.hh"

namespace react {
namespace buffer {

Joules
EnergyBuffer::availableEnergy(Volts floor_voltage) const
{
    const Volts v = railVoltage();
    if (v <= floor_voltage)
        return Joules(0.0);
    return units::capEnergyWindow(equivalentCapacitance(), v,
                                  floor_voltage);
}

} // namespace buffer
} // namespace react
