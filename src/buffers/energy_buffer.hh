/**
 * @file
 * Common interface for energy-buffer architectures.
 *
 * Every buffer the paper evaluates -- fixed capacitors, the Morphy switched
 * network, and REACT itself -- sits between the harvesting frontend and the
 * power-gated computational backend.  The harness drives them all through
 * this interface: feed input power, draw load current, observe the rail
 * voltage, and audit the energy ledger.  Adaptive buffers additionally
 * expose a small control surface (capacitance levels) that the paper's
 * software-directed longevity mechanism (S 3.4.1) builds on.
 */

#ifndef REACT_BUFFERS_ENERGY_BUFFER_HH
#define REACT_BUFFERS_ENERGY_BUFFER_HH

#include <cstdint>
#include <string>

#include "sim/energy_ledger.hh"
#include "util/units.hh"

namespace react {
namespace sim {
class FaultInjector;
}
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace buffer {

using units::Amps;
using units::Farads;
using units::Joules;
using units::Seconds;
using units::Volts;
using units::Watts;

/** Abstract energy buffer between harvester and backend. */
class EnergyBuffer
{
  public:
    virtual ~EnergyBuffer() = default;

    /** Display name used in reports ("770uF", "Morphy", "REACT"...). */
    virtual std::string name() const = 0;

    /**
     * Advance the buffer by one timestep.
     *
     * @param dt Timestep.
     * @param input_power Power entering the buffer from the harvester.
     * @param load_current Current drawn by the backend from the rail
     *        (0 when the power gate is open).
     */
    virtual void step(Seconds dt, Watts input_power,
                      Amps load_current) = 0;

    /** Voltage presented to the power gate / backend. */
    virtual Volts railVoltage() const = 0;

    /** Total energy stored across all capacitors. */
    virtual Joules storedEnergy() const = 0;

    /** Present equivalent capacitance seen at the rail. */
    virtual Farads equivalentCapacitance() const = 0;

    /**
     * Energy extractable right now before the rail falls to the given
     * floor voltage (an ADC-style self-check the workloads use to gate
     * short atomic operations).
     */
    virtual Joules availableEnergy(Volts floor_voltage) const;

    /** Cumulative energy accounting since the last reset. */
    const sim::EnergyLedger &ledger() const { return energyLedger; }

    /** Return to the cold-start state (all charge gone, ledger cleared). */
    virtual void reset() = 0;

    /**
     * Opt-in quiescent fast path (REACT_FAST_PATH): advance up to
     * max_steps timesteps of dt with zero input power and zero load
     * current, using the closed-form RC leak solution instead of
     * iterated stepping.
     *
     * Implementations may only claim steps when the whole span is
     * provably *quiescent*: the rail is monotonically non-increasing
     * (pure leak), no control state machine can transition, and no
     * internal threshold (clamp, rating, comparator) can be crossed.
     * A claimed span must match max_steps exact step() calls except
     * for the documented pow-vs-iterated rounding bound (DESIGN.md,
     * "Hot loop"); the Check mode divergence gate enforces this.
     *
     * @param dt Per-step timestep.
     * @param max_steps Horizon the caller has verified externally
     *        (zero trace power, no recording/checkpoint/halt boundary).
     * @return Steps actually advanced; 0 declines the fast path and
     *         the caller falls back to exact stepping (the default
     *         for buffers without a quiescent analysis).
     */
    virtual uint64_t advanceQuiescent(Seconds dt, uint64_t max_steps)
    {
        (void)dt;
        (void)max_steps;
        return 0;
    }

    /**
     * @name Adaptive-capacitance control surface
     *
     * Static buffers keep the defaults (a single level, always satisfied).
     * REACT and Morphy map levels onto their bank / configuration state
     * machines; level k is only reached when the buffer was near-full at
     * level k-1, so "level >= k" doubles as a stored-energy guarantee.
     * @{
     */

    /** Current capacitance level (0 = minimum configuration). */
    virtual int capacitanceLevel() const { return 0; }

    /** Largest reachable level. */
    virtual int maxCapacitanceLevel() const { return 0; }

    /**
     * Software-directed longevity request (S 3.4.1): ask the buffer to
     * accumulate at least the given level before levelSatisfied() reports
     * true.  Values above maxCapacitanceLevel() are clamped.
     */
    virtual void requestMinLevel(int level) { (void)level; }

    /** Whether the most recent longevity request has been met. */
    virtual bool levelSatisfied() const { return true; }

    /**
     * Usable energy guaranteed once the given level is reached, i.e. the
     * discharge window the backend can count on for an atomic operation.
     */
    virtual Joules usableEnergyAtLevel(int level) const
    {
        (void)level;
        return Joules(0.0);
    }

    /**
     * Notify the buffer of backend power transitions.  REACT's management
     * software runs on the backend MCU, so its banks physically disconnect
     * (normally-open switches) when the MCU loses power.
     */
    virtual void notifyBackendPower(bool on) { (void)on; }

    /**
     * Fraction of backend compute time consumed by the buffer's
     * monitoring software (REACT: 1.8 % at 10 Hz polling; 0 for buffers
     * with no on-MCU component).
     */
    virtual double softwareOverheadFraction() const { return 0.0; }

    /** @} */

    /**
     * Attach (or detach with nullptr) a hardware fault injector.  While
     * attached, the buffer's step path routes switch actuations,
     * comparator reads, and aging queries through it; implementations
     * that harden against faults (REACT's watchdog) also report recovery
     * events back.  Detached (the default) means ideal hardware, and the
     * step path must be bit-identical to a build without this feature.
     */
    virtual void attachFaultInjector(sim::FaultInjector *injector)
    {
        faults = injector;
    }

    /**
     * Serialize the buffer's complete mutable state (charge, control
     * state machines, counters, and the energy ledger).  Construction
     * parameters (specs, clamps, ladders) are not serialized: restore()
     * assumes an identically-constructed buffer, and the injector
     * attachment is re-established by the owner.  Overrides must call
     * the base implementation first so the ledger occupies a fixed
     * position in the layout.
     */
    virtual void save(snapshot::SnapshotWriter &w) const;
    virtual void restore(snapshot::SnapshotReader &r);

  protected:
    sim::EnergyLedger energyLedger;
    sim::FaultInjector *faults = nullptr;
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_ENERGY_BUFFER_HH
