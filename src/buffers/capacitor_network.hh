/**
 * @file
 * Fully-interconnected switched-capacitor network (the Morphy [49]
 * architecture REACT is compared against).
 *
 * The network holds a pool of identical unit capacitors that software
 * arranges into an arbitrary set of parallel *branches*, each branch a
 * series chain of units; unassigned units are disconnected but retain
 * charge.  All connected branches share the output node, so between
 * reconfigurations the network behaves as a single equivalent capacitor.
 *
 * The crucial physics lives in reconfigure(): when the new arrangement
 * places branches with different terminal voltages in parallel, charge
 * rushes through the switches to equalize them and the difference in
 * stored energy is dissipated as heat (the paper's Fig. 5; 25 % of stored
 * energy for the 4-cap example, 56.25 % for the 8-cap one -- both
 * reproduced by unit tests).  This loss is what REACT's bank isolation
 * eliminates.
 */

#ifndef REACT_BUFFERS_CAPACITOR_NETWORK_HH
#define REACT_BUFFERS_CAPACITOR_NETWORK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/capacitor.hh"
#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace buffer {

using units::Coulombs;
using units::Farads;
using units::Joules;
using units::Seconds;
using units::Volts;

/** One network arrangement: parallel branches of series unit indices. */
struct NetworkConfig
{
    /** Each inner vector lists the unit-capacitor indices of one series
     *  chain; chains are connected in parallel at the output node. */
    std::vector<std::vector<int>> branches;

    /** Equivalent capacitance of the arrangement for the given unit size. */
    Farads equivalentCapacitance(Farads unit_capacitance) const;
};

/** Pool of unit capacitors under software-defined arrangement. */
class CapacitorNetwork
{
  public:
    /**
     * @param unit_count Number of identical unit capacitors.
     * @param unit_spec Part parameters of each unit.
     */
    CapacitorNetwork(int unit_count, const sim::CapacitorSpec &unit_spec);

    /** Number of unit capacitors in the pool. */
    int unitCount() const { return static_cast<int>(units.size()); }

    /** Voltage of one unit capacitor. */
    Volts unitVoltage(int index) const;

    /** Directly set one unit's voltage (testing / initialization). */
    void setUnitVoltage(int index, Volts voltage);

    /** Present arrangement. */
    const NetworkConfig &config() const { return *currentCfg; }

    /** Equivalent capacitance of the connected arrangement (0 if none). */
    Farads equivalentCapacitance() const;

    /** Output-node voltage (terminal voltage of the connected branches;
     *  0 when nothing is connected). */
    Volts outputVoltage() const;

    /** Total energy stored on all units (connected or not). */
    Joules storedEnergy() const;

    /** Energy stored on connected units only. */
    Joules connectedEnergy() const;

    /**
     * Rearrange the network.  Branches at differing terminal voltages
     * equalize through the interconnect, dissipating energy.
     *
     * @param next New arrangement (indices must be valid and unique).
     * @return Energy dissipated by charge sharing (>= 0).
     */
    Joules reconfigure(const NetworkConfig &next);

    /**
     * Rearrange to a caller-owned arrangement *without copying it*: the
     * controller's pre-built configuration ladder stays resident and the
     * step/poll hot path performs zero heap allocations.  The pointee
     * must outlive the network (or its next reconfiguration).
     *
     * @param next Stable pre-validated-lifetime arrangement.
     * @return Energy dissipated by charge sharing (>= 0).
     */
    Joules reconfigureShared(const NetworkConfig *next);

    /**
     * Add signed charge at the output node, distributed across connected
     * branches so all terminal voltages move together (parallel physics).
     * No-op when nothing is connected.
     *
     * @param dq Charge (negative discharges).
     */
    void addChargeAtOutput(Coulombs dq);

    /** Apply self-discharge to every unit; returns energy leaked. */
    Joules leak(Seconds dt);

    /** Closed-form n-step leak of every unit (connected or not); same
     *  contract and rounding bound as sim::Capacitor::leakN.  Fast-path
     *  only -- not bit-identical to n leak(dt) calls. */
    Joules leakN(Seconds dt, uint64_t n);

    /**
     * Clamp the output node to the given ceiling; the excess is burned.
     * Disconnected units clamp to their own rated voltage.
     *
     * @return Energy clipped.
     */
    Joules clipOutput(Volts ceiling);

    /**
     * Adopt a caller-owned arrangement *without* equalizing the branches.
     * Snapshot restore only: reconfigureShared() models physical charge
     * sharing, which would corrupt unit voltages that were already
     * captured in the equalized state.  Same lifetime contract as
     * reconfigureShared().
     */
    void restoreArrangementShared(const NetworkConfig *next);

    /** Serialize per-unit capacitor state (capacitance + voltage).  The
     *  arrangement is *not* serialized -- the owner restores it via
     *  restoreArrangementShared() from its own config ladder. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    /** Terminal voltage of one compiled branch (sum of member unit
     *  voltages, in config order). */
    Volts flatBranchVoltage(std::size_t b) const;

    /** Equalize all connected branches to a common terminal voltage;
     *  returns the energy dissipated. */
    Joules equalizeConnected();

    /** Validate an arrangement, rebuild connectedFlags, and compile the
     *  flattened step state from it. */
    void adoptConfig(const NetworkConfig &next);

    std::vector<sim::Capacitor> units;

    /**
     * Present arrangement.  Either owned (copied by reconfigure()) or
     * borrowed from the caller (reconfigureShared(), used by the Morphy
     * ladder so reconfiguration allocates nothing).  The copy operations
     * below re-point a copied owned config at the copy's own storage.
     */
    NetworkConfig ownedConfig;
    const NetworkConfig *currentCfg = &ownedConfig;

    /** Per-unit connected flag, maintained by adoptConfig(); lets the
     *  per-step clip pass skip the old std::set rebuild (the engine's
     *  last per-step heap allocation). */
    std::vector<uint8_t> connectedFlags;

    /**
     * @name Flattened step state (compiled at adoptConfig() time)
     *
     * The per-step passes used to walk the arrangement's nested
     * vector<vector<int>> -- a pointer chase per branch, per step.
     * adoptConfig() instead compiles the arrangement once into three
     * contiguous arrays so every pass is a linear sweep: the connected
     * unit indices in branch-major config order, the half-open span of
     * branch b in that array, and each branch's member count as the
     * double the series-capacitance division consumes.  Capacity is
     * reserved to the unit count at construction (each unit appears at
     * most once), so recompilation never allocates.  Iteration order and
     * arithmetic match the nested walk exactly; results stay
     * bit-identical.
     * @{
     */
    std::vector<int32_t> flatUnits;
    /** branchSizes.size() + 1 offsets into flatUnits. */
    std::vector<int32_t> branchOffsets;
    std::vector<double> branchSizes;
    /**
     * Equivalent-capacitance memo keyed on the unit capacitance (all
     * units share one part spec; aging rescales them together).
     * adoptConfig() invalidates the key explicitly because a new
     * arrangement changes the sum without touching the key.
     */
    mutable Farads cachedEqCap{0.0};
    mutable Farads cachedEqCapKey{-1.0};
    /** @} */

  public:
    CapacitorNetwork(const CapacitorNetwork &other);
    CapacitorNetwork &operator=(const CapacitorNetwork &other);
};

// Per-step passes, inline so they fold into the owning buffer's step():
// Morphy touches the network several times per engine step (leak, the
// standing-balance equalization, input/load routing, clip), and the
// cross-TU call overhead of these sweeps dominated its step cost.

inline Volts
CapacitorNetwork::flatBranchVoltage(std::size_t b) const
{
    Volts v{0.0};
    const int32_t end = branchOffsets[b + 1];
    for (int32_t k = branchOffsets[b]; k < end; ++k)
        v += units[static_cast<size_t>(flatUnits[static_cast<size_t>(k)])]
                 .voltage();
    return v;
}

inline Farads
CapacitorNetwork::equivalentCapacitance() const
{
    // Sum of unit_cap / branch_size in branch order: the exact operation
    // sequence of NetworkConfig::equivalentCapacitance(), memoized on
    // the unit capacitance (the only run-time-variable operand).
    const Farads unit_cap = units[0].capacitance();
    if (unit_cap != cachedEqCapKey) {
        Farads total{0.0};
        for (double size : branchSizes)
            total += unit_cap / size;
        cachedEqCap = total;
        cachedEqCapKey = unit_cap;
    }
    return cachedEqCap;
}

inline Volts
CapacitorNetwork::outputVoltage() const
{
    // Between reconfigurations the connected branches stay equalized, so
    // any branch's terminal voltage is the node voltage.
    if (branchSizes.empty())
        return Volts(0.0);
    return flatBranchVoltage(0);
}

inline Joules
CapacitorNetwork::storedEnergy() const
{
    Joules e{0.0};
    for (const auto &unit : units)
        e += unit.energy();
    return e;
}

inline Joules
CapacitorNetwork::connectedEnergy() const
{
    // Linear sweep: flatUnits lists the connected units in the same
    // branch-major order the nested walk visited them.
    Joules e{0.0};
    for (int32_t idx : flatUnits)
        e += units[static_cast<size_t>(idx)].energy();
    return e;
}

inline void
CapacitorNetwork::addChargeAtOutput(Coulombs dq)
{
    if (branchSizes.empty())
        return;
    const Farads c_eq = equivalentCapacitance();
    const Volts dv = dq / c_eq;
    const Farads unit_cap = units[0].capacitance();
    for (std::size_t b = 0; b < branchSizes.size(); ++b) {
        const Coulombs dq_br = unit_cap / branchSizes[b] * dv;
        const int32_t end = branchOffsets[b + 1];
        for (int32_t k = branchOffsets[b]; k < end; ++k)
            units[static_cast<size_t>(flatUnits[static_cast<size_t>(k)])]
                .addCharge(dq_br);
    }
}

inline Joules
CapacitorNetwork::leak(Seconds dt)
{
    Joules lost{0.0};
    for (auto &unit : units)
        lost += unit.leak(dt);
    // Leakage perturbs series-chain balance only within a chain (all units
    // decay by the same factor, so equal units stay equal); connected
    // branches may drift apart slightly, which the next equalization
    // charges back -- physically this is the standing balancing current.
    return lost;
}

inline Joules
CapacitorNetwork::clipOutput(Volts ceiling)
{
    Joules clipped{0.0};
    const Volts v_out = outputVoltage();
    if (!branchSizes.empty() && v_out > ceiling) {
        const Joules e_before = connectedEnergy();
        addChargeAtOutput(equivalentCapacitance() * (ceiling - v_out));
        clipped += e_before - connectedEnergy();
    }
    // Disconnected units are bounded only by their rating; the flags are
    // maintained by adoptConfig() so this pass allocates nothing per step.
    for (int i = 0; i < unitCount(); ++i) {
        if (!connectedFlags[static_cast<size_t>(i)])
            clipped += units[static_cast<size_t>(i)].clip();
    }
    return clipped;
}

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_CAPACITOR_NETWORK_HH
