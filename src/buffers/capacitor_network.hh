/**
 * @file
 * Fully-interconnected switched-capacitor network (the Morphy [49]
 * architecture REACT is compared against).
 *
 * The network holds a pool of identical unit capacitors that software
 * arranges into an arbitrary set of parallel *branches*, each branch a
 * series chain of units; unassigned units are disconnected but retain
 * charge.  All connected branches share the output node, so between
 * reconfigurations the network behaves as a single equivalent capacitor.
 *
 * The crucial physics lives in reconfigure(): when the new arrangement
 * places branches with different terminal voltages in parallel, charge
 * rushes through the switches to equalize them and the difference in
 * stored energy is dissipated as heat (the paper's Fig. 5; 25 % of stored
 * energy for the 4-cap example, 56.25 % for the 8-cap one -- both
 * reproduced by unit tests).  This loss is what REACT's bank isolation
 * eliminates.
 */

#ifndef REACT_BUFFERS_CAPACITOR_NETWORK_HH
#define REACT_BUFFERS_CAPACITOR_NETWORK_HH

#include <cstdint>
#include <vector>

#include "sim/capacitor.hh"
#include "util/units.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace buffer {

using units::Coulombs;
using units::Farads;
using units::Joules;
using units::Seconds;
using units::Volts;

/** One network arrangement: parallel branches of series unit indices. */
struct NetworkConfig
{
    /** Each inner vector lists the unit-capacitor indices of one series
     *  chain; chains are connected in parallel at the output node. */
    std::vector<std::vector<int>> branches;

    /** Equivalent capacitance of the arrangement for the given unit size. */
    Farads equivalentCapacitance(Farads unit_capacitance) const;
};

/** Pool of unit capacitors under software-defined arrangement. */
class CapacitorNetwork
{
  public:
    /**
     * @param unit_count Number of identical unit capacitors.
     * @param unit_spec Part parameters of each unit.
     */
    CapacitorNetwork(int unit_count, const sim::CapacitorSpec &unit_spec);

    /** Number of unit capacitors in the pool. */
    int unitCount() const { return static_cast<int>(units.size()); }

    /** Voltage of one unit capacitor. */
    Volts unitVoltage(int index) const;

    /** Directly set one unit's voltage (testing / initialization). */
    void setUnitVoltage(int index, Volts voltage);

    /** Present arrangement. */
    const NetworkConfig &config() const { return *currentCfg; }

    /** Equivalent capacitance of the connected arrangement (0 if none). */
    Farads equivalentCapacitance() const;

    /** Output-node voltage (terminal voltage of the connected branches;
     *  0 when nothing is connected). */
    Volts outputVoltage() const;

    /** Total energy stored on all units (connected or not). */
    Joules storedEnergy() const;

    /** Energy stored on connected units only. */
    Joules connectedEnergy() const;

    /**
     * Rearrange the network.  Branches at differing terminal voltages
     * equalize through the interconnect, dissipating energy.
     *
     * @param next New arrangement (indices must be valid and unique).
     * @return Energy dissipated by charge sharing (>= 0).
     */
    Joules reconfigure(const NetworkConfig &next);

    /**
     * Rearrange to a caller-owned arrangement *without copying it*: the
     * controller's pre-built configuration ladder stays resident and the
     * step/poll hot path performs zero heap allocations.  The pointee
     * must outlive the network (or its next reconfiguration).
     *
     * @param next Stable pre-validated-lifetime arrangement.
     * @return Energy dissipated by charge sharing (>= 0).
     */
    Joules reconfigureShared(const NetworkConfig *next);

    /**
     * Add signed charge at the output node, distributed across connected
     * branches so all terminal voltages move together (parallel physics).
     * No-op when nothing is connected.
     *
     * @param dq Charge (negative discharges).
     */
    void addChargeAtOutput(Coulombs dq);

    /** Apply self-discharge to every unit; returns energy leaked. */
    Joules leak(Seconds dt);

    /**
     * Clamp the output node to the given ceiling; the excess is burned.
     * Disconnected units clamp to their own rated voltage.
     *
     * @return Energy clipped.
     */
    Joules clipOutput(Volts ceiling);

    /**
     * Adopt a caller-owned arrangement *without* equalizing the branches.
     * Snapshot restore only: reconfigureShared() models physical charge
     * sharing, which would corrupt unit voltages that were already
     * captured in the equalized state.  Same lifetime contract as
     * reconfigureShared().
     */
    void restoreArrangementShared(const NetworkConfig *next);

    /** Serialize per-unit capacitor state (capacitance + voltage).  The
     *  arrangement is *not* serialized -- the owner restores it via
     *  restoreArrangementShared() from its own config ladder. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    /** Terminal voltage of one branch (sum of member unit voltages). */
    Volts branchVoltage(const std::vector<int> &branch) const;

    /** Series capacitance of one branch. */
    Farads branchCapacitance(const std::vector<int> &branch) const;

    /** Equalize all connected branches to a common terminal voltage;
     *  returns the energy dissipated. */
    Joules equalizeConnected();

    /** Validate an arrangement and rebuild connectedFlags from it. */
    void adoptConfig(const NetworkConfig &next);

    std::vector<sim::Capacitor> units;

    /**
     * Present arrangement.  Either owned (copied by reconfigure()) or
     * borrowed from the caller (reconfigureShared(), used by the Morphy
     * ladder so reconfiguration allocates nothing).  The copy operations
     * below re-point a copied owned config at the copy's own storage.
     */
    NetworkConfig ownedConfig;
    const NetworkConfig *currentCfg = &ownedConfig;

    /** Per-unit connected flag, maintained by adoptConfig(); lets the
     *  per-step clip pass skip the old std::set rebuild (the engine's
     *  last per-step heap allocation). */
    std::vector<uint8_t> connectedFlags;

  public:
    CapacitorNetwork(const CapacitorNetwork &other);
    CapacitorNetwork &operator=(const CapacitorNetwork &other);
};

} // namespace buffer
} // namespace react

#endif // REACT_BUFFERS_CAPACITOR_NETWORK_HH
