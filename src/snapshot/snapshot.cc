#include "snapshot.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace react {
namespace snapshot {

namespace {

/** Little-endian u32 at a raw position (no bounds check). */
void
storeU32(uint8_t *at, uint32_t v)
{
    at[0] = static_cast<uint8_t>(v & 0xffu);
    at[1] = static_cast<uint8_t>((v >> 8) & 0xffu);
    at[2] = static_cast<uint8_t>((v >> 16) & 0xffu);
    at[3] = static_cast<uint8_t>((v >> 24) & 0xffu);
}

void
storeU64(uint8_t *at, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        at[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xffu);
}

uint32_t
fetchU32(const uint8_t *at)
{
    return static_cast<uint32_t>(at[0]) |
        (static_cast<uint32_t>(at[1]) << 8) |
        (static_cast<uint32_t>(at[2]) << 16) |
        (static_cast<uint32_t>(at[3]) << 24);
}

uint64_t
fetchU64(const uint8_t *at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(at[i]) << (8 * i);
    return v;
}

/**
 * Shared framing walk: parse the header and every section of an image,
 * checking bounds and CRCs.  On success fills @p out_sections (section
 * name + payload range, in file order) when non-null.
 *
 * @return Empty string on success, else a diagnostic.
 */
template <typename SectionSink>
std::string
walkImage(const std::vector<uint8_t> &image, SectionSink &&sink)
{
    char msg[160];
    if (image.size() < 12)
        return "snapshot shorter than its 12-byte header";
    if (fetchU32(image.data()) != kMagic)
        return "bad snapshot magic (not a snapshot file?)";
    const uint32_t version = fetchU32(image.data() + 4);
    if (version != kFormatVersion) {
        std::snprintf(msg, sizeof(msg),
                      "unsupported snapshot format version %u (want %u)",
                      version, kFormatVersion);
        return msg;
    }
    const uint32_t declared = fetchU32(image.data() + 8);
    size_t pos = 12;
    size_t index = 0;
    while (pos < image.size()) {
        if (index >= declared) {
            std::snprintf(msg, sizeof(msg),
                          "trailing bytes after the %u declared sections",
                          declared);
            return msg;
        }
        const size_t section_start = pos;
        const size_t name_len = image[pos];
        ++pos;
        if (pos + name_len > image.size()) {
            std::snprintf(msg, sizeof(msg),
                          "section %zu: truncated name", index);
            return msg;
        }
        const std::string name(
            reinterpret_cast<const char *>(image.data() + pos), name_len);
        pos += name_len;
        if (pos + 8 > image.size()) {
            std::snprintf(msg, sizeof(msg),
                          "section %zu ('%s'): truncated length field",
                          index, name.c_str());
            return msg;
        }
        const uint64_t payload_len = fetchU64(image.data() + pos);
        pos += 8;
        if (payload_len > image.size() ||
            pos + payload_len + 4 > image.size()) {
            std::snprintf(msg, sizeof(msg),
                          "section %zu ('%s'): truncated payload "
                          "(%llu bytes claimed)",
                          index, name.c_str(),
                          static_cast<unsigned long long>(payload_len));
            return msg;
        }
        const size_t payload_start = pos;
        pos += static_cast<size_t>(payload_len);
        const uint32_t stored_crc = fetchU32(image.data() + pos);
        pos += 4;
        // The CRC spans the whole section record (name framing included,
        // CRC itself excluded): a flipped name byte is damage too.
        const uint32_t actual_crc =
            crc32(image.data() + section_start, pos - 4 - section_start);
        if (stored_crc != actual_crc) {
            std::snprintf(msg, sizeof(msg),
                          "section %zu ('%s'): CRC mismatch "
                          "(stored %08x, computed %08x)",
                          index, name.c_str(), stored_crc, actual_crc);
            return msg;
        }
        sink(name, payload_start, static_cast<size_t>(payload_len));
        ++index;
    }
    if (index != declared) {
        std::snprintf(msg, sizeof(msg),
                      "snapshot truncated: %zu of %u declared sections "
                      "present",
                      index, declared);
        return msg;
    }
    return std::string();
}

} // namespace

SnapshotWriter::SnapshotWriter()
{
    image.reserve(256);
    uint8_t header[12];
    storeU32(header, kMagic);
    storeU32(header + 4, kFormatVersion);
    storeU32(header + 8, 0);  // section count, patched by finish()
    image.insert(image.end(), header, header + 12);
}

void
SnapshotWriter::put(const void *data, size_t size)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    image.insert(image.end(), p, p + size);
}

void
SnapshotWriter::beginSection(const std::string &name)
{
    react_assert(lengthPos == SIZE_MAX,
                 "snapshot sections cannot nest (endSection missing)");
    react_assert(!name.empty() && name.size() <= 255,
                 "snapshot section name must be 1..255 bytes");
    sectionPos = image.size();
    image.push_back(static_cast<uint8_t>(name.size()));
    put(name.data(), name.size());
    lengthPos = image.size();
    const uint8_t zeros[8] = {};
    put(zeros, 8);
    payloadPos = image.size();
}

void
SnapshotWriter::endSection()
{
    react_assert(lengthPos != SIZE_MAX,
                 "endSection without a matching beginSection");
    const size_t payload_len = image.size() - payloadPos;
    storeU64(image.data() + lengthPos,
             static_cast<uint64_t>(payload_len));
    // CRC over the whole section record so the name framing is guarded
    // too, matching walkImage().
    const uint32_t crc =
        crc32(image.data() + sectionPos, image.size() - sectionPos);
    uint8_t crc_bytes[4];
    storeU32(crc_bytes, crc);
    put(crc_bytes, 4);
    lengthPos = SIZE_MAX;
    ++sectionCount;
}

void
SnapshotWriter::u8(uint8_t v)
{
    react_assert(lengthPos != SIZE_MAX,
                 "snapshot primitives need an open section");
    image.push_back(v);
}

void
SnapshotWriter::b(bool v)
{
    u8(v ? 1 : 0);
}

void
SnapshotWriter::u32(uint32_t v)
{
    uint8_t enc[4];
    storeU32(enc, v);
    react_assert(lengthPos != SIZE_MAX,
                 "snapshot primitives need an open section");
    put(enc, 4);
}

void
SnapshotWriter::u64(uint64_t v)
{
    uint8_t enc[8];
    storeU64(enc, v);
    react_assert(lengthPos != SIZE_MAX,
                 "snapshot primitives need an open section");
    put(enc, 8);
}

void
SnapshotWriter::i64(int64_t v)
{
    uint64_t enc;
    std::memcpy(&enc, &v, sizeof(enc));
    u64(enc);
}

void
SnapshotWriter::f64(double v)
{
    uint64_t enc;
    std::memcpy(&enc, &v, sizeof(enc));
    u64(enc);
}

void
SnapshotWriter::str(const std::string &v)
{
    u32(static_cast<uint32_t>(v.size()));
    react_assert(lengthPos != SIZE_MAX,
                 "snapshot primitives need an open section");
    put(v.data(), v.size());
}

void
SnapshotWriter::bytes(const std::vector<uint8_t> &v)
{
    u64(static_cast<uint64_t>(v.size()));
    react_assert(lengthPos != SIZE_MAX,
                 "snapshot primitives need an open section");
    put(v.data(), v.size());
}

std::vector<uint8_t>
SnapshotWriter::finish()
{
    react_assert(lengthPos == SIZE_MAX,
                 "finish() with an open section (endSection missing)");
    storeU32(image.data() + 8, sectionCount);
    return std::move(image);
}

SnapshotReader::SnapshotReader(std::vector<uint8_t> image_bytes)
    : image(std::move(image_bytes))
{
    const std::string err = walkImage(
        image, [this](const std::string &name, size_t start, size_t size) {
            sections.push_back(Section{name, start, size});
        });
    if (!err.empty())
        throw SnapshotError(err);
}

void
SnapshotReader::beginSection(const std::string &name)
{
    if (cursor != SIZE_MAX)
        throw SnapshotError("beginSection('" + name +
                            "') with a section still open");
    if (nextSection >= sections.size())
        throw SnapshotError("snapshot ended before section '" + name + "'");
    const Section &s = sections[nextSection];
    if (s.name != name)
        throw SnapshotError("snapshot section order mismatch: expected '" +
                            name + "', found '" + s.name + "'");
    cursor = s.payloadStart;
    payloadEnd = s.payloadStart + s.payloadSize;
    ++nextSection;
}

void
SnapshotReader::endSection()
{
    if (cursor == SIZE_MAX)
        throw SnapshotError("endSection without an open section");
    if (cursor != payloadEnd)
        throw SnapshotError("snapshot section '" +
                            sections[nextSection - 1].name +
                            "' not fully consumed (layout mismatch)");
    cursor = SIZE_MAX;
}

void
SnapshotReader::take(void *out, size_t size)
{
    if (cursor == SIZE_MAX)
        throw SnapshotError("snapshot read outside any section");
    if (cursor + size > payloadEnd)
        throw SnapshotError("snapshot section '" +
                            sections[nextSection - 1].name +
                            "' read past its end (layout mismatch)");
    std::memcpy(out, image.data() + cursor, size);
    cursor += size;
}

uint8_t
SnapshotReader::u8()
{
    uint8_t v;
    take(&v, 1);
    return v;
}

bool
SnapshotReader::b()
{
    return u8() != 0;
}

uint32_t
SnapshotReader::u32()
{
    uint8_t enc[4];
    take(enc, 4);
    return fetchU32(enc);
}

uint64_t
SnapshotReader::u64()
{
    uint8_t enc[8];
    take(enc, 8);
    return fetchU64(enc);
}

int64_t
SnapshotReader::i64()
{
    const uint64_t enc = u64();
    int64_t v;
    std::memcpy(&v, &enc, sizeof(v));
    return v;
}

double
SnapshotReader::f64()
{
    const uint64_t enc = u64();
    double v;
    std::memcpy(&v, &enc, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    const uint32_t n = u32();
    std::string v(n, '\0');
    if (n > 0)
        take(v.data(), n);
    return v;
}

std::vector<uint8_t>
SnapshotReader::bytes()
{
    const uint64_t n = u64();
    if (cursor == SIZE_MAX || cursor + n > payloadEnd)
        throw SnapshotError("snapshot byte array overruns its section");
    std::vector<uint8_t> v(static_cast<size_t>(n));
    if (n > 0)
        take(v.data(), static_cast<size_t>(n));
    return v;
}

bool
validateImage(const std::vector<uint8_t> &image, std::string *error)
{
    const std::string err =
        walkImage(image, [](const std::string &, size_t, size_t) {});
    if (!err.empty()) {
        if (error)
            *error = err;
        return false;
    }
    return true;
}

namespace {

/** Read a whole file; returns false when it cannot be opened. */
bool
readFile(const std::string &path, std::vector<uint8_t> *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    out->resize(size > 0 ? static_cast<size_t>(size) : 0);
    if (!out->empty())
        in.read(reinterpret_cast<char *>(out->data()),
                static_cast<std::streamsize>(out->size()));
    return static_cast<bool>(in);
}

} // namespace

bool
saveSnapshotFile(const std::string &path, const std::vector<uint8_t> &image,
                 std::string *error)
{
    const std::string tmp = path + ".tmp";
    const std::string prev = path + ".prev";
    {
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            if (error)
                *error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        const size_t wrote =
            image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
        const bool flushed = std::fflush(f) == 0;
        std::fclose(f);
        if (wrote != image.size() || !flushed) {
            if (error)
                *error = "short write to '" + tmp + "'";
            std::remove(tmp.c_str());
            return false;
        }
    }
    // Keep the previous good snapshot as the fallback generation.  If
    // the process dies between these two renames the primary name is
    // briefly absent, but `path.prev` is valid -- exactly the case
    // loadSnapshotFile() recovers from.
    std::remove(prev.c_str());
    std::rename(path.c_str(), prev.c_str());  // may fail: first snapshot
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename '" + tmp + "' into place";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

SnapshotLoad
loadSnapshotFile(const std::string &path)
{
    SnapshotLoad out;
    std::string primary_err;
    std::vector<uint8_t> data;
    if (!readFile(path, &data)) {
        primary_err = "cannot read '" + path + "'";
    } else if (!validateImage(data, &primary_err)) {
        primary_err = "'" + path + "': " + primary_err;
    } else {
        out.image = std::move(data);
        out.ok = true;
        out.diagnostic = "loaded snapshot '" + path + "'";
        return out;
    }

    const std::string prev = path + ".prev";
    std::string prev_err;
    data.clear();
    if (!readFile(prev, &data)) {
        prev_err = "cannot read '" + prev + "'";
    } else if (!validateImage(data, &prev_err)) {
        prev_err = "'" + prev + "': " + prev_err;
    } else {
        out.image = std::move(data);
        out.ok = true;
        out.usedFallback = true;
        out.diagnostic = primary_err +
            "; recovered from previous snapshot '" + prev + "'";
        return out;
    }

    out.diagnostic = primary_err + "; " + prev_err + "; cold-starting";
    return out;
}

void
saveRng(SnapshotWriter &w, const Rng &rng)
{
    const RngState st = rng.state();
    for (uint64_t word : st.s)
        w.u64(word);
    w.b(st.haveCachedNormal);
    w.f64(st.cachedNormal);
}

void
restoreRng(SnapshotReader &r, Rng *rng)
{
    RngState st;
    for (auto &word : st.s)
        word = r.u64();
    st.haveCachedNormal = r.b();
    st.cachedNormal = r.f64();
    rng->setState(st);
}

} // namespace snapshot
} // namespace react
