/**
 * @file
 * Versioned, CRC-32-guarded binary snapshots of simulator state.
 *
 * The paper's systems survive power failure by persisting state in FRAM;
 * the simulator itself gets the same property here so a long sweep that
 * dies mid-run can resume per-cell instead of starting over.  Every
 * stateful component implements save(SnapshotWriter&) / restore
 * (SnapshotReader&) against this format, and determinism (PR 3's
 * bit-identical cells) makes correctness checkable: a run restored from
 * any checkpoint must finish bit-identical to an uninterrupted run,
 * which the crash_fuzz harness enforces.
 *
 * ## Wire format
 *
 * A snapshot is a header followed by a sequence of named sections:
 *
 *     header : u32 magic "RSNP" (0x52534e50, little-endian)
 *              u32 format version (kFormatVersion)
 *              u32 section count (patched when the writer finishes)
 *     section: u8  name length
 *              ... name bytes
 *              u64 payload length (little-endian)
 *              ... payload
 *              u32 CRC-32 of the section record above (name length,
 *                  name, payload length, payload; little-endian)
 *
 * All integers are little-endian; doubles are stored as their IEEE-754
 * bit pattern (bit-exact round trip).  Each section's CRC covers its
 * entire record -- a flipped byte anywhere but the header is a CRC
 * mismatch -- and the header's section count makes a file truncated at
 * a clean section boundary detectable too.  SnapshotReader validates
 * the whole image in its constructor and throws SnapshotError on any
 * damage, before any component sees a byte of it.
 *
 * ## Atomic file protocol
 *
 * saveSnapshotFile() never overwrites the last good snapshot in place:
 * it writes `path.tmp`, rotates any existing `path` to `path.prev`, and
 * renames the temp file into place.  A crash at any point leaves either
 * the new snapshot, the previous one, or both on disk; loadSnapshotFile()
 * falls back from `path` to `path.prev` with a diagnostic, and reports
 * cleanly when neither validates (callers then cold-start, which is
 * always correct -- just slower).
 */

#ifndef REACT_SNAPSHOT_SNAPSHOT_HH
#define REACT_SNAPSHOT_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace react {

class Rng;

namespace snapshot {

/** Format magic: "RSNP" read as a little-endian u32. */
constexpr uint32_t kMagic = 0x504e5352u;
/** Bumped on any incompatible wire-format change. */
constexpr uint32_t kFormatVersion = 1;

/** Raised on any validation failure (bad magic, wrong version, CRC
 *  mismatch, truncation, section-order or read-size mismatch).  Always
 *  catchable: a damaged snapshot degrades to a cold start, never UB. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Serializes primitives into named, CRC-framed sections. */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    /** Open a section.  Sections cannot nest (programmer error). */
    void beginSection(const std::string &name);

    /** Close the open section: patches its length, appends its CRC. */
    void endSection();

    /** @name Primitive encoders (valid only inside an open section). @{ */
    void u8(uint8_t v);
    void b(bool v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i64(int64_t v);
    /** Stored as the IEEE-754 bit pattern: bit-exact round trip. */
    void f64(double v);
    void str(const std::string &v);
    void bytes(const std::vector<uint8_t> &v);
    /** @} */

    /** Finish the snapshot and take the image (writer is spent). */
    std::vector<uint8_t> finish();

  private:
    void put(const void *data, size_t size);

    std::vector<uint8_t> image;
    /** Offset of the open section's length field; npos when closed. */
    size_t lengthPos = SIZE_MAX;
    /** Offset of the open section's first payload byte. */
    size_t payloadPos = 0;
    /** Offset of the open section's name-length byte (CRC start). */
    size_t sectionPos = 0;
    /** Sections closed so far; patched into the header by finish(). */
    uint32_t sectionCount = 0;
};

/** Validates a snapshot image up front, then replays its sections. */
class SnapshotReader
{
  public:
    /**
     * Parse and fully validate the image: header, every section's
     * framing, every section's CRC.  @throws SnapshotError on damage.
     */
    explicit SnapshotReader(std::vector<uint8_t> image_bytes);

    /**
     * Open the next section; its name must match (sections are replayed
     * in the order they were written).  @throws SnapshotError otherwise.
     */
    void beginSection(const std::string &name);

    /** Close the section; throws unless every payload byte was read. */
    void endSection();

    /** @name Primitive decoders (bounds-checked; throw on overrun). @{ */
    uint8_t u8();
    bool b();
    uint32_t u32();
    uint64_t u64();
    int64_t i64();
    double f64();
    std::string str();
    std::vector<uint8_t> bytes();
    /** @} */

    /** Number of sections in the image. */
    size_t sectionCount() const { return sections.size(); }

  private:
    struct Section
    {
        std::string name;
        size_t payloadStart = 0;
        size_t payloadSize = 0;
    };

    void take(void *out, size_t size);

    std::vector<uint8_t> image;
    std::vector<Section> sections;
    /** Index of the next section beginSection() will open. */
    size_t nextSection = 0;
    /** Read cursor / end of the open section; cursor == SIZE_MAX when
     *  no section is open. */
    size_t cursor = SIZE_MAX;
    size_t payloadEnd = 0;
};

/** Serialize a full RNG stream (xoshiro words + the Box-Muller cached
 *  normal -- omitting the cache would desynchronize normal() draws). */
void saveRng(SnapshotWriter &w, const Rng &rng);
void restoreRng(SnapshotReader &r, Rng *rng);

/** Validate an image without constructing a reader.
 *  @param error Filled with a diagnostic on failure (may be null).
 *  @return true when the image parses and every CRC checks out. */
bool validateImage(const std::vector<uint8_t> &image, std::string *error);

/**
 * Write a snapshot image atomically: `path.tmp` -> rotate existing
 * `path` to `path.prev` -> rename into place.  A power failure at any
 * point leaves at least one valid snapshot on disk.
 *
 * @return false (with a diagnostic in @p error, may be null) on I/O
 *         failure; never throws.
 */
bool saveSnapshotFile(const std::string &path,
                      const std::vector<uint8_t> &image,
                      std::string *error = nullptr);

/** Outcome of loadSnapshotFile(). */
struct SnapshotLoad
{
    /** The validated image (empty when ok == false). */
    std::vector<uint8_t> image;
    /** Whether any snapshot loaded. */
    bool ok = false;
    /** True when `path` was damaged/missing and `path.prev` was used. */
    bool usedFallback = false;
    /** Human-readable account of what happened (always filled). */
    std::string diagnostic;
};

/**
 * Load `path`, falling back to `path.prev` when the primary file is
 * missing, truncated, or fails CRC validation.  Never throws: a result
 * with ok == false means the caller must cold-start.
 */
SnapshotLoad loadSnapshotFile(const std::string &path);

} // namespace snapshot
} // namespace react

#endif // REACT_SNAPSHOT_SNAPSHOT_HH
