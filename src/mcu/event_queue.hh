/**
 * @file
 * External-event delivery.
 *
 * The paper's reactivity benchmarks receive events from outside the
 * device: SC's five-second sensing deadlines come from a remanence-based
 * timekeeper, and PF's packets arrive from other transmitters (delivered
 * in the paper's testbed by a secondary MSP430).  Events exist whether or
 * not the device is powered -- an event that fires while the system is off
 * is simply missed, which is exactly the reactivity penalty Table 4
 * quantifies.
 */

#ifndef REACT_MCU_EVENT_QUEUE_HH
#define REACT_MCU_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace mcu {

/** Pre-scheduled, time-ordered external events. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** @param times Event timestamps in seconds (sorted ascending). */
    explicit EventQueue(std::vector<double> times);

    /** Periodic schedule: events every `period` seconds over `duration`,
     *  starting at `period` (the paper's SC deadline train). */
    static EventQueue periodic(double period, double duration);

    /** Poisson arrivals with the given mean inter-arrival time (the PF
     *  packet process). */
    static EventQueue poisson(double mean_interarrival, double duration,
                              Rng &rng);

    /**
     * Schedule one more event at runtime (e.g. a retransmission or a
     * fault-injected spurious wakeup).  The event lands *after* every
     * already-scheduled event with the same timestamp: delivery among
     * same-timestamp events is FIFO in scheduling order, so replaying
     * the same push sequence always yields the same delivery order.
     *
     * Only the unconsumed region is reordered; an event pushed with a
     * timestamp in the consumed past becomes the next pending event.
     *
     * @param when Event timestamp in seconds.
     * @return The event's delivery id (see consumeNext()).
     */
    uint64_t push(double when);

    /** Total number of events scheduled. */
    size_t totalEvents() const { return times.size(); }

    /** Events consumed so far (fired or skipped). */
    size_t consumedEvents() const { return next; }

    /** Whether an event fires in (now - dt, now]. */
    bool pending(double now) const;

    /**
     * Consume every event with a timestamp at or before `now`.
     *
     * @return Number of events consumed.
     */
    size_t consumeUpTo(double now);

    /**
     * Consume the next event if it has fired by `now`.  Events with the
     * same timestamp are consumed in scheduling (FIFO) order.
     *
     * @param now Current time in seconds.
     * @param when Filled with the event timestamp when one is consumed.
     * @param id Optionally filled with the event's delivery id
     *        (construction order, then push() order).
     * @return true when an event was consumed.
     */
    bool consumeNext(double now, double *when, uint64_t *id = nullptr);

    /** Timestamp of the next unconsumed event; +inf when exhausted. */
    double nextEventTime() const;

    /** Rewind to the beginning. */
    void reset() { next = 0; }

    /** Serialize the full schedule (timestamps, delivery ids, cursor,
     *  next id) so runtime push() insertions and the FIFO tie-break
     *  replay identically after restore. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    std::vector<double> times;
    /** Delivery id per event, parallel to times.  Ids record scheduling
     *  order, making the FIFO tie-break among equal timestamps
     *  observable (and testable). */
    std::vector<uint64_t> ids;
    size_t next = 0;
    uint64_t nextId = 0;
};

} // namespace mcu
} // namespace react

#endif // REACT_MCU_EVENT_QUEUE_HH
