/**
 * @file
 * Computational-backend power model (MSP430FR5994-class MCU, S 4).
 *
 * The paper emulates each benchmark's peripherals with resistive loads on
 * the real MCU; we model the same thing as additive current draws on top
 * of the MCU's power-state base current.  FRAM semantics are implicit:
 * benchmark objects persist across power cycles (non-volatile state),
 * while "volatile" progress is whatever a benchmark chooses to discard in
 * its onPowerDown handler.
 */

#ifndef REACT_MCU_DEVICE_HH
#define REACT_MCU_DEVICE_HH

#include <cstdint>

namespace react {
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace mcu {

/** MCU operating mode. */
enum class PowerState
{
    Off,        ///< power gate open
    DeepSleep,  ///< lowest LPM: only an async wake source armed
    Sleep,      ///< responsive sleep: RTC + monitoring wake-ups armed
    Active,     ///< CPU running
};

/** Current-draw parameters for the backend. */
struct DeviceSpec
{
    /** CPU active current (the paper's running example: 1.5 mA). */
    double activeCurrent = 1.5e-3;
    /** Responsive-sleep current: LPM with the RTC, wake comparators,
     *  supervisor, and periodic monitoring wake-ups armed.  Calibrated
     *  against the duty cycles implied by the paper's Table 2 (see
     *  DESIGN.md). */
    double sleepCurrent = 300e-6;
    /** Deep-sleep current: lowest LPM with a single asynchronous wake
     *  source (e.g. a wake-up-receiver interrupt). */
    double deepSleepCurrent = 20e-6;
};

/** Backend device: power state plus benchmark-controlled peripherals. */
class Device
{
  public:
    explicit Device(const DeviceSpec &spec = DeviceSpec());

    /** Power-state parameters. */
    const DeviceSpec &spec() const { return deviceSpec; }

    /** Present operating mode. */
    PowerState state() const { return powerState; }

    /** True when the gate has the device powered (not Off). */
    bool isPowered() const { return powerState != PowerState::Off; }

    /**
     * Set the operating mode.  Off is driven by the power gate via the
     * harness; Sleep/Active are driven by workload code.  Inline: this
     * runs once per powered step in both experiment engines.
     */
    void setState(PowerState state)
    {
        if (powerState == PowerState::Off && state != PowerState::Off)
            ++cycles;
        if (state == PowerState::Off)
            periphCurrent = 0.0;  // peripherals lose power with the MCU
        powerState = state;
    }

    /** Additional peripheral current (radio, microphone...), amperes. */
    double peripheralCurrent() const { return periphCurrent; }

    /** Set the peripheral load (0 disables). */
    void setPeripheralCurrent(double current);

    /** Total current drawn from the rail in the present state.
     *  Inline: the step loops re-query it after every tick. */
    double current() const
    {
        switch (powerState) {
          case PowerState::Off:
            return 0.0;
          case PowerState::DeepSleep:
            return deviceSpec.deepSleepCurrent + periphCurrent;
          case PowerState::Sleep:
            return deviceSpec.sleepCurrent + periphCurrent;
          case PowerState::Active:
            return deviceSpec.activeCurrent + periphCurrent;
        }
        return 0.0;
    }

    /** Count of off->on transitions (power cycles survived). */
    uint64_t powerCycles() const { return cycles; }

    /** Return to the unpowered state, clearing counters. */
    void reset();

    /** Serialize the mutable state (mode, peripheral load, cycle count);
     *  the spec is construction-fixed. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    DeviceSpec deviceSpec;
    PowerState powerState = PowerState::Off;
    double periphCurrent = 0.0;
    uint64_t cycles = 0;
};

} // namespace mcu
} // namespace react

#endif // REACT_MCU_DEVICE_HH
