#include "device.hh"

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace mcu {

Device::Device(const DeviceSpec &spec)
    : deviceSpec(spec)
{
    react_assert(spec.activeCurrent > 0.0, "active current must be > 0");
    react_assert(spec.sleepCurrent >= 0.0, "sleep current must be >= 0");
}

void
Device::setState(PowerState state)
{
    if (powerState == PowerState::Off && state != PowerState::Off)
        ++cycles;
    if (state == PowerState::Off)
        periphCurrent = 0.0;  // peripherals lose power with the MCU
    powerState = state;
}

void
Device::setPeripheralCurrent(double current)
{
    react_assert(current >= 0.0, "peripheral current must be >= 0");
    periphCurrent = current;
}

double
Device::current() const
{
    switch (powerState) {
      case PowerState::Off:
        return 0.0;
      case PowerState::DeepSleep:
        return deviceSpec.deepSleepCurrent + periphCurrent;
      case PowerState::Sleep:
        return deviceSpec.sleepCurrent + periphCurrent;
      case PowerState::Active:
        return deviceSpec.activeCurrent + periphCurrent;
    }
    return 0.0;
}

void
Device::reset()
{
    powerState = PowerState::Off;
    periphCurrent = 0.0;
    cycles = 0;
}

void
Device::save(snapshot::SnapshotWriter &w) const
{
    w.u8(static_cast<uint8_t>(powerState));
    w.f64(periphCurrent);
    w.u64(cycles);
}

void
Device::restore(snapshot::SnapshotReader &r)
{
    powerState = static_cast<PowerState>(r.u8());
    periphCurrent = r.f64();
    cycles = r.u64();
}

} // namespace mcu
} // namespace react
