#include "device.hh"

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace mcu {

Device::Device(const DeviceSpec &spec)
    : deviceSpec(spec)
{
    react_assert(spec.activeCurrent > 0.0, "active current must be > 0");
    react_assert(spec.sleepCurrent >= 0.0, "sleep current must be >= 0");
}

void
Device::setPeripheralCurrent(double current)
{
    react_assert(current >= 0.0, "peripheral current must be >= 0");
    periphCurrent = current;
}

void
Device::reset()
{
    powerState = PowerState::Off;
    periphCurrent = 0.0;
    cycles = 0;
}

void
Device::save(snapshot::SnapshotWriter &w) const
{
    w.u8(static_cast<uint8_t>(powerState));
    w.f64(periphCurrent);
    w.u64(cycles);
}

void
Device::restore(snapshot::SnapshotReader &r)
{
    powerState = static_cast<PowerState>(r.u8());
    periphCurrent = r.f64();
    cycles = r.u64();
}

} // namespace mcu
} // namespace react
