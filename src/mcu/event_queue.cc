#include "event_queue.hh"

#include <algorithm>
#include <limits>

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace mcu {

EventQueue::EventQueue(std::vector<double> event_times)
    : times(std::move(event_times))
{
    react_assert(std::is_sorted(this->times.begin(), this->times.end()),
                 "event timestamps must be sorted");
    ids.resize(times.size());
    for (size_t i = 0; i < ids.size(); ++i)
        ids[i] = nextId++;
}

uint64_t
EventQueue::push(double when)
{
    // Insert after every pending event with the same timestamp so equal-
    // time delivery is FIFO in scheduling order.  An event timestamped in
    // the consumed past lands at the front of the pending region and
    // fires next.
    const auto pos = std::upper_bound(
        times.begin() + static_cast<std::ptrdiff_t>(next), times.end(),
        when);
    const auto index = pos - times.begin();
    const uint64_t id = nextId++;
    times.insert(pos, when);
    ids.insert(ids.begin() + index, id);
    return id;
}

EventQueue
EventQueue::periodic(double period, double duration)
{
    react_assert(period > 0.0, "period must be positive");
    std::vector<double> ts;
    for (double t = period; t <= duration; t += period)
        ts.push_back(t);
    return EventQueue(std::move(ts));
}

EventQueue
EventQueue::poisson(double mean_interarrival, double duration, Rng &rng)
{
    react_assert(mean_interarrival > 0.0,
                 "mean inter-arrival must be positive");
    std::vector<double> ts;
    double t = rng.exponential(mean_interarrival);
    while (t <= duration) {
        ts.push_back(t);
        t += rng.exponential(mean_interarrival);
    }
    return EventQueue(std::move(ts));
}

bool
EventQueue::pending(double now) const
{
    return next < times.size() && times[next] <= now;
}

size_t
EventQueue::consumeUpTo(double now)
{
    size_t consumed = 0;
    while (pending(now)) {
        ++next;
        ++consumed;
    }
    return consumed;
}

bool
EventQueue::consumeNext(double now, double *when, uint64_t *id)
{
    if (!pending(now))
        return false;
    if (when)
        *when = times[next];
    if (id)
        *id = ids[next];
    ++next;
    return true;
}

double
EventQueue::nextEventTime() const
{
    if (next >= times.size())
        return std::numeric_limits<double>::infinity();
    return times[next];
}

void
EventQueue::save(snapshot::SnapshotWriter &w) const
{
    w.u64(times.size());
    for (double when : times)
        w.f64(when);
    for (uint64_t id : ids)
        w.u64(id);
    w.u64(next);
    w.u64(nextId);
}

void
EventQueue::restore(snapshot::SnapshotReader &r)
{
    const uint64_t count = r.u64();
    times.resize(count);
    for (auto &when : times)
        when = r.f64();
    ids.resize(count);
    for (auto &id : ids)
        id = r.u64();
    next = r.u64();
    nextId = r.u64();
}

} // namespace mcu
} // namespace react
