#include "event_queue.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace react {
namespace mcu {

EventQueue::EventQueue(std::vector<double> event_times)
    : times(std::move(event_times))
{
    react_assert(std::is_sorted(this->times.begin(), this->times.end()),
                 "event timestamps must be sorted");
}

EventQueue
EventQueue::periodic(double period, double duration)
{
    react_assert(period > 0.0, "period must be positive");
    std::vector<double> ts;
    for (double t = period; t <= duration; t += period)
        ts.push_back(t);
    return EventQueue(std::move(ts));
}

EventQueue
EventQueue::poisson(double mean_interarrival, double duration, Rng &rng)
{
    react_assert(mean_interarrival > 0.0,
                 "mean inter-arrival must be positive");
    std::vector<double> ts;
    double t = rng.exponential(mean_interarrival);
    while (t <= duration) {
        ts.push_back(t);
        t += rng.exponential(mean_interarrival);
    }
    return EventQueue(std::move(ts));
}

bool
EventQueue::pending(double now) const
{
    return next < times.size() && times[next] <= now;
}

size_t
EventQueue::consumeUpTo(double now)
{
    size_t consumed = 0;
    while (pending(now)) {
        ++next;
        ++consumed;
    }
    return consumed;
}

bool
EventQueue::consumeNext(double now, double *when)
{
    if (!pending(now))
        return false;
    if (when)
        *when = times[next];
    ++next;
    return true;
}

double
EventQueue::nextEventTime() const
{
    if (next >= times.size())
        return std::numeric_limits<double>::infinity();
    return times[next];
}

} // namespace mcu
} // namespace react
