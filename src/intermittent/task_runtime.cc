#include "task_runtime.hh"

#include "snapshot/snapshot.hh"
#include "util/logging.hh"

namespace react {
namespace intermittent {

namespace {

const char *kCurrentTaskKey = "__task";
const char *kDoneMarker = "__done";

std::vector<uint8_t>
encodeString(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

std::string
decodeString(const std::vector<uint8_t> &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

} // namespace

TaskContext::TaskContext(const TaskRuntime &owning_runtime)
    : runtime(owning_runtime)
{
}

std::vector<uint8_t>
TaskContext::readBytes(const std::string &name,
                       std::vector<uint8_t> fallback) const
{
    // Read-own-writes within a task keeps task bodies natural while
    // preserving idempotence (the buffer is discarded on failure).
    const auto it = writes.find(name);
    if (it != writes.end())
        return it->second;
    std::vector<uint8_t> out;
    if (runtime.nv.read(name, &out))
        return out;
    return fallback;
}

uint64_t
TaskContext::readU64(const std::string &name, uint64_t fallback) const
{
    const auto bytes = readBytes(name);
    if (bytes.size() != 8)
        return fallback;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(bytes[static_cast<size_t>(i)])
            << (8 * i);
    return value;
}

void
TaskContext::writeBytes(const std::string &name, std::vector<uint8_t> data)
{
    react_assert(name.rfind("__", 0) != 0,
                 "variable names starting with __ are reserved");
    writes[name] = std::move(data);
}

void
TaskContext::writeU64(const std::string &name, uint64_t value)
{
    std::vector<uint8_t> bytes(8);
    for (int i = 0; i < 8; ++i)
        bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(value >> (8 * i));
    writeBytes(name, std::move(bytes));
}

TaskRuntime::TaskRuntime(std::string entry_task)
    : entry(std::move(entry_task))
{
    react_assert(!this->entry.empty(), "entry task name must be set");
}

void
TaskRuntime::addTask(const std::string &name, TaskFn fn)
{
    react_assert(!name.empty(), "task name must be non-empty");
    react_assert(tasks.emplace(name, std::move(fn)).second,
                 "task '%s' registered twice", name.c_str());
}

std::string
TaskRuntime::currentTask() const
{
    std::vector<uint8_t> bytes;
    if (nv.read(kCurrentTaskKey, &bytes))
        return decodeString(bytes);
    return entry;
}

bool
TaskRuntime::finished() const
{
    return currentTask() == kDoneMarker;
}

std::string
TaskRuntime::execute(TaskContext &ctx)
{
    const std::string name = currentTask();
    const auto it = tasks.find(name);
    react_assert(it != tasks.end(), "unknown task '%s'", name.c_str());
    const std::string next = it->second(ctx);
    return next.empty() ? kDoneMarker : next;
}

bool
TaskRuntime::step()
{
    if (finished())
        return false;
    TaskContext ctx(*this);
    const std::string next = execute(ctx);
    // Commit: buffered writes plus the control-flow edge, atomically.
    for (auto &entry_kv : ctx.writes)
        nv.stage(entry_kv.first, std::move(entry_kv.second));
    nv.stage(kCurrentTaskKey, encodeString(next));
    nv.commit();
    ++committed;
    return true;
}

void
TaskRuntime::stepWithFailure()
{
    if (finished())
        return;
    TaskContext ctx(*this);
    const std::string next = execute(ctx);
    // Power dies inside the commit's write-out, before the atomic
    // publish: the buffered writes and the successor edge are in flight
    // (an attached fault injector may tear them into the inactive FRAM
    // slots) but never become visible; the task will re-run from its
    // original inputs at next power-up.
    for (auto &entry_kv : ctx.writes)
        nv.stage(entry_kv.first, std::move(entry_kv.second));
    nv.stage(kCurrentTaskKey, encodeString(next));
    nv.failInFlightWrites();
    ++aborted;
}

void
TaskRuntime::save(snapshot::SnapshotWriter &w) const
{
    w.str(entry);
    w.u64(committed);
    w.u64(aborted);
    nv.save(w);
}

void
TaskRuntime::restore(snapshot::SnapshotReader &r)
{
    entry = r.str();
    committed = r.u64();
    aborted = r.u64();
    nv.restore(r);
}

} // namespace intermittent
} // namespace react
