#include "nonvolatile.hh"

#include "sim/fault_injector.hh"
#include "snapshot/snapshot.hh"
#include "util/crc32.hh"

namespace react {
namespace intermittent {

uint32_t
NonVolatileStore::checksumOf(const std::vector<uint8_t> &data)
{
    // CRC-32, shared with the FRAM config record and the snapshot
    // format: guaranteed detection of any burst error up to 32 bits,
    // the signature a torn FRAM row write leaves.
    return crc32(data.data(), data.size());
}

void
NonVolatileStore::stage(const std::string &key, std::vector<uint8_t> data)
{
    staged[key] = std::move(data);
}

void
NonVolatileStore::commit()
{
    for (auto &entry : staged) {
        Record &record = records[entry.first];
        const int target = record.active == 0 ? 1 : 0;
        Slot &slot = record.slots[target];
        slot.data = std::move(entry.second);
        slot.checksum = checksumOf(slot.data);
        slot.version = nextVersion++;
        // The version/active flip is the atomic publish point.
        record.active = target;
    }
    staged.clear();
}

void
NonVolatileStore::failInFlightWrites()
{
    if (faults != nullptr) {
        // The power loss may have caught a staged record mid-write: the
        // torn bytes land in the slot the commit was writing -- always
        // the inactive one -- and the tear stops before the checksum and
        // version update, so the slot keeps stale metadata and can never
        // be mistaken for a committed value.
        for (auto &entry : staged) {
            std::vector<uint8_t> partial = entry.second;
            if (!faults->maybeCorruptOnPowerLoss("nvstore", &partial))
                continue;
            Record &record = records[entry.first];
            const int target = record.active == 0 ? 1 : 0;
            record.slots[target].data = std::move(partial);
        }
    }
    staged.clear();
}

bool
NonVolatileStore::read(const std::string &key,
                       std::vector<uint8_t> *out) const
{
    const auto it = records.find(key);
    if (it == records.end() || it->second.active < 0)
        return false;
    const Slot &slot = it->second.slots[it->second.active];
    if (checksumOf(slot.data) != slot.checksum) {
        // Active slot corrupted: fall back to the previous version if
        // it is intact (the double-buffer's whole purpose).
        const Slot &other = it->second.slots[it->second.active ^ 1];
        if (other.version > 0 && checksumOf(other.data) == other.checksum) {
            if (out)
                *out = other.data;
            return true;
        }
        return false;
    }
    if (out)
        *out = slot.data;
    return true;
}

bool
NonVolatileStore::contains(const std::string &key) const
{
    return read(key, nullptr);
}

size_t
NonVolatileStore::size() const
{
    size_t n = 0;
    for (const auto &entry : records)
        n += entry.second.active >= 0 ? 1 : 0;
    return n;
}

size_t
NonVolatileStore::storageBytes() const
{
    size_t bytes = 0;
    for (const auto &entry : records) {
        for (const auto &slot : entry.second.slots)
            bytes += slot.data.size();
    }
    return bytes;
}

void
NonVolatileStore::save(snapshot::SnapshotWriter &w) const
{
    w.u64(nextVersion);
    w.u32(static_cast<uint32_t>(records.size()));
    for (const auto &entry : records) {
        w.str(entry.first);
        w.i64(entry.second.active);
        for (const auto &slot : entry.second.slots) {
            w.bytes(slot.data);
            w.u32(slot.checksum);
            w.u64(slot.version);
        }
    }
    w.u32(static_cast<uint32_t>(staged.size()));
    for (const auto &entry : staged) {
        w.str(entry.first);
        w.bytes(entry.second);
    }
}

void
NonVolatileStore::restore(snapshot::SnapshotReader &r)
{
    records.clear();
    staged.clear();
    nextVersion = r.u64();
    const uint32_t record_count = r.u32();
    for (uint32_t i = 0; i < record_count; ++i) {
        const std::string key = r.str();
        Record &record = records[key];
        record.active = static_cast<int>(r.i64());
        for (auto &slot : record.slots) {
            slot.data = r.bytes();
            slot.checksum = r.u32();
            slot.version = r.u64();
        }
    }
    const uint32_t staged_count = r.u32();
    for (uint32_t i = 0; i < staged_count; ++i) {
        const std::string key = r.str();
        staged[key] = r.bytes();
    }
}

void
NonVolatileStore::corrupt(const std::string &key)
{
    auto it = records.find(key);
    if (it == records.end() || it->second.active < 0)
        return;
    Slot &slot = it->second.slots[it->second.active];
    if (!slot.data.empty())
        slot.data[0] ^= 0xff;
}

} // namespace intermittent
} // namespace react
