/**
 * @file
 * Crash-consistent non-volatile storage (FRAM model).
 *
 * The paper's platform (MSP430FR5994) executes intermittently: power
 * fails mid-computation and the program resumes from non-volatile state
 * (S 2).  Its benchmarks implicitly rely on FRAM semantics -- the PF
 * packet queue survives brown-outs, SC's timekeeper state persists.
 * This module provides the storage substrate those semantics need: a
 * key-value store with *atomic, double-buffered commits*, so a power
 * failure during a write never exposes a torn record.
 *
 * Each record keeps two versioned slots with checksums; a commit writes
 * the inactive slot and only then bumps the version, mirroring how
 * intermittent runtimes (Alpaca, Mementos) double-buffer task-shared
 * state.  Power failures are modelled by failInFlightWrites().
 */

#ifndef REACT_INTERMITTENT_NONVOLATILE_HH
#define REACT_INTERMITTENT_NONVOLATILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace react {
namespace sim {
class FaultInjector;
}
namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}
namespace intermittent {

/** Double-buffered, checksummed non-volatile key-value store. */
class NonVolatileStore
{
  public:
    NonVolatileStore() = default;

    /**
     * Attach (or detach with nullptr) a hardware fault injector.  While
     * attached, failInFlightWrites() models the physical tear: a power
     * loss that lands mid-write leaves corrupted bytes in the slot being
     * written.  Because commits are double-buffered, the tear only ever
     * hits the *inactive* slot -- committed data stays readable, which
     * is exactly the crash-consistency property the tests verify.
     */
    void attachFaultInjector(sim::FaultInjector *injector)
    {
        faults = injector;
    }

    /**
     * Stage a write.  The data does not become visible to read() until
     * commit(); a power failure before then leaves the old value.
     *
     * @param key Record name.
     * @param data Bytes to store.
     */
    void stage(const std::string &key, std::vector<uint8_t> data);

    /** Atomically publish every staged write. */
    void commit();

    /** Drop every staged (uncommitted) write -- a power failure. */
    void failInFlightWrites();

    /**
     * Read the last committed value.
     *
     * @param key Record name.
     * @param out Filled with the committed bytes.
     * @return false when the key has never been committed or the record
     *         fails its checksum.
     */
    bool read(const std::string &key, std::vector<uint8_t> *out) const;

    /** Whether a committed record exists for the key. */
    bool contains(const std::string &key) const;

    /** Number of committed records. */
    size_t size() const;

    /** Total committed payload bytes (FRAM budget tracking). */
    size_t storageBytes() const;

    /** Corrupt a committed record (fault-injection hook for tests). */
    void corrupt(const std::string &key);

    /** Serialize the full store (records, staged writes, version
     *  counter); the fault-injector attachment is not part of the state
     *  and must be re-established by the owner after restore(). */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    struct Slot
    {
        std::vector<uint8_t> data;
        uint32_t checksum = 0;
        uint64_t version = 0;
    };

    struct Record
    {
        Slot slots[2];
        /** Index of the slot holding the latest committed value. */
        int active = -1;
    };

    static uint32_t checksumOf(const std::vector<uint8_t> &data);

    std::map<std::string, Record> records;
    std::map<std::string, std::vector<uint8_t>> staged;
    uint64_t nextVersion = 1;
    sim::FaultInjector *faults = nullptr;
};

} // namespace intermittent
} // namespace react

#endif // REACT_INTERMITTENT_NONVOLATILE_HH
