/**
 * @file
 * Task-based intermittent execution runtime (Alpaca-style, S 2 of the
 * paper).
 *
 * Programs are decomposed into idempotent *tasks*.  A task reads
 * task-shared variables, computes, writes results, and names its
 * successor; the runtime buffers all writes and commits them -- together
 * with the control-flow edge -- atomically at task exit.  A power
 * failure mid-task therefore re-executes the task from its original
 * inputs instead of exposing partial state: execution under arbitrary
 * power failures produces exactly the same result as continuous
 * execution (the property the test suite checks by fault injection).
 *
 * This is the software substrate the paper's intermittent platform
 * assumes; the intermittent_logger example runs it on top of a REACT
 * buffer through real simulated power cycles.
 */

#ifndef REACT_INTERMITTENT_TASK_RUNTIME_HH
#define REACT_INTERMITTENT_TASK_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "intermittent/nonvolatile.hh"

namespace react {
namespace intermittent {

class TaskRuntime;

/** View of task-shared state inside one task execution. */
class TaskContext
{
  public:
    /**
     * Read a shared variable committed by earlier tasks.
     *
     * @param name Variable name.
     * @param fallback Returned when the variable has never been written.
     */
    std::vector<uint8_t> readBytes(const std::string &name,
                                   std::vector<uint8_t> fallback = {})
        const;

    /** Read a 64-bit unsigned shared variable. */
    uint64_t readU64(const std::string &name, uint64_t fallback = 0) const;

    /** Buffer a write; visible only after this task commits. */
    void writeBytes(const std::string &name, std::vector<uint8_t> data);

    /** Buffer a 64-bit unsigned write. */
    void writeU64(const std::string &name, uint64_t value);

  private:
    friend class TaskRuntime;
    explicit TaskContext(const TaskRuntime &runtime);
    const TaskRuntime &runtime;
    std::map<std::string, std::vector<uint8_t>> writes;
};

/** A task computes and names its successor ("" == program done). */
using TaskFn = std::function<std::string(TaskContext &)>;

/** Intermittent task executor over a non-volatile store. */
class TaskRuntime
{
  public:
    /**
     * @param entry Name of the first task of the program.
     */
    explicit TaskRuntime(std::string entry);

    /** Register a task. */
    void addTask(const std::string &name, TaskFn fn);

    /** Name of the task that will execute next (restored from FRAM). */
    std::string currentTask() const;

    /** Whether the program has reached completion. */
    bool finished() const;

    /**
     * Execute the current task to completion and commit atomically.
     * In a deployment a brown-out would abort the task before commit;
     * callers simulating intermittent power decide per step whether the
     * energy budget covers a full task (see stepWithFailure).
     *
     * @return false when the program is already finished.
     */
    bool step();

    /**
     * Execute the current task but inject a power failure before the
     * commit point: all buffered writes and the control-flow edge are
     * lost, exactly as when the rail collapses mid-task.
     */
    void stepWithFailure();

    /** Total committed task executions. */
    uint64_t tasksCommitted() const { return committed; }

    /** Task executions lost to injected power failures. */
    uint64_t tasksAborted() const { return aborted; }

    /** The backing non-volatile store (for inspection / fault hooks). */
    NonVolatileStore &store() { return nv; }
    const NonVolatileStore &store() const { return nv; }

    /** Route the store's power-loss writes through a fault injector. */
    void attachFaultInjector(sim::FaultInjector *injector)
    {
        nv.attachFaultInjector(injector);
    }

    /** Serialize runtime progress: the backing store plus the commit /
     *  abort counters.  Registered task code is a program, not state --
     *  the owner re-registers tasks after constructing the runtime. */
    void save(snapshot::SnapshotWriter &w) const;
    void restore(snapshot::SnapshotReader &r);

  private:
    friend class TaskContext;

    /** Run the current task body; fills ctx.writes and the successor. */
    std::string execute(TaskContext &ctx);

    std::string entry;
    std::map<std::string, TaskFn> tasks;
    NonVolatileStore nv;
    uint64_t committed = 0;
    uint64_t aborted = 0;
};

} // namespace intermittent
} // namespace react

#endif // REACT_INTERMITTENT_TASK_RUNTIME_HH
