/**
 * @file
 * Deterministic pseudo-random number generation for repeatable experiments.
 *
 * Energy-harvesting experiments are notoriously hard to repeat (the paper
 * builds an Ekho-style replay frontend for exactly this reason), so every
 * source of randomness in this reproduction flows through an explicitly
 * seeded Rng.  The generator is xoshiro256** (Blackman & Vigna), which is
 * small, fast, and has well-understood statistical quality; we implement it
 * directly rather than rely on <random> engines so that streams are stable
 * across standard-library versions.
 */

#ifndef REACT_UTIL_RNG_HH
#define REACT_UTIL_RNG_HH

#include <cstdint>

namespace react {

/**
 * Complete generator state: the xoshiro256** words plus the Box-Muller
 * cache.  Capturing all three fields is what makes save -> restore ->
 * draw bit-identical to an uninterrupted draw sequence -- forgetting the
 * cached normal would desynchronize every stream that ever drew an odd
 * number of normal deviates.
 */
struct RngState
{
    uint64_t s[4] = {};
    bool haveCachedNormal = false;
    double cachedNormal = 0.0;
};

/**
 * Seeded xoshiro256** generator with the distribution helpers the trace
 * generators and workloads need (uniform, normal, lognormal, exponential,
 * Poisson).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (cached second deviate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal deviate parameterized by the *underlying* normal's mu and
     * sigma; mean of the deviate is exp(mu + sigma^2/2).
     */
    double lognormal(double mu, double sigma);

    /** Exponential deviate with the given mean (i.e., 1/rate). */
    double exponential(double mean);

    /** Poisson deviate with the given mean (Knuth for small, PTRS-lite
     *  normal approximation for large means). */
    uint64_t poisson(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Derive an independent child stream (for per-component seeding). */
    Rng split();

    /**
     * Derive an independent child stream keyed by a caller-chosen tag,
     * *without* consuming state from this generator.  Unlike split(),
     * child() is a pure function of (seed, tag): every component that
     * derives its stream as `master.child(hash(name))` gets the same
     * schedule regardless of how many other streams were created first
     * or in what order.  The fault injector relies on this for
     * reproducible per-component fault schedules (see
     * sim/fault_injector.hh for the tag convention).
     */
    Rng child(uint64_t tag) const;

    /** Full generator state (for snapshots; no hidden state exists). */
    RngState state() const;

    /** Restore a previously captured state bit-exactly. */
    void setState(const RngState &state);

  private:
    uint64_t s[4];
    bool haveCachedNormal = false;
    double cachedNormal = 0.0;
};

} // namespace react

#endif // REACT_UTIL_RNG_HH
