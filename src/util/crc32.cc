#include "crc32.hh"

namespace react {

namespace {

/** Build the reflected CRC-32 table once, at first use. */
const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size)
{
    const uint32_t *table = crcTable();
    uint32_t crc = 0xffffffffu;
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace react
