#include "crc32.hh"

#include <array>

namespace react {

namespace {

std::array<uint32_t, 256>
buildTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

/** The reflected CRC-32 table, built once (thread-safe magic static:
 *  snapshot writers and FRAM models CRC concurrently under the parallel
 *  runner). */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = buildTable();
    return table;
}

uint32_t
fold(uint32_t state, const uint8_t *data, size_t size)
{
    const auto &table = crcTable();
    for (size_t i = 0; i < size; ++i)
        state = table[(state ^ data[i]) & 0xffu] ^ (state >> 8);
    return state;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t size)
{
    return fold(0xffffffffu, data, size) ^ 0xffffffffu;
}

void
Crc32::update(const uint8_t *data, size_t size)
{
    state = fold(state, data, size);
}

} // namespace react
