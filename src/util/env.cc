#include "env.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "logging.hh"

namespace react {
namespace env {

std::optional<std::string>
raw(const char *name)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return std::nullopt;
    return std::string(v);
}

std::optional<long long>
intVar(const char *name, long long min, long long max)
{
    const auto v = raw(name);
    if (!v)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long long n = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
        n < min || n > max) {
        react_warn("ignoring %s='%s' (want an integer in [%lld, %lld])",
                   name, v->c_str(), min, max);
        return std::nullopt;
    }
    return n;
}

std::optional<uint64_t>
u64Var(const char *name, uint64_t min, uint64_t max)
{
    const auto v = raw(name);
    if (!v)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    // strtoull accepts a leading '-' by wrapping; reject it explicitly.
    const char *p = v->c_str();
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    const bool negative = (*p == '-');
    const unsigned long long n = std::strtoull(v->c_str(), &end, 10);
    if (negative || end == v->c_str() || *end != '\0' || errno == ERANGE ||
        n < min || n > max) {
        react_warn("ignoring %s='%s' (want an integer in [%llu, %llu])",
                   name, v->c_str(), static_cast<unsigned long long>(min),
                   static_cast<unsigned long long>(max));
        return std::nullopt;
    }
    return n;
}

std::optional<double>
doubleVar(const char *name, double min, double max)
{
    const auto v = raw(name);
    if (!v)
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double d = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(d) || d < min || d > max) {
        react_warn("ignoring %s='%s' (want a finite number in [%g, %g])",
                   name, v->c_str(), min, max);
        return std::nullopt;
    }
    return d;
}

std::optional<std::string>
stringVar(const char *name)
{
    auto v = raw(name);
    if (!v || v->empty())
        return std::nullopt;
    return v;
}

std::optional<bool>
boolVar(const char *name)
{
    const auto v = raw(name);
    if (!v)
        return std::nullopt;
    std::string low;
    low.reserve(v->size());
    for (const char c : *v)
        low.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (low == "1" || low == "on" || low == "true" || low == "yes")
        return true;
    if (low == "0" || low == "off" || low == "false" || low == "no")
        return false;
    react_warn("ignoring %s='%s' (want 1/on/true/yes or 0/off/false/no)",
               name, v->c_str());
    return std::nullopt;
}

} // namespace env
} // namespace react
