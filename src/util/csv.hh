/**
 * @file
 * Minimal CSV reading/writing for power traces and bench output.
 *
 * The format handled here is deliberately simple (no quoting, no embedded
 * separators): numeric columns separated by commas, optional '#' comment
 * lines, optional header row.  That is all the trace files need.
 */

#ifndef REACT_UTIL_CSV_HH
#define REACT_UTIL_CSV_HH

#include <string>
#include <vector>

namespace react {

/** One parsed CSV table: optional header plus numeric rows. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;
    /** 1-based source line number of each data row (for diagnostics that
     *  point at the offending line of the original file). */
    std::vector<size_t> rowLines;

    /** Column index for the given header name, or -1 when absent. */
    int columnIndex(const std::string &name) const;
};

/**
 * Parse CSV text without aborting on damage.  Lines starting with '#'
 * are skipped; if the first non-comment line contains any non-numeric
 * field it is treated as the header.
 *
 * @param text Full file contents.
 * @param out Parsed table (valid only when the call returns true).
 * @param error Filled with "line N: ..." on failure (may be null).
 * @return true when every data field parsed as a number.
 */
bool tryParseCsv(const std::string &text, CsvTable *out,
                 std::string *error);

/**
 * Parse CSV text.  Same grammar as tryParseCsv(); malformed numeric
 * fields raise react_fatal (use tryParseCsv to recover instead).
 */
CsvTable parseCsv(const std::string &text);

/** Read and parse a CSV file from disk; missing file raises react_fatal. */
CsvTable readCsvFile(const std::string &path);

/** Serialize a table back to CSV text. */
std::string writeCsv(const CsvTable &table);

/** Write a table to disk; I/O failure raises react_fatal. */
void writeCsvFile(const std::string &path, const CsvTable &table);

} // namespace react

#endif // REACT_UTIL_CSV_HH
