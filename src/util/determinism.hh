/**
 * @file
 * The determinism contract's escape hatch: REACT_NONDET_OK.
 *
 * The repo's evaluation guarantee is bit-identical results at any
 * thread count and byte-exact golden CSVs.  tools/lint_determinism.py
 * enforces that contract statically across src/: wall-clock and entropy
 * sources, unordered-container iteration, pointer-keyed ordering,
 * mutable global state, stray thread_locals, and order-dependent float
 * reductions are all banned outright.
 *
 * Some of those constructs are nevertheless legitimate -- a retry
 * deadline *should* read the wall clock, a signal handler *needs* a
 * process-global atomic -- as long as the value never feeds result
 * bytes, snapshot bytes, or wire payloads.  Such a site is exempted by
 * placing
 *
 *     REACT_NONDET_OK("why this cannot affect simulation results");
 *
 * on the same line as the violation or on the line immediately above
 * it.  The macro compiles to nothing (a vacuous static_assert that only
 * checks the reason is a string literal), so it costs zero codegen; its
 * whole value is being greppable and machine-checked:
 *
 *  - the linter suppresses exactly the annotated line, nothing wider
 *    (no file-level or block-level opt-outs exist by design);
 *  - tools/check_nondet_annotations.py inventories every annotation
 *    into tools/determinism_allowlist.txt, and CI fails when a site is
 *    added, removed, or reworded without updating the checked-in list
 *    -- an exemption can never slip in silently.
 *
 * Keep reasons short, specific, and in terms of the contract ("wall
 * clock feeds retry pacing only, never result bytes"), not in terms of
 * the code ("needed here").
 */

#ifndef REACT_UTIL_DETERMINISM_HH
#define REACT_UTIL_DETERMINISM_HH

/**
 * Mark the current (or next) source line as an audited exemption from
 * the determinism lint.  @p reason must be a string literal; the `""
 * reason` concatenation fails to compile for anything else, so a reason
 * can never be computed, empty-by-accident, or forgotten.
 */
#define REACT_NONDET_OK(reason)                                              \
    static_assert(sizeof("" reason) > 1,                                     \
                  "REACT_NONDET_OK needs a non-empty string-literal reason")

#endif // REACT_UTIL_DETERMINISM_HH
