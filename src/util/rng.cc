#include "rng.hh"

#include <cmath>

namespace react {

namespace {

/** splitmix64 step, used for seeding and stream splitting. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa from the high bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (haveCachedNormal) {
        haveCachedNormal = false;
        return cachedNormal;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    haveCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -mean * std::log(u);
}

uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplicative method.
        const double limit = std::exp(-mean);
        double prod = uniform();
        uint64_t n = 0;
        while (prod > limit) {
            ++n;
            prod *= uniform();
        }
        return n;
    }
    // Normal approximation with continuity correction; adequate for the
    // large-mean regime the trace generators occasionally hit.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

RngState
Rng::state() const
{
    RngState out;
    for (int i = 0; i < 4; ++i)
        out.s[i] = s[i];
    out.haveCachedNormal = haveCachedNormal;
    out.cachedNormal = cachedNormal;
    return out;
}

void
Rng::setState(const RngState &new_state)
{
    for (int i = 0; i < 4; ++i)
        s[i] = new_state.s[i];
    haveCachedNormal = new_state.haveCachedNormal;
    cachedNormal = new_state.cachedNormal;
}

Rng
Rng::child(uint64_t tag) const
{
    // Mix the tag through splitmix64 twice before folding in the parent
    // state so that adjacent tags (0, 1, 2...) land in unrelated streams.
    uint64_t x = tag;
    uint64_t mixed = splitmix64(x);
    mixed ^= splitmix64(x);
    return Rng(mixed ^ s[0] ^ rotl(s[2], 23));
}

} // namespace react
