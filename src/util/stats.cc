#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace react {

void
RunningStats::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStats::addWeighted(double x, double weight)
{
    if (weight <= 0.0)
        return;
    if (!any) {
        minAcc = maxAcc = x;
        any = true;
    } else {
        minAcc = std::min(minAcc, x);
        maxAcc = std::max(maxAcc, x);
    }
    // West's weighted incremental algorithm.
    const double new_n = n + weight;
    const double delta = x - meanAcc;
    const double r = delta * weight / new_n;
    meanAcc += r;
    m2 += n * delta * r;
    n = new_n;
}

double
RunningStats::mean() const
{
    return n > 0.0 ? meanAcc : 0.0;
}

double
RunningStats::variance() const
{
    return n > 0.0 ? m2 / n : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::cv() const
{
    const double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

double
RunningStats::min() const
{
    return any ? minAcc : 0.0;
}

double
RunningStats::max() const
{
    return any ? maxAcc : 0.0;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

Histogram::Histogram(double lo_edge, double hi_edge, int bins)
    : lo(lo_edge), hi(hi_edge)
{
    react_assert(hi > lo, "histogram range must be non-empty");
    react_assert(bins > 0, "histogram needs at least one bin");
    counts.assign(static_cast<size_t>(bins), 0);
}

void
Histogram::add(double x)
{
    const double frac = (x - lo) / (hi - lo);
    int bin = static_cast<int>(frac * bins());
    bin = std::clamp(bin, 0, bins() - 1);
    ++counts[static_cast<size_t>(bin)];
    ++totalCount;
}

double
Histogram::binCenter(int bin) const
{
    const double width = (hi - lo) / bins();
    return lo + width * (bin + 0.5);
}

double
Histogram::fractionAbove(double x) const
{
    if (totalCount == 0)
        return 0.0;
    uint64_t above = 0;
    for (int b = 0; b < bins(); ++b) {
        if (binCenter(b) >= x)
            above += counts[static_cast<size_t>(b)];
    }
    return static_cast<double>(above) / static_cast<double>(totalCount);
}

} // namespace react
