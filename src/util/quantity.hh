/**
 * @file
 * Compile-time dimensional analysis for the REACT energy circuit.
 *
 * Every physical quantity in the simulator used to be a bare `double`,
 * so a swapped `(capacitance, voltage)` argument pair or a
 * charge-vs-energy mixup compiled silently and corrupted results that
 * the energy-conservation audit could only catch at runtime, per-run.
 * `Quantity<Dim>` makes those errors unrepresentable at compile time.
 *
 * ## Encoding
 *
 * A dimension is a triple of integer exponents over the electrical
 * basis {volt, ampere, second}:
 *
 *     Dim<V, A, S>  ==  volt^V * ampere^A * second^S
 *
 * Every unit the circuit algebra needs (S 3.3, Eqs. 1-2) is expressible
 * in this basis:
 *
 *     Volts    = Dim< 1, 0, 0>
 *     Amps     = Dim< 0, 1, 0>
 *     Seconds  = Dim< 0, 0, 1>
 *     Coulombs = Dim< 0, 1, 1>   (Q = I t)
 *     Farads   = Dim<-1, 1, 1>   (C = Q / V)
 *     Watts    = Dim< 1, 1, 0>   (P = V I)
 *     Joules   = Dim< 1, 1, 1>   (E = P t)
 *     Ohms     = Dim< 1,-1, 0>   (R = V / I)
 *     Hertz    = Dim< 0, 0,-1>
 *
 * Multiplication and division add/subtract exponents, so the circuit
 * identities type-check by construction: `Farads * Volts -> Coulombs`,
 * `Joules / Seconds -> Watts`, `Volts / Ohms -> Amps`.  A product whose
 * exponents all cancel collapses to plain `double`, so ratios
 * (`v / v_rated`, `dt / tau`) feed `std::exp`/`std::log` naturally.
 *
 * ## Rules
 *
 *  - Construction from `double` is explicit; `+`/`-`/comparisons only
 *    combine identical dimensions.  `Volts + Joules` does not compile.
 *  - `.raw()` is the one escape hatch back to `double`, reserved for
 *    representation boundaries: CSV/stat/report output, interop with
 *    not-yet-migrated layers.  See DESIGN.md "Dimensional safety".
 *  - The wrapper is representation-transparent: a single `double`
 *    member, every operator a one-line inline forward, so codegen and
 *    results are bit-identical to the bare-double formulation.
 */

#ifndef REACT_UTIL_QUANTITY_HH
#define REACT_UTIL_QUANTITY_HH

#include <cmath>
#include <type_traits>

namespace react {
namespace units {

/** Dimension tag: volt^V * ampere^A * second^S. */
template <int V, int A, int S>
struct Dim final
{
    static constexpr int volt = V;
    static constexpr int ampere = A;
    static constexpr int second = S;
};

/** @name Named dimension tags @{ */
using VoltDim = Dim<1, 0, 0>;
using AmpDim = Dim<0, 1, 0>;
using SecondDim = Dim<0, 0, 1>;
using CoulombDim = Dim<0, 1, 1>;
using FaradDim = Dim<-1, 1, 1>;
using WattDim = Dim<1, 1, 0>;
using JouleDim = Dim<1, 1, 1>;
using OhmDim = Dim<1, -1, 0>;
using HertzDim = Dim<0, 0, -1>;
using VoltSquaredDim = Dim<2, 0, 0>;
/** @} */

/**
 * A `double` magnitude tagged with a compile-time dimension.  Zero
 * overhead: same size, alignment, and codegen as the raw `double`.
 */
template <class D>
class Quantity;

template <int V, int A, int S>
class Quantity<Dim<V, A, S>>
{
  public:
    using Dimension = Dim<V, A, S>;

    /** Zero-valued quantity. */
    constexpr Quantity() = default;

    /** Tag a raw magnitude (explicit: no silent double -> Quantity). */
    constexpr explicit Quantity(double raw) : value(raw) {}

    /** The untyped magnitude -- the escape hatch for report/CSV/interop
     *  boundaries only; circuit algebra should stay typed. */
    constexpr double raw() const { return value; }

    /** @name Same-dimension arithmetic @{ */
    constexpr Quantity operator+(Quantity other) const
    {
        return Quantity(value + other.value);
    }
    constexpr Quantity operator-(Quantity other) const
    {
        return Quantity(value - other.value);
    }
    constexpr Quantity operator-() const { return Quantity(-value); }
    constexpr Quantity operator+() const { return *this; }
    constexpr Quantity &operator+=(Quantity other)
    {
        value += other.value;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity other)
    {
        value -= other.value;
        return *this;
    }
    /** @} */

    /** @name Dimensionless scaling @{ */
    constexpr Quantity &operator*=(double factor)
    {
        value *= factor;
        return *this;
    }
    constexpr Quantity &operator/=(double divisor)
    {
        value /= divisor;
        return *this;
    }
    /** @} */

    /** @name Same-dimension comparisons @{ */
    constexpr bool operator==(Quantity other) const
    {
        return value == other.value;
    }
    constexpr bool operator!=(Quantity other) const
    {
        return value != other.value;
    }
    constexpr bool operator<(Quantity other) const
    {
        return value < other.value;
    }
    constexpr bool operator<=(Quantity other) const
    {
        return value <= other.value;
    }
    constexpr bool operator>(Quantity other) const
    {
        return value > other.value;
    }
    constexpr bool operator>=(Quantity other) const
    {
        return value >= other.value;
    }
    /** @} */

  private:
    double value = 0.0;
};

/** @name Dimension algebra: * and / add/subtract exponents.
 *
 * A result whose exponents all cancel collapses to plain `double` so
 * ratios flow into `std::exp` / `std::log` without ceremony.
 * @{
 */
template <int V1, int A1, int S1, int V2, int A2, int S2>
constexpr auto
operator*(Quantity<Dim<V1, A1, S1>> lhs, Quantity<Dim<V2, A2, S2>> rhs)
{
    if constexpr (V1 + V2 == 0 && A1 + A2 == 0 && S1 + S2 == 0)
        return lhs.raw() * rhs.raw();
    else
        return Quantity<Dim<V1 + V2, A1 + A2, S1 + S2>>(lhs.raw() *
                                                        rhs.raw());
}

template <int V1, int A1, int S1, int V2, int A2, int S2>
constexpr auto
operator/(Quantity<Dim<V1, A1, S1>> lhs, Quantity<Dim<V2, A2, S2>> rhs)
{
    if constexpr (V1 - V2 == 0 && A1 - A2 == 0 && S1 - S2 == 0)
        return lhs.raw() / rhs.raw();
    else
        return Quantity<Dim<V1 - V2, A1 - A2, S1 - S2>>(lhs.raw() /
                                                        rhs.raw());
}

template <int V, int A, int S>
constexpr Quantity<Dim<V, A, S>>
operator*(double factor, Quantity<Dim<V, A, S>> q)
{
    return Quantity<Dim<V, A, S>>(factor * q.raw());
}

template <int V, int A, int S>
constexpr Quantity<Dim<V, A, S>>
operator*(Quantity<Dim<V, A, S>> q, double factor)
{
    return Quantity<Dim<V, A, S>>(q.raw() * factor);
}

template <int V, int A, int S>
constexpr Quantity<Dim<V, A, S>>
operator/(Quantity<Dim<V, A, S>> q, double divisor)
{
    return Quantity<Dim<V, A, S>>(q.raw() / divisor);
}

template <int V, int A, int S>
constexpr Quantity<Dim<-V, -A, -S>>
operator/(double numerator, Quantity<Dim<V, A, S>> q)
{
    return Quantity<Dim<-V, -A, -S>>(numerator / q.raw());
}
/** @} */

/** @name Typed quantity aliases (the public vocabulary) @{ */
using Volts = Quantity<VoltDim>;
using Amps = Quantity<AmpDim>;
using Seconds = Quantity<SecondDim>;
using Coulombs = Quantity<CoulombDim>;
using Farads = Quantity<FaradDim>;
using Watts = Quantity<WattDim>;
using Joules = Quantity<JouleDim>;
using Ohms = Quantity<OhmDim>;
using Hertz = Quantity<HertzDim>;
using VoltsSquared = Quantity<VoltSquaredDim>;
/** @} */

/** Dimension-halving square root (exponents must all be even), e.g.
 *  `sqrt(VoltsSquared) -> Volts` for Dewdrop's enable-voltage planner. */
template <int V, int A, int S>
inline Quantity<Dim<V / 2, A / 2, S / 2>>
sqrt(Quantity<Dim<V, A, S>> q)
{
    static_assert(V % 2 == 0 && A % 2 == 0 && S % 2 == 0,
                  "sqrt argument dimension must have even exponents");
    return Quantity<Dim<V / 2, A / 2, S / 2>>(std::sqrt(q.raw()));
}

/** Magnitude of a signed quantity (ledger audits, watchdog tolerances). */
template <int V, int A, int S>
constexpr Quantity<Dim<V, A, S>>
abs(Quantity<Dim<V, A, S>> q)
{
    return q.raw() < 0.0 ? -q : q;
}

/** Whether the magnitude is finite (leak resistance may be infinite). */
template <int V, int A, int S>
inline bool
isfinite(Quantity<Dim<V, A, S>> q)
{
    return std::isfinite(q.raw());
}

/* The whole point: the typed layer is representation-transparent. */
static_assert(sizeof(Quantity<VoltDim>) == sizeof(double),
              "Quantity must be a zero-overhead double wrapper");
static_assert(alignof(Quantity<VoltDim>) == alignof(double),
              "Quantity must not change alignment");
static_assert(std::is_trivially_copyable_v<Quantity<JouleDim>>,
              "Quantity must stay trivially copyable");
static_assert(std::is_standard_layout_v<Quantity<FaradDim>>,
              "Quantity must stay standard layout");
static_assert(!std::is_convertible_v<double, Quantity<VoltDim>>,
              "double -> Quantity must require an explicit tag");
static_assert(!std::is_convertible_v<Quantity<VoltDim>, double>,
              "Quantity -> double must go through .raw()");

} // namespace units
} // namespace react

#endif // REACT_UTIL_QUANTITY_HH
