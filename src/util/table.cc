#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace react {

namespace {
const std::string kSeparatorSentinel = "\x01";
} // namespace

TextTable::TextTable(std::string table_title)
    : title(std::move(table_title))
{
}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows.push_back({kSeparatorSentinel});
}

std::string
TextTable::render() const
{
    // Compute per-column widths across header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() == 1 && cells[0] == kSeparatorSentinel)
            return;
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header);
    for (const auto &row : rows)
        grow(row);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (total > 0)
        total -= 2;

    std::ostringstream out;
    if (!title.empty())
        out << title << '\n';
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                for (size_t pad = cells[i].size(); pad < widths[i] + 2; ++pad)
                    out << ' ';
            }
        }
        out << '\n';
    };
    if (!header.empty()) {
        emit(header);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows) {
        if (row.size() == 1 && row[0] == kSeparatorSentinel)
            out << std::string(total, '-') << '\n';
        else
            emit(row);
    }
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
TextTable::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace react
