#include "json.hh"

#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace react {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    out.append(2 * hasElement.size(), ' ');
}

void
JsonWriter::beforeElement()
{
    if (pendingKey) {
        // Value attaches to the key already on the line.
        pendingKey = false;
        return;
    }
    if (!hasElement.empty()) {
        if (hasElement.back())
            out += ',';
        out += '\n';
        hasElement.back() = true;
        indent();
    }
}

void
JsonWriter::beginObject()
{
    beforeElement();
    out += '{';
    hasElement.push_back(false);
}

void
JsonWriter::endObject()
{
    react_assert(!hasElement.empty(), "endObject without beginObject");
    const bool had = hasElement.back();
    hasElement.pop_back();
    if (had) {
        out += '\n';
        indent();
    }
    out += '}';
}

void
JsonWriter::beginArray()
{
    beforeElement();
    out += '[';
    hasElement.push_back(false);
}

void
JsonWriter::endArray()
{
    react_assert(!hasElement.empty(), "endArray without beginArray");
    const bool had = hasElement.back();
    hasElement.pop_back();
    if (had) {
        out += '\n';
        indent();
    }
    out += ']';
}

void
JsonWriter::key(std::string_view name)
{
    react_assert(!pendingKey, "two keys in a row");
    beforeElement();
    out += '"';
    out += jsonEscape(name);
    out += "\": ";
    pendingKey = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeElement();
    out += '"';
    out += jsonEscape(s);
    out += '"';
}

void
JsonWriter::value(double d)
{
    beforeElement();
    // JSON has no NaN/Infinity literals; "%.17g" would emit bare
    // nan/inf tokens and silently corrupt the artifact for any strict
    // reader (python json, jq).  Emit null and say so.
    if (!std::isfinite(d)) {
        react_warn("JSON value %g is not finite; emitting null", d);
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

void
JsonWriter::value(uint64_t u)
{
    beforeElement();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(u));
    out += buf;
}

void
JsonWriter::value(int64_t i)
{
    beforeElement();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i));
    out += buf;
}

void
JsonWriter::value(bool b)
{
    beforeElement();
    out += b ? "true" : "false";
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        react_fatal("cannot open '%s' for writing", path.c_str());
    const size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const int rc = std::fclose(f);
    if (written != text.size() || rc != 0)
        react_fatal("short write to '%s'", path.c_str());
}

} // namespace react
