/**
 * @file
 * Unified environment-variable parsing.
 *
 * The repository grew several ad-hoc std::getenv + strtol sites
 * (REACT_THREADS, REACT_CHECKPOINT_INTERVAL, REACT_FAST_PATH, ...), each
 * with its own idea of what a malformed value does -- some warned, some
 * silently fell back.  Every environment knob now routes through this
 * helper, which gives them one contract:
 *
 *  - unset -> std::nullopt, silently (the variable is optional);
 *  - well-formed and in range -> the parsed value;
 *  - malformed or out of range -> std::nullopt *with a react_warn naming
 *    the variable, the rejected text, and the accepted form*, so a typo
 *    in a job script shows up in the log instead of silently running
 *    with defaults.
 *
 * Parsing is strict: the whole value must be consumed (trailing garbage
 * is malformed), and integer overflow is malformed rather than clamped.
 */

#ifndef REACT_UTIL_ENV_HH
#define REACT_UTIL_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

namespace react {
namespace env {

/** Raw lookup: nullopt when the variable is unset. */
std::optional<std::string> raw(const char *name);

/**
 * Signed integer in [min, max].  Warns and returns nullopt on malformed
 * text, trailing garbage, overflow, or an out-of-range value.
 */
std::optional<long long> intVar(const char *name, long long min,
                                long long max);

/** Unsigned integer in [min, max]; same strictness as intVar. */
std::optional<uint64_t> u64Var(const char *name, uint64_t min,
                               uint64_t max);

/** Finite double in [min, max]; same strictness as intVar. */
std::optional<double> doubleVar(const char *name, double min, double max);

/**
 * Non-empty string.  An empty value is treated as unset (the historical
 * REACT_CHECKPOINT_DIR= behaviour), without a warning.
 */
std::optional<std::string> stringVar(const char *name);

/**
 * Boolean: 1/on/true/yes -> true, 0/off/false/no -> false (ASCII
 * case-insensitive).  Anything else warns and returns nullopt.
 */
std::optional<bool> boolVar(const char *name);

} // namespace env
} // namespace react

#endif // REACT_UTIL_ENV_HH
