/**
 * @file
 * Unit helpers and physical constants used throughout the REACT simulator.
 *
 * All quantities in the simulator are stored as doubles in base SI units:
 * volts, amperes, farads, ohms, watts, joules, seconds.  These helpers exist
 * so that configuration code reads like the paper ("770 uF", "1.5 mA",
 * "68 uW") rather than as bare exponents.
 */

#ifndef REACT_UTIL_UNITS_HH
#define REACT_UTIL_UNITS_HH

namespace react {
namespace units {

/** @name Scaling prefixes
 * Multiply a magnitude by the named SI prefix.
 * @{
 */
constexpr double
kilo(double x)
{
    return x * 1e3;
}

constexpr double
milli(double x)
{
    return x * 1e-3;
}

constexpr double
micro(double x)
{
    return x * 1e-6;
}

constexpr double
nano(double x)
{
    return x * 1e-9;
}
/** @} */

/** @name Capacitance */
/** @{ */
constexpr double
farads(double x)
{
    return x;
}

constexpr double
millifarads(double x)
{
    return milli(x);
}

constexpr double
microfarads(double x)
{
    return micro(x);
}
/** @} */

/** @name Electric potential */
/** @{ */
constexpr double
volts(double x)
{
    return x;
}

constexpr double
millivolts(double x)
{
    return milli(x);
}
/** @} */

/** @name Current */
/** @{ */
constexpr double
amps(double x)
{
    return x;
}

constexpr double
milliamps(double x)
{
    return milli(x);
}

constexpr double
microamps(double x)
{
    return micro(x);
}
/** @} */

/** @name Power */
/** @{ */
constexpr double
watts(double x)
{
    return x;
}

constexpr double
milliwatts(double x)
{
    return milli(x);
}

constexpr double
microwatts(double x)
{
    return micro(x);
}
/** @} */

/** @name Energy */
/** @{ */
constexpr double
joules(double x)
{
    return x;
}

constexpr double
millijoules(double x)
{
    return milli(x);
}

constexpr double
microjoules(double x)
{
    return micro(x);
}
/** @} */

/** @name Resistance */
/** @{ */
constexpr double
ohms(double x)
{
    return x;
}

constexpr double
kiloohms(double x)
{
    return kilo(x);
}

constexpr double
megaohms(double x)
{
    return x * 1e6;
}
/** @} */

/** @name Time */
/** @{ */
constexpr double
seconds(double x)
{
    return x;
}

constexpr double
milliseconds(double x)
{
    return milli(x);
}

constexpr double
microseconds(double x)
{
    return micro(x);
}

constexpr double
minutes(double x)
{
    return x * 60.0;
}

constexpr double
hours(double x)
{
    return x * 3600.0;
}
/** @} */

/**
 * Energy stored on an ideal capacitor at a given voltage: E = 1/2 C V^2.
 *
 * @param capacitance Capacitance in farads.
 * @param voltage Terminal voltage in volts.
 * @return Stored energy in joules.
 */
constexpr double
capEnergy(double capacitance, double voltage)
{
    return 0.5 * capacitance * voltage * voltage;
}

/**
 * Usable energy window on a capacitor discharged between two voltages.
 *
 * @param capacitance Capacitance in farads.
 * @param v_high Starting voltage in volts.
 * @param v_low Ending voltage in volts.
 * @return Extractable energy in joules (may be negative if v_low > v_high).
 */
constexpr double
capEnergyWindow(double capacitance, double v_high, double v_low)
{
    return capEnergy(capacitance, v_high) - capEnergy(capacitance, v_low);
}

} // namespace units
} // namespace react

#endif // REACT_UTIL_UNITS_HH
