/**
 * @file
 * Unit helpers and physical constants used throughout the REACT simulator.
 *
 * All quantities in the simulator are stored in base SI units -- volts,
 * amperes, farads, ohms, watts, joules, seconds -- as dimension-tagged
 * `Quantity` values (see quantity.hh).  These helpers exist so that
 * configuration code reads like the paper ("770 uF", "1.5 mA", "68 uW")
 * rather than as bare exponents, and so the resulting values carry their
 * dimension: `microfarads(770)` is a `Farads`, and handing it to a
 * parameter expecting `Volts` fails to compile.
 */

#ifndef REACT_UTIL_UNITS_HH
#define REACT_UTIL_UNITS_HH

#include "util/quantity.hh"

namespace react {
namespace units {

/** @name Scaling prefixes
 * Multiply a magnitude by the named SI prefix.
 * @{
 */
constexpr double
kilo(double x)
{
    return x * 1e3;
}

constexpr double
milli(double x)
{
    return x * 1e-3;
}

constexpr double
micro(double x)
{
    return x * 1e-6;
}

constexpr double
nano(double x)
{
    return x * 1e-9;
}
/** @} */

/** @name Capacitance */
/** @{ */
constexpr Farads
farads(double x)
{
    return Farads(x);
}

constexpr Farads
millifarads(double x)
{
    return Farads(milli(x));
}

constexpr Farads
microfarads(double x)
{
    return Farads(micro(x));
}
/** @} */

/** @name Electric potential */
/** @{ */
constexpr Volts
volts(double x)
{
    return Volts(x);
}

constexpr Volts
millivolts(double x)
{
    return Volts(milli(x));
}
/** @} */

/** @name Current */
/** @{ */
constexpr Amps
amps(double x)
{
    return Amps(x);
}

constexpr Amps
milliamps(double x)
{
    return Amps(milli(x));
}

constexpr Amps
microamps(double x)
{
    return Amps(micro(x));
}
/** @} */

/** @name Power */
/** @{ */
constexpr Watts
watts(double x)
{
    return Watts(x);
}

constexpr Watts
milliwatts(double x)
{
    return Watts(milli(x));
}

constexpr Watts
microwatts(double x)
{
    return Watts(micro(x));
}
/** @} */

/** @name Energy */
/** @{ */
constexpr Joules
joules(double x)
{
    return Joules(x);
}

constexpr Joules
millijoules(double x)
{
    return Joules(milli(x));
}

constexpr Joules
microjoules(double x)
{
    return Joules(micro(x));
}
/** @} */

/** @name Charge */
/** @{ */
constexpr Coulombs
coulombs(double x)
{
    return Coulombs(x);
}

constexpr Coulombs
microcoulombs(double x)
{
    return Coulombs(micro(x));
}
/** @} */

/** @name Resistance */
/** @{ */
constexpr Ohms
ohms(double x)
{
    return Ohms(x);
}

constexpr Ohms
kiloohms(double x)
{
    return Ohms(kilo(x));
}

constexpr Ohms
megaohms(double x)
{
    return Ohms(x * 1e6);
}
/** @} */

/** @name Time */
/** @{ */
constexpr Seconds
seconds(double x)
{
    return Seconds(x);
}

constexpr Seconds
milliseconds(double x)
{
    return Seconds(milli(x));
}

constexpr Seconds
microseconds(double x)
{
    return Seconds(micro(x));
}

constexpr Seconds
minutes(double x)
{
    return Seconds(x * 60.0);
}

constexpr Seconds
hours(double x)
{
    return Seconds(x * 3600.0);
}
/** @} */

/** @name Frequency */
/** @{ */
constexpr Hertz
hertz(double x)
{
    return Hertz(x);
}
/** @} */

/**
 * Energy stored on an ideal capacitor at a given voltage: E = 1/2 C V^2.
 *
 * @param capacitance Capacitance.
 * @param voltage Terminal voltage.
 * @return Stored energy.
 */
constexpr Joules
capEnergy(Farads capacitance, Volts voltage)
{
    return 0.5 * capacitance * voltage * voltage;
}

/**
 * Usable energy window on a capacitor discharged between two voltages.
 *
 * Signed-window contract: the result is the energy released moving from
 * @p v_high to @p v_low, so it is *negative* when `v_low > v_high` --
 * i.e. the energy that must be *supplied* to charge the capacitor up to
 * `v_low`.  Callers wanting only an extractable amount must order the
 * arguments (or clamp), as `Capacitor::energyAbove` does.
 *
 * @param capacitance Capacitance.
 * @param v_high Starting voltage.
 * @param v_low Ending voltage.
 * @return Extractable energy; negative when `v_low > v_high`.
 */
constexpr Joules
capEnergyWindow(Farads capacitance, Volts v_high, Volts v_low)
{
    return capEnergy(capacitance, v_high) - capEnergy(capacitance, v_low);
}

} // namespace units
} // namespace react

#endif // REACT_UTIL_UNITS_HH
