#include "csv.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "logging.hh"

namespace react {

namespace {

/** Split a line on commas, trimming surrounding whitespace per field. */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> out;
    std::string field;
    std::stringstream ss(line);
    while (std::getline(ss, field, ',')) {
        const auto first = field.find_first_not_of(" \t\r");
        const auto last = field.find_last_not_of(" \t\r");
        if (first == std::string::npos)
            out.emplace_back();
        else
            out.push_back(field.substr(first, last - first + 1));
    }
    return out;
}

/** True when the field parses fully as a floating-point number. */
bool
isNumeric(const std::string &field, double &value)
{
    if (field.empty())
        return false;
    char *end = nullptr;
    value = std::strtod(field.c_str(), &end);
    return end != nullptr && *end == '\0';
}

} // namespace

int
CsvTable::columnIndex(const std::string &name) const
{
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

bool
tryParseCsv(const std::string &text, CsvTable *out, std::string *error)
{
    CsvTable table;
    std::stringstream ss(text);
    std::string line;
    bool first_data_line = true;
    size_t line_no = 0;
    while (std::getline(ss, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        auto fields = splitFields(line);
        if (fields.empty())
            continue;
        if (first_data_line) {
            first_data_line = false;
            double ignored;
            bool all_numeric = true;
            for (const auto &f : fields) {
                if (!isNumeric(f, ignored)) {
                    all_numeric = false;
                    break;
                }
            }
            if (!all_numeric) {
                table.header = fields;
                continue;
            }
        }
        std::vector<double> row;
        row.reserve(fields.size());
        for (const auto &f : fields) {
            double v;
            if (!isNumeric(f, v)) {
                if (error != nullptr)
                    *error = "line " + std::to_string(line_no) +
                        ": field '" + f + "' is not numeric";
                return false;
            }
            row.push_back(v);
        }
        table.rows.push_back(std::move(row));
        table.rowLines.push_back(line_no);
    }
    *out = std::move(table);
    return true;
}

CsvTable
parseCsv(const std::string &text)
{
    CsvTable table;
    std::string error;
    if (!tryParseCsv(text, &table, &error))
        react_fatal("csv %s", error.c_str());
    return table;
}

CsvTable
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        react_fatal("cannot open csv file '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return parseCsv(buf.str());
}

std::string
writeCsv(const CsvTable &table)
{
    std::stringstream out;
    if (!table.header.empty()) {
        for (size_t i = 0; i < table.header.size(); ++i) {
            if (i)
                out << ',';
            out << table.header[i];
        }
        out << '\n';
    }
    out.precision(12);
    for (const auto &row : table.rows) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << '\n';
    }
    return out.str();
}

void
writeCsvFile(const std::string &path, const CsvTable &table)
{
    std::ofstream out(path);
    if (!out)
        react_fatal("cannot write csv file '%s'", path.c_str());
    out << writeCsv(table);
}

} // namespace react
