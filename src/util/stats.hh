/**
 * @file
 * Streaming statistics used for trace characterization (Table 3) and for
 * reporting measured-vs-paper quantities in the benches.
 */

#ifndef REACT_UTIL_STATS_HH
#define REACT_UTIL_STATS_HH

#include <cstdint>
#include <vector>

namespace react {

/**
 * Welford-style running accumulator for mean / variance / extrema.  The
 * coefficient of variation (stddev / mean) is what Table 3 of the paper
 * reports as "Power CV".
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold a weighted sample (weight acts like a repeat count). */
    void addWeighted(double x, double weight);

    /** Number of (weighted) samples seen. */
    double count() const { return n; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 when fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Coefficient of variation (stddev / mean); 0 when mean is 0. */
    double cv() const;

    /** Smallest sample seen; 0 when empty. */
    double min() const;

    /** Largest sample seen; 0 when empty. */
    double max() const;

    /** Discard all state. */
    void reset();

  private:
    double n = 0.0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minAcc = 0.0;
    double maxAcc = 0.0;
    bool any = false;
};

/**
 * Fixed-width histogram over [lo, hi); samples outside the range clamp to
 * the edge bins.  Used by trace characterization and ablation benches.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (must be positive).
     */
    Histogram(double lo, double hi, int bins);

    /** Add one sample. */
    void add(double x);

    /** Count in the given bin. */
    uint64_t binCount(int bin) const { return counts.at(bin); }

    /** Total samples added. */
    uint64_t total() const { return totalCount; }

    /** Number of bins. */
    int bins() const { return static_cast<int>(counts.size()); }

    /** Center value of the given bin. */
    double binCenter(int bin) const;

    /** Fraction of samples at or above the given value. */
    double fractionAbove(double x) const;

  private:
    double lo;
    double hi;
    std::vector<uint64_t> counts;
    uint64_t totalCount = 0;
};

} // namespace react

#endif // REACT_UTIL_STATS_HH
