/**
 * @file
 * Aligned text-table formatting for the bench binaries.
 *
 * Each bench reproduces one of the paper's tables or figures and prints it
 * in the same row/column layout; TextTable keeps that output readable and
 * diffable.
 */

#ifndef REACT_UTIL_TABLE_HH
#define REACT_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace react {

/** Simple column-aligned text table. */
class TextTable
{
  public:
    /** Optional title printed above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row (cells may be fewer than header columns). */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render with column alignment; trailing newline included. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** @name Cell formatting helpers */
    /** @{ */
    static std::string num(double v, int precision = 2);
    static std::string integer(long long v);
    static std::string percent(double fraction, int precision = 1);
    /** @} */

  private:
    std::string title;
    std::vector<std::string> header;
    /** A row with the sentinel single cell "\x01" renders as a separator. */
    std::vector<std::vector<std::string>> rows;
};

} // namespace react

#endif // REACT_UTIL_TABLE_HH
