/**
 * @file
 * SHA-256, HMAC-SHA256, and constant-time comparison for the fleet
 * authentication handshake (net/auth.hh).
 *
 * Implemented from the FIPS 180-4 / RFC 2104 specifications rather than
 * linking a crypto library: the repository's no-new-dependencies rule
 * applies, the message sizes are tiny (a 32-byte nonce per connection),
 * and a self-contained implementation keeps the byte streams stable
 * across platforms the same way the hand-rolled xoshiro RNG does.
 *
 * Scope note: this is message authentication for a *trusted-fleet*
 * control plane -- it keeps a stray scanner or a mis-pointed client from
 * submitting jobs or poisoning the result cache.  It is not a TLS
 * replacement: frames are authenticated at session setup, not encrypted,
 * and the transport after the handshake is plaintext.
 */

#ifndef REACT_UTIL_HMAC_HH
#define REACT_UTIL_HMAC_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace react {

/** SHA-256 digest size in bytes. */
constexpr size_t kSha256Size = 32;

/** One-shot SHA-256 of a byte range (FIPS 180-4). */
std::array<uint8_t, kSha256Size> sha256(const uint8_t *data, size_t size);

/** HMAC-SHA256 (RFC 2104): keys longer than the 64-byte block are
 *  pre-hashed, shorter keys are zero-padded, per the spec. */
std::array<uint8_t, kSha256Size> hmacSha256(const uint8_t *key,
                                            size_t key_size,
                                            const uint8_t *msg,
                                            size_t msg_size);

/** Convenience overload over vectors (empty inputs are valid). */
std::array<uint8_t, kSha256Size> hmacSha256(
    const std::vector<uint8_t> &key, const std::vector<uint8_t> &msg);

/**
 * Compare two byte ranges in time independent of where they differ, so
 * a MAC check cannot be turned into a byte-at-a-time oracle.  Ranges of
 * different length compare unequal (length is public information).
 */
bool constantTimeEqual(const uint8_t *a, size_t a_size, const uint8_t *b,
                       size_t b_size);

} // namespace react

#endif // REACT_UTIL_HMAC_HH
