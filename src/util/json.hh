/**
 * @file
 * Minimal JSON emission for machine-readable bench artifacts
 * (BENCH_parallel.json).  Write-only by design: the repository consumes
 * these files from CI tooling, never parses them back.
 *
 * Doubles are printed with %.17g so a reader recovers the exact bits --
 * the same bit-faithfulness contract as the golden CSV fixtures.
 */

#ifndef REACT_UTIL_JSON_HH
#define REACT_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace react {

/**
 * Streaming JSON writer with automatic comma/indent bookkeeping.
 *
 *     JsonWriter w;
 *     w.beginObject();
 *     w.field("threads", 8);
 *     w.key("figures"); w.beginArray();
 *     ... w.endArray();
 *     w.endObject();
 *     writeFile(path, w.str());
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value or container. */
    void key(std::string_view name);

    /** Scalar values (standalone or after key()). */
    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(double d);
    void value(uint64_t u);
    void value(int64_t i);
    void value(int i) { value(static_cast<int64_t>(i)); }
    void value(bool b);

    /** key() + value() in one call. */
    template <typename T>
    void field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** Finished document text (call after the root container closes). */
    const std::string &str() const { return out; }

  private:
    /** Comma/newline/indent before a new element at the current depth. */
    void beforeElement();

    void indent();

    std::string out;
    /** One entry per open container: whether it already has an element. */
    std::vector<bool> hasElement;
    /** A key was just written; the next value attaches to it inline. */
    bool pendingKey = false;
};

/** JSON string escaping (quotes, backslash, control characters). */
std::string jsonEscape(std::string_view s);

/** Write a whole file; I/O failure raises react_fatal. */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace react

#endif // REACT_UTIL_JSON_HH
