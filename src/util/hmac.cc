#include "hmac.hh"

#include <cstring>

namespace react {

namespace {

constexpr size_t kBlockSize = 64;

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

uint32_t
rotr(uint32_t v, int n)
{
    return (v >> n) | (v << (32 - n));
}

struct Sha256State
{
    uint32_t h[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                     0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};

    void compress(const uint8_t block[kBlockSize])
    {
        uint32_t w[64];
        for (int i = 0; i < 16; ++i)
            w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
                (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
                (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
                static_cast<uint32_t>(block[4 * i + 3]);
        for (int i = 16; i < 64; ++i) {
            const uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                (w[i - 15] >> 3);
            const uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                (w[i - 2] >> 10);
            w[i] = w[i - 16] + s0 + w[i - 7] + s1;
        }
        uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
        uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
        for (int i = 0; i < 64; ++i) {
            const uint32_t s1 =
                rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            const uint32_t ch = (e & f) ^ (~e & g);
            const uint32_t t1 = hh + s1 + ch + kRoundConstants[i] + w[i];
            const uint32_t s0 =
                rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const uint32_t t2 = s0 + maj;
            hh = g;
            g = f;
            f = e;
            e = d + t1;
            d = c;
            c = b;
            b = a;
            a = t1 + t2;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
        h[5] += f;
        h[6] += g;
        h[7] += hh;
    }
};

} // namespace

std::array<uint8_t, kSha256Size>
sha256(const uint8_t *data, size_t size)
{
    Sha256State state;
    size_t offset = 0;
    while (size - offset >= kBlockSize) {
        state.compress(data + offset);
        offset += kBlockSize;
    }

    // Final block(s): message tail + 0x80 + zero pad + 64-bit bit length.
    uint8_t tail[2 * kBlockSize] = {};
    const size_t rest = size - offset;
    if (rest > 0)
        std::memcpy(tail, data + offset, rest);
    tail[rest] = 0x80;
    const size_t padded =
        rest + 1 + 8 <= kBlockSize ? kBlockSize : 2 * kBlockSize;
    const uint64_t bits = static_cast<uint64_t>(size) * 8;
    for (int i = 0; i < 8; ++i)
        tail[padded - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(bits >> (56 - 8 * i));
    state.compress(tail);
    if (padded == 2 * kBlockSize)
        state.compress(tail + kBlockSize);

    std::array<uint8_t, kSha256Size> out;
    for (int i = 0; i < 8; ++i) {
        out[static_cast<size_t>(4 * i)] =
            static_cast<uint8_t>(state.h[i] >> 24);
        out[static_cast<size_t>(4 * i + 1)] =
            static_cast<uint8_t>(state.h[i] >> 16);
        out[static_cast<size_t>(4 * i + 2)] =
            static_cast<uint8_t>(state.h[i] >> 8);
        out[static_cast<size_t>(4 * i + 3)] =
            static_cast<uint8_t>(state.h[i]);
    }
    return out;
}

std::array<uint8_t, kSha256Size>
hmacSha256(const uint8_t *key, size_t key_size, const uint8_t *msg,
           size_t msg_size)
{
    uint8_t block_key[kBlockSize] = {};
    if (key_size > kBlockSize) {
        const std::array<uint8_t, kSha256Size> folded =
            sha256(key, key_size);
        std::memcpy(block_key, folded.data(), folded.size());
    } else if (key_size > 0) {
        std::memcpy(block_key, key, key_size);
    }

    std::vector<uint8_t> inner(kBlockSize + msg_size);
    for (size_t i = 0; i < kBlockSize; ++i)
        inner[i] = static_cast<uint8_t>(block_key[i] ^ 0x36u);
    if (msg_size > 0)
        std::memcpy(inner.data() + kBlockSize, msg, msg_size);
    const std::array<uint8_t, kSha256Size> inner_hash =
        sha256(inner.data(), inner.size());

    uint8_t outer[kBlockSize + kSha256Size];
    for (size_t i = 0; i < kBlockSize; ++i)
        outer[i] = static_cast<uint8_t>(block_key[i] ^ 0x5cu);
    std::memcpy(outer + kBlockSize, inner_hash.data(), inner_hash.size());
    return sha256(outer, sizeof(outer));
}

std::array<uint8_t, kSha256Size>
hmacSha256(const std::vector<uint8_t> &key, const std::vector<uint8_t> &msg)
{
    return hmacSha256(key.data(), key.size(), msg.data(), msg.size());
}

bool
constantTimeEqual(const uint8_t *a, size_t a_size, const uint8_t *b,
                  size_t b_size)
{
    if (a_size != b_size)
        return false;
    // The accumulator folds in every byte pair before the single branch
    // at the end; `volatile` keeps the compiler from short-circuiting.
    volatile uint8_t acc = 0;
    for (size_t i = 0; i < a_size; ++i)
        acc = static_cast<uint8_t>(acc | (a[i] ^ b[i]));
    return acc == 0;
}

} // namespace react
