/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used to protect small FRAM records (e.g. REACT's persisted bank
 * topology) against the torn writes a power failure can leave behind.
 * Unlike the FNV hash in the non-volatile store, CRC-32 guarantees
 * detection of any single burst error up to 32 bits -- the failure mode
 * of an interrupted FRAM row write -- which is why real intermittent
 * runtimes use it for their commit markers.
 */

#ifndef REACT_UTIL_CRC32_HH
#define REACT_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace react {

/** CRC-32 of a byte range (initial value 0, standard final inversion). */
uint32_t crc32(const uint8_t *data, size_t size);

} // namespace react

#endif // REACT_UTIL_CRC32_HH
