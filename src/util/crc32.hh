/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used to protect small persisted records against the torn writes a
 * power failure can leave behind: REACT's FRAM bank-topology record, the
 * non-volatile store's double-buffered slots, and every section of a
 * simulator snapshot (snapshot/snapshot.hh).  Unlike an FNV hash,
 * CRC-32 guarantees detection of any single burst error up to 32 bits
 * -- the failure mode of an interrupted FRAM row write -- which is why
 * real intermittent runtimes use it for their commit markers.
 *
 * One table serves both the one-shot function and the incremental
 * class; the table is built by a thread-safe magic-static initializer
 * (parallel sweeps compute CRCs concurrently).
 */

#ifndef REACT_UTIL_CRC32_HH
#define REACT_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace react {

/** CRC-32 of a byte range (initial value 0, standard final inversion). */
uint32_t crc32(const uint8_t *data, size_t size);

/** Incremental CRC-32 over a stream of byte ranges; same result as a
 *  one-shot crc32() over the concatenation. */
class Crc32
{
  public:
    Crc32() = default;

    /** Fold in the next byte range. */
    void update(const uint8_t *data, size_t size);

    /** CRC of everything folded in so far (does not consume state). */
    uint32_t value() const { return state ^ 0xffffffffu; }

    /** Restart for a fresh message. */
    void reset() { state = 0xffffffffu; }

  private:
    uint32_t state = 0xffffffffu;
};

} // namespace react

#endif // REACT_UTIL_CRC32_HH
