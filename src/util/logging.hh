/**
 * @file
 * Error-reporting helpers in the style of gem5's logging.hh.
 *
 * fatal()  -- the condition is the *user's* fault (bad configuration,
 *             invalid arguments); prints a message and exits cleanly.
 * panic()  -- the condition should never happen regardless of user input
 *             (a simulator bug); prints a message and aborts.
 * warn()   -- something is questionable but the simulation can continue.
 * inform() -- neutral status output.
 */

#ifndef REACT_UTIL_LOGGING_HH
#define REACT_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace react {

/** Severity attached to a log record. */
enum class LogLevel { Info, Warn, Fatal, Panic };

namespace detail {

/** Format, print, and (for fatal/panic) terminate. */
[[noreturn]] void logFatal(const char *file, int line, const std::string &msg);
[[noreturn]] void logPanic(const char *file, int line, const std::string &msg);
void logWarn(const std::string &msg);
void logInform(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace react

/** Terminate with a user-facing error (bad configuration / arguments). */
#define react_fatal(...) \
    ::react::detail::logFatal(__FILE__, __LINE__, \
                              ::react::detail::format(__VA_ARGS__))

/** Terminate on an internal invariant violation (simulator bug). */
#define react_panic(...) \
    ::react::detail::logPanic(__FILE__, __LINE__, \
                              ::react::detail::format(__VA_ARGS__))

/** Panic when a required invariant does not hold. */
#define react_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::react::detail::logPanic(__FILE__, __LINE__, \
                ::react::detail::format("assertion '%s' failed: ", #cond) + \
                ::react::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning to stderr. */
#define react_warn(...) \
    ::react::detail::logWarn(::react::detail::format(__VA_ARGS__))

/** Neutral status message to stdout. */
#define react_inform(...) \
    ::react::detail::logInform(::react::detail::format(__VA_ARGS__))

#endif // REACT_UTIL_LOGGING_HH
