/**
 * @file
 * Scenario: a batteryless packet-forwarding relay (the paper's PF
 * workload, S 5.4.1).
 *
 * Two competing tasks share one energy pool: receiving is cheap but can
 * only happen the instant a packet arrives (reactivity), while
 * retransmission is expensive but deferrable (longevity).  Energy
 * fungibility -- any banked joule can serve either task -- is what lets
 * REACT beat both small and large static buffers here.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/paper_setup.hh"
#include "trace/paper_traces.hh"
#include "util/table.hh"

int
main()
{
    using namespace react;

    trace::PowerTrace power = trace::makePaperTrace(
        trace::PaperTrace::SolarCampus);
    std::printf("packet relay on the '%s' trace\n\n",
                power.name().c_str());

    TextTable table("Packet forwarding: Rx / Tx by buffer design");
    table.setHeader({"buffer", "offered", "rx", "tx", "missed"});

    for (const auto kind : harness::kAllBuffers) {
        auto buf = harness::makeBuffer(kind);
        auto pf = harness::makeBenchmark(
            harness::BenchmarkKind::PacketForward,
            power.duration() + 900.0);
        harvest::HarvesterFrontend frontend(power);
        const auto r = harness::runExperiment(*buf, pf.get(), frontend);
        table.addRow({r.bufferName,
                      TextTable::integer(static_cast<long long>(
                          r.packetsRx + r.missedEvents)),
                      TextTable::integer(
                          static_cast<long long>(r.packetsRx)),
                      TextTable::integer(
                          static_cast<long long>(r.packetsTx)),
                      TextTable::integer(
                          static_cast<long long>(r.missedEvents))});
    }

    table.print();
    std::printf("\nSmall buffers miss retransmissions (not enough "
                "longevity); large ones miss arrivals (slow wake-up). "
                "REACT banks solar spikes for transmit bursts while "
                "staying awake to receive.\n");
    return 0;
}
