/**
 * @file
 * Quickstart: build a REACT buffer, replay a harvested-power trace into
 * it, run a workload, and read the results.
 *
 * This is the 60-second tour of the public API:
 *   1. synthesize (or load) a power trace,
 *   2. pick an energy buffer (REACT or a baseline),
 *   3. pick a benchmark workload,
 *   4. run the experiment and inspect latency / work / energy ledger.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/paper_setup.hh"
#include "trace/paper_traces.hh"

int
main()
{
    using namespace react;

    // 1. A power trace: the paper's "RF Mobile" office scenario
    //    (synthesized to Table 3's published statistics).
    trace::PowerTrace power = trace::makePaperTrace(
        trace::PaperTrace::RfMobile);
    const auto stats = power.stats();
    std::printf("trace '%s': %.0f s, mean %.3f mW, CV %.0f%%\n",
                power.name().c_str(), stats.duration,
                stats.meanPower * 1e3, stats.cv * 100.0);

    // 2. An energy buffer: REACT with the paper's Table-1 bank layout
    //    (770 uF last-level buffer, five banks, 18 mF fully expanded).
    auto buffer = harness::makeBuffer(harness::BufferKind::React);

    // 3. A workload: periodic sense-and-compute (5 s deadlines).
    auto benchmark = harness::makeBenchmark(
        harness::BenchmarkKind::SenseCompute,
        power.duration() + 900.0);

    // 4. Run and report.
    harvest::HarvesterFrontend frontend(power);
    const auto result = harness::runExperiment(*buffer, benchmark.get(), frontend);

    std::printf("\nbuffer: %s   benchmark: %s\n",
                result.bufferName.c_str(), result.benchmarkName.c_str());
    std::printf("latency to first enable: %.2f s\n", result.latency);
    std::printf("on-time: %.1f s of %.1f s (%.0f%% duty)\n",
                result.onTime, result.totalTime,
                result.dutyCycle() * 100.0);
    std::printf("samples captured: %llu (missed %llu)\n",
                static_cast<unsigned long long>(result.workUnits),
                static_cast<unsigned long long>(result.missedEvents));
    std::printf("energy: harvested %.1f mJ -> delivered %.1f mJ "
                "(clipped %.1f, leaked %.1f, switching %.2f)\n",
                result.ledger.harvested * 1e3,
                result.ledger.delivered * 1e3,
                result.ledger.clipped * 1e3, result.ledger.leaked * 1e3,
                result.ledger.switchLoss * 1e3);
    return 0;
}
