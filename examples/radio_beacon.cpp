/**
 * @file
 * Scenario: an RF-harvesting beacon with software-directed longevity.
 *
 * Demonstrates the S 3.4.1 API: the application computes the capacitance
 * level whose guaranteed energy covers one atomic radio burst, requests
 * it with requestMinLevel(), and sleeps until levelSatisfied() -- turning
 * "hope the buffer is big enough" into a programmed guarantee.  Compare
 * the transmission success rates of a small static buffer (doomed
 * mid-burst brown-outs) and REACT.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/paper_setup.hh"
#include "trace/paper_traces.hh"
#include "util/table.hh"

int
main()
{
    using namespace react;

    trace::PowerTrace power = trace::makePaperTrace(
        trace::PaperTrace::RfCart);
    std::printf("RF beacon on the '%s' trace (%.2f mW mean)\n\n",
                power.name().c_str(), power.stats().meanPower * 1e3);

    TextTable table("Atomic radio bursts: static vs energy-adaptive");
    table.setHeader({"buffer", "sent", "failed", "success"});

    for (const auto kind : {harness::BufferKind::Static770uF,
                            harness::BufferKind::Static10mF,
                            harness::BufferKind::React}) {
        auto buf = harness::makeBuffer(kind);
        auto rt = harness::makeBenchmark(
            harness::BenchmarkKind::RadioTransmit,
            power.duration() + 900.0);
        harvest::HarvesterFrontend frontend(power);
        const auto r = harness::runExperiment(*buf, rt.get(), frontend);
        const double attempts =
            static_cast<double>(r.packetsTx + r.failedOps);
        table.addRow({r.bufferName,
                      TextTable::integer(
                          static_cast<long long>(r.packetsTx)),
                      TextTable::integer(
                          static_cast<long long>(r.failedOps)),
                      attempts > 0
                          ? TextTable::percent(
                                static_cast<double>(r.packetsTx) /
                                attempts)
                          : "-"});
    }

    table.print();
    std::printf("\nThe 770 uF buffer cannot hold one full burst: it "
                "spends harvested energy on transmissions that brown "
                "out.  REACT charges to the requested level first, so "
                "bursts complete.\n");
    return 0;
}
