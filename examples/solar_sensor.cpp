/**
 * @file
 * Scenario: a solar-harvesting acoustic sensor on a pedestrian.
 *
 * The motivating deployment of S 2: a wearable sensor with a 5 cm^2 panel
 * must stay responsive to periodic sensing deadlines through rapid
 * sun/shade transitions.  The example runs the same pedestrian trace
 * against a small buffer, a large buffer, and REACT, and prints the
 * reactivity / longevity / efficiency triple for each -- Fig. 1's
 * tradeoff, resolved by adaptive buffering.
 */

#include <cstdio>
#include <memory>

#include "buffers/static_buffer.hh"
#include "harness/experiment.hh"
#include "harness/paper_setup.hh"
#include "trace/paper_traces.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace react;
    using units::millifarads;

    trace::PowerTrace power = trace::makePedestrianSolarTrace();
    const auto stats = power.stats();
    std::printf("pedestrian solar trace: %.0f s, mean %.2f mW, "
                "%.0f%% of energy above 10 mW\n\n",
                stats.duration, stats.meanPower * 1e3,
                power.energyFractionAbove(units::milliwatts(10.0).raw()) *
                    100.0);

    TextTable table("Solar sensor: buffer design comparison (SC workload)");
    table.setHeader({"buffer", "latency(s)", "samples", "missed",
                     "duty", "efficiency"});

    auto evaluate = [&](std::unique_ptr<buffer::EnergyBuffer> buf) {
        auto sc = harness::makeBenchmark(
            harness::BenchmarkKind::SenseCompute,
            power.duration() + 900.0);
        harvest::HarvesterFrontend frontend(power);
        const auto r = harness::runExperiment(*buf, sc.get(), frontend);
        table.addRow({r.bufferName,
                      r.latency < 0 ? "-" : TextTable::num(r.latency, 1),
                      TextTable::integer(
                          static_cast<long long>(r.workUnits)),
                      TextTable::integer(
                          static_cast<long long>(r.missedEvents)),
                      TextTable::percent(r.dutyCycle()),
                      TextTable::percent(r.ledger.efficiency())});
    };

    evaluate(std::make_unique<buffer::StaticBuffer>(
        harness::staticBufferSpec(millifarads(1.0))));
    evaluate(std::make_unique<buffer::StaticBuffer>(
        harness::staticBufferSpec(millifarads(10.0))));
    evaluate(harness::makeBuffer(harness::BufferKind::React));

    table.print();
    std::printf("\nREACT keeps the 1 mF buffer's wake-up latency while "
                "capturing the sun spikes a small buffer burns off.\n");
    return 0;
}
