/**
 * @file
 * Scenario: correct computation across power failures on a REACT buffer.
 *
 * A batteryless data logger chains AES-128 encryptions over its readings
 * using the task-based intermittent runtime: every task commits its
 * writes and control-flow edge atomically to FRAM, so a brown-out
 * mid-task re-executes the task instead of corrupting state.  This
 * example drives the runtime through *real* simulated power cycles (a
 * weak RF trace into a REACT buffer with a 3.3 V / 1.8 V power gate) and
 * verifies the final digest against an uninterrupted run.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/react_buffer.hh"
#include "intermittent/task_runtime.hh"
#include "sim/power_gate.hh"
#include "trace/paper_traces.hh"
#include "workload/aes128.hh"

namespace {

using namespace react;

/** Build the logger program: sample -> encrypt -> (repeat) . */
intermittent::TaskRuntime
makeLogger(int records)
{
    intermittent::TaskRuntime rt("init");
    rt.addTask("init", [](intermittent::TaskContext &ctx) {
        ctx.writeBytes("digest", std::vector<uint8_t>(16, 0));
        ctx.writeU64("n", 0);
        return "record";
    });
    rt.addTask("record", [records](intermittent::TaskContext &ctx) {
        static const workload::Aes128 aes(
            {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7,
             0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
        const uint64_t n = ctx.readU64("n");
        // "Sample": a deterministic pseudo-reading folded into the
        // running encrypted digest.
        auto bytes = ctx.readBytes("digest");
        workload::Aes128::Block block{};
        std::copy(bytes.begin(), bytes.end(), block.begin());
        block[0] ^= static_cast<uint8_t>(n * 37 + 11);
        block = aes.encrypt(block);
        ctx.writeBytes("digest", std::vector<uint8_t>(block.begin(),
                                                      block.end()));
        ctx.writeU64("n", n + 1);
        return n + 1 >= static_cast<uint64_t>(records) ? "" : "record";
    });
    return rt;
}

} // namespace

int
main()
{
    const int records = 200;
    const double task_cost = 0.05;  // 50 ms of active CPU per task

    // Reference digest on continuous power.
    auto reference = makeLogger(records);
    while (reference.step()) {
    }
    std::vector<uint8_t> expected;
    reference.store().read("digest", &expected);

    // Intermittent run: weak RF power into REACT, real gate, real
    // brown-outs.
    core::ReactBuffer buffer;
    sim::PowerGate gate(units::Volts(3.3), units::Volts(1.8));
    auto power = trace::makePaperTrace(trace::PaperTrace::RfMobile);
    auto logger = makeLogger(records);

    const double dt = 1e-3;
    double t = 0.0;
    double task_progress = -1.0;  // < 0: no task in flight
    uint64_t cycles = 0;
    while (!logger.finished() && t < 3600.0) {
        t += dt;
        if (gate.update(buffer.railVoltage())) {
            if (gate.isOn()) {
                buffer.notifyBackendPower(true);
                ++cycles;
            } else {
                buffer.notifyBackendPower(false);
                if (task_progress >= 0.0) {
                    // Power died mid-task: everything volatile is lost.
                    logger.stepWithFailure();
                    task_progress = -1.0;
                }
            }
        }
        const double load = gate.isOn() ? 1.5e-3 : 0.0;
        buffer.step(units::Seconds(dt), units::Watts(power.power(t)),
                    units::Amps(load));
        if (gate.isOn()) {
            if (task_progress < 0.0)
                task_progress = 0.0;
            task_progress += dt;
            if (task_progress >= task_cost) {
                logger.step();
                task_progress = -1.0;
            }
        }
    }

    std::vector<uint8_t> actual;
    logger.store().read("digest", &actual);

    std::printf("intermittent logger on '%s' power:\n",
                power.name().c_str());
    std::printf("  records encrypted: %d in %.0f s across %llu power "
                "cycles\n", records, t,
                static_cast<unsigned long long>(cycles));
    std::printf("  tasks committed: %llu, aborted by brown-outs: %llu\n",
                static_cast<unsigned long long>(logger.tasksCommitted()),
                static_cast<unsigned long long>(logger.tasksAborted()));
    std::printf("  digest matches continuous-power run: %s\n",
                actual == expected ? "YES" : "NO");
    return actual == expected ? 0 : 1;
}
