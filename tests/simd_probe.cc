/**
 * @file
 * Tiny capability probe for the golden.simd.* ctest lane: exits 0 when
 * this host and build can run the AVX2 lane kernel, 1 otherwise.  The
 * driver script (tests/golden/golden_simd.cmake) turns a non-zero exit
 * into a ctest SKIP with the printed explanation -- the golden suite
 * must degrade to "skipped, and here is why" on non-AVX2 hosts, never
 * to a silent pass or a spurious failure.
 */

#include <cstdio>

#include "sim/simd.hh"

int
main()
{
    using namespace react::sim::simd;
    std::printf("cpu supports avx2: %s; avx2 kernel compiled in: %s\n",
                cpuSupportsAvx2() ? "yes" : "no",
                avx2KernelCompiled() ? "yes" : "no");
    if (!avx2Available()) {
        std::printf("AVX2 lane kernel unavailable; REACT_SIMD=avx2 runs "
                    "must be skipped on this host\n");
        return 1;
    }
    return 0;
}
