/**
 * @file
 * Tiny capability probe for the golden.simd*.* ctest lanes: exits 0
 * when this host and build can run the requested lane kernel ("avx2"
 * by default, "avx512" as argv[1]), 1 otherwise.  The driver script
 * (tests/golden/golden_simd.cmake) turns a non-zero exit into a ctest
 * SKIP with the printed explanation -- the golden suite must degrade
 * to "skipped, and here is why" on incapable hosts, never to a silent
 * pass or a spurious failure.
 */

#include <cstdio>
#include <cstring>

#include "sim/simd.hh"

int
main(int argc, char **argv)
{
    using namespace react::sim::simd;
    const char *mode = argc > 1 ? argv[1] : "avx2";
    if (std::strcmp(mode, "avx512") == 0) {
        std::printf("cpu supports avx512f: %s; avx512 kernel compiled "
                    "in: %s\n",
                    cpuSupportsAvx512f() ? "yes" : "no",
                    avx512KernelCompiled() ? "yes" : "no");
        if (!avx512Available()) {
            std::printf("AVX-512 lane kernel unavailable; "
                        "REACT_SIMD=avx512 runs must be skipped on this "
                        "host\n");
            return 1;
        }
        return 0;
    }
    if (std::strcmp(mode, "avx2") != 0) {
        std::printf("unknown probe mode '%s' (expected avx2 or avx512)\n",
                    mode);
        return 2;
    }
    std::printf("cpu supports avx2: %s; avx2 kernel compiled in: %s\n",
                cpuSupportsAvx2() ? "yes" : "no",
                avx2KernelCompiled() ? "yes" : "no");
    if (!avx2Available()) {
        std::printf("AVX2 lane kernel unavailable; REACT_SIMD=avx2 runs "
                    "must be skipped on this host\n");
        return 1;
    }
    return 0;
}
