/**
 * @file
 * react-cli exit-code contract, tested against the real binary: scripts
 * (and the soak harnesses) branch on these, so each documented code is
 * pinned by fork+exec'ing react-cli at an in-process server and
 * asserting the raw wait status.
 *
 *     0 success | 1 job failed | 2 usage | 4 transport |
 *     5 deadline expired | 6 session rejected
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/parallel_runner.hh"
#include "net/server.hh"

#ifndef REACT_CLI_BIN
#error "REACT_CLI_BIN must point at the react-cli binary"
#endif

namespace react {
namespace net {
namespace {

/** fork+exec react-cli with @p args; @return its exit code (-1 if it
 *  died on a signal). */
int
runCli(const std::vector<std::string> &args)
{
    std::vector<std::string> argv_store;
    argv_store.push_back(REACT_CLI_BIN);
    for (const auto &arg : args)
        argv_store.push_back(arg);
    std::vector<char *> argv;
    argv.reserve(argv_store.size() + 1);
    for (auto &arg : argv_store)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        // Quiet child: the parent asserts on status, not output.
        ::freopen("/dev/null", "w", stdout);
        ::freopen("/dev/null", "w", stderr);
        ::execv(argv[0], argv.data());
        std::_Exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliExitCodes : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        harness::ParallelRunner::clearStopRequest();
        // The CLI reads REACT_FLEET_KEY* itself; keep the test
        // environment from leaking into the child.
        ::unsetenv("REACT_FLEET_KEY");
        ::unsetenv("REACT_FLEET_KEY_FILE");
    }

    void TearDown() override
    {
        stopServer();
        harness::ParallelRunner::clearStopRequest();
    }

    std::string startServer(const std::vector<uint8_t> &key = {})
    {
        ServerConfig config;
        config.endpoint = "tcp:127.0.0.1:0";
        config.threads = 1;
        config.fleetKey = key;
        server = std::make_unique<Server>(config);
        thread = std::thread([this] { server->serve(); });
        for (int i = 0; i < 500 && server->boundEndpoint().empty(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        EXPECT_FALSE(server->boundEndpoint().empty());
        return server->boundEndpoint();
    }

    void stopServer()
    {
        if (server)
            server->requestDrain();
        if (thread.joinable())
            thread.join();
        server.reset();
    }

    std::unique_ptr<Server> server;
    std::thread thread;
};

TEST_F(CliExitCodes, SuccessIsZero)
{
    const std::string endpoint = startServer();
    EXPECT_EQ(runCli({"--endpoint", endpoint, "ping"}), 0);
    EXPECT_EQ(runCli({"--endpoint", endpoint, "run", "DE", "RF Cart",
                      "REACT"}),
              0);
}

TEST_F(CliExitCodes, UsageErrorsAreTwo)
{
    EXPECT_EQ(runCli({}), 2);
    EXPECT_EQ(runCli({"--bogus-flag", "x", "ping"}), 2);
    const std::string endpoint = startServer();
    EXPECT_EQ(runCli({"--endpoint", endpoint, "run", "NoSuchBench",
                      "RF Cart", "REACT"}),
              2);
}

TEST_F(CliExitCodes, TransportFailureIsFour)
{
    // Nobody listens here; connection is refused immediately.
    EXPECT_EQ(runCli({"--endpoint", "tcp:127.0.0.1:1", "--retries", "0",
                      "--timeout", "500", "run", "DE", "RF Cart",
                      "REACT"}),
              4);
}

TEST_F(CliExitCodes, DeadlineExpiryIsFive)
{
    const std::string endpoint = startServer();
    // A queue-wait deadline that lapses before any dispatch: the server
    // expires the job and the CLI must distinguish that from transport
    // loss (4) and from a failed run (1).
    EXPECT_EQ(runCli({"--endpoint", endpoint, "--deadline", "1e-9",
                      "run", "DE", "RF Cart", "REACT"}),
              5);
}

TEST_F(CliExitCodes, SessionRejectionIsSix)
{
    const char key_text[] = "cli-exit-code-key";
    const std::vector<uint8_t> key(key_text,
                                   key_text + sizeof(key_text) - 1);
    const std::string endpoint = startServer(key);
    // No key: the server's challenge is unanswerable.
    EXPECT_EQ(runCli({"--endpoint", endpoint, "run", "DE", "RF Cart",
                      "REACT"}),
              6);
    // Wrong key: the server rejects the proof.
    EXPECT_EQ(runCli({"--endpoint", endpoint, "--key", "wrong-key",
                      "run", "DE", "RF Cart", "REACT"}),
              6);
    // ping must report the same terminal verdict, not "no pong" (4).
    EXPECT_EQ(runCli({"--endpoint", endpoint, "ping"}), 6);
    EXPECT_EQ(runCli({"--endpoint", endpoint, "--key", "wrong-key",
                      "ping"}),
              6);
    // Right key via flag: back to success.
    EXPECT_EQ(runCli({"--endpoint", endpoint, "--key", key_text, "ping"}),
              0);
}

} // namespace
} // namespace net
} // namespace react
