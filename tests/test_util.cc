/**
 * @file
 * Unit tests for the utility layer: RNG determinism and distribution
 * moments, running statistics, histograms, CSV round-trips, and table
 * formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/crc32.hh"
#include "util/csv.hh"
#include "util/env.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace react {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeMoments)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.uniform(2.0, 6.0));
    EXPECT_NEAR(stats.mean(), 4.0, 0.05);
    EXPECT_GE(stats.min(), 2.0);
    EXPECT_LT(stats.max(), 6.0);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMean)
{
    Rng rng(17);
    const double mu = -0.5, sigma = 1.0;
    RunningStats stats;
    for (int i = 0; i < 300000; ++i)
        stats.add(rng.lognormal(mu, sigma));
    // E[X] = exp(mu + sigma^2 / 2) = exp(0) = 1.
    EXPECT_NEAR(stats.mean(), 1.0, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.exponential(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.cv(), 1.0, 0.03);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(rng.poisson(2.5)));
    EXPECT_NEAR(stats.mean(), 2.5, 0.05);
    EXPECT_NEAR(stats.variance(), 2.5, 0.1);
}

TEST(Rng, PoissonLargeMean)
{
    Rng rng(29);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.poisson(100.0)));
    EXPECT_NEAR(stats.mean(), 100.0, 0.5);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(31);
    Rng child = parent.split();
    RunningStats corr;
    for (int i = 0; i < 1000; ++i) {
        const double a = parent.uniform() - 0.5;
        const double b = child.uniform() - 0.5;
        corr.add(a * b);
    }
    EXPECT_NEAR(corr.mean(), 0.0, 0.01);
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.4);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, WeightedMatchesRepeated)
{
    RunningStats weighted, repeated;
    weighted.addWeighted(3.0, 4.0);
    weighted.addWeighted(7.0, 2.0);
    for (int i = 0; i < 4; ++i)
        repeated.add(3.0);
    for (int i = 0; i < 2; ++i)
        repeated.add(7.0);
    EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
    EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-12);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.cv(), 0.0);
}

TEST(Histogram, BinningAndFractions)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.total(), 10u);
    for (int b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 1u);
    EXPECT_NEAR(h.fractionAbove(5.0), 0.5, 1e-12);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(99.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Csv, RoundTripWithHeader)
{
    CsvTable table;
    table.header = {"a", "b"};
    table.rows = {{1.0, 2.5}, {3.0, -4.25}};
    const CsvTable parsed = parseCsv(writeCsv(table));
    ASSERT_EQ(parsed.header.size(), 2u);
    EXPECT_EQ(parsed.columnIndex("b"), 1);
    ASSERT_EQ(parsed.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.rows[1][1], -4.25);
}

TEST(Csv, SkipsComments)
{
    const CsvTable parsed = parseCsv("# comment\n1,2\n\n3,4\n");
    ASSERT_EQ(parsed.rows.size(), 2u);
    EXPECT_TRUE(parsed.header.empty());
    EXPECT_DOUBLE_EQ(parsed.rows[1][0], 3.0);
}

TEST(Csv, FileRoundTrip)
{
    CsvTable table;
    table.header = {"t", "p"};
    table.rows = {{0.0, 1.5}, {0.1, 2.5}};
    const std::string path = ::testing::TempDir() + "react_csv_test.csv";
    writeCsvFile(path, table);
    const CsvTable back = readCsvFile(path);
    ASSERT_EQ(back.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(back.rows[1][1], 2.5);
    EXPECT_EQ(back.columnIndex("p"), 1);
    std::remove(path.c_str());
}

TEST(Csv, MissingColumnIsMinusOne)
{
    const CsvTable parsed = parseCsv("x,y\n1,2\n");
    EXPECT_EQ(parsed.columnIndex("z"), -1);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("Title");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::integer(42), "42");
    EXPECT_EQ(TextTable::percent(0.256, 1), "25.6%");
}

TEST(Units, Helpers)
{
    using namespace units;
    EXPECT_DOUBLE_EQ(microfarads(770.0).raw(), 770e-6);
    EXPECT_DOUBLE_EQ(milliwatts(2.12).raw(), 2.12e-3);
    EXPECT_DOUBLE_EQ(capEnergy(Farads(1e-3), Volts(2.0)).raw(), 2e-3);
    EXPECT_DOUBLE_EQ(
        capEnergyWindow(Farads(1e-3), Volts(3.0), Volts(1.0)).raw(), 4e-3);
    EXPECT_DOUBLE_EQ(hours(2.0).raw(), 7200.0);
}

TEST(Units, CapEnergyWindowSignedContract)
{
    using namespace units;
    // The window is signed: moving *up* in voltage (v_low > v_high)
    // yields the negative of the discharge window -- the energy that
    // must be supplied, not extracted.  Callers wanting an extractable
    // amount must order (or clamp) the arguments themselves.
    const Joules discharge =
        capEnergyWindow(Farads(1e-3), Volts(3.0), Volts(1.0));
    const Joules charge =
        capEnergyWindow(Farads(1e-3), Volts(1.0), Volts(3.0));
    EXPECT_DOUBLE_EQ(charge.raw(), -discharge.raw());
    EXPECT_LT(charge.raw(), 0.0);
    // Degenerate window: no voltage swing, no energy either way.
    EXPECT_DOUBLE_EQ(
        capEnergyWindow(Farads(1e-3), Volts(2.0), Volts(2.0)).raw(), 0.0);
}

TEST(Crc32, MatchesTheIeeeCheckVector)
{
    // The canonical IEEE 802.3 check value: crc32("123456789").
    const uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crc32(msg, sizeof(msg)), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    const uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    Crc32 inc;
    for (size_t split = 0; split <= sizeof(msg); ++split) {
        inc.reset();
        inc.update(msg, split);
        inc.update(msg + split, sizeof(msg) - split);
        EXPECT_EQ(inc.value(), 0xCBF43926u) << "split at " << split;
    }
    // value() must not consume state: calling it twice is idempotent.
    EXPECT_EQ(inc.value(), inc.value());
}

TEST(Csv, TryParseReportsLineAndFieldWithoutAborting)
{
    CsvTable table;
    std::string error;
    EXPECT_TRUE(tryParseCsv("t,p\n0,1\n0.5,2\n", &table, &error));
    ASSERT_EQ(table.rows.size(), 2u);
    // Line numbers of each data row survive for later diagnostics.
    ASSERT_EQ(table.rowLines.size(), 2u);
    EXPECT_EQ(table.rowLines[0], 2u);
    EXPECT_EQ(table.rowLines[1], 3u);

    EXPECT_FALSE(tryParseCsv("t,p\n0,oops\n", &table, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos);
    EXPECT_NE(error.find("oops"), std::string::npos);
}

TEST(Json, FiniteDoublesRoundTripExactly)
{
    JsonWriter w;
    w.beginObject();
    w.field("x", 0.1);
    w.field("y", -1.5e300);
    w.endObject();
    EXPECT_NE(w.str().find("0.1"), std::string::npos);
    EXPECT_NE(w.str().find("e+300"), std::string::npos);
}

TEST(Json, NonFiniteDoublesEmitNullNotBareTokens)
{
    // printf("%.17g", nan) yields "nan", which is not JSON; a consumer
    // like python's json.loads would reject the whole artifact.  The
    // writer substitutes null (and warns) instead.
    JsonWriter w;
    w.beginObject();
    w.field("a", std::nan(""));
    w.field("b", std::numeric_limits<double>::infinity());
    w.field("c", -std::numeric_limits<double>::infinity());
    w.endObject();
    EXPECT_EQ(w.str().find("nan"), std::string::npos) << w.str();
    EXPECT_EQ(w.str().find("inf"), std::string::npos) << w.str();
    size_t nulls = 0;
    for (size_t at = w.str().find("null"); at != std::string::npos;
         at = w.str().find("null", at + 1))
        ++nulls;
    EXPECT_EQ(nulls, 3u);
}

// ---------------------------------------------------------------------
// env: the one contract every environment knob shares (see util/env.hh).
// setenv/unsetenv are process-global, so each test uses its own unique
// variable name and cleans up after itself.

class EnvVar
{
  public:
    EnvVar(const char *name_in, const char *value) : name(name_in)
    {
        ::setenv(name, value, 1);
    }
    ~EnvVar() { ::unsetenv(name); }

  private:
    const char *name;
};

TEST(Env, UnsetIsSilentlyAbsent)
{
    ::unsetenv("REACT_TEST_UNSET");
    EXPECT_FALSE(env::raw("REACT_TEST_UNSET").has_value());
    EXPECT_FALSE(env::intVar("REACT_TEST_UNSET", 0, 10).has_value());
    EXPECT_FALSE(env::boolVar("REACT_TEST_UNSET").has_value());
}

TEST(Env, WellFormedValuesParse)
{
    EnvVar a("REACT_TEST_INT", "42");
    EnvVar b("REACT_TEST_DBL", "2.5");
    EnvVar c("REACT_TEST_STR", "hello");
    EnvVar d("REACT_TEST_BOOL", "On");
    EXPECT_EQ(env::intVar("REACT_TEST_INT", 0, 100).value_or(-1), 42);
    EXPECT_EQ(env::u64Var("REACT_TEST_INT", 0, 100).value_or(0), 42u);
    EXPECT_EQ(env::doubleVar("REACT_TEST_DBL", 0.0, 10.0).value_or(-1.0),
              2.5);
    EXPECT_EQ(env::stringVar("REACT_TEST_STR").value_or(""), "hello");
    EXPECT_TRUE(env::boolVar("REACT_TEST_BOOL").value_or(false));
}

TEST(Env, MalformedValuesWarnAndFallBack)
{
    EnvVar a("REACT_TEST_INT", "12abc");  // trailing garbage
    EnvVar b("REACT_TEST_DBL", "fast");   // not a number
    EnvVar c("REACT_TEST_BOOL", "maybe"); // not a boolean
    EXPECT_FALSE(env::intVar("REACT_TEST_INT", 0, 100).has_value());
    EXPECT_FALSE(env::doubleVar("REACT_TEST_DBL", 0.0, 1.0).has_value());
    EXPECT_FALSE(env::boolVar("REACT_TEST_BOOL").has_value());
}

TEST(Env, OutOfRangeAndOverflowAreMalformed)
{
    EnvVar a("REACT_TEST_INT", "500");
    EnvVar b("REACT_TEST_BIG", "99999999999999999999999999");
    EnvVar c("REACT_TEST_NEG", "-3");
    EXPECT_FALSE(env::intVar("REACT_TEST_INT", 0, 100).has_value());
    EXPECT_FALSE(
        env::intVar("REACT_TEST_BIG", 0, (1ll << 62)).has_value());
    EXPECT_FALSE(env::u64Var("REACT_TEST_BIG", 0, UINT64_MAX).has_value());
    // A negative value must not wrap through the unsigned parser.
    EXPECT_FALSE(env::u64Var("REACT_TEST_NEG", 0, UINT64_MAX).has_value());
    EXPECT_EQ(env::intVar("REACT_TEST_NEG", -10, 10).value_or(0), -3);
}

TEST(Env, EmptyStringIsUnsetNotWarned)
{
    EnvVar a("REACT_TEST_STR", "");
    EXPECT_FALSE(env::stringVar("REACT_TEST_STR").has_value());
}

} // namespace
} // namespace react
