/**
 * @file
 * MUST NOT COMPILE.  Addition only combines identical dimensions; a
 * voltage plus an energy is meaningless and must be rejected at compile
 * time, not discovered by the runtime conservation audit.
 */

#include "util/quantity.hh"

int
main()
{
    using react::units::Joules;
    using react::units::Volts;
    auto nonsense = Volts(3.3) + Joules(1.0);  // no such operator+
    return static_cast<int>(nonsense.raw());
}
