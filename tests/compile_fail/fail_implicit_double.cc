/**
 * @file
 * MUST NOT COMPILE.  Construction from `double` is explicit: a bare
 * magnitude carries no unit, so it must be tagged at the point it enters
 * the typed domain (`Volts(3.3)`), never converted silently.
 */

#include "util/quantity.hh"

static react::units::Volts
threshold()
{
    return 3.3;  // implicit double -> Volts must be rejected
}

int
main()
{
    return static_cast<int>(threshold().raw());
}
