/**
 * @file
 * MUST COMPILE (and run as a ctest entry).  Positive counterpart of the
 * compile-fail cases: the dimension algebra proves the S 3.3
 * two-capacitor relaxation identities at compile time.
 *
 * When a charged capacitor C1 at V1 connects to C2 at V2, charge
 * redistributes to
 *
 *     V_f  = (C1 V1 + C2 V2) / (C1 + C2)                      (charge
 *     Q    = conserved: (C1 + C2) V_f == C1 V1 + C2 V2)        sharing)
 *     E_loss = (1/2) (C1 C2 / (C1 + C2)) (V1 - V2)^2           (always
 *                                                              positive)
 *
 * independent of the interconnect resistance.  Every intermediate below
 * carries its dimension in the type, and the numeric checks evaluate in
 * a constant expression -- the values use power-of-two-exact magnitudes
 * so `==` is legitimate.
 */

#include <type_traits>

#include "util/quantity.hh"

namespace {

using react::units::Amps;
using react::units::Coulombs;
using react::units::Farads;
using react::units::Hertz;
using react::units::Joules;
using react::units::Ohms;
using react::units::Seconds;
using react::units::Volts;
using react::units::Watts;

/* --- Dimension algebra of the circuit identities. --------------------- */

// Q = C V
static_assert(
    std::is_same_v<decltype(Farads{} * Volts{}), Coulombs>);
// E = (1/2) C V^2 (scalar factor does not change the dimension)
static_assert(
    std::is_same_v<decltype(0.5 * (Farads{} * Volts{} * Volts{})), Joules>);
// tau = R C
static_assert(std::is_same_v<decltype(Ohms{} * Farads{}), Seconds>);
// I = P / V and Q = I t
static_assert(std::is_same_v<decltype(Watts{} / Volts{}), Amps>);
static_assert(std::is_same_v<decltype(Amps{} * Seconds{}), Coulombs>);
// P = E / t and its inverse
static_assert(std::is_same_v<decltype(Joules{} / Seconds{}), Watts>);
static_assert(std::is_same_v<decltype(1.0 / Seconds{}), Hertz>);
// Fully-cancelled exponents collapse to double: ratios need no .raw().
static_assert(std::is_same_v<decltype(Joules{} / Joules{}), double>);
static_assert(std::is_same_v<decltype(Volts{} / Volts{}), double>);

/* --- S 3.3 two-capacitor relaxation, evaluated constexpr. -------------- */

// C1 = 1 F at 4 V meets C2 = 3 F at 0 V (exact binary magnitudes).
constexpr Farads c1{1.0};
constexpr Farads c2{3.0};
constexpr Volts v1{4.0};
constexpr Volts v2{0.0};

constexpr Volts v_f = (c1 * v1 + c2 * v2) / (c1 + c2);
static_assert(v_f == Volts(1.0), "charge-sharing final voltage");

// Charge is conserved across the relaxation...
constexpr Coulombs q_before = c1 * v1 + c2 * v2;
constexpr Coulombs q_after = (c1 + c2) * v_f;
static_assert(q_before == q_after, "charge conservation");
static_assert(q_after == Coulombs(4.0));

// ...while energy is not: the interconnect dissipates E_loss.
constexpr Joules e_before = 0.5 * (c1 * (v1 * v1)) + 0.5 * (c2 * (v2 * v2));
constexpr Joules e_after = 0.5 * ((c1 + c2) * (v_f * v_f));
constexpr Joules e_loss =
    0.5 * ((c1 * c2) / (c1 + c2) * ((v1 - v2) * (v1 - v2)));
static_assert(e_before == Joules(8.0));
static_assert(e_after == Joules(2.0));
static_assert(e_before - e_after == e_loss, "relaxation loss identity");
static_assert(e_loss > Joules(0.0), "relaxation always dissipates");

// The loss is independent of interconnect resistance; R only sets the
// settling timescale tau = R C_series.
constexpr Seconds tau = Ohms(2.0) * ((c1 * c2) / (c1 + c2));
static_assert(tau == Seconds(1.5));

} // namespace

int
main()
{
    return 0;
}
