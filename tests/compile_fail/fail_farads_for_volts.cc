/**
 * @file
 * MUST NOT COMPILE.  The original bare-double `capEnergy(c, v)` accepted
 * swapped arguments silently -- exactly the bug class the Quantity types
 * exist to rule out.  A Farads value where Volts is expected (and vice
 * versa) must be a type error.
 */

#include "util/units.hh"

int
main()
{
    using react::units::Farads;
    using react::units::Volts;
    // Arguments transposed: capacitance passed as voltage.
    auto e = react::units::capEnergy(Volts(3.6), Farads(770e-6));
    return static_cast<int>(e.raw());
}
